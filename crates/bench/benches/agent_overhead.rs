//! **Overhead analysis** (§V) — the paper measures an average Next
//! decision overhead of ≈227 ns per invocation on the Note 9's LITTLE
//! cluster. This bench measures our agent's hot path: one 25 ms frame
//! sample, one full 100 ms control step (trained, greedy), and the
//! frame-window mode extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mpsoc::{Soc, SocConfig};
use next_core::{FrameWindow, NextAgent, NextConfig};

/// Builds a lightly-trained agent plus a SoC in a realistic state.
fn trained_setup() -> (NextAgent, Soc) {
    let mut agent = NextAgent::new(NextConfig::paper());
    let mut soc = Soc::new(SocConfig::exynos9810());
    let demand =
        mpsoc::perf::FrameDemand::new(4.0e6, 2.0e6, 5.0e6).with_background(0.3e9, 0.1e9, 0.0);
    for t in 0..12_000 {
        let out = soc.tick(0.025, &demand);
        agent.observe_frame_sample(out.fps);
        if t % 4 == 0 {
            let s = soc.state();
            agent.step(&s, soc.dvfs_mut());
        }
    }
    agent.set_training(false);
    (agent, soc)
}

fn bench_agent(c: &mut Criterion) {
    let (mut agent, mut soc) = trained_setup();

    c.bench_function("frame_window_push", |b| {
        b.iter(|| agent.observe_frame_sample(black_box(42.0)));
    });

    let mut window = FrameWindow::paper_default();
    for i in 0..160 {
        window.push(f64::from(i % 60));
    }
    c.bench_function("frame_window_mode", |b| {
        b.iter(|| black_box(window.mode()));
    });

    let state = soc.state();
    c.bench_function("next_control_step_greedy", |b| {
        b.iter(|| {
            agent.step(black_box(&state), soc.dvfs_mut());
        });
    });

    let (mut training_agent, mut soc2) = trained_setup();
    training_agent.set_training(true);
    let state2 = soc2.state();
    c.bench_function("next_control_step_training", |b| {
        b.iter(|| {
            training_agent.step(black_box(&state2), soc2.dvfs_mut());
        });
    });
}

criterion_group!(benches, bench_agent);
criterion_main!(benches);
