//! **Batched tick kernel** — the structure-of-arrays [`SocBatch`]
//! stepping N device lanes in lockstep versus the same cohort stepped
//! one scalar [`Soc`] at a time, on identical pre-computed frame-demand
//! traces (10 simulated seconds of a `facebook` session per lane, the
//! in-SoC utilization governor as the only control loop).
//!
//! Three widths bracket the kernel's scaling story:
//!
//! * `batched_tick_w1` — the width-1 degenerate case: the batch is a
//!   view over the same physics, so this prices the kernel's fixed
//!   per-tick overhead against `soc_tick_sequential_w1`.
//! * `batched_tick_w8` — a day-runner-sized cohort (the 6 standard
//!   governors plus headroom).
//! * `batched_tick_w64` — a fleet-round-sized cohort, where the
//!   lane-contiguous arrays earn their keep: structure constants (trip
//!   points, thermal couplings, OPP ladders) are read once per tick
//!   instead of once per device.
//!
//! Wall-clock claims live in `BENCH.json`'s `batch` section
//! (`device_days_per_sec`, CI-gated); this bench is for profiling the
//! same loop under criterion.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mpsoc::perf::FrameDemand;
use mpsoc::soc::{Soc, SocConfig};
use mpsoc::SocBatch;
use simkit::Engine;
use workload::{SessionPlan, SessionSim};

/// Simulated seconds per lane per measured pass.
const DURATION_S: f64 = 10.0;

/// Tick-major demand traces: `demands[t][lane]`.
fn demand_traces(width: usize) -> (f64, Vec<Vec<FrameDemand>>) {
    let engine = Engine::new();
    let dt = engine.tick_s();
    let ticks = engine.ticks_for(DURATION_S) as usize;
    let mut demands = vec![Vec::with_capacity(width); ticks];
    for lane in 0..width {
        let mut session = SessionSim::new(
            SessionPlan::single("facebook", DURATION_S),
            1000 + lane as u64,
        );
        for row in &mut demands {
            row.push(session.advance(dt));
        }
    }
    (dt, demands)
}

fn bench_batched_tick(crit: &mut Criterion) {
    let config = SocConfig::exynos9810();
    for width in [1usize, 8, 64] {
        let (dt, demands) = demand_traces(width);

        crit.bench_function(&format!("batched_tick_w{width}"), |b| {
            b.iter(|| {
                let mut batch = SocBatch::replicate(&config, width).unwrap();
                for row in &demands {
                    batch.tick(black_box(dt), black_box(row));
                }
                black_box(batch.energy_j(0))
            });
        });

        crit.bench_function(&format!("soc_tick_sequential_w{width}"), |b| {
            b.iter(|| {
                let mut total = 0.0;
                for lane in 0..width {
                    let mut soc = Soc::new(config.clone());
                    for row in &demands {
                        soc.tick(black_box(dt), black_box(&row[lane]));
                    }
                    total += soc.state().temp_device_c;
                }
                black_box(total)
            });
        });
    }
}

criterion_group!(benches, bench_batched_tick);
criterion_main!(benches);
