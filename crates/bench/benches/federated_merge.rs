//! **Federated merge comparison** — the seed's eager all-keys merge vs
//! the streaming `MergeAccumulator` on 64 fully-populated paper-space
//! tables (the Exynos 9810 encoder space at 2 FPS bins: 622 080
//! states × 9 actions each, the same space `qtable_backends` uses).
//!
//! Three configurations:
//!
//! * `merge_eager_hash_64_tables` — the seed's cloud-side path: the
//!   all-keys algorithm on the open-ended **hash** backend it was
//!   designed around (per-state heap entries, SipHash probes). It
//!   materialises and sorts the concatenated key sets of all 64 tables
//!   (≈40 M keys), then probes every table once per key.
//! * `merge_eager_dense_64_tables` — ablation: the same all-keys
//!   algorithm, but reading the dense-arena tables (sort and per-state
//!   allocations remain).
//! * `merge_streaming_dense_64_tables` — the streaming dense-arena
//!   merge: tables fold one at a time as straight zips of the
//!   value/visit arenas, with no key materialisation at all. Here the
//!   pass is memory-bandwidth-bound on the irreducible
//!   `states × tables × actions` multiply-add traffic — the floor for
//!   this workload.
//!
//! Target (PR acceptance): streaming-dense ≥ 5× over the seed's
//! hash-backed all-keys merge; the dense-eager ablation isolates how
//! much of that comes from the algorithm (no sort, no per-state
//! allocs) versus the storage layout.
//!
//! Two distinct tables are cycled behind the 64 references so the pass
//! merges real, differing data without holding 64 fully-populated
//! arenas in memory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use next_core::StateEncoder;
use qlearn::federated::{merge, merge_eager};
use qlearn::{DenseQTable, HashStore, QStore, QTable};

/// FPS bins of the benchmark space (matches `qtable_backends`).
const FPS_BINS: usize = 2;

/// Tables per merge pass (the acceptance criterion's fleet size).
const TABLES: usize = 64;

fn build_table<S: QStore>(mut t: QTable<S>, states: u64, salt: u64) -> QTable<S> {
    for s in 0..states {
        for a in 0..9 {
            let v = ((s + salt + a as u64 * 7) % 13) as f64 - 6.0;
            t.set(s, a, v);
        }
    }
    t
}

fn refs<S: QStore>(distinct: &[QTable<S>; 2]) -> Vec<&QTable<S>> {
    (0..TABLES).map(|i| &distinct[i % 2]).collect()
}

fn bench_federated_merge(crit: &mut Criterion) {
    let states = StateEncoder::exynos9810(FPS_BINS).state_space_size();
    eprintln!("merging {TABLES} fully-populated paper-space tables ({states} states x 9 actions)");

    {
        let hash = [
            build_table(QTable::<HashStore>::empty(9, 0.0), states, 0),
            build_table(QTable::<HashStore>::empty(9, 0.0), states, 5),
        ];
        let hash_refs = refs(&hash);
        crit.bench_function("merge_eager_hash_64_tables", |bencher| {
            bencher.iter(|| black_box(merge_eager(black_box(&hash_refs))));
        });
    }

    let dense = [
        build_table(DenseQTable::dense_for_space(9, 0.0, states), states, 0),
        build_table(DenseQTable::dense_for_space(9, 0.0, states), states, 5),
    ];
    let dense_refs = refs(&dense);
    crit.bench_function("merge_eager_dense_64_tables", |bencher| {
        bencher.iter(|| black_box(merge_eager(black_box(&dense_refs))));
    });
    crit.bench_function("merge_streaming_dense_64_tables", |bencher| {
        bencher.iter(|| black_box(merge(black_box(&dense_refs))));
    });
}

criterion_group!(benches, bench_federated_merge);
criterion_main!(benches);
