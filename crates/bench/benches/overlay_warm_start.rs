//! **Copy-on-write overlay warm start** — what it costs a device to
//! warm-start a day's Q-table from the round's merged global, across
//! three strategies and three base widths:
//!
//! * `fresh` — build an empty table (no warm start at all, the cold
//!   lower bound),
//! * `dense_clone` — deep-copy the base, the pre-overlay campaign
//!   scheme: O(states),
//! * `overlay` — an `Arc` clone plus an empty touched-row map: O(1),
//!   independent of how many rows the fleet has learned.
//!
//! The widths bracket the campaign's reality: a quick-plan day's table
//! (hundreds of rows), a trained app table (tens of thousands), and a
//! paper-space-scale table. The overlay bar must stay flat across all
//! three while `dense_clone` grows linearly — that gap is the tentpole
//! claim of the overlay backend, and `next-sim perf` tracks the same
//! numbers as `warm_start_ns` / `dense_clone_ns`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use qlearn::{DenseQTable, QTable};

/// Base-table widths: quick-day scale, trained-app scale, paper scale.
const WIDTHS: [u64; 3] = [512, 32_768, 262_144];

fn trained_base(states: u64) -> Arc<DenseQTable> {
    let mut base = DenseQTable::dense_for_space(9, 25.0, states);
    for s in 0..states {
        for a in 0..9 {
            let v = ((s + a as u64 * 7) % 13) as f64 - 6.0;
            base.set(s, a, v);
        }
    }
    Arc::new(base)
}

fn bench_overlay_warm_start(crit: &mut Criterion) {
    for states in WIDTHS {
        let base = trained_base(states);

        crit.bench_function(&format!("warm_start_fresh_{states}"), |bencher| {
            bencher.iter(|| black_box(DenseQTable::dense_for_space(9, 25.0, black_box(states))));
        });

        crit.bench_function(&format!("warm_start_dense_clone_{states}"), |bencher| {
            bencher.iter(|| black_box((*base).clone()));
        });

        crit.bench_function(&format!("warm_start_overlay_{states}"), |bencher| {
            bencher.iter(|| black_box(QTable::overlay(Arc::clone(&base))));
        });
    }
}

criterion_group!(benches, bench_overlay_warm_start);
criterion_main!(benches);
