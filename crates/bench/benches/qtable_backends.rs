//! **Q-table backend comparison** — the hot argmax+update loop on a
//! fully-populated paper-sized state space, hash vs dense-indexed.
//!
//! "Paper-sized" means the Exynos 9810 state space of the Next encoder
//! (18×10×6 OPP ladders × fps² × 4 power × 6² temperature bins) at the
//! coarse end of the paper's Fig. 6 FPS-bin sweep: 2 bins → 622 080
//! states, every one populated with all 9 actions, so both tables are
//! far larger than any cache level and the probe path dominates.
//!
//! The dense backend must beat the hash backend by ≥ 2× on the combined
//! argmax+update loop — the CI perf artifact (`next-sim perf`) tracks
//! the same ratio as `dense_speedup`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use next_core::StateEncoder;
use qlearn::{DenseQTable, HashStore, QLearning, QStore, QTable};

/// FPS bins for the benchmark space (Fig. 6 sweeps 1..60; 2 keeps the
/// fully-populated table around 600k states — big, but buildable).
const FPS_BINS: usize = 2;

fn paper_space_size() -> u64 {
    StateEncoder::exynos9810(FPS_BINS).state_space_size()
}

fn populate<S: QStore>(table: &mut QTable<S>, states: u64) {
    for s in 0..states {
        for a in 0..9 {
            let v = ((s + a as u64 * 7) % 13) as f64 - 6.0;
            table.set(s, a, v);
        }
    }
}

/// Deterministic scattered probe order (xorshift64* shuffle).
fn probe_keys(states: u64, n: usize) -> Vec<u64> {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..n)
        .map(|_| {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x9e37_79b9_7f4a_7c15) % states
        })
        .collect()
}

fn bench_backend<S: QStore>(crit: &mut Criterion, label: &str, mut table: QTable<S>) {
    let states = paper_space_size();
    populate(&mut table, states);
    let keys = probe_keys(states, 4096);
    let learner = QLearning::new(0.25, 0.5);

    let mut cursor = 0usize;
    crit.bench_function(&format!("{label}_argmax"), |bencher| {
        bencher.iter(|| {
            let key = keys[cursor];
            cursor = (cursor + 1) % keys.len();
            black_box(table.best_action(black_box(key)))
        });
    });

    let mut upd_cursor = 0usize;
    crit.bench_function(&format!("{label}_argmax_update"), |bencher| {
        bencher.iter(|| {
            let key = keys[upd_cursor];
            let next = keys[(upd_cursor + 1) % keys.len()];
            upd_cursor = (upd_cursor + 1) % keys.len();
            let (action, _) = table.best_action(key);
            black_box(learner.update(&mut table, key, action, 0.5, next))
        });
    });
}

fn bench_qtable_backends(crit: &mut Criterion) {
    let states = paper_space_size();
    eprintln!("paper space at {FPS_BINS} fps bins: {states} states, fully populated");
    bench_backend(crit, "hash", QTable::<HashStore>::empty(9, 0.0));
    bench_backend(crit, "dense", DenseQTable::dense_for_space(9, 0.0, states));
}

criterion_group!(benches, bench_qtable_backends);
criterion_main!(benches);
