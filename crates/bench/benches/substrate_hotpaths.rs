//! Microbenchmarks of the simulation substrates: one SoC tick, one
//! thermal step, one VSync tick, the execution-plan evaluation and one
//! Q-table update. These bound the cost of the whole-system simulation
//! (a 5-minute session is 12 000 ticks).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mpsoc::perf::{self, FrameDemand};
use mpsoc::thermal::ThermalNetwork;
use mpsoc::vsync::VsyncPipeline;
use mpsoc::{Soc, SocConfig};
use qlearn::{QLearning, QTable};

fn bench_substrates(c: &mut Criterion) {
    let demand = FrameDemand::new(10.0e6, 3.0e6, 8.0e6).with_background(0.4e9, 0.2e9, 0.0);

    let mut soc = Soc::new(SocConfig::exynos9810());
    c.bench_function("soc_tick_25ms", |b| {
        b.iter(|| black_box(soc.tick(0.025, black_box(&demand))));
    });

    let mut net = ThermalNetwork::exynos9810(21.0);
    let powers = [3.0, 0.4, 2.5, 0.9, 0.0];
    c.bench_function("thermal_step_25ms", |b| {
        b.iter(|| net.step(black_box(&powers), 0.025));
    });

    let mut pipe = VsyncPipeline::new(60.0);
    c.bench_function("vsync_tick_25ms", |b| {
        b.iter(|| black_box(pipe.tick(0.025, Some(0.02))));
    });

    let platform = mpsoc::Platform::exynos9810();
    let opps = [
        mpsoc::freq::OppTable::exynos9810_big().max(),
        mpsoc::freq::OppTable::exynos9810_little().max(),
        mpsoc::freq::OppTable::exynos9810_gpu().max(),
    ];
    c.bench_function("perf_plan", |b| {
        b.iter(|| black_box(perf::plan(black_box(&demand), &opps, &platform)));
    });

    let mut table = QTable::new(9);
    for s in 0..1_000u64 {
        table.set(s, (s % 9) as usize, s as f64 * 0.01);
    }
    let learner = QLearning::new(0.25, 0.5);
    let mut s = 0u64;
    c.bench_function("qtable_update", |b| {
        b.iter(|| {
            s = (s + 1) % 1_000;
            black_box(learner.update(&mut table, s, (s % 9) as usize, 1.5, (s + 1) % 1_000));
        });
    });

    let mut session = workload::SessionSim::new(workload::SessionPlan::paper_fig1(), 42);
    c.bench_function("workload_advance_25ms", |b| {
        b.iter(|| black_box(session.advance(0.025)));
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
