//! **Sensitivity** — how much of the result depends on the stock
//! policy's boost modelling.
//!
//! Our schedutil baseline models Android's touch/top-app boosting: a
//! cluster whose utilisation stays above the boost threshold is slammed
//! to the top of its range (see `DvfsController::boost_threshold`).
//! This sweep reruns the schedutil baseline with boosting disabled,
//! default (0.72) and aggressive (0.60) to show how the baseline's
//! wastefulness — and therefore the headroom any manager can harvest —
//! depends on that single knob.

use governors::{Governor, Schedutil};
use mpsoc::{Soc, SocConfig};
use simkit::report::Table;
use simkit::{Engine, Sample, Trace};
use workload::{SessionPlan, SessionSim};

fn run_with_boost(app: &str, threshold: f64) -> simkit::Summary {
    let engine = Engine::new();
    let mut soc = Soc::new(SocConfig::exynos9810());
    soc.dvfs_mut().set_boost_threshold(threshold);
    let mut gov = Schedutil::new();
    let mut session = SessionSim::new(
        SessionPlan::single(app, SessionPlan::paper_session_length_s(app)),
        bench::EVAL_SEED,
    );
    let mut trace = Trace::new();
    let ticks = (SessionPlan::paper_session_length_s(app) / engine.tick_s()) as usize;
    let control_every = (gov.period_s() / engine.tick_s()).round() as usize;
    for t in 0..ticks {
        let demand = session.advance(engine.tick_s());
        let out = soc.tick(engine.tick_s(), &demand);
        let state = soc.state();
        gov.observe(&state);
        if (t + 1) % control_every == 0 {
            gov.control(&state, soc.dvfs_mut());
        }
        trace.push(Sample {
            time_s: state.time_s,
            fps: out.fps,
            power_w: out.power_w,
            temp_hot_c: state.temp_hot_c,
            temp_device_c: state.temp_device_c,
            freq_khz: state.freq_khz,
        });
    }
    trace.summary()
}

fn main() {
    let mut table = Table::new(
        "schedutil baseline vs boost threshold (power W / avg fps)",
        &["app", "no boost", "default 0.72", "aggressive 0.60"],
    );
    for app in ["facebook", "spotify", "pubg", "youtube"] {
        let mut cells = vec![app.to_owned()];
        for &thr in &[2.0f64, 0.72, 0.60] {
            let s = run_with_boost(app, thr);
            cells.push(format!("{:.2} / {:.1}", s.avg_power_w, s.avg_fps));
        }
        table.push_row(cells);
    }
    println!("{}", table.render());
    println!("# the gap between 'no boost' and 'default' is the waste Android's");
    println!("# boosting adds — the headroom the paper's Fig. 1 observation points at");
    println!("# and that Next harvests by capping maxfreq.");
}
