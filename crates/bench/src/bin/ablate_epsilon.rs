//! **Ablation** — ε-greedy exploration schedule.
//!
//! Sweeps the initial exploration rate and its decay on Facebook and
//! reports training time to convergence plus the quality of the learned
//! policy.

use governors::Schedutil;
use next_core::NextConfig;
use simkit::experiment::{evaluate_governor, train_next_for_app};
use simkit::report::Table;

fn main() {
    let plan = bench::paper_plan("facebook");
    let sched = evaluate_governor(&mut Schedutil::new(), &plan, bench::EVAL_SEED);

    let mut table = Table::new(
        "ablation: epsilon schedule (facebook)",
        &[
            "eps0",
            "decay",
            "train_s",
            "converged",
            "saving_%",
            "avg_fps",
        ],
    );
    for &(eps0, decay) in &[
        (0.1f64, 0.999f64),
        (0.3, 0.998),
        (0.5, 0.998),
        (0.8, 0.995),
        (0.05, 1.0),
    ] {
        let mut config = NextConfig::paper();
        config.epsilon0 = eps0;
        config.epsilon_decay = decay;
        config.epsilon_min = config.epsilon_min.min(eps0);
        let out = train_next_for_app("facebook", config, bench::TRAIN_SEED, 900.0);
        let mut agent = out.agent;
        let next = evaluate_governor(&mut agent, &plan, bench::EVAL_SEED);
        table.push_row(vec![
            format!("{eps0:.2}"),
            format!("{decay:.3}"),
            format!("{:.0}", out.training_time_s),
            out.converged.to_string(),
            format!("{:.1}", next.summary.power_saving_vs(&sched.summary)),
            format!("{:.1}", next.summary.avg_fps),
        ]);
    }
    println!("{}", table.render());
    println!("# low ε relies on the informed priors; high ε explores more states and");
    println!("# takes longer to settle. The default (0.5, 0.998) converges within the");
    println!("# paper's minutes-scale budget.");
}
