//! **Ablation** — reward composition and safety mechanisms.
//!
//! Compares, on PubG (the hardest workload):
//!
//! * the full Next reward (PPDW + target attainment + headroom shaping,
//!   QoS guard on),
//! * pure PPDW (the paper's literal Eq. 4 reward, no target term),
//! * no headroom shaping,
//! * no QoS guard,
//! * no target hysteresis.

use governors::Schedutil;
use next_core::NextConfig;
use simkit::experiment::{evaluate_governor, train_next_for_app};
use simkit::report::Table;

fn run(label: &str, config: NextConfig, table: &mut Table, sched: &simkit::Summary) {
    let plan = bench::paper_plan("pubg");
    let out = train_next_for_app(
        "pubg",
        config,
        bench::TRAIN_SEED,
        bench::train_budget_s("pubg"),
    );
    let mut agent = out.agent;
    let next = evaluate_governor(&mut agent, &plan, bench::EVAL_SEED);
    table.push_row(vec![
        label.to_owned(),
        format!("{:.2}", next.summary.avg_power_w),
        format!("{:.1}", next.summary.power_saving_vs(sched)),
        format!("{:.1}", next.summary.avg_fps),
        format!("{:.1}", next.summary.peak_temp_hot_c),
    ]);
}

fn main() {
    let plan = bench::paper_plan("pubg");
    let sched = evaluate_governor(&mut Schedutil::new(), &plan, bench::EVAL_SEED);

    let mut table = Table::new(
        "ablation: reward terms and safety mechanisms (pubg)",
        &["variant", "power_w", "saving_%", "avg_fps", "peak_big_c"],
    );
    table.push_row(vec![
        "schedutil".to_owned(),
        format!("{:.2}", sched.summary.avg_power_w),
        "0.0".to_owned(),
        format!("{:.1}", sched.summary.avg_fps),
        format!("{:.1}", sched.summary.peak_temp_hot_c),
    ]);

    run("full", NextConfig::paper(), &mut table, &sched.summary);
    run(
        "pure-ppdw",
        NextConfig::paper().pure_ppdw(),
        &mut table,
        &sched.summary,
    );

    let mut no_headroom = NextConfig::paper();
    no_headroom.headroom_weight = 0.0;
    run("no-headroom", no_headroom, &mut table, &sched.summary);

    let mut no_guard = NextConfig::paper();
    no_guard.qos_guard_s = f64::INFINITY;
    run("no-qos-guard", no_guard, &mut table, &sched.summary);

    let mut no_hysteresis = NextConfig::paper();
    no_hysteresis.target_decay = 1.0;
    run("no-hysteresis", no_hysteresis, &mut table, &sched.summary);

    let mut double_q = NextConfig::paper();
    double_q.double_q = true;
    run("double-q", double_q, &mut table, &sched.summary);

    println!("{}", table.render());
    println!("# expected shape: pure-ppdw and no-qos-guard sacrifice FPS for power;");
    println!("# no-headroom caps less aggressively (smaller saving); the full");
    println!("# configuration balances saving against the user-derived target.");
}
