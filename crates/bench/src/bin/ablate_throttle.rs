//! **Extension** — interaction with hardware thermal throttling.
//!
//! A key practical payoff of the paper's peak-temperature reductions:
//! a governor that runs cooler never hands control to the hardware
//! throttler, so QoS stays under *software* control. This bench runs
//! PubG on a thermally constrained device (low trip points, e.g. a
//! phone in a case in the sun) and reports how much time each governor
//! spends throttled.

use governors::{Governor, IntQosPm, Schedutil};
use mpsoc::throttle::ThrottleConfig;
use mpsoc::{Soc, SocConfig};
use simkit::report::Table;
use simkit::Engine;
use workload::{SessionPlan, SessionSim};

/// A hot environment: 35 °C ambient and trips 10 °C lower than stock.
fn constrained_soc() -> Soc {
    let mut cfg = SocConfig::exynos9810_at_ambient(35.0);
    cfg.throttle = ThrottleConfig {
        enabled: true,
        trip_c: vec![65.0, 65.0, 61.0],
        hysteresis_c: 5.0,
    };
    Soc::new(cfg)
}

fn run(gov: &mut dyn Governor) -> (simkit::Summary, f64) {
    let engine = Engine::new();
    let mut soc = constrained_soc();
    let mut session = SessionSim::new(SessionPlan::single("pubg", 300.0), bench::EVAL_SEED);
    gov.reset();
    let mut trace = simkit::Trace::new();
    let mut throttled_ticks = 0u64;
    let total_ticks = (300.0 / engine.tick_s()) as u64;
    let control_every = (gov.period_s() / engine.tick_s()).round() as u64;
    for t in 0..total_ticks {
        let demand = session.advance(engine.tick_s());
        let out = soc.tick(engine.tick_s(), &demand);
        let state = soc.state();
        gov.observe(&state);
        if (t + 1) % control_every == 0 {
            gov.control(&state, soc.dvfs_mut());
        }
        if soc.throttler().is_throttling() {
            throttled_ticks += 1;
        }
        trace.push(simkit::Sample {
            time_s: state.time_s,
            fps: out.fps,
            power_w: out.power_w,
            temp_hot_c: state.temp_hot_c,
            temp_device_c: state.temp_device_c,
            freq_khz: state.freq_khz,
        });
    }
    (
        trace.summary(),
        throttled_ticks as f64 / total_ticks as f64 * 100.0,
    )
}

fn main() {
    let mut table = Table::new(
        "thermal throttling under a hot environment (pubg, 35 C ambient, low trips)",
        &[
            "governor",
            "power_w",
            "avg_fps",
            "peak_big_c",
            "throttled_%",
        ],
    );

    let (s, pct) = run(&mut Schedutil::new());
    table.push_row(vec![
        "schedutil".into(),
        format!("{:.2}", s.avg_power_w),
        format!("{:.1}", s.avg_fps),
        format!("{:.1}", s.peak_temp_hot_c),
        format!("{pct:.1}"),
    ]);

    let (s, pct) = run(&mut IntQosPm::new());
    table.push_row(vec![
        "int-qos-pm".into(),
        format!("{:.2}", s.avg_power_w),
        format!("{:.1}", s.avg_fps),
        format!("{:.1}", s.peak_temp_hot_c),
        format!("{pct:.1}"),
    ]);

    let train = bench::trained_next("pubg");
    let mut agent = train.agent;
    let (s, pct) = run(&mut agent);
    table.push_row(vec![
        "next".into(),
        format!("{:.2}", s.avg_power_w),
        format!("{:.1}", s.avg_fps),
        format!("{:.1}", s.peak_temp_hot_c),
        format!("{pct:.1}"),
    ]);

    println!("{}", table.render());
    println!("# a cooler governor spends less of the session at the mercy of the");
    println!("# hardware throttler — the practical payoff of Fig. 8's reductions.");
}
