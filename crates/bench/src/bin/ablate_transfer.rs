//! **Extension** — transfer learning across applications.
//!
//! The paper trains one Q-table per application from scratch. Its
//! related work (§II cites Shafik et al.'s learning-transfer approach)
//! suggests warm-starting a new application from an already-trained
//! one. This bench measures how much of Facebook's table transfers to
//! the other UI applications: training time to convergence and the
//! final saving, cold start versus warm start.

use governors::Schedutil;
use next_core::{NextAgent, NextConfig};
use simkit::experiment::{evaluate_governor, train_next_for_app};
use simkit::report::Table;
use simkit::Engine;

/// Continues training an existing agent on `app` until convergence or
/// `budget_s`, mirroring `train_next_for_app` but with a warm table.
fn train_more(mut agent: NextAgent, app: &str, seed: u64, budget_s: f64) -> (NextAgent, f64) {
    let engine = Engine::new();
    let mut soc = mpsoc::Soc::new(mpsoc::SocConfig::exynos9810());
    let base_time = agent.stats().sim_time_s;
    let mut spent = 0.0;
    let mut round = 0u64;
    while spent < budget_s && !agent.is_converged() {
        let chunk: f64 = 60.0f64.min(budget_s - spent);
        let mut session = workload::SessionSim::new(
            workload::SessionPlan::single(app, chunk),
            seed.wrapping_add(round),
        );
        agent.start_session();
        engine.run(&mut soc, &mut agent, &mut session, chunk);
        spent += chunk;
        round += 1;
    }
    let time = agent
        .stats()
        .converged_at_s
        .map_or(spent, |t| (t - base_time).max(0.0));
    (agent, time)
}

fn main() {
    // Donor: a fully-trained Facebook table.
    let donor = bench::trained_next("facebook");
    println!(
        "# donor (facebook): trained {:.0} s, {} states\n",
        donor.training_time_s,
        donor.agent.table().len()
    );
    let donor_table = donor.agent.into_table();

    let mut table = Table::new(
        "transfer learning: facebook table warm-starting other apps",
        &[
            "app",
            "cold_train_s",
            "warm_train_s",
            "cold_saving_%",
            "warm_saving_%",
        ],
    );
    for app in ["web-browser", "youtube", "spotify"] {
        let plan = bench::paper_plan(app);
        let sched = evaluate_governor(&mut Schedutil::new(), &plan, bench::EVAL_SEED);

        // Cold start.
        let cold = train_next_for_app(app, NextConfig::paper(), bench::TRAIN_SEED, 600.0);
        let cold_time = cold.training_time_s;
        let mut cold_agent = cold.agent;
        let cold_saving = evaluate_governor(&mut cold_agent, &plan, bench::EVAL_SEED)
            .summary
            .power_saving_vs(&sched.summary);

        // Warm start from the donor table (training resumes on it).
        let warm_agent = NextAgent::with_table(NextConfig::paper(), donor_table.clone(), true);
        let (mut warm_agent, warm_time) = train_more(warm_agent, app, bench::TRAIN_SEED, 600.0);
        warm_agent.set_training(false);
        let warm_saving = evaluate_governor(&mut warm_agent, &plan, bench::EVAL_SEED)
            .summary
            .power_saving_vs(&sched.summary);

        table.push_row(vec![
            app.to_owned(),
            format!("{cold_time:.0}"),
            format!("{warm_time:.0}"),
            format!("{cold_saving:.1}"),
            format!("{warm_saving:.1}"),
        ]);
    }
    println!("{}", table.render());
    println!("# observed: transfer preserves most of the saving but does not speed up");
    println!("# convergence — the donor's state keys rarely recur verbatim on another");
    println!("# app, and stale donor values can delay TD settling on dissimilar apps");
    println!("# (Spotify). Supports the paper's choice of per-application tables.");
}
