//! **Ablation** — frame-window length.
//!
//! The paper picks a 4 s frame window (160 × 25 ms samples) as the best
//! setting for extracting the user's desired frame rate (§IV-A). This
//! sweep trains and evaluates Next on Facebook with 1/2/4/8 s windows
//! and reports power saving and delivered FPS.

use governors::Schedutil;
use next_core::NextConfig;
use simkit::experiment::{evaluate_governor, train_next_for_app};
use simkit::report::Table;

fn main() {
    let plan = bench::paper_plan("facebook");
    let sched = evaluate_governor(&mut Schedutil::new(), &plan, bench::EVAL_SEED);

    let mut table = Table::new(
        "ablation: frame-window length (facebook)",
        &[
            "window_s",
            "samples",
            "saving_%",
            "avg_fps",
            "train_s",
            "converged",
        ],
    );
    for &window_s in &[1.0f64, 2.0, 4.0, 8.0] {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let samples = (window_s / 0.025).round() as usize;
        let mut config = NextConfig::paper();
        config.window_samples = samples;
        config.target_refresh_s = window_s;
        let out = train_next_for_app("facebook", config, bench::TRAIN_SEED, 600.0);
        let mut agent = out.agent;
        let next = evaluate_governor(&mut agent, &plan, bench::EVAL_SEED);
        table.push_row(vec![
            format!("{window_s:.0}"),
            samples.to_string(),
            format!("{:.1}", next.summary.power_saving_vs(&sched.summary)),
            format!("{:.1}", next.summary.avg_fps),
            format!("{:.0}", out.training_time_s),
            out.converged.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "# schedutil baseline: {:.2} W, {:.1} fps",
        sched.summary.avg_power_w, sched.summary.avg_fps
    );
    println!("# shorter windows chase transients; longer windows lag the user —");
    println!("# the paper's 4 s setting balances both.");
}
