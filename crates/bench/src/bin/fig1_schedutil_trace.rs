//! **Fig. 1** — FPS generation and big/LITTLE operating frequency on the
//! stock `schedutil` governor during a home screen → Facebook → Spotify
//! session, reported every 3 seconds.
//!
//! The figure's point: the frame rate varies wildly *within* each app as
//! the user interacts, and the operating frequencies stay high even when
//! FPS collapses (most visible during Spotify playback).

use governors::Schedutil;
use mpsoc::{Soc, SocConfig};
use simkit::report;
use simkit::Engine;
use workload::{SessionPlan, SessionSim};

fn main() {
    let plan = SessionPlan::paper_fig1();
    let duration = plan.total_duration_s();
    let engine = Engine::new();
    let mut soc = Soc::new(SocConfig::exynos9810());
    let mut gov = Schedutil::new();
    let mut session = SessionSim::new(plan, bench::EVAL_SEED);
    let outcome = engine.run(&mut soc, &mut gov, &mut session, duration);

    let resampled = outcome.trace.resampled(3.0);
    let xs: Vec<f64> = resampled.iter().map(|s| s.time_s).collect();
    let fps: Vec<f64> = resampled.iter().map(|s| s.fps).collect();
    let f_big: Vec<f64> = resampled
        .iter()
        .map(|s| f64::from(s.freq_khz[0]) / 1e6)
        .collect();
    let f_little: Vec<f64> = resampled
        .iter()
        .map(|s| f64::from(s.freq_khz[1]) / 1e6)
        .collect();

    println!(
        "{}",
        report::render_multi_series(
            "fig1: schedutil FPS and CPU frequencies (home -> facebook -> spotify)",
            "time_s",
            &xs,
            &[
                ("schedutil_fps", fps.clone()),
                ("freq_big_ghz", f_big),
                ("freq_little_ghz", f_little),
            ],
        )
    );

    // The figure's qualitative claims, checked on our trace.
    let summary = outcome.trace.summary();
    let fps_min = fps.iter().copied().fold(f64::INFINITY, f64::min);
    let fps_max = fps.iter().copied().fold(0.0f64, f64::max);
    println!(
        "# avg fps {:.1}, range [{fps_min:.1}, {fps_max:.1}]",
        summary.avg_fps
    );
    println!(
        "# avg power {:.2} W, peak big temp {:.1} C",
        summary.avg_power_w, summary.peak_temp_hot_c
    );
    println!("# paper shape: FPS spans near-0 to 60 within one session while CPU");
    println!("# frequencies stay high (Spotify playback keeps big cores clocked up).");
}
