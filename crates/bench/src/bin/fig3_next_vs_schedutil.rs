//! **Fig. 3** — power consumption and big-CPU temperature on the same
//! home screen → Facebook → Spotify session, stock `schedutil` versus
//! the trained Next agent.
//!
//! The paper reports 41.88 % average power saving and 21.02 % big-CPU
//! temperature reduction on this session.

use governors::Schedutil;
use mpsoc::{Soc, SocConfig};
use simkit::report;
use simkit::Engine;
use workload::{SessionPlan, SessionSim};

fn main() {
    let plan = SessionPlan::paper_fig1();
    let duration = plan.total_duration_s();
    let engine = Engine::new();

    // schedutil run.
    let mut soc = Soc::new(SocConfig::exynos9810());
    let mut sched = Schedutil::new();
    let mut session = SessionSim::new(plan.clone(), bench::EVAL_SEED);
    let sched_out = engine.run(&mut soc, &mut sched, &mut session, duration);

    // Next: trained on the same kind of mixed session, then greedy.
    let mut agent = bench::trained_next_on_plan(&plan, 900.0);
    let mut soc = Soc::new(SocConfig::exynos9810());
    let mut session = SessionSim::new(plan, bench::EVAL_SEED);
    agent.start_session();
    let next_out = engine.run(&mut soc, &mut agent, &mut session, duration);

    let s_res = sched_out.trace.resampled(3.0);
    let n_res = next_out.trace.resampled(3.0);
    let n = s_res.len().min(n_res.len());
    let xs: Vec<f64> = s_res.iter().take(n).map(|s| s.time_s).collect();
    println!(
        "{}",
        report::render_multi_series(
            "fig3: power and big-CPU temperature, schedutil vs Next",
            "time_s",
            &xs,
            &[
                (
                    "pow_schedutil_w",
                    s_res.iter().take(n).map(|s| s.power_w).collect()
                ),
                (
                    "pow_next_w",
                    n_res.iter().take(n).map(|s| s.power_w).collect()
                ),
                (
                    "temp_schedutil_c",
                    s_res.iter().take(n).map(|s| s.temp_hot_c).collect()
                ),
                (
                    "temp_next_c",
                    n_res.iter().take(n).map(|s| s.temp_hot_c).collect()
                ),
            ],
        )
    );

    let ss = sched_out.trace.summary();
    let ns = next_out.trace.summary();
    println!(
        "# avg power schedutil: {:.4} W   (paper: 3.5154 W)",
        ss.avg_power_w
    );
    println!(
        "# avg power Next:      {:.4} W   (paper: 2.0433 W)",
        ns.avg_power_w
    );
    println!(
        "# avg big temp schedutil: {:.2} C (paper: 52.33 C)",
        ss.avg_temp_hot_c
    );
    println!(
        "# avg big temp Next:      {:.2} C (paper: 41.33 C)",
        ns.avg_temp_hot_c
    );
    println!(
        "# power saving: {:.2} %  (paper: 41.88 %)",
        ns.power_saving_vs(&ss)
    );
    println!(
        "# peak big-temp reduction (above 21 C ambient): {:.2} %  (paper: 21.02 % avg-temp)",
        ns.hot_temp_reduction_vs(&ss, 21.0)
    );
    println!(
        "# avg fps schedutil {:.1} / Next {:.1}",
        ss.avg_fps, ns.avg_fps
    );
}
