//! **Fig. 4** — PPDW value trend as FPS, big-CPU peak temperature and
//! power scale, on the Lineage 2 Revolution workload.
//!
//! Like the paper's measurement, the trend comes from *gameplay
//! segments of varying intensity* executed under the stock governor:
//! heavy scenes deliver few FPS at high power and temperature (low
//! PPDW), light scenes deliver 60 FPS while the fixed platform overhead
//! dominates (high PPDW). The red *worst-case* points pin every cluster
//! to its maximum frequency while producing almost no frames — maximum
//! power and peak temperature for the least performance.

use mpsoc::perf::FrameDemand;
use mpsoc::{Soc, SocConfig};
use next_core::ppdw::ppdw;
use simkit::report::Table;
use workload::apps;

const AMBIENT_C: f64 = 21.0;

/// Runs `demand` for `warm_s + measure_s` and returns
/// `(fps, power_w, peak_big_temp_c)` over the measurement window.
fn run_point(soc: &mut Soc, demand: &FrameDemand, warm_s: f64, measure_s: f64) -> (f64, f64, f64) {
    let tick = 0.025;
    for _ in 0..(warm_s / tick) as usize {
        soc.tick(tick, demand);
    }
    let mut fps = 0.0;
    let mut pow = 0.0;
    let mut peak_t: f64 = 0.0;
    let n = (measure_s / tick) as usize;
    for _ in 0..n {
        let out = soc.tick(tick, demand);
        fps += out.fps;
        pow += out.power_w;
        peak_t = peak_t.max(soc.state().temp_hot_c);
    }
    (fps / n as f64, pow / n as f64, peak_t)
}

fn gameplay_demand() -> FrameDemand {
    let app = apps::lineage();
    app.phases()
        .iter()
        .find(|p| p.name == "gameplay")
        .expect("lineage has a gameplay phase")
        .demand
}

fn main() {
    let demand = gameplay_demand();
    let mut table = Table::new(
        "fig4: PPDW vs FPS on Lineage 2 Revolution (worst-case points marked *)",
        &["fps", "power_w", "peak_big_c", "ppdw", "kind"],
    );
    let mut points: Vec<(f64, f64, bool)> = Vec::new();

    // Gameplay segments of varying intensity under the stock governor
    // (content difficulty scaled around the nominal gameplay demand).
    for &intensity in &[3.0f64, 2.4, 2.0, 1.6, 1.3, 1.0, 0.8, 0.6] {
        let mut soc = Soc::new(SocConfig::exynos9810_at_ambient(AMBIENT_C));
        let scaled = demand.scaled(intensity);
        let (fps, pow, peak) = run_point(&mut soc, &scaled, 120.0, 60.0);
        let value = ppdw(fps, pow, peak, AMBIENT_C);
        table.push_row(vec![
            format!("{fps:.1}"),
            format!("{pow:.2}"),
            format!("{peak:.1}"),
            format!("{value:.4}"),
            format!("scene x{intensity:.2}"),
        ]);
        points.push((fps, value, false));
    }

    // Worst-case points: everything pinned at maximum frequency while
    // the content is paced to produce almost no frames (splash screens,
    // loading): FPS ≈ {0, 1, 10} at maximum power and temperature.
    for &paced_fps in &[0.0, 1.0, 10.0] {
        let mut soc = Soc::new(SocConfig::exynos9810_at_ambient(AMBIENT_C));
        for id in soc.dvfs().ids().collect::<Vec<_>>() {
            let top = soc.dvfs().domain(id).table().max().freq_khz;
            soc.dvfs_mut().pin_freq(id, top).expect("OPP valid");
        }
        // Heavy background burn mimics the loading-screen computation.
        let mut d = demand.with_background(2.2e9, 0.8e9, 0.3e9);
        if paced_fps == 0.0 {
            d.frame_cycles = [0.0; 3];
        } else {
            d = d.with_pacing(paced_fps);
        }
        let (fps, pow, peak) = run_point(&mut soc, &d, 120.0, 60.0);
        let value = ppdw(fps, pow, peak, AMBIENT_C);
        table.push_row(vec![
            format!("{fps:.1}"),
            format!("{pow:.2}"),
            format!("{peak:.1}"),
            format!("{value:.4}"),
            "worst*".to_owned(),
        ]);
        points.push((fps, value, true));
    }

    println!("{}", table.render());
    // Shape check mirroring the figure.
    let frontier_max = points
        .iter()
        .filter(|p| !p.2)
        .map(|p| p.1)
        .fold(0.0f64, f64::max);
    let worst_max = points
        .iter()
        .filter(|p| p.2)
        .map(|p| p.1)
        .fold(0.0f64, f64::max);
    println!("# frontier PPDW rises with FPS up to {frontier_max:.4} (paper: up to 0.5316)");
    println!("# worst-case points stay near zero, max {worst_max:.4} (paper: 0.0039-0.0395)");
}
