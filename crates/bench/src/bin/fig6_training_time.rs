//! **Fig. 6** — training time, on-device (online) versus cloud
//! (offline), as the FPS quantisation level increases.
//!
//! The paper reports online training times of 67/75/146/207/312 s and
//! cloud times of 7/10/16/41/73 s for increasing frame-rate levels, with
//! up to 4 s of communication overhead, and picks 30 bins as the best
//! trade-off (≈3 min 27 s of one-time training per application).

use next_core::NextConfig;
use qlearn::federated::CloudModel;
use simkit::experiment::train_next_for_app;
use simkit::{report, sweep};

fn main() {
    let bins_sweep = [1usize, 10, 20, 30, 60];
    let cloud = CloudModel::xeon_e7_8860v3();
    let budget = 1_800.0;

    // The five quantisation levels train independently — run them on
    // all cores and keep the output in sweep order.
    let outcomes = sweep::parallel_map(&bins_sweep, bench::default_workers(), |&bins| {
        let config = NextConfig::paper().with_fps_bins(bins);
        train_next_for_app("facebook", config, bench::TRAIN_SEED, budget)
    });

    let mut xs = Vec::new();
    let mut online = Vec::new();
    let mut cloud_times = Vec::new();
    let mut states = Vec::new();
    for (&bins, out) in bins_sweep.iter().zip(&outcomes) {
        let online_s = out.training_time_s;
        xs.push(bins as f64);
        online.push(online_s);
        cloud_times.push(cloud.cloud_time_s(online_s));
        states.push(out.agent.table().len() as f64);
        eprintln!(
            "# bins {bins}: online {online_s:.0} s (converged: {}), states {}",
            out.converged,
            out.agent.table().len()
        );
    }

    println!(
        "{}",
        report::render_multi_series(
            "fig6: training time vs FPS quantisation (facebook)",
            "fps_bins",
            &xs,
            &[
                ("online_s", online.clone()),
                ("cloud_s", cloud_times.clone()),
                ("q_states", states),
            ],
        )
    );
    println!("# paper online: 67, 75, 146, 207, 312 s; cloud: 7, 10, 16, 41, 73 s");
    println!(
        "# shape: online time grows with quantisation level; cloud is ~{}x",
        cloud.speedup
    );
    println!(
        "# faster plus {} s communication overhead.",
        cloud.comm_overhead_s
    );
    let rising = online.windows(2).filter(|w| w[1] >= w[0]).count();
    println!(
        "# monotone-rising online segments: {rising}/{}",
        online.len() - 1
    );
}
