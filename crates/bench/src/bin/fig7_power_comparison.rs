//! **Fig. 7** — average power consumption per application under
//! `schedutil`, Next and Int. QoS PM.
//!
//! Paper numbers: Next saves 37.05 / 50.68 / 40.95 / 32.98 / 32.11 /
//! 40.6 % versus schedutil on Facebook / Lineage / PubG / Spotify / Web
//! Browser / YouTube; Int. QoS PM (games only) saves 16.31 / 23.84 %.

use governors::{IntQosPm, Schedutil};
use simkit::experiment::evaluate_governor;
use simkit::report::Table;
use workload::apps;

fn main() {
    let mut table = Table::new(
        "fig7: average power (W) per application",
        &["app", "schedutil", "next", "int-qos-pm", "next_saving_%", "intqos_saving_%"],
    );
    let mut next_savings: Vec<f64> = Vec::new();

    for app in bench::PAPER_APPS {
        let plan = bench::paper_plan(app);
        let sched = evaluate_governor(&mut Schedutil::new(), &plan, bench::EVAL_SEED);
        let train = bench::trained_next(app);
        let mut agent = train.agent;
        let next = evaluate_governor(&mut agent, &plan, bench::EVAL_SEED);
        let next_saving = next.summary.power_saving_vs(&sched.summary);
        next_savings.push(next_saving);

        let (qos_cell, qos_saving_cell) = if apps::is_game(app) {
            let qos = evaluate_governor(&mut IntQosPm::new(), &plan, bench::EVAL_SEED);
            (
                format!("{:.2}", qos.summary.avg_power_w),
                format!("{:.1}", qos.summary.power_saving_vs(&sched.summary)),
            )
        } else {
            ("n/a".to_owned(), "n/a".to_owned())
        };

        table.push_row(vec![
            app.to_owned(),
            format!("{:.2}", sched.summary.avg_power_w),
            format!("{:.2}", next.summary.avg_power_w),
            qos_cell,
            format!("{next_saving:.1}"),
            qos_saving_cell,
        ]);
        eprintln!(
            "# {app}: trained {:.0} s (converged: {}), next fps {:.1} vs sched {:.1}",
            train.training_time_s, train.converged, next.summary.avg_fps, sched.summary.avg_fps
        );
    }

    println!("{}", table.render());
    let max = next_savings.iter().copied().fold(0.0f64, f64::max);
    let min = next_savings.iter().copied().fold(f64::INFINITY, f64::min);
    println!("# Next saves {min:.1}-{max:.1} % vs schedutil (paper: 32.11-50.68 %,");
    println!("# \"maximum of 50% power saving\"); Int. QoS PM sits between Next and");
    println!("# schedutil on the two games (paper: 16.31 / 23.84 %).");
}
