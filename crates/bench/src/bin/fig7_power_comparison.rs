//! **Fig. 7** — average power consumption per application under
//! `schedutil`, Next and Int. QoS PM.
//!
//! Paper numbers: Next saves 37.05 / 50.68 / 40.95 / 32.98 / 32.11 /
//! 40.6 % versus schedutil on Facebook / Lineage / PubG / Spotify / Web
//! Browser / YouTube; Int. QoS PM (games only) saves 16.31 / 23.84 %.
//!
//! The whole grid (6 apps × up to 3 governors, plus per-app training)
//! runs in parallel through `simkit::sweep`.

use simkit::report::Table;
use workload::apps;

fn main() {
    let grid = bench::eval_grid(&["schedutil", "next", "intqos"]);

    let mut table = Table::new(
        "fig7: average power (W) per application",
        &[
            "app",
            "schedutil",
            "next",
            "int-qos-pm",
            "next_saving_%",
            "intqos_saving_%",
        ],
    );
    let mut next_savings: Vec<f64> = Vec::new();

    for app in bench::PAPER_APPS {
        let sched = grid.summary(app, "schedutil").expect("schedutil cell ran");
        let next = grid.summary(app, "next").expect("next cell ran");
        let next_saving = next.power_saving_vs(sched);
        next_savings.push(next_saving);

        let (qos_cell, qos_saving_cell) = if apps::is_game(app) {
            let qos = grid.summary(app, "intqos").expect("intqos cell ran");
            (
                format!("{:.2}", qos.avg_power_w),
                format!("{:.1}", qos.power_saving_vs(sched)),
            )
        } else {
            ("n/a".to_owned(), "n/a".to_owned())
        };

        table.push_row(vec![
            app.to_owned(),
            format!("{:.2}", sched.avg_power_w),
            format!("{:.2}", next.avg_power_w),
            qos_cell,
            format!("{next_saving:.1}"),
            qos_saving_cell,
        ]);
        let train = grid.evaluator.telemetry(app).expect("next was trained");
        eprintln!(
            "# {app}: trained {:.0} s (converged: {}), next fps {:.1} vs sched {:.1}",
            train.training_time_s, train.converged, next.avg_fps, sched.avg_fps
        );
    }

    println!("{}", table.render());
    let max = next_savings.iter().copied().fold(0.0f64, f64::max);
    let min = next_savings.iter().copied().fold(f64::INFINITY, f64::min);
    println!("# Next saves {min:.1}-{max:.1} % vs schedutil (paper: 32.11-50.68 %,");
    println!("# \"maximum of 50% power saving\"); Int. QoS PM sits between Next and");
    println!("# schedutil on the two games (paper: 16.31 / 23.84 %).");
}
