//! **Fig. 8** — average peak temperature of the big CPU cluster and of
//! the whole device per application under `schedutil`, Next and
//! Int. QoS PM.
//!
//! Paper numbers: Next reduces the peak temperature by up to 29.16 %
//! (big cluster) and 21.21 % (device); Int. QoS PM only manages up to
//! 22.80 % and 3.51 % respectively. Reductions are computed on the
//! temperature rise above the 21 °C ambient, the physically meaningful
//! quantity.
//!
//! The whole grid (6 apps × up to 3 governors, plus per-app training)
//! runs in parallel through `simkit::sweep`.

use simkit::report::Table;
use workload::apps;

const AMBIENT_C: f64 = 21.0;

fn main() {
    let grid = bench::eval_grid(&["schedutil", "next", "intqos"]);

    let mut table = Table::new(
        "fig8: peak temperature (C) per application, big cluster / device",
        &[
            "app",
            "sched_big",
            "sched_dev",
            "next_big",
            "next_dev",
            "qos_big",
            "qos_dev",
        ],
    );
    let mut best_hot_red = 0.0f64;
    let mut best_dev_red = 0.0f64;
    let mut best_qos_hot_red = 0.0f64;
    // The paper's percentages read like reductions of the absolute
    // reading; track those too for direct comparability.
    let mut best_hot_red_abs = 0.0f64;
    let mut best_dev_red_abs = 0.0f64;

    for app in bench::PAPER_APPS {
        let sched = grid.summary(app, "schedutil").expect("schedutil cell ran");
        let next = grid.summary(app, "next").expect("next cell ran");
        best_hot_red = best_hot_red.max(next.hot_temp_reduction_vs(sched, AMBIENT_C));
        best_dev_red = best_dev_red.max(next.device_temp_reduction_vs(sched, AMBIENT_C));
        best_hot_red_abs =
            best_hot_red_abs.max((1.0 - next.peak_temp_hot_c / sched.peak_temp_hot_c) * 100.0);
        best_dev_red_abs = best_dev_red_abs
            .max((1.0 - next.peak_temp_device_c / sched.peak_temp_device_c) * 100.0);

        let (qb, qd) = if apps::is_game(app) {
            let qos = grid.summary(app, "intqos").expect("intqos cell ran");
            best_qos_hot_red = best_qos_hot_red.max(qos.hot_temp_reduction_vs(sched, AMBIENT_C));
            (
                format!("{:.1}", qos.peak_temp_hot_c),
                format!("{:.1}", qos.peak_temp_device_c),
            )
        } else {
            ("n/a".to_owned(), "n/a".to_owned())
        };

        table.push_row(vec![
            app.to_owned(),
            format!("{:.1}", sched.peak_temp_hot_c),
            format!("{:.1}", sched.peak_temp_device_c),
            format!("{:.1}", next.peak_temp_hot_c),
            format!("{:.1}", next.peak_temp_device_c),
            qb,
            qd,
        ]);
    }

    println!("{}", table.render());
    println!("# Next, reduction of the rise above ambient: big {best_hot_red:.1} %, device {best_dev_red:.1} %.");
    println!(
        "# Next, reduction of the absolute reading: big {best_hot_red_abs:.1} % (paper: 29.16 %),"
    );
    println!("#       device {best_dev_red_abs:.1} % (paper: 21.21 %).");
    println!("# Int. QoS PM max big-cluster reduction (above ambient) {best_qos_hot_red:.1} % (paper: 22.80 %).");
}
