//! `campaign.json` rendering — the campaign document of
//! `next-sim campaign` — plus the JSON interchange encoding of a
//! Q-table the binary codec's size claim is measured against.
//!
//! Schema v7 of the `BENCH.json` family (see
//! [`crate::fleet::parse_document`], which accepts it alongside every
//! earlier version — v7 adds the per-round `table_bytes` working-set
//! ledger to `rounds_log`, a pure addition, so v6 documents parse
//! unchanged). Everything
//! rendered here is a pure function of the [`CampaignReport`] — no
//! wall clock — so a campaign document is **byte-identical** for a
//! fixed config across worker counts, machines, and kill/resume
//! points. Exact-integer fields (byte totals, visit counts) go through
//! [`Json::num_u64`], so counts past 2^53 survive digit for digit.

use qlearn::{QStore, QTable};
use simkit::campaign::{CampaignReport, CohortSummary};

use crate::json::Json;
use crate::perf::SCHEMA_VERSION;

fn cohort_json(cohort: &CohortSummary) -> Json {
    let metrics = cohort
        .metrics
        .iter()
        .map(|m| {
            Json::Obj(vec![
                ("name".into(), Json::str(m.name)),
                ("min".into(), Json::num(m.min)),
                ("max".into(), Json::num(m.max)),
                ("mean".into(), Json::num(m.mean)),
                ("p50".into(), Json::num(m.p50)),
                ("p90".into(), Json::num(m.p90)),
                ("p99".into(), Json::num(m.p99)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("persona".into(), Json::str(&cohort.persona)),
        ("platform".into(), Json::str(&cohort.platform)),
        ("bin".into(), Json::str(&cohort.bin)),
        ("count".into(), Json::num_u64(cohort.count)),
        ("metrics".into(), Json::Arr(metrics)),
    ])
}

/// Renders a finished campaign as a schema-v7 document.
#[must_use]
pub fn campaign_to_json(report: &CampaignReport, mode: &str) -> Json {
    let cfg = &report.config;
    let config = Json::Obj(vec![
        ("devices".into(), Json::num(cfg.devices as f64)),
        ("rounds".into(), Json::num(cfg.rounds as f64)),
        // Seeds are full-range u64s; they travel as strings, the
        // fleet.json convention (predates Json::num_u64 and is frozen).
        ("seed".into(), Json::str(cfg.seed.to_string())),
        ("shard_size".into(), Json::num(cfg.shard_size as f64)),
        (
            "platforms".into(),
            Json::Arr(cfg.platforms.iter().map(Json::str).collect()),
        ),
        (
            "plan".into(),
            Json::Obj(vec![
                ("pickups".into(), Json::num(f64::from(cfg.plan.pickups))),
                ("day_length_s".into(), Json::num(cfg.plan.day_length_s)),
                ("session_scale".into(), Json::num(cfg.plan.session_scale)),
                ("min_session_s".into(), Json::num(cfg.plan.min_session_s)),
            ]),
        ),
        ("gap_tick_s".into(), Json::num(cfg.gap_tick_s)),
        ("train_budget_s".into(), Json::num(cfg.train_budget_s)),
        (
            "battery".into(),
            Json::Obj(vec![
                ("capacity_mah".into(), Json::num(cfg.battery.capacity_mah)),
                ("nominal_v".into(), Json::num(cfg.battery.nominal_v)),
            ]),
        ),
        (
            "link".into(),
            Json::Obj(vec![
                ("uplink_s".into(), Json::num(cfg.link.uplink_s)),
                ("downlink_s".into(), Json::num(cfg.link.downlink_s)),
            ]),
        ),
    ]);
    let rounds = report
        .rounds
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("round".into(), Json::num(r.round as f64)),
                ("uplink_bytes".into(), Json::num_u64(r.uplink_bytes)),
                ("downlink_bytes".into(), Json::num_u64(r.downlink_bytes)),
                ("comm_s".into(), Json::num(r.comm_s)),
                ("states".into(), Json::num_u64(r.states)),
                ("visits".into(), Json::num_u64(r.visits)),
                ("table_bytes".into(), Json::num_u64(r.table_bytes)),
                (
                    "dense_clone_bytes".into(),
                    Json::num_u64(r.dense_clone_bytes),
                ),
            ])
        })
        .collect();
    let cohorts = report.cohorts.iter().map(cohort_json).collect();
    let tables = report
        .tables
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("platform".into(), Json::str(&t.platform)),
                ("app".into(), Json::str(&t.app)),
                ("states".into(), Json::num_u64(t.states)),
                ("visits".into(), Json::num_u64(t.visits)),
                ("bytes".into(), Json::num_u64(t.encoded.len() as u64)),
            ])
        })
        .collect();
    let campaign = Json::Obj(vec![
        ("config".into(), config),
        ("rounds_log".into(), Json::Arr(rounds)),
        ("cohorts".into(), Json::Arr(cohorts)),
        ("tables".into(), Json::Arr(tables)),
        (
            "totals".into(),
            Json::Obj(vec![
                ("device_days".into(), Json::num_u64(report.device_days())),
                (
                    "uplink_bytes".into(),
                    Json::num_u64(report.total_uplink_bytes()),
                ),
                (
                    "downlink_bytes".into(),
                    Json::num_u64(report.total_downlink_bytes()),
                ),
            ]),
        ),
    ]);
    Json::Obj(vec![
        ("schema".into(), Json::num(f64::from(SCHEMA_VERSION))),
        ("harness".into(), Json::str("next-sim campaign")),
        ("mode".into(), Json::str(mode)),
        ("campaign".into(), campaign),
    ])
}

/// The JSON interchange encoding of a Q-table: one self-describing
/// record per *visited* cell — the same information content the binary
/// `NXQT` codec carries, in the shape a generic JSON pipeline would
/// exchange it. This is the honest denominator of the codec's size
/// claim: both encodings list visited cells only, with full-precision
/// values.
#[must_use]
pub fn table_json_cells<S: QStore>(table: &QTable<S>) -> Json {
    let mut cells = Vec::new();
    for state in table.state_keys() {
        let values = table.values(state);
        for (action, &q) in values.iter().enumerate() {
            let visits = table.visits(state, action);
            if visits == 0 {
                continue;
            }
            cells.push(Json::Obj(vec![
                ("state".into(), Json::num_u64(state)),
                ("action".into(), Json::num(action as f64)),
                ("q".into(), Json::num(q)),
                ("visits".into(), Json::num_u64(visits)),
            ]));
        }
    }
    Json::Arr(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::parse_document;
    use qlearn::{encode_table, DenseQTable};
    use simkit::campaign::{run_campaign, CampaignConfig};

    fn tiny_report() -> CampaignReport {
        let mut config = CampaignConfig::quick(4, 2, 77);
        config.shard_size = 3;
        run_campaign(&config, 2)
    }

    #[test]
    fn campaign_document_is_a_render_parse_fixpoint() {
        let report = tiny_report();
        let doc = campaign_to_json(&report, "test");
        let text = doc.render();
        let parsed = parse_document(&text).expect("own rendering parses");
        assert_eq!(parsed.schema, 7);
        let campaign = parsed.campaign.expect("campaign section present");
        assert_eq!(
            parsed.doc.render(),
            text,
            "render ∘ parse must be a fixpoint"
        );
        let config = campaign.get("config").expect("config");
        assert_eq!(config.get("devices").and_then(Json::as_f64), Some(4.0));
        assert_eq!(
            config.get("seed").and_then(Json::as_str),
            Some("77"),
            "seeds travel as strings"
        );
        let rounds = campaign
            .get("rounds_log")
            .and_then(Json::as_array)
            .expect("rounds_log");
        assert_eq!(rounds.len(), 2);
        for round in rounds {
            assert!(round.get("uplink_bytes").and_then(Json::as_u64).unwrap() > 0);
            assert!(round.get("comm_s").and_then(Json::as_f64).unwrap() > 0.0);
            let table_bytes = round.get("table_bytes").and_then(Json::as_u64).unwrap();
            let dense = round
                .get("dense_clone_bytes")
                .and_then(Json::as_u64)
                .unwrap();
            assert!(
                0 < table_bytes && table_bytes < dense,
                "overlay working set ({table_bytes} B) must undercut dense clones ({dense} B)"
            );
        }
        // Cohort counts add up to device-days.
        let cohorts = campaign
            .get("cohorts")
            .and_then(Json::as_array)
            .expect("cohorts");
        let total: u64 = cohorts
            .iter()
            .map(|c| c.get("count").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(total, 8, "4 devices x 2 rounds");
        // Non-empty cohorts carry ordered quantiles.
        for cohort in cohorts {
            if cohort.get("count").and_then(Json::as_u64).unwrap() == 0 {
                continue;
            }
            let metrics = cohort
                .get("metrics")
                .and_then(Json::as_array)
                .expect("metrics");
            assert_eq!(metrics.len(), 4);
            for m in metrics {
                let min = m.get("min").and_then(Json::as_f64).unwrap();
                let p50 = m.get("p50").and_then(Json::as_f64).unwrap();
                let p99 = m.get("p99").and_then(Json::as_f64).unwrap();
                let max = m.get("max").and_then(Json::as_f64).unwrap();
                assert!(min <= p50 && p50 <= p99 && p99 <= max, "{m:?}");
            }
        }
        let tables = campaign
            .get("tables")
            .and_then(Json::as_array)
            .expect("tables");
        assert!(!tables.is_empty());
        for t in tables {
            assert!(t.get("bytes").and_then(Json::as_u64).unwrap() > 0);
        }
    }

    #[test]
    fn pinned_v6_documents_still_parse() {
        // A frozen pre-overlay rounds_log record (no `table_bytes`):
        // v6 documents in the trajectory must keep parsing unchanged.
        let v6 = "{\"schema\":6,\"harness\":\"next-sim campaign\",\"campaign\":{\
                  \"rounds_log\":[{\"round\":0,\"uplink_bytes\":123,\"comm_s\":0.5}]}}";
        let parsed = parse_document(v6).expect("pinned v6 document parses");
        assert_eq!(parsed.schema, 6);
        let rounds = parsed
            .campaign
            .expect("campaign section")
            .get("rounds_log")
            .and_then(Json::as_array)
            .expect("rounds_log")
            .to_vec();
        assert_eq!(
            rounds[0].get("uplink_bytes").and_then(Json::as_u64),
            Some(123)
        );
        assert!(rounds[0].get("table_bytes").is_none());
    }

    /// Builds a populated paper-space-sized table with full-mantissa
    /// values and realistic visit counts: the codec's size claim is
    /// measured on data with no artificial compressibility (every f64
    /// uses its full mantissa, every cell is visited a plausible
    /// handful-to-hundreds of times).
    fn populated_paper_table() -> DenseQTable {
        // The paper's Exynos 9810 space: 12 actions (4 OPPs x 3
        // domains collapsed to the agent's action set is platform
        // specific; 12 is representative), a few thousand visited
        // states.
        let actions = 12;
        let states = 3_000u64;
        let mut table = DenseQTable::dense_for_space(actions, 0.0, states);
        for s in 0..states {
            for a in 0..actions {
                // sin() fills the whole mantissa — nothing about the
                // value pattern favours either encoding.
                let v = (f64::from(u32::try_from(s).expect("small")) * 0.731 + a as f64 * 1.137)
                    .sin()
                    * 8.0;
                // `set` counts one visit per call; vary the count the
                // way visit histograms actually look (many cells a few
                // visits, some cells hundreds).
                let visits = 1 + ((s * 31 + a as u64 * 7) % 40) * ((s % 11) + 1) / 4;
                for _ in 0..visits {
                    table.set(s, a, v);
                }
            }
        }
        table
    }

    #[test]
    fn binary_codec_is_at_least_five_times_smaller_than_json() {
        let table = populated_paper_table();
        let binary = encode_table(&table).len();
        let json = table_json_cells(&table).render().len();
        assert!(binary > 0 && json > 0);
        assert!(
            binary * 5 <= json,
            "NXQT must be at least 5x smaller: binary {binary} B vs JSON {json} B \
             (ratio {:.1}x)",
            json as f64 / binary as f64
        );
    }

    #[test]
    fn json_cells_list_exactly_the_visited_cells() {
        let mut table = DenseQTable::dense_for_space(4, 0.0, 8);
        table.set(2, 1, 0.5);
        table.set(2, 1, 0.75);
        table.set(5, 3, -1.25);
        let cells = table_json_cells(&table);
        let arr = cells.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("state").and_then(Json::as_u64), Some(2));
        assert_eq!(arr[0].get("action").and_then(Json::as_f64), Some(1.0));
        assert_eq!(arr[0].get("q").and_then(Json::as_f64), Some(0.75));
        assert_eq!(arr[0].get("visits").and_then(Json::as_u64), Some(2));
        assert_eq!(arr[1].get("state").and_then(Json::as_u64), Some(5));
        assert_eq!(arr[1].get("visits").and_then(Json::as_u64), Some(1));
    }
}
