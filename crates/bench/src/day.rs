//! `day.json` rendering — the battery-day document of `next-sim day`.
//!
//! One document carries every day cell of a run (persona × seed ×
//! governor on one platform), each with its per-session log, plus a
//! `deltas` section comparing each governor's battery day against the
//! `schedutil` run of the *identical* plan (falling back to the first
//! run's governor when `schedutil` was not in the grid) — the
//! horizon-level comparison the paper's §I premise actually calls for.
//!
//! Schema v4 of the `BENCH.json` family (see
//! [`crate::fleet::parse_document`], which accepts it). Everything
//! rendered here is a pure function of the [`DayReport`]s — no wall
//! clock — so a day document is **byte-identical** for fixed inputs
//! across worker counts and machines.

use simkit::day::DayReport;

use crate::json::Json;
use crate::perf::SCHEMA_VERSION;

/// Governor preferred as the comparison baseline in the `deltas`
/// section. When the grid did not run it, the first run's governor
/// serves as baseline instead, so a multi-governor day always gets its
/// comparison rows.
pub const BASELINE_GOVERNOR: &str = "schedutil";

/// The baseline governor of a report set: [`BASELINE_GOVERNOR`] when
/// present, otherwise the first run's governor.
fn baseline_of(reports: &[DayReport]) -> Option<&str> {
    if reports.iter().any(|r| r.governor == BASELINE_GOVERNOR) {
        return Some(BASELINE_GOVERNOR);
    }
    reports.first().map(|r| r.governor.as_str())
}

fn session_json(report: &DayReport) -> Json {
    Json::Arr(
        report
            .sessions
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("pickup".into(), Json::num(s.pickup as f64)),
                    ("app".into(), Json::str(&s.app)),
                    ("start_s".into(), Json::num(s.start_s)),
                    ("duration_s".into(), Json::num(s.duration_s)),
                    ("avg_fps".into(), Json::num(s.summary.avg_fps)),
                    ("fps_std".into(), Json::num(s.summary.fps_std)),
                    ("avg_power_w".into(), Json::num(s.summary.avg_power_w)),
                    ("energy_j".into(), Json::num(s.summary.energy_j)),
                    ("ppdw".into(), Json::num(s.ppdw)),
                    (
                        "peak_temp_hot_c".into(),
                        Json::num(s.summary.peak_temp_hot_c),
                    ),
                    ("start_temp_hot_c".into(), Json::num(s.start_temp_hot_c)),
                ])
            })
            .collect(),
    )
}

fn run_json(report: &DayReport) -> Json {
    Json::Obj(vec![
        ("persona".into(), Json::str(&report.plan.persona)),
        // Seeds are full-range u64s; JSON numbers (f64) round above
        // 2^53, so they travel as strings (the fleet convention).
        ("seed".into(), Json::str(report.plan.seed.to_string())),
        ("governor".into(), Json::str(&report.governor)),
        ("platform".into(), Json::str(&report.platform)),
        ("pickups".into(), Json::num(report.pickup_count() as f64)),
        ("day_length_s".into(), Json::num(report.plan.day_length_s)),
        ("screen_on_s".into(), Json::num(report.screen_on_s)),
        ("screen_off_s".into(), Json::num(report.screen_off_s)),
        ("avg_fps".into(), Json::num(report.avg_fps)),
        ("avg_power_w".into(), Json::num(report.avg_power_w)),
        ("peak_temp_hot_c".into(), Json::num(report.peak_temp_hot_c)),
        (
            "energy_screen_on_j".into(),
            Json::num(report.energy_screen_on_j),
        ),
        ("energy_gap_j".into(), Json::num(report.energy_gap_j)),
        ("energy_total_j".into(), Json::num(report.energy_total_j())),
        (
            "battery_drain_pct".into(),
            Json::num(report.battery_drain_pct),
        ),
        ("charges_used".into(), Json::num(report.charges_used)),
        ("trainings".into(), Json::num(f64::from(report.trainings))),
        ("sessions".into(), session_json(report)),
    ])
}

/// The `deltas` rows: every non-baseline run compared against the
/// baseline-governor run (see [`baseline_of`]) of the same
/// (persona, seed) day.
fn delta_json(reports: &[DayReport]) -> Json {
    let Some(baseline) = baseline_of(reports) else {
        return Json::Arr(Vec::new());
    };
    let mut rows = Vec::new();
    for report in reports {
        if report.governor == baseline {
            continue;
        }
        let Some(base) = reports.iter().find(|r| {
            r.governor == baseline
                && r.plan.persona == report.plan.persona
                && r.plan.seed == report.plan.seed
        }) else {
            continue;
        };
        let saving_pct = if base.energy_total_j() > 0.0 {
            (1.0 - report.energy_total_j() / base.energy_total_j()) * 100.0
        } else {
            0.0
        };
        rows.push(Json::Obj(vec![
            ("persona".into(), Json::str(&report.plan.persona)),
            ("seed".into(), Json::str(report.plan.seed.to_string())),
            ("governor".into(), Json::str(&report.governor)),
            ("vs".into(), Json::str(baseline)),
            (
                "energy_delta_j".into(),
                Json::num(report.energy_total_j() - base.energy_total_j()),
            ),
            // Derived from the *unclamped* charges, not the saturating
            // battery_drain_pct: a full day can exceed one pack under
            // both governors, which would mask the comparison as
            // 100 − 100 = 0.
            (
                "battery_drain_delta_pct".into(),
                Json::num((report.charges_used - base.charges_used) * 100.0),
            ),
            ("energy_saving_pct".into(), Json::num(saving_pct)),
            (
                "avg_fps_delta".into(),
                Json::num(report.avg_fps - base.avg_fps),
            ),
        ]));
    }
    Json::Arr(rows)
}

/// Renders a set of day cells (one platform) as a schema-v4 document.
#[must_use]
pub fn days_to_json(reports: &[DayReport], mode: &str) -> Json {
    let platform = reports
        .first()
        .map_or("unknown", |r| r.platform.as_str())
        .to_owned();
    let day = Json::Obj(vec![
        (
            "runs".into(),
            Json::Arr(reports.iter().map(run_json).collect()),
        ),
        ("deltas".into(), delta_json(reports)),
    ]);
    Json::Obj(vec![
        ("schema".into(), Json::num(f64::from(SCHEMA_VERSION))),
        ("harness".into(), Json::str("next-sim day")),
        ("mode".into(), Json::str(mode)),
        ("platform".into(), Json::str(&platform)),
        ("day".into(), day),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::parse_document;
    use simkit::day::run_days;
    use simkit::PlatformPreset;
    use workload::{DayPlan, DayPlanConfig, Persona};

    fn tiny_reports() -> Vec<DayReport> {
        let cfg = DayPlanConfig {
            pickups: 3,
            day_length_s: 300.0,
            session_scale: 0.1,
            min_session_s: 15.0,
        };
        let plans = vec![DayPlan::generate(&Persona::commuter(), &cfg, 5)];
        run_days(
            &plans,
            &["next".to_owned(), "schedutil".to_owned()],
            &PlatformPreset::default(),
            1.0,
            30.0,
            2,
        )
    }

    #[test]
    fn day_document_is_a_render_parse_fixpoint() {
        let reports = tiny_reports();
        let text = days_to_json(&reports, "test").render();
        let parsed = parse_document(&text).expect("own rendering parses");
        assert_eq!(parsed.schema, crate::perf::SCHEMA_VERSION);
        let day = parsed.day.expect("day section present");
        let runs = day.get("runs").and_then(Json::as_array).expect("runs");
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("governor").and_then(Json::as_str), Some("next"));
        assert_eq!(runs[0].get("pickups").and_then(Json::as_f64), Some(3.0));
        let sessions = runs[0]
            .get("sessions")
            .and_then(Json::as_array)
            .expect("per-session log");
        assert_eq!(sessions.len(), 3);
        assert!(sessions[0].get("ppdw").and_then(Json::as_f64).unwrap() > 0.0);
        assert_eq!(
            parsed.doc.render(),
            text,
            "render ∘ parse must be a fixpoint"
        );
    }

    #[test]
    fn deltas_compare_next_against_schedutil_on_the_same_day() {
        let reports = tiny_reports();
        let doc = days_to_json(&reports, "test");
        let deltas = doc
            .get("day")
            .and_then(|d| d.get("deltas"))
            .and_then(Json::as_array)
            .expect("deltas");
        assert_eq!(deltas.len(), 1, "one non-baseline governor");
        let row = &deltas[0];
        assert_eq!(row.get("governor").and_then(Json::as_str), Some("next"));
        assert_eq!(row.get("vs").and_then(Json::as_str), Some("schedutil"));
        let delta = row
            .get("energy_delta_j")
            .and_then(Json::as_f64)
            .expect("numeric energy delta");
        assert!(delta.abs() > 1e-9, "the battery-day delta must be non-zero");
    }

    #[test]
    fn drain_delta_survives_days_that_exceed_one_pack() {
        // Both governors drain past 100 % (battery_drain_pct saturates
        // for each), so the delta must come from the unclamped charges
        // or the headline comparison would read 0.
        let plan = DayPlan {
            persona: "gamer".to_owned(),
            seed: 1,
            config: DayPlanConfig {
                pickups: 1,
                day_length_s: 57_600.0,
                session_scale: 1.0,
                min_session_s: 10.0,
            },
            day_length_s: 57_600.0,
            pickups: Vec::new(),
            tail_gap_s: 57_600.0,
        };
        let mk = |governor: &str, charges: f64| DayReport {
            plan: plan.clone(),
            governor: governor.to_owned(),
            platform: "exynos9810".to_owned(),
            sessions: Vec::new(),
            screen_on_s: 10_000.0,
            screen_off_s: 47_600.0,
            energy_screen_on_j: charges * 55_440.0,
            energy_gap_j: 0.0,
            avg_fps: 40.0,
            avg_power_w: 3.0,
            peak_temp_hot_c: 50.0,
            trainings: 0,
            battery_drain_pct: 100.0,
            charges_used: charges,
        };
        let reports = vec![mk("next", 1.2), mk("schedutil", 1.5)];
        let doc = days_to_json(&reports, "test");
        let deltas = doc
            .get("day")
            .and_then(|d| d.get("deltas"))
            .and_then(Json::as_array)
            .expect("deltas");
        let drain_delta = deltas[0]
            .get("battery_drain_delta_pct")
            .and_then(Json::as_f64)
            .expect("numeric drain delta");
        assert!(
            (drain_delta - -30.0).abs() < 1e-9,
            "unclamped delta expected -30 points, got {drain_delta}"
        );
    }

    #[test]
    fn deltas_fall_back_to_the_first_governor_without_schedutil() {
        // A grid without schedutil must still get its comparison rows,
        // baselined on the grid's first governor.
        let cfg = DayPlanConfig {
            pickups: 2,
            day_length_s: 200.0,
            session_scale: 0.1,
            min_session_s: 15.0,
        };
        let plans = vec![DayPlan::generate(&Persona::reader(), &cfg, 6)];
        let reports = run_days(
            &plans,
            &["powersave".to_owned(), "performance".to_owned()],
            &PlatformPreset::default(),
            1.0,
            30.0,
            2,
        );
        let doc = days_to_json(&reports, "test");
        let deltas = doc
            .get("day")
            .and_then(|d| d.get("deltas"))
            .and_then(Json::as_array)
            .expect("deltas");
        assert_eq!(deltas.len(), 1, "one non-baseline governor");
        assert_eq!(
            deltas[0].get("governor").and_then(Json::as_str),
            Some("performance")
        );
        assert_eq!(
            deltas[0].get("vs").and_then(Json::as_str),
            Some("powersave"),
            "first governor becomes the baseline"
        );
    }

    #[test]
    fn day_seeds_survive_the_artifact_exactly() {
        let reports = tiny_reports();
        let doc = days_to_json(&reports, "test");
        let runs = doc
            .get("day")
            .and_then(|d| d.get("runs"))
            .and_then(Json::as_array)
            .expect("runs");
        for (run, report) in runs.iter().zip(&reports) {
            let seed: u64 = run
                .get("seed")
                .and_then(Json::as_str)
                .expect("seed string")
                .parse()
                .expect("decimal u64");
            assert_eq!(seed, report.plan.seed);
        }
    }
}
