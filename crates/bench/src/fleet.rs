//! `fleet.json` rendering and schema-aware document parsing.
//!
//! `next-sim fleet` writes one machine-readable document per fleet
//! simulation. Schema v2 extended the v1 `BENCH.json` family with an
//! optional top-level `fleet` section; schema v3 adds platform
//! information for mixed-platform fleets. A fleet on the historical
//! homogeneous Exynos 9810 deployment renders the **unchanged v2
//! document** — byte-identical to pre-platform artifacts — while any
//! other platform mix renders v3 with `platforms`, per-device
//! `platform` tags and a per-platform `tables` breakdown. v1/v2
//! documents still parse through [`parse_document`], so trajectory
//! snapshots and CI baselines from earlier PRs keep loading.
//!
//! Everything rendered here is a pure function of the
//! [`FleetReport`] — no wall-clock readings — so a fleet document is
//! **byte-identical** for a fixed config across worker counts and
//! machines. Round timing is the modeled kind: slowest device's
//! simulated training time plus the configured up-/down-link
//! latencies.

use simkit::fleet::FleetReport;

use crate::json::Json;

/// Schema version of mixed-platform fleet documents. Pinned: the fleet
/// artifact gained nothing in later family versions, so its bytes stay
/// stable while the family moves on (v4 added the `day` documents).
const FLEET_SCHEMA: u32 = 3;

/// Renders a fleet simulation as a schema-v2 (homogeneous Exynos 9810
/// fleet, historical byte-identical shape) or schema-v3 (any other
/// platform mix) document.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn fleet_to_json(report: &FleetReport, mode: &str) -> Json {
    let cfg = &report.config;
    let default_platform = cfg.is_default_platform();
    let devices = report
        .devices
        .iter()
        .map(|d| {
            let bin = &simkit::fleet::SOC_BINS[d.bin];
            let mut fields = vec![
                ("id".into(), Json::num(d.id as f64)),
                ("bin".into(), Json::str(bin.name)),
                ("ambient_c".into(), Json::num(bin.ambient_c)),
                ("power_scale".into(), Json::num(bin.power_scale)),
                // Seeds are full-range u64s; a JSON number (f64) would
                // round anything above 2^53, so they travel as strings.
                ("user_seed".into(), Json::str(d.user_seed.to_string())),
            ];
            if !default_platform {
                fields.insert(
                    2,
                    ("platform".into(), Json::str(&cfg.platforms[d.platform])),
                );
            }
            Json::Obj(fields)
        })
        .collect();
    let rounds = report
        .rounds
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("round".into(), Json::num(r.round as f64)),
                ("states".into(), Json::num(r.states as f64)),
                ("visits".into(), Json::num(r.visits as f64)),
                (
                    "converged_devices".into(),
                    Json::num(r.converged_devices as f64),
                ),
                ("local_train_s".into(), Json::num(r.local_train_s)),
                ("comm_s".into(), Json::num(r.comm_s)),
                ("round_time_s".into(), Json::num(r.round_time_s)),
                (
                    "eval".into(),
                    Json::Obj(vec![
                        ("avg_fps".into(), Json::num(r.eval.avg_fps)),
                        ("fps_std".into(), Json::num(r.eval.fps_std)),
                        ("avg_power_w".into(), Json::num(r.eval.avg_power_w)),
                        ("ppdw".into(), Json::num(r.eval.ppdw)),
                    ]),
                ),
            ])
        })
        .collect();
    let mut fleet_fields = vec![
        ("app".into(), Json::str(&cfg.app)),
        ("devices".into(), Json::num(cfg.devices as f64)),
        ("rounds".into(), Json::num(cfg.rounds as f64)),
        // String for the same u64-exactness reason as user_seed.
        ("seed".into(), Json::str(cfg.seed.to_string())),
        ("round_budget_s".into(), Json::num(cfg.round_budget_s)),
        ("uplink_s".into(), Json::num(cfg.link.uplink_s)),
        ("downlink_s".into(), Json::num(cfg.link.downlink_s)),
        (
            "eval".into(),
            Json::Obj(vec![
                (
                    "seeds".into(),
                    Json::Arr(
                        cfg.eval_seeds
                            .iter()
                            .map(|&s| Json::num(s as f64))
                            .collect(),
                    ),
                ),
                ("duration_s".into(), Json::num(cfg.eval_duration_s)),
            ]),
        ),
        ("device_profiles".into(), Json::Arr(devices)),
        ("rounds_log".into(), Json::Arr(rounds)),
    ];
    if !default_platform {
        fleet_fields.insert(
            1,
            (
                "platforms".into(),
                Json::Arr(cfg.platforms.iter().map(Json::str).collect()),
            ),
        );
    }
    let mut final_fields = vec![
        ("states".into(), Json::num(report.total_states() as f64)),
        ("visits".into(), Json::num(report.total_visits() as f64)),
    ];
    if !default_platform {
        final_fields.push((
            "tables".into(),
            Json::Arr(
                report
                    .tables
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("platform".into(), Json::str(&t.platform)),
                            ("actions".into(), Json::num(t.table.n_actions() as f64)),
                            ("states".into(), Json::num(t.table.len() as f64)),
                            ("visits".into(), Json::num(t.table.total_visits() as f64)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    fleet_fields.push(("final".into(), Json::Obj(final_fields)));
    let fleet = Json::Obj(fleet_fields);
    // The historical homogeneous-9810 artifact stays schema v2,
    // byte-identical to pre-platform releases.
    let schema = if default_platform { 2 } else { FLEET_SCHEMA };
    Json::Obj(vec![
        ("schema".into(), Json::num(f64::from(schema))),
        ("harness".into(), Json::str("next-sim fleet")),
        ("mode".into(), Json::str(mode)),
        ("fleet".into(), fleet),
    ])
}

/// A parsed `BENCH.json`-family document: schema v1 (perf only), v2
/// (perf and/or fleet sections), v3 (platform-tagged), v4 (day
/// documents), v5 (batched tick-kernel probe) or v6 (campaign
/// documents).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Declared schema version (1 through 7).
    pub schema: u32,
    /// The `fleet` section, when present (v2 and later).
    pub fleet: Option<Json>,
    /// The `day` section, when present (v4 and later).
    pub day: Option<Json>,
    /// The `batch` section, when present (v5 and later).
    pub batch: Option<Json>,
    /// The `campaign` section, when present (v6 and later).
    pub campaign: Option<Json>,
    /// The whole document tree.
    pub doc: Json,
}

/// Parses and validates a `BENCH.json` / `fleet.json` / `day.json` /
/// `campaign.json` document: accepts schema v1 (which must not carry a
/// `fleet` section), v2/v3 (which may), v4 (which may also carry a
/// `day` section), v5 (which may also carry the `batch` kernel probe),
/// v6 (which may also carry a `campaign` section), and v7 (which adds
/// the overlay probe and per-round `table_bytes` — pure additions, so
/// v6 documents parse unchanged).
///
/// # Errors
///
/// Returns a human-readable description on malformed JSON, a missing
/// or unsupported `schema` field, or a section a document of that
/// schema version cannot carry.
pub fn parse_document(text: &str) -> Result<BenchDoc, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_f64)
        .ok_or("missing numeric 'schema' field")?;
    if schema.fract() != 0.0 || !(1.0..=7.0).contains(&schema) {
        return Err(format!("unsupported schema version {schema}"));
    }
    let schema = schema as u32;
    let fleet = doc.get("fleet").cloned();
    if schema < 2 && fleet.is_some() {
        return Err("schema v1 documents cannot carry a 'fleet' section".to_owned());
    }
    let day = doc.get("day").cloned();
    if schema < 4 && day.is_some() {
        return Err(format!(
            "schema v{schema} documents cannot carry a 'day' section"
        ));
    }
    let batch = doc.get("batch").cloned();
    if schema < 5 && batch.is_some() {
        return Err(format!(
            "schema v{schema} documents cannot carry a 'batch' section"
        ));
    }
    let campaign = doc.get("campaign").cloned();
    if schema < 6 && campaign.is_some() {
        return Err(format!(
            "schema v{schema} documents cannot carry a 'campaign' section"
        ));
    }
    Ok(BenchDoc {
        schema,
        fleet,
        day,
        batch,
        campaign,
        doc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::fleet::{run_fleet, FleetConfig};

    fn tiny_report() -> FleetReport {
        let config = FleetConfig {
            round_budget_s: 30.0,
            eval_seeds: vec![9_001],
            eval_duration_s: 15.0,
            ..FleetConfig::new("facebook", 2, 1, 11)
        };
        run_fleet(&config, 2)
    }

    #[test]
    fn v2_fleet_document_is_a_render_parse_fixpoint() {
        let doc = fleet_to_json(&tiny_report(), "test");
        let text = doc.render();
        let parsed = parse_document(&text).expect("own rendering parses");
        assert_eq!(parsed.schema, 2);
        let fleet = parsed.fleet.expect("fleet section present");
        assert_eq!(fleet.get("app").and_then(Json::as_str), Some("facebook"));
        assert_eq!(
            parsed.doc.render(),
            text,
            "render ∘ parse must be a fixpoint"
        );
        // Round log carries the held-out quality metrics.
        let rounds = fleet
            .get("rounds_log")
            .and_then(Json::as_array)
            .expect("rounds_log");
        assert_eq!(rounds.len(), 1);
        let eval = rounds[0].get("eval").expect("eval");
        assert!(eval.get("ppdw").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(eval.get("avg_power_w").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn seeds_survive_the_artifact_exactly() {
        // Seeds are full-range u64s — a JSON number would round them
        // above 2^53, so they are rendered as strings and must
        // round-trip digit for digit.
        let report = tiny_report();
        let doc = fleet_to_json(&report, "test");
        let fleet = doc.get("fleet").expect("fleet");
        assert_eq!(
            fleet.get("seed").and_then(Json::as_str),
            Some(report.config.seed.to_string().as_str())
        );
        let profiles = fleet
            .get("device_profiles")
            .and_then(Json::as_array)
            .expect("profiles");
        for (profile, device) in profiles.iter().zip(&report.devices) {
            let seed: u64 = profile
                .get("user_seed")
                .and_then(Json::as_str)
                .expect("seed string")
                .parse()
                .expect("decimal u64");
            assert_eq!(seed, device.user_seed, "seed must not lose precision");
        }
    }

    #[test]
    fn v1_documents_still_parse_as_a_fixpoint() {
        // A v1-era BENCH.json shape (perf harness, no fleet section).
        let v1 = Json::Obj(vec![
            ("schema".into(), Json::num(1.0)),
            ("harness".into(), Json::str("next-sim perf")),
            ("mode".into(), Json::str("quick")),
            (
                "totals".into(),
                Json::Obj(vec![("ticks_per_sec".into(), Json::num(160_000.0))]),
            ),
        ]);
        let text = v1.render();
        let parsed = parse_document(&text).expect("v1 parses");
        assert_eq!(parsed.schema, 1);
        assert_eq!(parsed.fleet, None);
        assert_eq!(parsed.doc.render(), text, "v1 fixpoint");
    }

    #[test]
    fn parser_rejects_bad_documents() {
        assert!(parse_document("not json").is_err());
        assert!(
            parse_document("{\"mode\":\"quick\"}").is_err(),
            "missing schema"
        );
        assert!(
            parse_document("{\"schema\":8}").is_err(),
            "future schema rejected"
        );
        let v7 = parse_document("{\"schema\":7,\"campaign\":{}}").expect("v7 document");
        assert_eq!(v7.schema, 7);
        assert!(
            parse_document("{\"schema\":1,\"fleet\":{}}").is_err(),
            "v1 cannot carry a fleet section"
        );
        assert!(parse_document("{\"schema\":2,\"fleet\":{}}").is_ok());
        assert!(
            parse_document("{\"schema\":3,\"day\":{}}").is_err(),
            "day sections need schema v4"
        );
        let v4 = parse_document("{\"schema\":4,\"day\":{}}").expect("v4 day document");
        assert_eq!(v4.schema, 4);
        assert!(v4.day.is_some());
        assert!(
            parse_document("{\"schema\":4,\"batch\":{}}").is_err(),
            "batch sections need schema v5"
        );
        let v5 = parse_document("{\"schema\":5,\"batch\":{}}").expect("v5 batch document");
        assert_eq!(v5.schema, 5);
        assert!(v5.batch.is_some());
        assert!(
            parse_document("{\"schema\":5,\"campaign\":{}}").is_err(),
            "campaign sections need schema v6"
        );
        let v6 = parse_document("{\"schema\":6,\"campaign\":{}}").expect("v6 campaign document");
        assert_eq!(v6.schema, 6);
        assert!(v6.campaign.is_some());
    }
}
