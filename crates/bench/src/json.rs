//! Minimal JSON tree, emitter and parser (no external dependencies).
//!
//! The perf harness writes `BENCH.json` and the CI gate reads the
//! checked-in baseline back; the build container has no crates.io
//! access, so this module implements the small JSON subset both need:
//! objects, arrays, strings, finite numbers, booleans and null.
//!
//! Emission always goes through [`Json::render`], so an artifact built
//! as a [`Json`] tree is valid JSON by construction (the tests parse
//! rendered output back and require a fixpoint).

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so rendered
/// artifacts are deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/infinity).
    Num(f64),
    /// An unsigned integer that is *not* exactly representable as an
    /// `f64` (above 2^53 and off the even grid). Kept as a separate
    /// variant so device/state totals at 10⁶-campaign scale round-trip
    /// exactly instead of being rounded at an `as f64` cast. Construct
    /// via [`Json::num_u64`], which picks `Num` whenever the value is
    /// exactly representable — so existing artifacts never change.
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error with byte offset returned by [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem in the input.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor: a number.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not finite (JSON cannot represent it).
    #[must_use]
    pub fn num(n: f64) -> Json {
        assert!(n.is_finite(), "JSON numbers must be finite, got {n}");
        Json::Num(n)
    }

    /// Convenience constructor: a string.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor: an unsigned integer count.
    ///
    /// Values that survive an `f64` round-trip exactly become
    /// [`Json::Num`] (identical bytes to every pre-existing artifact);
    /// only values that `f64` would round — above 2^53 and between the
    /// representable even multiples — get the lossless [`Json::Int`]
    /// variant.
    #[must_use]
    pub fn num_u64(v: u64) -> Json {
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        {
            let f = v as f64;
            // `u64::MAX as f64` rounds up to 2^64; the float→int cast
            // back would *saturate* to u64::MAX and fake a match, so
            // values that round to 2^64 are excluded before the cast.
            if f < u64::MAX as f64 && f as u64 == v {
                Json::Num(f)
            } else {
                Json::Int(v)
            }
        }
    }

    /// Member of an object by key (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one. [`Json::Int`]
    /// values above 2^53 are rounded to the nearest `f64`; use
    /// [`Json::as_u64`] when exactness matters.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, if it is one: either an
    /// [`Json::Int`], or a [`Json::Num`] holding a non-negative value
    /// with no fractional part.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        #[allow(clippy::cast_precision_loss)]
        match self {
            Json::Int(v) => Some(*v),
            // `u64::MAX as f64` rounds up to 2^64, which does not fit;
            // the strict `<` keeps the cast in range.
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON (no insignificant whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                debug_assert!(n.is_finite());
                // Integral values print without a fraction; everything
                // else uses shortest-roundtrip f64 formatting.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{n:.0}");
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value plus trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                reason: "trailing data".to_owned(),
            });
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(pos: usize, reason: &str) -> JsonError {
    JsonError {
        offset: pos,
        reason: reason.to_owned(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == what {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", what as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut pure_digits = *pos < bytes.len() && bytes[start] != b'-';
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        if !bytes[*pos].is_ascii_digit() {
            pure_digits = false;
        }
        *pos += 1;
    }
    // qlint::allow(PN01, reason = "the loop above admits only ASCII number bytes into this span")
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
    // An unsigned integer literal that f64 would round keeps its exact
    // value via the Int variant (mirrors Json::num_u64, so
    // render∘parse stays a fixpoint). Everything else — fractions,
    // exponents, negatives, and integers f64 represents exactly —
    // parses as before.
    if pure_digits {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::num_u64(v));
        }
    }
    let n: f64 = text.parse().map_err(|_| err(start, "bad number"))?;
    if !n.is_finite() {
        return Err(err(start, "non-finite number"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not paired up; reject them
                        // rather than emit garbage.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "surrogate \\u escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // byte stream is valid UTF-8).
                // qlint::allow(PN01, reason = "bytes came from a &str and pos sits on a scalar boundary, so the tail is valid UTF-8")
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("input was a str");
                // qlint::allow(PN01, reason = "the Some(_) match arm guarantees at least one byte remains")
                let c = rest.chars().next().expect("non-empty");
                if (c as u32) < 0x20 {
                    return Err(err(*pos, "raw control character in string"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_fixpoint() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::num(1.0)),
            ("name".into(), Json::str("perf \"smoke\"\nline2")),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "cells".into(),
                Json::Arr(vec![
                    Json::num(1200.0),
                    Json::num(0.025),
                    Json::num(-3.5e-7),
                ]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("own rendering parses");
        assert_eq!(back, doc);
        assert_eq!(back.render(), text, "render∘parse must be a fixpoint");
    }

    #[test]
    fn parses_pretty_printed_input() {
        let text = r#"
        {
            "min_ticks_per_sec": 50000.5,
            "note": "baseline",
            "tags": [ "ci", "perf" ]
        }
        "#;
        let doc = Json::parse(text).expect("whitespace tolerated");
        assert_eq!(
            doc.get("min_ticks_per_sec").and_then(Json::as_f64),
            Some(50_000.5)
        );
        assert_eq!(
            doc.get("tags").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::num(1200.0).render(), "1200");
        assert_eq!(Json::num(0.5).render(), "0.5");
        assert_eq!(Json::num(-7.0).render(), "-7");
    }

    #[test]
    fn large_integer_counts_roundtrip_exactly() {
        // 2^53 is the last contiguous f64 integer; 2^53 + 1 is the
        // first count an `as f64` cast silently rounds. Campaign
        // totals (visits across 10⁶ device-days) live beyond it.
        const EXACT: u64 = 1 << 53;
        for v in [EXACT + 1, EXACT + 123_457, u64::MAX - 1, u64::MAX] {
            let json = Json::num_u64(v);
            assert_eq!(json, Json::Int(v), "{v} is not f64-exact");
            let text = json.render();
            assert_eq!(text, v.to_string(), "raw digits, no rounding");
            let back = Json::parse(&text).expect("own rendering parses");
            assert_eq!(back.as_u64(), Some(v), "{v} must survive the trip");
            assert_eq!(back.render(), text, "fixpoint at {v}");
        }
        // Exactly representable values keep the historical Num form —
        // byte-for-byte identical artifacts.
        for v in [0u64, 1, 1_000_000, EXACT, EXACT + 2] {
            #[allow(clippy::cast_precision_loss)]
            let expected = Json::Num(v as f64);
            assert_eq!(Json::num_u64(v), expected);
            assert_eq!(Json::num_u64(v).as_u64(), Some(v));
        }
        // Parser side: a literal beyond 2^53 comes back exact too.
        let doc = Json::parse("{\"total_visits\":9007199254740993}").unwrap();
        assert_eq!(
            doc.get("total_visits").and_then(Json::as_u64),
            Some(9_007_199_254_740_993)
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "tab\there \\ \"quoted\" ctrl:\u{1} nl\n";
        let rendered = Json::str(s).render();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::str(s));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Json::parse("\"A\\u00e9\"").unwrap(), Json::str("A\u{e9}"));
        assert_eq!(
            Json::parse("\"caf\u{e9}\"").unwrap(),
            Json::str("caf\u{e9}")
        );
        assert!(
            Json::parse("\"\\ud800\"").is_err(),
            "lone surrogate rejected"
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"open",
            "{} extra",
            "[1]]",
        ] {
            assert!(Json::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_numbers_rejected_at_construction() {
        let _ = Json::num(f64::NAN);
    }
}
