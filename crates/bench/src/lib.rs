//! Shared protocol for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the index). They share the evaluation
//! protocol of §V: Next is trained once per application on a dedicated
//! training device, switched to greedy inference, and then measured on
//! sessions seeded identically across governors at 21 °C ambient.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use next_core::{NextAgent, NextConfig};
use simkit::experiment::{train_next_for_app, TrainOutcome};
use workload::apps;
use workload::SessionPlan;

/// Seed used for every measured session, so all governors see the same
/// user behaviour.
pub const EVAL_SEED: u64 = 1000;

/// Seed used for training sessions.
pub const TRAIN_SEED: u64 = 7;

/// The six applications of Figs. 7 and 8, in the paper's order.
pub const PAPER_APPS: [&str; 6] =
    ["facebook", "lineage", "pubg", "spotify", "web-browser", "youtube"];

/// Training budget per application, simulated seconds. Games explore a
/// much larger state region (FPS spans the whole 0–60 range during
/// gameplay), so they get a larger budget.
#[must_use]
pub fn train_budget_s(app: &str) -> f64 {
    if apps::is_game(app) {
        1_200.0
    } else {
        600.0
    }
}

/// Trains a fresh Next agent on `app` with the standard protocol and
/// returns it in greedy-inference mode together with the training
/// telemetry.
#[must_use]
pub fn trained_next(app: &str) -> TrainOutcome {
    train_next_for_app(app, NextConfig::paper(), TRAIN_SEED, train_budget_s(app))
}

/// Trains a fresh Next agent on an arbitrary session plan (used for the
/// mixed home→Facebook→Spotify session of Figs. 1 and 3).
#[must_use]
pub fn trained_next_on_plan(plan: &SessionPlan, budget_s: f64) -> NextAgent {
    use simkit::Engine;
    let engine = Engine::new();
    let mut agent = NextAgent::new(NextConfig::paper());
    let mut soc = mpsoc::Soc::new(mpsoc::SocConfig::exynos9810());
    let mut spent = 0.0;
    let mut round = 0u64;
    while spent < budget_s && !agent.is_converged() {
        let mut session =
            workload::SessionSim::new(plan.clone(), TRAIN_SEED.wrapping_add(round));
        agent.start_session();
        let chunk = plan.total_duration_s();
        engine.run(&mut soc, &mut agent, &mut session, chunk);
        spent += chunk;
        round += 1;
    }
    agent.set_training(false);
    agent
}

/// The per-app session plan of §V (games 5 min, other apps 2.5 min).
#[must_use]
pub fn paper_plan(app: &str) -> SessionPlan {
    SessionPlan::single(app, SessionPlan::paper_session_length_s(app))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_follow_app_class() {
        assert!(train_budget_s("pubg") > train_budget_s("facebook"));
    }

    #[test]
    fn paper_apps_all_resolve() {
        for app in PAPER_APPS {
            assert!(apps::by_name(app).is_some(), "unknown app {app}");
            assert!(paper_plan(app).total_duration_s() > 0.0);
        }
    }
}
