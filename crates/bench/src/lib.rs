//! Shared protocol for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the index). They share the evaluation
//! protocol of §V: Next is trained once per application on a dedicated
//! training device, switched to greedy inference, and then measured on
//! sessions seeded identically across governors at 21 °C ambient.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod day;
pub mod fleet;
pub mod json;
pub mod perf;
pub mod report;

use next_core::{NextAgent, NextConfig};
use simkit::experiment::{train_next_for_app, TrainOutcome};
use simkit::sweep::{self, StandardEvaluator, SweepCell, SweepRow};
use simkit::Summary;
use workload::apps;
use workload::SessionPlan;

/// Seed used for every measured session, so all governors see the same
/// user behaviour.
pub const EVAL_SEED: u64 = 1000;

/// Seed used for training sessions (the sweep engine's protocol seed).
pub const TRAIN_SEED: u64 = StandardEvaluator::TRAIN_SEED;

/// The six applications of Figs. 7 and 8, in the paper's order.
pub const PAPER_APPS: [&str; 6] = [
    "facebook",
    "lineage",
    "pubg",
    "spotify",
    "web-browser",
    "youtube",
];

/// Training budget per application, simulated seconds — the sweep
/// engine's §V protocol (games get twice the base budget).
#[must_use]
pub fn train_budget_s(app: &str) -> f64 {
    StandardEvaluator::train_budget_for(StandardEvaluator::BASE_TRAIN_BUDGET_S, app)
}

/// Trains a fresh Next agent on `app` with the standard protocol and
/// returns it in greedy-inference mode together with the training
/// telemetry.
#[must_use]
pub fn trained_next(app: &str) -> TrainOutcome {
    train_next_for_app(app, NextConfig::paper(), TRAIN_SEED, train_budget_s(app))
}

/// Trains a fresh Next agent on an arbitrary session plan (used for the
/// mixed home→Facebook→Spotify session of Figs. 1 and 3).
#[must_use]
pub fn trained_next_on_plan(plan: &SessionPlan, budget_s: f64) -> NextAgent {
    use simkit::{Engine, RunOutcome, Trace};
    let engine = Engine::new();
    let mut agent = NextAgent::new(NextConfig::paper());
    let mut soc = mpsoc::Soc::new(mpsoc::SocConfig::exynos9810());
    let mut spent = 0.0;
    let mut round = 0u64;
    let mut outcome = RunOutcome {
        trace: Trace::new(),
        presented_frames: 0,
        repeated_vsyncs: 0,
    };
    while spent < budget_s && !agent.is_converged() {
        let mut session = workload::SessionSim::new(plan.clone(), TRAIN_SEED.wrapping_add(round));
        agent.start_session();
        let chunk = plan.total_duration_s();
        engine.run_into(&mut soc, &mut agent, &mut session, chunk, &mut outcome);
        spent += chunk;
        round += 1;
    }
    agent.set_training(false);
    agent
}

/// The per-app session plan of §V (games 5 min, other apps 2.5 min).
#[must_use]
pub fn paper_plan(app: &str) -> SessionPlan {
    SessionPlan::single(app, SessionPlan::paper_session_length_s(app))
}

/// Default worker count for the parallel figure grids: every core.
#[must_use]
pub fn default_workers() -> usize {
    sweep::default_workers()
}

/// A finished §V measurement grid plus the evaluator that ran it (which
/// keeps the per-app training telemetry for the figure footers).
#[derive(Debug)]
pub struct EvalGrid {
    /// One row per measured (app, governor) cell, in cell order.
    pub rows: Vec<SweepRow>,
    /// The evaluator, holding trained tables and training telemetry.
    pub evaluator: StandardEvaluator,
}

impl EvalGrid {
    /// The summary measured for `(app, governor)`, if that cell ran.
    #[must_use]
    pub fn summary(&self, app: &str, governor: &str) -> Option<&Summary> {
        self.rows
            .iter()
            .find(|r| r.cell.app == app && r.cell.governor == governor)
            .map(|r| &r.summary)
    }
}

/// Runs the §V measurement grid for the figure binaries in parallel:
/// every paper app under each of `governors` at [`EVAL_SEED`] and the
/// paper's session lengths, with Next trained once per app at exactly
/// [`train_budget_s`]. `intqos` cells are restricted to the two games,
/// as in the paper.
#[must_use]
pub fn eval_grid(governors: &[&str]) -> EvalGrid {
    let mut cells = Vec::new();
    for app in PAPER_APPS {
        for &governor in governors {
            if governor == "intqos" && !apps::is_game(app) {
                continue;
            }
            cells.push(SweepCell {
                app: app.to_owned(),
                governor: governor.to_owned(),
                seed: EVAL_SEED,
                duration_s: SessionPlan::paper_session_length_s(app),
            });
        }
    }
    let workers = default_workers();
    let evaluator =
        StandardEvaluator::prepare(&cells, StandardEvaluator::BASE_TRAIN_BUDGET_S, workers);
    let rows = sweep::run_cells(&cells, workers, |cell| evaluator.eval(cell));
    EvalGrid { rows, evaluator }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_follow_app_class() {
        assert!(train_budget_s("pubg") > train_budget_s("facebook"));
    }

    #[test]
    fn paper_apps_all_resolve() {
        for app in PAPER_APPS {
            assert!(apps::by_name(app).is_some(), "unknown app {app}");
            assert!(paper_plan(app).total_duration_s() > 0.0);
        }
    }
}
