//! The machine-readable performance harness behind `next-sim perf`.
//!
//! Runs a fixed governor×app×seed grid through the parallel sweep
//! engine with per-cell wall-clock timing, microbenches the Q-table
//! storage backends (hash vs dense-indexed) on a fully-populated
//! synthetic table, and emits everything as a `BENCH.json` artifact —
//! the document the CI `perf-smoke` job gates on and the repo's
//! `BENCH_*.json` trajectory entries consume.
//!
//! Everything in the artifact except wall-clock readings is
//! deterministic: the grid, tick counts and summaries are pure
//! functions of the config, so two runs differ only in their `*_s`,
//! `*_ns` and `*_per_sec` fields.

use std::time::Instant;

use mpsoc::perf::FrameDemand;
use mpsoc::soc::Soc;
use mpsoc::SocBatch;
use next_core::NextConfig;
use qlearn::{QLearning, QStore, QTable};
use simkit::sweep::{self, StandardEvaluator, SweepCell};
use simkit::{Engine, PlatformPreset, Summary};
use workload::{SessionPlan, SessionSim};

use crate::json::Json;

/// Version of the `BENCH.json` schema family this harness writes. Bump
/// when a field changes meaning; additions are backwards-compatible.
/// v2 added the optional `fleet` section (`next-sim fleet`) and the
/// federated merge probe; v3 added the `platform` field (the preset
/// the grid ran on) and per-platform fleet sections; v4 added the `day`
/// section (`next-sim day` battery-day documents); v5 added the `batch`
/// section — the structure-of-arrays tick-kernel throughput probe and
/// its `device_days_per_sec` metric; v6 adds the `campaign` section
/// (`next-sim campaign` documents) and the end-to-end campaign probe
/// with its `devices_per_sec` metric; v7 splits the campaign probe's
/// warm-seed training out of its round wall-clock (so
/// `devices_per_sec` measures steady-state rounds only), adds
/// per-round `table_bytes` to campaign documents, and adds the
/// `overlay` section — copy-on-write warm-start and delta-extraction
/// latencies (`warm_start_ns`, `delta_extract_ns`).
/// [`crate::fleet::parse_document`] still accepts every earlier
/// version.
pub const SCHEMA_VERSION: u32 = 7;

/// Configuration of one perf-harness run.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Label recorded in the artifact (`"quick"` / `"full"` / custom).
    pub mode: String,
    /// Platform preset the whole grid (and the probes' action count)
    /// runs on.
    pub platform: String,
    /// Applications of the grid.
    pub apps: Vec<String>,
    /// Governors of the grid.
    pub governors: Vec<String>,
    /// Session seeds of the grid.
    pub seeds: Vec<u64>,
    /// Session length per cell, simulated seconds.
    pub duration_s: f64,
    /// Next training budget per app, simulated seconds.
    pub train_budget_s: f64,
    /// Worker threads for the grid.
    pub workers: usize,
    /// States populated in the Q-table backend microbenchmark.
    pub probe_states: usize,
    /// Device lanes of the batched tick-kernel probe.
    pub batch_width: usize,
    /// Devices of the end-to-end campaign probe (quick-plan days).
    pub campaign_devices: usize,
    /// Rounds of the end-to-end campaign probe.
    pub campaign_rounds: usize,
}

impl PerfConfig {
    /// The CI smoke grid: small but exercising every layer (training,
    /// the RL governor, a baseline governor, the sweep engine).
    #[must_use]
    pub fn quick() -> Self {
        PerfConfig {
            mode: "quick".to_owned(),
            platform: "exynos9810".to_owned(),
            apps: vec!["facebook".to_owned(), "spotify".to_owned()],
            governors: vec!["schedutil".to_owned(), "next".to_owned()],
            seeds: vec![1000],
            duration_s: 60.0,
            train_budget_s: 120.0,
            workers: sweep::default_workers(),
            probe_states: 20_000,
            // Half a fleet round: comfortably past the width where the
            // lane-contiguous arrays amortise the shared per-tick
            // costs, while keeping the probe in the milliseconds.
            batch_width: 64,
            // Big enough that the per-round fixed costs (warm seed,
            // merges) amortise AND the overlay memory claim is
            // visible: by round three the trained bases dwarf the
            // touched sets, so `table_bytes_reduction` crosses 10x.
            // Still well under a second of wall clock.
            campaign_devices: 48,
            campaign_rounds: 3,
        }
    }

    /// The full grid: the six paper apps under the three §V governors.
    #[must_use]
    pub fn full() -> Self {
        PerfConfig {
            mode: "full".to_owned(),
            platform: "exynos9810".to_owned(),
            apps: crate::PAPER_APPS.iter().map(|&a| a.to_owned()).collect(),
            governors: vec![
                "schedutil".to_owned(),
                "intqos".to_owned(),
                "next".to_owned(),
            ],
            seeds: vec![1000],
            duration_s: 120.0,
            train_budget_s: 300.0,
            workers: sweep::default_workers(),
            probe_states: 100_000,
            batch_width: 64,
            campaign_devices: 64,
            campaign_rounds: 3,
        }
    }
}

/// Timing and outcome of one measured grid cell.
#[derive(Debug, Clone)]
pub struct CellPerf {
    /// The grid point.
    pub cell: SweepCell,
    /// Run summary (power/fps/thermals) of the cell.
    pub summary: Summary,
    /// Wall-clock seconds the cell took on its worker.
    pub wall_s: f64,
    /// 25 ms engine ticks executed.
    pub ticks: u64,
    /// Simulated ticks per wall-clock second.
    pub ticks_per_sec: f64,
    /// Governor control invocations during the run.
    pub control_steps: u64,
    /// Wall-clock nanoseconds per control step (includes the platform
    /// simulation between steps — an upper bound on governor overhead).
    pub ns_per_control_step: f64,
}

/// Microbenchmark of one Q-table storage backend: a fully-populated
/// table driven through the hot argmax + Q-update loop.
#[derive(Debug, Clone)]
pub struct BackendProbe {
    /// Backend name (`"hash"` / `"dense"`).
    pub backend: String,
    /// States populated (each with every action visited).
    pub states: usize,
    /// Actions per state.
    pub actions: usize,
    /// Mean nanoseconds per `best_action` (argmax) probe.
    pub argmax_ns: f64,
    /// Mean nanoseconds per Q-learning update (read + bootstrap + set).
    pub update_ns: f64,
}

/// Microbenchmark of the federated merge: the seed's eager all-keys
/// algorithm versus the streaming accumulator on the same
/// fully-populated dense tables — the fleet's cloud-side throughput.
#[derive(Debug, Clone)]
pub struct MergeProbe {
    /// Tables merged per pass.
    pub tables: usize,
    /// States per table (every one populated).
    pub states: usize,
    /// Actions per state.
    pub actions: usize,
    /// Nanoseconds per full eager merge pass.
    pub eager_ns: f64,
    /// Nanoseconds per full streaming merge pass.
    pub streaming_ns: f64,
}

impl MergeProbe {
    /// How much faster the streaming merge ran (`eager / streaming`).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.streaming_ns > 0.0 {
            self.eager_ns / self.streaming_ns
        } else {
            0.0
        }
    }
}

/// Throughput probe of the structure-of-arrays tick kernel: the same
/// cohort of devices replaying the same pre-computed frame-demand
/// traces, once through [`SocBatch::tick`] (all lanes per step) and
/// once through scalar [`Soc::tick`] one device at a time. Both paths
/// must land on bit-identical final states — the probe asserts it — so
/// the wall-clock ratio is a pure kernel-layout measurement.
#[derive(Debug, Clone)]
pub struct BatchProbe {
    /// Device lanes stepped in lockstep.
    pub width: usize,
    /// Simulated seconds per device.
    pub duration_s: f64,
    /// 25 ms ticks per device.
    pub ticks: u64,
    /// Best-of-three wall-clock seconds for the batched kernel.
    pub batched_wall_s: f64,
    /// Best-of-three wall-clock seconds stepping devices one at a time.
    pub sequential_wall_s: f64,
    /// Simulated device-days per wall-clock second, batched. This is
    /// the number the CI floor gates on.
    pub device_days_per_sec: f64,
    /// Simulated device-days per wall-clock second, one at a time.
    pub sequential_device_days_per_sec: f64,
}

impl BatchProbe {
    /// How much faster the batched kernel stepped the cohort
    /// (`sequential wall / batched wall`).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.batched_wall_s > 0.0 {
            self.sequential_wall_s / self.batched_wall_s
        } else {
            0.0
        }
    }
}

/// Throughput probe of the end-to-end campaign runner: a small
/// quick-plan campaign (whole online-learning days, overlay warm
/// starts, delta encoding, normalized merges — every layer `next-sim
/// campaign` exercises) run once, wall-clocked. The warm-seed training
/// is timed separately from round execution, so `devices_per_sec`
/// counts simulated device-days per **steady-state round** wall-clock
/// second — the campaign-scale sizing number the CI floor gates on.
#[derive(Debug, Clone)]
pub struct CampaignProbe {
    /// Devices simulated.
    pub devices: usize,
    /// Federated rounds (days per device).
    pub rounds: usize,
    /// Wall-clock seconds for the whole campaign (seed + rounds).
    pub wall_s: f64,
    /// Wall-clock seconds of the one-off warm-seed training.
    pub seed_wall_s: f64,
    /// Wall-clock seconds of round execution only.
    pub round_wall_s: f64,
    /// Simulated device-days per round-execution wall-clock second.
    pub devices_per_sec: f64,
    /// Total uplink payload the probe campaign produced, bytes
    /// (deterministic — a sanity anchor for the artifact).
    pub uplink_bytes: u64,
    /// Peak per-round resident table bytes (merged globals + every
    /// device's copy-on-write overlay) over the campaign.
    pub peak_table_bytes: u64,
    /// Peak per-round resident bytes the pre-overlay scheme would have
    /// needed (a full dense clone per device-day per app).
    pub dense_clone_bytes: u64,
}

impl CampaignProbe {
    /// Memory win of the overlay scheme: dense-clone resident bytes
    /// over actual resident bytes at the per-round peak.
    #[must_use]
    pub fn table_bytes_reduction(&self) -> f64 {
        if self.peak_table_bytes > 0 {
            self.dense_clone_bytes as f64 / self.peak_table_bytes as f64
        } else {
            0.0
        }
    }
}

/// Runs the campaign throughput probe on quick-plan days.
///
/// # Panics
///
/// Panics if the derived campaign config is invalid (zero devices or
/// rounds) or `platform` names an unknown preset.
#[must_use]
pub fn probe_campaign(
    devices: usize,
    rounds: usize,
    workers: usize,
    platform: &str,
) -> CampaignProbe {
    let config = simkit::CampaignConfig::quick(devices, rounds, 4242).with_platforms(&[platform]);
    // qlint::allow(ND01, reason = "wall-clock timing of the probe itself; reported as measurement, never fed to simulation")
    let started = Instant::now();
    // qlint::allow(PN01, reason = "probe config is built from literals two lines up")
    let seed = simkit::warm_seed(&config, workers).expect("probe campaign config is valid");
    let seed_wall_s = started.elapsed().as_secs_f64();
    // qlint::allow(ND01, reason = "wall-clock timing of the probe itself; reported as measurement, never fed to simulation")
    let round_started = Instant::now();
    let report = simkit::run_campaign_from_seed(&config, seed, workers);
    let round_wall_s = round_started.elapsed().as_secs_f64();
    let device_days = (devices * rounds) as f64;
    CampaignProbe {
        devices,
        rounds,
        wall_s: seed_wall_s + round_wall_s,
        seed_wall_s,
        round_wall_s,
        devices_per_sec: if round_wall_s > 0.0 {
            device_days / round_wall_s
        } else {
            0.0
        },
        uplink_bytes: report.total_uplink_bytes(),
        peak_table_bytes: report
            .rounds
            .iter()
            .map(|r| r.table_bytes)
            .max()
            .unwrap_or(0),
        dense_clone_bytes: report
            .rounds
            .iter()
            .map(|r| r.dense_clone_bytes)
            .max()
            .unwrap_or(0),
    }
}

/// Microbenchmark of the copy-on-write overlay hot paths against their
/// dense equivalents on a fully-populated base table: warm start (an
/// `Arc` clone vs a full dense clone) and delta extraction after a
/// day's worth of row touches (encode the overlay vs a full-space
/// diff). `warm_start_ns` and `delta_extract_ns` are the numbers the
/// CI ceiling gates on.
#[derive(Debug, Clone)]
pub struct OverlayProbe {
    /// States populated in the base table.
    pub states: usize,
    /// Actions per state.
    pub actions: usize,
    /// Rows touched before delta extraction.
    pub touched: usize,
    /// Mean nanoseconds to warm-start an overlay view of the base.
    pub warm_start_ns: f64,
    /// Mean nanoseconds to warm-start by dense-cloning the base.
    pub dense_clone_ns: f64,
    /// Mean nanoseconds to extract the uplink delta off the overlay.
    pub delta_extract_ns: f64,
    /// Mean nanoseconds for the equivalent full-space dense diff.
    pub dense_delta_ns: f64,
}

impl OverlayProbe {
    /// How much faster the overlay warm start ran than a dense clone.
    #[must_use]
    pub fn warm_start_speedup(&self) -> f64 {
        if self.warm_start_ns > 0.0 {
            self.dense_clone_ns / self.warm_start_ns
        } else {
            0.0
        }
    }

    /// How much faster overlay delta extraction ran than the
    /// full-space diff.
    #[must_use]
    pub fn delta_speedup(&self) -> f64 {
        if self.delta_extract_ns > 0.0 {
            self.dense_delta_ns / self.delta_extract_ns
        } else {
            0.0
        }
    }
}

/// Times a closure until ≥ 3 passes and ≥ 20 ms have accumulated,
/// returning mean nanoseconds per pass.
fn time_pass_ns<F: FnMut()>(mut f: F) -> f64 {
    f();
    // qlint::allow(ND01, reason = "benchmark stopwatch; throughput output only")
    let started = Instant::now();
    let mut passes = 0u32;
    while passes < 3 || started.elapsed().as_secs_f64() < 0.02 {
        f();
        passes += 1;
    }
    started.elapsed().as_secs_f64() * 1e9 / f64::from(passes)
}

/// Runs the overlay hot-path probe on a fully-populated
/// `states`-state, `actions`-action dense base.
#[must_use]
pub fn probe_overlay(states: usize, actions: usize) -> OverlayProbe {
    use std::sync::Arc;

    let mut base = qlearn::DenseQTable::dense_for_space(actions, 0.0, states as u64);
    populate(&mut base, states);
    let base = Arc::new(base);

    let warm_start_ns = time_pass_ns(|| {
        std::hint::black_box(QTable::overlay(Arc::clone(&base)));
    });
    let dense_clone_ns = time_pass_ns(|| {
        std::hint::black_box((*base).clone());
    });

    // A day touches a small fraction of the space; 1% (≥ 16 rows)
    // mirrors the campaign's observed touch rate.
    let touched = (states / 100).max(16).min(states);
    let keys = probe_sequence(states);
    let mut overlay = QTable::overlay(Arc::clone(&base));
    let mut dense = (*base).clone();
    for &k in &keys[..touched] {
        overlay.set(k, 0, 1.25);
        dense.set(k, 0, 1.25);
    }

    let delta_extract_ns = time_pass_ns(|| {
        std::hint::black_box(overlay.delta_bytes());
    });
    let dense_delta_ns = time_pass_ns(|| {
        // qlint::allow(PN01, reason = "both tables were just built over the same space, so the delta cannot fail")
        std::hint::black_box(qlearn::delta_between(&*base, &dense).expect("same space and rows"));
    });

    OverlayProbe {
        states,
        actions,
        touched,
        warm_start_ns,
        dense_clone_ns,
        delta_extract_ns,
        dense_delta_ns,
    }
}

const SECONDS_PER_DAY: f64 = 86_400.0;

/// Runs the batched-kernel throughput probe: `width` devices running
/// `apps` round-robin (seeds `1000 + lane`) for `duration_s` simulated
/// seconds on `preset`'s SoC, with the in-SoC utilization governor as
/// the only control loop. Demand traces are generated **outside** the
/// timed region and shared by both paths, so the probe times the
/// physics kernel, not the workload model.
///
/// # Panics
///
/// Panics on unknown app names, on a zero `width`, or if the batched
/// cohort diverges bit-wise from the scalar devices (which would be a
/// kernel bug, not a measurement artifact).
#[must_use]
pub fn probe_batch(
    width: usize,
    duration_s: f64,
    apps: &[String],
    preset: &PlatformPreset,
) -> BatchProbe {
    assert!(width > 0, "batch probe needs at least one lane");
    let engine = Engine::new();
    let dt = engine.tick_s();
    let ticks = engine.ticks_for(duration_s);
    #[allow(clippy::cast_possible_truncation)]
    let n_ticks = ticks as usize;

    // Tick-major demand traces: demands[t][lane].
    let mut demands: Vec<Vec<FrameDemand>> = vec![Vec::with_capacity(width); n_ticks];
    for lane in 0..width {
        let app = &apps[lane % apps.len()];
        let plan = SessionPlan::single(app, duration_s);
        let mut session = SessionSim::new(plan, 1000 + lane as u64);
        for row in &mut demands {
            row.push(session.advance(dt));
        }
    }

    // Best-of-N wall clock on both paths: a pass is milliseconds, so
    // scheduler noise only ever inflates a measurement and the minimum
    // is the robust estimate of the true cost. The passes alternate
    // batched/sequential so clock-speed drift across the probe (turbo
    // decay, thermal throttling of the host) hits both paths alike
    // instead of biasing their ratio.
    let passes = 5;
    let config = &preset.soc;
    let mut batched_wall_s = f64::INFINITY;
    let mut sequential_wall_s = f64::INFINITY;
    // qlint::allow(PN01, reason = "preset configs ship with the crate and are covered by tests")
    let mut batch = SocBatch::replicate(config, width).expect("preset SoC config is valid");
    let mut socs: Vec<Soc> = Vec::new();
    for _ in 0..passes {
        // qlint::allow(PN01, reason = "preset configs ship with the crate and are covered by tests")
        batch = SocBatch::replicate(config, width).expect("preset SoC config is valid");
        // qlint::allow(ND01, reason = "benchmark stopwatch around the batched tick loop; ratio output only")
        let started = Instant::now();
        for row in &demands {
            batch.tick(dt, row);
        }
        batched_wall_s = batched_wall_s.min(started.elapsed().as_secs_f64());

        socs = (0..width).map(|_| Soc::new(config.clone())).collect();
        // qlint::allow(ND01, reason = "benchmark stopwatch around the sequential tick loop; ratio output only")
        let started = Instant::now();
        for (lane, soc) in socs.iter_mut().enumerate() {
            for row in &demands {
                soc.tick(dt, &row[lane]);
            }
        }
        sequential_wall_s = sequential_wall_s.min(started.elapsed().as_secs_f64());
    }

    // The probe doubles as an end-to-end equivalence check on real
    // workload traces: batching must be unobservable.
    for (lane, soc) in socs.iter().enumerate() {
        assert!(
            batch.state(lane) == soc.state(),
            "batched lane {lane} diverged from its scalar device"
        );
    }

    let device_days = width as f64 * duration_s / SECONDS_PER_DAY;
    BatchProbe {
        width,
        duration_s,
        ticks,
        batched_wall_s,
        sequential_wall_s,
        device_days_per_sec: if batched_wall_s > 0.0 {
            device_days / batched_wall_s
        } else {
            0.0
        },
        sequential_device_days_per_sec: if sequential_wall_s > 0.0 {
            device_days / sequential_wall_s
        } else {
            0.0
        },
    }
}

/// A finished perf run, renderable as `BENCH.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// The configuration that ran.
    pub config: PerfConfig,
    /// Wall-clock seconds spent training Next tables (all apps).
    pub train_wall_s: f64,
    /// Wall-clock seconds of the measured grid phase (parallel).
    pub grid_wall_s: f64,
    /// Per-cell results, in grid order.
    pub cells: Vec<CellPerf>,
    /// Backend microbenchmarks (hash then dense).
    pub probes: Vec<BackendProbe>,
    /// Federated merge throughput probe (fleet cloud path).
    pub merge: MergeProbe,
    /// Batched tick-kernel throughput probe (`device_days_per_sec`).
    pub batch: BatchProbe,
    /// End-to-end campaign throughput probe (`devices_per_sec`).
    pub campaign: CampaignProbe,
    /// Copy-on-write overlay hot-path probe (`warm_start_ns`,
    /// `delta_extract_ns`).
    pub overlay: OverlayProbe,
}

/// Wall-clock period of governor `name`, seconds.
///
/// # Panics
///
/// Panics on an unknown governor name.
#[must_use]
pub fn governor_period_s(name: &str) -> f64 {
    if name == "next" {
        return NextConfig::paper().control_period_s;
    }
    governors::by_name(name)
        // qlint::allow(PN01, reason = "documented panicking lookup; config names are validated against the registry up front")
        .unwrap_or_else(|| panic!("unknown governor '{name}'"))
        .period_s()
}

/// Runs the harness: trains, measures the grid, probes the backends.
///
/// # Panics
///
/// Panics on unknown app, governor or platform names in the config.
#[must_use]
pub fn run(config: &PerfConfig) -> PerfReport {
    let preset = PlatformPreset::by_name(&config.platform)
        // qlint::allow(PN01, reason = "documented panicking lookup; an unknown platform is an unusable config")
        .unwrap_or_else(|| panic!("unknown platform '{}'", config.platform));
    let probe_actions = preset.soc.platform.action_count();
    let cells = sweep::grid(
        &config.apps,
        &config.governors,
        &config.seeds,
        Some(config.duration_s),
    );

    // qlint::allow(ND01, reason = "wall-clock section timing for the perf artifact; simulation time is driven by the deterministic tick")
    let train_started = Instant::now();
    let evaluator = StandardEvaluator::prepare_on(
        &cells,
        config.train_budget_s,
        config.workers,
        preset.clone(),
    );
    let train_wall_s = train_started.elapsed().as_secs_f64();

    // qlint::allow(ND01, reason = "wall-clock section timing for the perf artifact; simulation time is driven by the deterministic tick")
    let grid_started = Instant::now();
    let timed: Vec<(Summary, f64)> = sweep::parallel_map(&cells, config.workers, |cell| {
        // qlint::allow(ND01, reason = "per-cell wall time reported in the artifact; the cell's simulation is seed-driven")
        let started = Instant::now();
        let summary = evaluator.eval(cell);
        (summary, started.elapsed().as_secs_f64())
    });
    let grid_wall_s = grid_started.elapsed().as_secs_f64();

    // Tick accounting comes from the same Engine the evaluator runs
    // cells on, so BENCH.json cannot drift from what actually executed.
    let engine = Engine::new();
    let cells = cells
        .into_iter()
        .zip(timed)
        .map(|(cell, (summary, wall_s))| {
            let ticks = engine.ticks_for(cell.duration_s);
            let period = governor_period_s(&cell.governor);
            let control_every = engine.control_every_ticks(period);
            let control_steps = ticks / control_every;
            CellPerf {
                ticks,
                ticks_per_sec: if wall_s > 0.0 {
                    ticks as f64 / wall_s
                } else {
                    0.0
                },
                control_steps,
                ns_per_control_step: if control_steps > 0 {
                    wall_s * 1e9 / control_steps as f64
                } else {
                    0.0
                },
                cell,
                summary,
                wall_s,
            }
        })
        .collect();

    let probes = probe_backends(config.probe_states, probe_actions);
    let merge = probe_merge(
        config.probe_states.min(MERGE_PROBE_MAX_STATES),
        16,
        probe_actions,
    );
    let batch = probe_batch(config.batch_width, config.duration_s, &config.apps, &preset);
    let campaign = probe_campaign(
        config.campaign_devices,
        config.campaign_rounds,
        config.workers,
        &config.platform,
    );
    let overlay = probe_overlay(config.probe_states, probe_actions);

    PerfReport {
        config: config.clone(),
        train_wall_s,
        grid_wall_s,
        cells,
        probes,
        merge,
        batch,
        campaign,
        overlay,
    }
}

/// Total simulated ticks across the grid.
#[must_use]
pub fn total_ticks(report: &PerfReport) -> u64 {
    report.cells.iter().map(|c| c.ticks).sum()
}

/// Aggregate throughput of the measured grid phase: simulated ticks per
/// wall-clock second, all workers combined. This is the number the CI
/// floor gates on.
#[must_use]
pub fn throughput_ticks_per_sec(report: &PerfReport) -> f64 {
    if report.grid_wall_s > 0.0 {
        total_ticks(report) as f64 / report.grid_wall_s
    } else {
        0.0
    }
}

fn populate(table: &mut QTable<impl QStore>, states: usize) {
    populate_salted(table, states, 0);
}

fn populate_salted(table: &mut QTable<impl QStore>, states: usize, salt: u64) {
    let actions = table.n_actions();
    for s in 0..states as u64 {
        for a in 0..actions {
            // Any finite value pattern works; vary it so argmax has no
            // degenerate all-equal rows (the salt makes tables differ).
            // qlint::allow(PN01, reason = "value is taken mod 13 on the previous expression, so it always fits u32")
            let v = f64::from(u32::try_from((s + salt + a as u64 * 7) % 13).expect("small")) - 6.0;
            table.set(s, a, v);
        }
    }
}

/// A deterministic, hash-scattering permutation of `0..states`, so the
/// probe loop does not walk the table in its insertion order.
fn probe_sequence(states: usize) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..states as u64).collect();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in (1..keys.len()).rev() {
        // xorshift64* for the shuffle.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let j = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % (i as u64 + 1)) as usize;
        keys.swap(i, j);
    }
    keys
}

fn time_per_op<F: FnMut(u64)>(keys: &[u64], mut op: F) -> f64 {
    // Warm-up pass, then measure whole passes until ≥ 20 ms and ≥ 3
    // passes have accumulated.
    for &k in keys {
        op(k);
    }
    // qlint::allow(ND01, reason = "benchmark stopwatch; ns-per-op output only")
    let started = Instant::now();
    let mut ops = 0u64;
    let mut passes = 0u32;
    while passes < 3 || started.elapsed().as_secs_f64() < 0.02 {
        for &k in keys {
            op(k);
        }
        ops += keys.len() as u64;
        passes += 1;
    }
    started.elapsed().as_secs_f64() * 1e9 / ops as f64
}

fn probe_backend<S: QStore>(mut table: QTable<S>, states: usize) -> BackendProbe {
    populate(&mut table, states);
    let keys = probe_sequence(states);
    let learner = QLearning::new(0.25, 0.5);

    let argmax_ns = time_per_op(&keys, |k| {
        std::hint::black_box(table.best_action(std::hint::black_box(k)));
    });
    let mut i = 0usize;
    let update_ns = time_per_op(&keys, |k| {
        let next = keys[i];
        i = (i + 1) % keys.len();
        let (a, _) = table.best_action(k);
        std::hint::black_box(learner.update(&mut table, k, a, 0.5, next));
    });

    BackendProbe {
        backend: S::backend_name().to_owned(),
        states,
        actions: table.n_actions(),
        argmax_ns,
        update_ns,
    }
}

/// Cap on the merge-probe table size, keeping the probe's transient
/// memory (a handful of fully-populated tables) in the tens of MB.
const MERGE_PROBE_MAX_STATES: usize = 50_000;

/// Measures one full federated merge of `tables` fully-populated
/// `states`-state dense tables of `actions` actions (the platform's
/// `3m`), eager vs streaming, in nanoseconds per pass. Two distinct
/// tables are cycled so every fold sees real data without holding
/// `tables` copies in memory.
#[must_use]
pub fn probe_merge(states: usize, tables: usize, actions: usize) -> MergeProbe {
    let build = |salt: u64| {
        let mut t = qlearn::DenseQTable::dense_for_space(actions, 0.0, states as u64);
        populate_salted(&mut t, states, salt);
        t
    };
    let distinct = [build(0), build(5)];
    let refs: Vec<&qlearn::DenseQTable> = (0..tables).map(|i| &distinct[i % 2]).collect();

    let time_pass = |f: &dyn Fn() -> qlearn::DenseQTable| {
        // At least 2 passes and 20 ms, like the backend probes.
        // qlint::allow(ND01, reason = "benchmark stopwatch; merge-throughput output only")
        let started = Instant::now();
        let mut passes = 0u32;
        while passes < 2 || started.elapsed().as_secs_f64() < 0.02 {
            std::hint::black_box(f());
            passes += 1;
        }
        started.elapsed().as_secs_f64() * 1e9 / f64::from(passes)
    };
    let eager_ns = time_pass(&|| qlearn::federated::merge_eager(&refs));
    let streaming_ns = time_pass(&|| qlearn::federated::merge(&refs));
    MergeProbe {
        tables,
        states,
        actions,
        eager_ns,
        streaming_ns,
    }
}

/// Benchmarks the argmax + update hot loop of both storage backends on
/// a fully-populated `states`-state table of `actions` actions (compact
/// keys, as produced by the dense `StateSpace` encoding; the dense
/// table declares the space so it gets its direct slot-table index,
/// exactly as the agent does).
#[must_use]
pub fn probe_backends(states: usize, actions: usize) -> Vec<BackendProbe> {
    vec![
        probe_backend(QTable::<qlearn::HashStore>::empty(actions, 0.0), states),
        probe_backend(
            qlearn::DenseQTable::dense_for_space(actions, 0.0, states as u64),
            states,
        ),
    ]
}

impl PerfReport {
    /// The `BENCH.json` document.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn to_json(&self) -> Json {
        let cfg = &self.config;
        let grid = Json::Obj(vec![
            (
                "apps".into(),
                Json::Arr(cfg.apps.iter().map(Json::str).collect()),
            ),
            (
                "governors".into(),
                Json::Arr(cfg.governors.iter().map(Json::str).collect()),
            ),
            (
                "seeds".into(),
                Json::Arr(cfg.seeds.iter().map(|&s| Json::num(s as f64)).collect()),
            ),
            ("duration_s".into(), Json::num(cfg.duration_s)),
            ("train_budget_s".into(), Json::num(cfg.train_budget_s)),
            ("workers".into(), Json::num(cfg.workers as f64)),
        ]);
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("app".into(), Json::str(&c.cell.app)),
                    ("governor".into(), Json::str(&c.cell.governor)),
                    ("seed".into(), Json::num(c.cell.seed as f64)),
                    ("duration_s".into(), Json::num(c.cell.duration_s)),
                    ("ticks".into(), Json::num(c.ticks as f64)),
                    ("wall_s".into(), Json::num(c.wall_s)),
                    ("ticks_per_sec".into(), Json::num(c.ticks_per_sec)),
                    ("control_steps".into(), Json::num(c.control_steps as f64)),
                    (
                        "ns_per_control_step".into(),
                        Json::num(c.ns_per_control_step),
                    ),
                    ("avg_power_w".into(), Json::num(c.summary.avg_power_w)),
                    ("avg_fps".into(), Json::num(c.summary.avg_fps)),
                ])
            })
            .collect();
        let probes = self
            .probes
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("backend".into(), Json::str(&p.backend)),
                    ("states".into(), Json::num(p.states as f64)),
                    ("actions".into(), Json::num(p.actions as f64)),
                    ("argmax_ns".into(), Json::num(p.argmax_ns)),
                    ("update_ns".into(), Json::num(p.update_ns)),
                ])
            })
            .collect();
        let dense_speedup = self.dense_speedup().map_or(Json::Null, Json::num);
        let merge = Json::Obj(vec![
            ("tables".into(), Json::num(self.merge.tables as f64)),
            ("states".into(), Json::num(self.merge.states as f64)),
            ("actions".into(), Json::num(self.merge.actions as f64)),
            ("eager_ns".into(), Json::num(self.merge.eager_ns)),
            ("streaming_ns".into(), Json::num(self.merge.streaming_ns)),
            ("speedup".into(), Json::num(self.merge.speedup())),
        ]);
        let batch = Json::Obj(vec![
            ("width".into(), Json::num(self.batch.width as f64)),
            ("duration_s".into(), Json::num(self.batch.duration_s)),
            ("ticks".into(), Json::num(self.batch.ticks as f64)),
            (
                "batched_wall_s".into(),
                Json::num(self.batch.batched_wall_s),
            ),
            (
                "sequential_wall_s".into(),
                Json::num(self.batch.sequential_wall_s),
            ),
            (
                "device_days_per_sec".into(),
                Json::num(self.batch.device_days_per_sec),
            ),
            (
                "sequential_device_days_per_sec".into(),
                Json::num(self.batch.sequential_device_days_per_sec),
            ),
            ("speedup".into(), Json::num(self.batch.speedup())),
        ]);
        let campaign = Json::Obj(vec![
            ("devices".into(), Json::num(self.campaign.devices as f64)),
            ("rounds".into(), Json::num(self.campaign.rounds as f64)),
            ("wall_s".into(), Json::num(self.campaign.wall_s)),
            ("seed_wall_s".into(), Json::num(self.campaign.seed_wall_s)),
            ("round_wall_s".into(), Json::num(self.campaign.round_wall_s)),
            (
                "devices_per_sec".into(),
                Json::num(self.campaign.devices_per_sec),
            ),
            (
                "uplink_bytes".into(),
                Json::num_u64(self.campaign.uplink_bytes),
            ),
            (
                "peak_table_bytes".into(),
                Json::num_u64(self.campaign.peak_table_bytes),
            ),
            (
                "dense_clone_bytes".into(),
                Json::num_u64(self.campaign.dense_clone_bytes),
            ),
            (
                "table_bytes_reduction".into(),
                Json::num(self.campaign.table_bytes_reduction()),
            ),
        ]);
        let overlay = Json::Obj(vec![
            ("states".into(), Json::num(self.overlay.states as f64)),
            ("actions".into(), Json::num(self.overlay.actions as f64)),
            ("touched".into(), Json::num(self.overlay.touched as f64)),
            (
                "warm_start_ns".into(),
                Json::num(self.overlay.warm_start_ns),
            ),
            (
                "dense_clone_ns".into(),
                Json::num(self.overlay.dense_clone_ns),
            ),
            (
                "warm_start_speedup".into(),
                Json::num(self.overlay.warm_start_speedup()),
            ),
            (
                "delta_extract_ns".into(),
                Json::num(self.overlay.delta_extract_ns),
            ),
            (
                "dense_delta_ns".into(),
                Json::num(self.overlay.dense_delta_ns),
            ),
            (
                "delta_speedup".into(),
                Json::num(self.overlay.delta_speedup()),
            ),
        ]);
        Json::Obj(vec![
            ("schema".into(), Json::num(f64::from(SCHEMA_VERSION))),
            ("harness".into(), Json::str("next-sim perf")),
            ("mode".into(), Json::str(&cfg.mode)),
            ("platform".into(), Json::str(&cfg.platform)),
            ("grid".into(), grid),
            (
                "train".into(),
                Json::Obj(vec![("wall_s".into(), Json::num(self.train_wall_s))]),
            ),
            ("cells".into(), Json::Arr(cells)),
            (
                "totals".into(),
                Json::Obj(vec![
                    ("cells".into(), Json::num(self.cells.len() as f64)),
                    ("ticks".into(), Json::num(total_ticks(self) as f64)),
                    ("grid_wall_s".into(), Json::num(self.grid_wall_s)),
                    (
                        "ticks_per_sec".into(),
                        Json::num(throughput_ticks_per_sec(self)),
                    ),
                ]),
            ),
            ("qtable".into(), Json::Arr(probes)),
            ("dense_speedup".into(), dense_speedup),
            ("merge".into(), merge),
            ("batch".into(), batch),
            ("campaign".into(), campaign),
            ("overlay".into(), overlay),
        ])
    }

    /// How much faster the dense backend ran the argmax+update loop
    /// than the hash backend (`hash_time / dense_time`), if both probes
    /// are present.
    #[must_use]
    pub fn dense_speedup(&self) -> Option<f64> {
        let hash = self.probes.iter().find(|p| p.backend == "hash")?;
        let dense = self.probes.iter().find(|p| p.backend == "dense")?;
        let dense_total = dense.argmax_ns + dense.update_ns;
        (dense_total > 0.0).then(|| (hash.argmax_ns + hash.update_ns) / dense_total)
    }
}

/// Why the CI performance gate could not pass: every way the gate math
/// can go wrong is its own variant, so callers (and CI logs) can tell a
/// broken baseline from a genuine regression. Nothing in the gate
/// panics or silently coerces to 0 any more.
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// The baseline file is not parseable JSON.
    BaselineUnreadable(String),
    /// The baseline lacks the named numeric metric.
    MissingMetric(&'static str),
    /// The baseline metric is NaN or infinite.
    NonFiniteMetric {
        /// The offending baseline field.
        metric: &'static str,
        /// Its value.
        value: f64,
    },
    /// The baseline metric is zero or negative — a floor of nothing.
    NonPositiveMetric {
        /// The offending baseline field.
        metric: &'static str,
        /// Its value.
        value: f64,
    },
    /// The report's own measurement is empty or non-finite (e.g. a
    /// zero-wall-clock grid), so no ratio can be formed.
    EmptyMeasurement(&'static str),
    /// The measurement is sound but fell below the floor.
    FloorViolated {
        /// The gated metric.
        metric: &'static str,
        /// What the report measured.
        measured: f64,
        /// The floor it had to reach (`min_ratio` × baseline).
        floor: f64,
        /// The configured ratio.
        min_ratio: f64,
        /// The baseline value the floor derives from.
        baseline: f64,
    },
    /// A latency measurement rose above its ceiling (latency metrics
    /// gate downward: smaller is better).
    CeilingViolated {
        /// The gated metric.
        metric: &'static str,
        /// What the report measured.
        measured: f64,
        /// The ceiling it had to stay under (baseline / `min_ratio`).
        ceiling: f64,
        /// The configured ratio.
        min_ratio: f64,
        /// The baseline value the ceiling derives from.
        baseline: f64,
    },
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::BaselineUnreadable(e) => write!(f, "baseline: {e}"),
            GateError::MissingMetric(metric) => {
                write!(f, "baseline: missing numeric '{metric}'")
            }
            GateError::NonFiniteMetric { metric, value } => {
                write!(f, "baseline: '{metric}' must be finite, got {value}")
            }
            GateError::NonPositiveMetric { metric, value } => {
                write!(f, "baseline: '{metric}' must be positive, got {value}")
            }
            GateError::EmptyMeasurement(metric) => {
                write!(
                    f,
                    "report measured no usable '{metric}' (empty or zero-wall run)"
                )
            }
            GateError::FloorViolated {
                metric,
                measured,
                floor,
                min_ratio,
                baseline,
            } => write!(
                f,
                "{metric} {measured:.0} fell below the floor {floor:.0} \
                 (= {min_ratio} x baseline {baseline:.0})"
            ),
            GateError::CeilingViolated {
                metric,
                measured,
                ceiling,
                min_ratio,
                baseline,
            } => write!(
                f,
                "{metric} {measured:.0} rose above the ceiling {ceiling:.0} \
                 (= baseline {baseline:.0} / {min_ratio})"
            ),
        }
    }
}

impl std::error::Error for GateError {}

/// Reads the named numeric metric out of the baseline document,
/// classifying every failure mode.
fn baseline_metric(baseline: &Json, metric: &'static str) -> Result<f64, GateError> {
    let value = baseline
        .get(metric)
        .and_then(Json::as_f64)
        .ok_or(GateError::MissingMetric(metric))?;
    if !value.is_finite() {
        return Err(GateError::NonFiniteMetric { metric, value });
    }
    if value <= 0.0 {
        return Err(GateError::NonPositiveMetric { metric, value });
    }
    Ok(value)
}

/// Gates one measured metric against `min_ratio` × its baseline,
/// returning the human-readable pass line.
fn gate_metric(
    metric: &'static str,
    measured: f64,
    baseline: f64,
    min_ratio: f64,
) -> Result<String, GateError> {
    if !measured.is_finite() || measured <= 0.0 {
        return Err(GateError::EmptyMeasurement(metric));
    }
    let floor = baseline * min_ratio;
    if measured < floor {
        return Err(GateError::FloorViolated {
            metric,
            measured,
            floor,
            min_ratio,
            baseline,
        });
    }
    Ok(format!(
        "{metric} {measured:.0} >= floor {floor:.0} ({:.1}x the gated minimum)",
        measured / floor
    ))
}

/// Gates one measured latency against its ceiling, baseline /
/// `min_ratio` — the downward mirror of [`gate_metric`], with the same
/// slack factor: at `min_ratio` 0.5 a latency may double before the
/// gate trips.
fn gate_ceiling(
    metric: &'static str,
    measured: f64,
    baseline: f64,
    min_ratio: f64,
) -> Result<String, GateError> {
    if !measured.is_finite() || measured <= 0.0 {
        return Err(GateError::EmptyMeasurement(metric));
    }
    let ceiling = baseline / min_ratio;
    if measured > ceiling {
        return Err(GateError::CeilingViolated {
            metric,
            measured,
            ceiling,
            min_ratio,
            baseline,
        });
    }
    Ok(format!(
        "{metric} {measured:.0} <= ceiling {ceiling:.0} ({:.1}x headroom)",
        ceiling / measured
    ))
}

/// Applies the CI performance floors: the report's aggregate ticks/sec
/// must reach `min_ratio` of the baseline's `ticks_per_sec`, and — when
/// the baseline carries a `device_days_per_sec` or `devices_per_sec`
/// entry — the batched tick-kernel probe and the end-to-end campaign
/// probe must reach `min_ratio` of those too. Baselines carrying
/// `warm_start_ns` / `delta_extract_ns` additionally gate the overlay
/// probe's latencies as **ceilings** (baseline / `min_ratio` — smaller
/// is better). Older baselines without any of these fields skip the
/// corresponding gates, keeping the checker backward-accepting like
/// [`crate::fleet::parse_document`].
///
/// `baseline_text` is the checked-in baseline JSON (see
/// `ci/perf-baseline.json`); it needs a top-level numeric
/// `ticks_per_sec` field.
///
/// # Errors
///
/// Returns a typed [`GateError`] — distinguishing an unreadable or
/// degenerate baseline from a genuine floor violation — which renders
/// as the human-readable gate message via `Display`.
pub fn check_floor(
    report: &PerfReport,
    baseline_text: &str,
    min_ratio: f64,
) -> Result<String, GateError> {
    let baseline =
        Json::parse(baseline_text).map_err(|e| GateError::BaselineUnreadable(e.to_string()))?;
    let base_tps = baseline_metric(&baseline, "ticks_per_sec")?;
    let mut verdict = gate_metric(
        "ticks_per_sec",
        throughput_ticks_per_sec(report),
        base_tps,
        min_ratio,
    )?;
    if baseline.get("device_days_per_sec").is_some() {
        let base_ddps = baseline_metric(&baseline, "device_days_per_sec")?;
        let line = gate_metric(
            "device_days_per_sec",
            report.batch.device_days_per_sec,
            base_ddps,
            min_ratio,
        )?;
        verdict.push_str("; ");
        verdict.push_str(&line);
    }
    if baseline.get("devices_per_sec").is_some() {
        let base_campaign = baseline_metric(&baseline, "devices_per_sec")?;
        let line = gate_metric(
            "devices_per_sec",
            report.campaign.devices_per_sec,
            base_campaign,
            min_ratio,
        )?;
        verdict.push_str("; ");
        verdict.push_str(&line);
    }
    if baseline.get("warm_start_ns").is_some() {
        let base_warm = baseline_metric(&baseline, "warm_start_ns")?;
        let line = gate_ceiling(
            "warm_start_ns",
            report.overlay.warm_start_ns,
            base_warm,
            min_ratio,
        )?;
        verdict.push_str("; ");
        verdict.push_str(&line);
    }
    if baseline.get("delta_extract_ns").is_some() {
        let base_delta = baseline_metric(&baseline, "delta_extract_ns")?;
        let line = gate_ceiling(
            "delta_extract_ns",
            report.overlay.delta_extract_ns,
            base_delta,
            min_ratio,
        )?;
        verdict.push_str("; ");
        verdict.push_str(&line);
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PerfConfig {
        PerfConfig {
            mode: "test".to_owned(),
            platform: "exynos9810".to_owned(),
            apps: vec!["facebook".to_owned()],
            governors: vec!["schedutil".to_owned(), "next".to_owned()],
            seeds: vec![1],
            duration_s: 5.0,
            train_budget_s: 10.0,
            workers: 2,
            probe_states: 500,
            batch_width: 4,
            campaign_devices: 2,
            campaign_rounds: 1,
        }
    }

    #[test]
    #[allow(clippy::too_many_lines)]
    fn report_renders_valid_json_with_expected_fields() {
        let report = run(&tiny_config());
        assert_eq!(report.cells.len(), 2);
        let text = report.to_json().render();
        let doc = Json::parse(&text).expect("BENCH.json must be valid JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_f64), Some(7.0));
        assert_eq!(doc.get("mode").and_then(Json::as_str), Some("test"));
        assert_eq!(
            doc.get("platform").and_then(Json::as_str),
            Some("exynos9810")
        );
        let cells = doc
            .get("cells")
            .and_then(Json::as_array)
            .expect("cells array");
        assert_eq!(cells.len(), 2);
        for cell in cells {
            assert_eq!(
                cell.get("ticks").and_then(Json::as_f64),
                Some(200.0),
                "5 s grid"
            );
            assert!(cell.get("wall_s").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(
                cell.get("ns_per_control_step")
                    .and_then(Json::as_f64)
                    .unwrap()
                    > 0.0
            );
        }
        let probes = doc.get("qtable").and_then(Json::as_array).expect("probes");
        assert_eq!(probes.len(), 2);
        assert_eq!(
            probes[0].get("backend").and_then(Json::as_str),
            Some("hash")
        );
        assert_eq!(
            probes[1].get("backend").and_then(Json::as_str),
            Some("dense")
        );
        assert!(doc
            .get("totals")
            .and_then(|t| t.get("ticks_per_sec"))
            .is_some());
        let merge = doc.get("merge").expect("merge probe section");
        assert_eq!(merge.get("tables").and_then(Json::as_f64), Some(16.0));
        assert!(merge.get("speedup").and_then(Json::as_f64).unwrap() > 0.0);
        let batch = doc.get("batch").expect("batch probe section");
        assert_eq!(batch.get("width").and_then(Json::as_f64), Some(4.0));
        assert_eq!(batch.get("ticks").and_then(Json::as_f64), Some(200.0));
        assert!(
            batch
                .get("device_days_per_sec")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        assert!(
            batch
                .get("sequential_device_days_per_sec")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        assert!(batch.get("speedup").and_then(Json::as_f64).unwrap() > 0.0);
        let campaign = doc.get("campaign").expect("campaign probe section");
        assert_eq!(campaign.get("devices").and_then(Json::as_f64), Some(2.0));
        assert_eq!(campaign.get("rounds").and_then(Json::as_f64), Some(1.0));
        assert!(
            campaign
                .get("devices_per_sec")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        assert!(campaign.get("uplink_bytes").and_then(Json::as_u64).unwrap() > 0);
        assert!(campaign.get("seed_wall_s").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(campaign.get("round_wall_s").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(
            campaign
                .get("peak_table_bytes")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        assert!(
            campaign
                .get("table_bytes_reduction")
                .and_then(Json::as_f64)
                .unwrap()
                > 1.0,
            "overlays must beat dense clones even at test scale"
        );
        let overlay = doc.get("overlay").expect("overlay probe section");
        assert!(overlay.get("warm_start_ns").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(
            overlay
                .get("delta_extract_ns")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        assert!(
            overlay
                .get("warm_start_speedup")
                .and_then(Json::as_f64)
                .unwrap()
                > 1.0,
            "an Arc clone must beat a dense copy"
        );
    }

    #[test]
    fn overlay_probe_measures_both_hot_paths() {
        let probe = probe_overlay(2_000, 9);
        assert_eq!(probe.states, 2_000);
        assert_eq!(probe.actions, 9);
        assert!(probe.touched >= 16 && probe.touched <= 2_000);
        assert!(probe.warm_start_ns > 0.0 && probe.dense_clone_ns > 0.0);
        assert!(probe.delta_extract_ns > 0.0 && probe.dense_delta_ns > 0.0);
        // The structural claim, not a tight wall-clock one: sharing a
        // base is faster than copying 2 000 rows.
        assert!(probe.warm_start_speedup() > 1.0);
    }

    #[test]
    fn batch_probe_measures_and_matches_scalar() {
        // The probe itself asserts per-lane bit-equality with the
        // scalar devices, so reaching the return value at all is the
        // equivalence check; here we verify the accounting.
        let apps = vec!["facebook".to_owned(), "youtube".to_owned()];
        let preset = PlatformPreset::by_name("exynos9820").unwrap();
        let probe = probe_batch(3, 10.0, &apps, &preset);
        assert_eq!(probe.width, 3);
        assert_eq!(probe.ticks, 400);
        assert!(probe.batched_wall_s > 0.0 && probe.sequential_wall_s > 0.0);
        assert!(probe.device_days_per_sec > 0.0);
        assert!(probe.sequential_device_days_per_sec > 0.0);
        assert!(probe.speedup() > 0.0);
    }

    #[test]
    fn merge_probe_measures_both_paths() {
        // Structural checks only — the performance claim itself lives
        // in the `federated_merge` criterion bench and the BENCH.json
        // artifact, where wall-clock noise doesn't fail `cargo test`.
        let probe = probe_merge(2_000, 8, 9);
        assert_eq!(probe.tables, 8);
        assert_eq!(probe.states, 2_000);
        assert_eq!(probe.actions, 9);
        assert!(probe.eager_ns > 0.0 && probe.streaming_ns > 0.0);
        assert!(probe.speedup() > 0.0);
    }

    #[test]
    fn control_step_accounting_follows_governor_period() {
        let report = run(&tiny_config());
        for cell in &report.cells {
            let expect = match cell.cell.governor.as_str() {
                "schedutil" | "next" => 50, // 5 s / 100 ms
                other => panic!("unexpected governor {other}"),
            };
            assert_eq!(cell.control_steps, expect);
        }
    }

    #[test]
    fn floor_check_passes_and_fails_correctly() {
        let report = run(&tiny_config());
        let tps = throughput_ticks_per_sec(&report);
        assert!(tps > 0.0);
        let generous = format!("{{\"ticks_per_sec\": {}}}", tps / 10.0);
        assert!(check_floor(&report, &generous, 0.5).is_ok());
        let impossible = format!("{{\"ticks_per_sec\": {}}}", tps * 1e6);
        assert!(matches!(
            check_floor(&report, &impossible, 0.5),
            Err(GateError::FloorViolated {
                metric: "ticks_per_sec",
                ..
            })
        ));
    }

    #[test]
    fn floor_check_gates_device_days_when_baseline_carries_it() {
        let report = run(&tiny_config());
        let tps = throughput_ticks_per_sec(&report);
        let ddps = report.batch.device_days_per_sec;
        assert!(ddps > 0.0);
        let both_pass = format!(
            "{{\"ticks_per_sec\": {}, \"device_days_per_sec\": {}}}",
            tps / 10.0,
            ddps / 10.0
        );
        let verdict = check_floor(&report, &both_pass, 0.5).expect("both gates pass");
        assert!(verdict.contains("device_days_per_sec"));
        let batch_fails = format!(
            "{{\"ticks_per_sec\": {}, \"device_days_per_sec\": {}}}",
            tps / 10.0,
            ddps * 1e6
        );
        assert!(matches!(
            check_floor(&report, &batch_fails, 0.5),
            Err(GateError::FloorViolated {
                metric: "device_days_per_sec",
                ..
            })
        ));
        // Older baselines without the field skip the batch gate.
        let legacy = format!("{{\"ticks_per_sec\": {}}}", tps / 10.0);
        let verdict = check_floor(&report, &legacy, 0.5).expect("legacy baseline passes");
        assert!(!verdict.contains("device_days_per_sec"));
    }

    #[test]
    fn floor_check_gates_campaign_throughput_when_baseline_carries_it() {
        let report = run(&tiny_config());
        let tps = throughput_ticks_per_sec(&report);
        let dps = report.campaign.devices_per_sec;
        assert!(dps > 0.0);
        let both_pass = format!(
            "{{\"ticks_per_sec\": {}, \"devices_per_sec\": {}}}",
            tps / 10.0,
            dps / 10.0
        );
        let verdict = check_floor(&report, &both_pass, 0.5).expect("both gates pass");
        assert!(verdict.contains("devices_per_sec"));
        let campaign_fails = format!(
            "{{\"ticks_per_sec\": {}, \"devices_per_sec\": {}}}",
            tps / 10.0,
            dps * 1e6
        );
        assert!(matches!(
            check_floor(&report, &campaign_fails, 0.5),
            Err(GateError::FloorViolated {
                metric: "devices_per_sec",
                ..
            })
        ));
        let legacy = format!("{{\"ticks_per_sec\": {}}}", tps / 10.0);
        let verdict = check_floor(&report, &legacy, 0.5).expect("legacy baseline passes");
        assert!(!verdict.contains("devices_per_sec"));
    }

    #[test]
    fn floor_check_gates_overlay_latency_ceilings_when_baseline_carries_them() {
        let report = run(&tiny_config());
        let tps = throughput_ticks_per_sec(&report);
        let warm = report.overlay.warm_start_ns;
        let delta = report.overlay.delta_extract_ns;
        assert!(warm > 0.0 && delta > 0.0);
        let both_pass = format!(
            "{{\"ticks_per_sec\": {}, \"warm_start_ns\": {}, \"delta_extract_ns\": {}}}",
            tps / 10.0,
            warm * 10.0,
            delta * 10.0
        );
        let verdict = check_floor(&report, &both_pass, 0.5).expect("ceilings pass");
        assert!(verdict.contains("warm_start_ns"));
        assert!(verdict.contains("delta_extract_ns"));
        // A latency regression trips the ceiling.
        let warm_fails = format!(
            "{{\"ticks_per_sec\": {}, \"warm_start_ns\": {}}}",
            tps / 10.0,
            warm / 1e6
        );
        assert!(matches!(
            check_floor(&report, &warm_fails, 0.5),
            Err(GateError::CeilingViolated {
                metric: "warm_start_ns",
                ..
            })
        ));
        // Legacy baselines without the latency fields skip the gates.
        let legacy = format!("{{\"ticks_per_sec\": {}}}", tps / 10.0);
        let verdict = check_floor(&report, &legacy, 0.5).expect("legacy baseline passes");
        assert!(!verdict.contains("warm_start_ns"));
    }

    #[test]
    fn gate_error_on_unreadable_baseline() {
        let report = run(&tiny_config());
        assert!(matches!(
            check_floor(&report, "not json", 0.5),
            Err(GateError::BaselineUnreadable(_))
        ));
    }

    #[test]
    fn gate_error_on_missing_metric() {
        let report = run(&tiny_config());
        assert_eq!(
            check_floor(&report, "{}", 0.5),
            Err(GateError::MissingMetric("ticks_per_sec"))
        );
        // A non-numeric field is "missing" as a metric too.
        assert_eq!(
            check_floor(&report, "{\"ticks_per_sec\": \"fast\"}", 0.5),
            Err(GateError::MissingMetric("ticks_per_sec"))
        );
    }

    #[test]
    fn gate_error_on_non_finite_metric() {
        // `Json::parse` refuses non-finite literals outright (that
        // path is `BaselineUnreadable`), so exercise the gate math on
        // a programmatically-built document.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let baseline = Json::Obj(vec![("ticks_per_sec".into(), Json::Num(bad))]);
            let err = baseline_metric(&baseline, "ticks_per_sec").unwrap_err();
            assert!(
                matches!(
                    err,
                    GateError::NonFiniteMetric {
                        metric: "ticks_per_sec",
                        ..
                    }
                ),
                "baseline {bad} gave {err:?}"
            );
        }
        // Through the text path an overflowing literal is unreadable,
        // never a silent infinity.
        let report = run(&tiny_config());
        let inf = format!("{{\"ticks_per_sec\": 1{}}}", "0".repeat(400));
        assert!(matches!(
            check_floor(&report, &inf, 0.5),
            Err(GateError::BaselineUnreadable(_))
        ));
    }

    #[test]
    fn gate_error_on_non_positive_metric() {
        let report = run(&tiny_config());
        for bad in ["0", "-125000"] {
            let text = format!("{{\"ticks_per_sec\": {bad}}}");
            assert!(
                matches!(
                    check_floor(&report, &text, 0.5),
                    Err(GateError::NonPositiveMetric {
                        metric: "ticks_per_sec",
                        ..
                    })
                ),
                "baseline {bad} must be rejected as non-positive"
            );
        }
    }

    #[test]
    fn gate_error_on_empty_measurement() {
        let mut report = run(&tiny_config());
        // A zero-wall grid used to gate as a silent throughput of 0;
        // now it is its own typed error.
        report.grid_wall_s = 0.0;
        assert_eq!(
            check_floor(&report, "{\"ticks_per_sec\": 1000}", 0.5),
            Err(GateError::EmptyMeasurement("ticks_per_sec"))
        );
    }

    #[test]
    fn gate_errors_render_via_display() {
        let cases: Vec<(GateError, &str)> = vec![
            (
                GateError::BaselineUnreadable("bad token".into()),
                "baseline",
            ),
            (GateError::MissingMetric("ticks_per_sec"), "missing"),
            (
                GateError::NonFiniteMetric {
                    metric: "ticks_per_sec",
                    value: f64::INFINITY,
                },
                "finite",
            ),
            (
                GateError::NonPositiveMetric {
                    metric: "device_days_per_sec",
                    value: -1.0,
                },
                "positive",
            ),
            (GateError::EmptyMeasurement("ticks_per_sec"), "no usable"),
            (
                GateError::FloorViolated {
                    metric: "ticks_per_sec",
                    measured: 10.0,
                    floor: 100.0,
                    min_ratio: 0.5,
                    baseline: 200.0,
                },
                "below the floor",
            ),
            (
                GateError::CeilingViolated {
                    metric: "warm_start_ns",
                    measured: 500.0,
                    ceiling: 100.0,
                    min_ratio: 0.5,
                    baseline: 50.0,
                },
                "above the ceiling",
            ),
        ];
        for (err, needle) in cases {
            let text = format!("{err}");
            assert!(text.contains(needle), "{text:?} lacks {needle:?}");
        }
    }

    #[test]
    fn governor_periods_are_positive() {
        for gov in StandardEvaluator::GOVERNORS {
            assert!(governor_period_s(gov) > 0.0, "{gov}");
        }
    }

    #[test]
    fn probe_sequence_is_a_permutation() {
        let mut seq = probe_sequence(1000);
        seq.sort_unstable();
        assert_eq!(seq, (0..1000).collect::<Vec<u64>>());
    }
}
