//! The machine-readable performance harness behind `next-sim perf`.
//!
//! Runs a fixed governor×app×seed grid through the parallel sweep
//! engine with per-cell wall-clock timing, microbenches the Q-table
//! storage backends (hash vs dense-indexed) on a fully-populated
//! synthetic table, and emits everything as a `BENCH.json` artifact —
//! the document the CI `perf-smoke` job gates on and the repo's
//! `BENCH_*.json` trajectory entries consume.
//!
//! Everything in the artifact except wall-clock readings is
//! deterministic: the grid, tick counts and summaries are pure
//! functions of the config, so two runs differ only in their `*_s`,
//! `*_ns` and `*_per_sec` fields.

use std::time::Instant;

use next_core::NextConfig;
use qlearn::{QLearning, QStore, QTable};
use simkit::sweep::{self, StandardEvaluator, SweepCell};
use simkit::{Engine, PlatformPreset, Summary};

use crate::json::Json;

/// Version of the `BENCH.json` schema family this harness writes. Bump
/// when a field changes meaning; additions are backwards-compatible.
/// v2 added the optional `fleet` section (`next-sim fleet`) and the
/// federated merge probe; v3 added the `platform` field (the preset
/// the grid ran on) and per-platform fleet sections; v4 adds the `day`
/// section (`next-sim day` battery-day documents).
/// [`crate::fleet::parse_document`] still accepts every earlier
/// version.
pub const SCHEMA_VERSION: u32 = 4;

/// Configuration of one perf-harness run.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Label recorded in the artifact (`"quick"` / `"full"` / custom).
    pub mode: String,
    /// Platform preset the whole grid (and the probes' action count)
    /// runs on.
    pub platform: String,
    /// Applications of the grid.
    pub apps: Vec<String>,
    /// Governors of the grid.
    pub governors: Vec<String>,
    /// Session seeds of the grid.
    pub seeds: Vec<u64>,
    /// Session length per cell, simulated seconds.
    pub duration_s: f64,
    /// Next training budget per app, simulated seconds.
    pub train_budget_s: f64,
    /// Worker threads for the grid.
    pub workers: usize,
    /// States populated in the Q-table backend microbenchmark.
    pub probe_states: usize,
}

impl PerfConfig {
    /// The CI smoke grid: small but exercising every layer (training,
    /// the RL governor, a baseline governor, the sweep engine).
    #[must_use]
    pub fn quick() -> Self {
        PerfConfig {
            mode: "quick".to_owned(),
            platform: "exynos9810".to_owned(),
            apps: vec!["facebook".to_owned(), "spotify".to_owned()],
            governors: vec!["schedutil".to_owned(), "next".to_owned()],
            seeds: vec![1000],
            duration_s: 60.0,
            train_budget_s: 120.0,
            workers: sweep::default_workers(),
            probe_states: 20_000,
        }
    }

    /// The full grid: the six paper apps under the three §V governors.
    #[must_use]
    pub fn full() -> Self {
        PerfConfig {
            mode: "full".to_owned(),
            platform: "exynos9810".to_owned(),
            apps: crate::PAPER_APPS.iter().map(|&a| a.to_owned()).collect(),
            governors: vec![
                "schedutil".to_owned(),
                "intqos".to_owned(),
                "next".to_owned(),
            ],
            seeds: vec![1000],
            duration_s: 120.0,
            train_budget_s: 300.0,
            workers: sweep::default_workers(),
            probe_states: 100_000,
        }
    }
}

/// Timing and outcome of one measured grid cell.
#[derive(Debug, Clone)]
pub struct CellPerf {
    /// The grid point.
    pub cell: SweepCell,
    /// Run summary (power/fps/thermals) of the cell.
    pub summary: Summary,
    /// Wall-clock seconds the cell took on its worker.
    pub wall_s: f64,
    /// 25 ms engine ticks executed.
    pub ticks: u64,
    /// Simulated ticks per wall-clock second.
    pub ticks_per_sec: f64,
    /// Governor control invocations during the run.
    pub control_steps: u64,
    /// Wall-clock nanoseconds per control step (includes the platform
    /// simulation between steps — an upper bound on governor overhead).
    pub ns_per_control_step: f64,
}

/// Microbenchmark of one Q-table storage backend: a fully-populated
/// table driven through the hot argmax + Q-update loop.
#[derive(Debug, Clone)]
pub struct BackendProbe {
    /// Backend name (`"hash"` / `"dense"`).
    pub backend: String,
    /// States populated (each with every action visited).
    pub states: usize,
    /// Actions per state.
    pub actions: usize,
    /// Mean nanoseconds per `best_action` (argmax) probe.
    pub argmax_ns: f64,
    /// Mean nanoseconds per Q-learning update (read + bootstrap + set).
    pub update_ns: f64,
}

/// Microbenchmark of the federated merge: the seed's eager all-keys
/// algorithm versus the streaming accumulator on the same
/// fully-populated dense tables — the fleet's cloud-side throughput.
#[derive(Debug, Clone)]
pub struct MergeProbe {
    /// Tables merged per pass.
    pub tables: usize,
    /// States per table (every one populated).
    pub states: usize,
    /// Actions per state.
    pub actions: usize,
    /// Nanoseconds per full eager merge pass.
    pub eager_ns: f64,
    /// Nanoseconds per full streaming merge pass.
    pub streaming_ns: f64,
}

impl MergeProbe {
    /// How much faster the streaming merge ran (`eager / streaming`).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.streaming_ns > 0.0 {
            self.eager_ns / self.streaming_ns
        } else {
            0.0
        }
    }
}

/// A finished perf run, renderable as `BENCH.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// The configuration that ran.
    pub config: PerfConfig,
    /// Wall-clock seconds spent training Next tables (all apps).
    pub train_wall_s: f64,
    /// Wall-clock seconds of the measured grid phase (parallel).
    pub grid_wall_s: f64,
    /// Per-cell results, in grid order.
    pub cells: Vec<CellPerf>,
    /// Backend microbenchmarks (hash then dense).
    pub probes: Vec<BackendProbe>,
    /// Federated merge throughput probe (fleet cloud path).
    pub merge: MergeProbe,
}

/// Wall-clock period of governor `name`, seconds.
///
/// # Panics
///
/// Panics on an unknown governor name.
#[must_use]
pub fn governor_period_s(name: &str) -> f64 {
    if name == "next" {
        return NextConfig::paper().control_period_s;
    }
    governors::by_name(name)
        .unwrap_or_else(|| panic!("unknown governor '{name}'"))
        .period_s()
}

/// Runs the harness: trains, measures the grid, probes the backends.
///
/// # Panics
///
/// Panics on unknown app, governor or platform names in the config.
#[must_use]
pub fn run(config: &PerfConfig) -> PerfReport {
    let preset = PlatformPreset::by_name(&config.platform)
        .unwrap_or_else(|| panic!("unknown platform '{}'", config.platform));
    let probe_actions = preset.soc.platform.action_count();
    let cells = sweep::grid(
        &config.apps,
        &config.governors,
        &config.seeds,
        Some(config.duration_s),
    );

    let train_started = Instant::now();
    let evaluator =
        StandardEvaluator::prepare_on(&cells, config.train_budget_s, config.workers, preset);
    let train_wall_s = train_started.elapsed().as_secs_f64();

    let grid_started = Instant::now();
    let timed: Vec<(Summary, f64)> = sweep::parallel_map(&cells, config.workers, |cell| {
        let started = Instant::now();
        let summary = evaluator.eval(cell);
        (summary, started.elapsed().as_secs_f64())
    });
    let grid_wall_s = grid_started.elapsed().as_secs_f64();

    // Tick accounting comes from the same Engine the evaluator runs
    // cells on, so BENCH.json cannot drift from what actually executed.
    let engine = Engine::new();
    let cells = cells
        .into_iter()
        .zip(timed)
        .map(|(cell, (summary, wall_s))| {
            let ticks = engine.ticks_for(cell.duration_s);
            let period = governor_period_s(&cell.governor);
            let control_every = engine.control_every_ticks(period);
            let control_steps = ticks / control_every;
            CellPerf {
                ticks,
                ticks_per_sec: if wall_s > 0.0 {
                    ticks as f64 / wall_s
                } else {
                    0.0
                },
                control_steps,
                ns_per_control_step: if control_steps > 0 {
                    wall_s * 1e9 / control_steps as f64
                } else {
                    0.0
                },
                cell,
                summary,
                wall_s,
            }
        })
        .collect();

    let probes = probe_backends(config.probe_states, probe_actions);
    let merge = probe_merge(
        config.probe_states.min(MERGE_PROBE_MAX_STATES),
        16,
        probe_actions,
    );

    PerfReport {
        config: config.clone(),
        train_wall_s,
        grid_wall_s,
        cells,
        probes,
        merge,
    }
}

/// Total simulated ticks across the grid.
#[must_use]
pub fn total_ticks(report: &PerfReport) -> u64 {
    report.cells.iter().map(|c| c.ticks).sum()
}

/// Aggregate throughput of the measured grid phase: simulated ticks per
/// wall-clock second, all workers combined. This is the number the CI
/// floor gates on.
#[must_use]
pub fn throughput_ticks_per_sec(report: &PerfReport) -> f64 {
    if report.grid_wall_s > 0.0 {
        total_ticks(report) as f64 / report.grid_wall_s
    } else {
        0.0
    }
}

fn populate(table: &mut QTable<impl QStore>, states: usize) {
    populate_salted(table, states, 0);
}

fn populate_salted(table: &mut QTable<impl QStore>, states: usize, salt: u64) {
    let actions = table.n_actions();
    for s in 0..states as u64 {
        for a in 0..actions {
            // Any finite value pattern works; vary it so argmax has no
            // degenerate all-equal rows (the salt makes tables differ).
            let v = f64::from(u32::try_from((s + salt + a as u64 * 7) % 13).expect("small")) - 6.0;
            table.set(s, a, v);
        }
    }
}

/// A deterministic, hash-scattering permutation of `0..states`, so the
/// probe loop does not walk the table in its insertion order.
fn probe_sequence(states: usize) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..states as u64).collect();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in (1..keys.len()).rev() {
        // xorshift64* for the shuffle.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let j = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % (i as u64 + 1)) as usize;
        keys.swap(i, j);
    }
    keys
}

fn time_per_op<F: FnMut(u64)>(keys: &[u64], mut op: F) -> f64 {
    // Warm-up pass, then measure whole passes until ≥ 20 ms and ≥ 3
    // passes have accumulated.
    for &k in keys {
        op(k);
    }
    let started = Instant::now();
    let mut ops = 0u64;
    let mut passes = 0u32;
    while passes < 3 || started.elapsed().as_secs_f64() < 0.02 {
        for &k in keys {
            op(k);
        }
        ops += keys.len() as u64;
        passes += 1;
    }
    started.elapsed().as_secs_f64() * 1e9 / ops as f64
}

fn probe_backend<S: QStore>(mut table: QTable<S>, states: usize) -> BackendProbe {
    populate(&mut table, states);
    let keys = probe_sequence(states);
    let learner = QLearning::new(0.25, 0.5);

    let argmax_ns = time_per_op(&keys, |k| {
        std::hint::black_box(table.best_action(std::hint::black_box(k)));
    });
    let mut i = 0usize;
    let update_ns = time_per_op(&keys, |k| {
        let next = keys[i];
        i = (i + 1) % keys.len();
        let (a, _) = table.best_action(k);
        std::hint::black_box(learner.update(&mut table, k, a, 0.5, next));
    });

    BackendProbe {
        backend: S::backend_name().to_owned(),
        states,
        actions: table.n_actions(),
        argmax_ns,
        update_ns,
    }
}

/// Cap on the merge-probe table size, keeping the probe's transient
/// memory (a handful of fully-populated tables) in the tens of MB.
const MERGE_PROBE_MAX_STATES: usize = 50_000;

/// Measures one full federated merge of `tables` fully-populated
/// `states`-state dense tables of `actions` actions (the platform's
/// `3m`), eager vs streaming, in nanoseconds per pass. Two distinct
/// tables are cycled so every fold sees real data without holding
/// `tables` copies in memory.
#[must_use]
pub fn probe_merge(states: usize, tables: usize, actions: usize) -> MergeProbe {
    let build = |salt: u64| {
        let mut t = qlearn::DenseQTable::dense_for_space(actions, 0.0, states as u64);
        populate_salted(&mut t, states, salt);
        t
    };
    let distinct = [build(0), build(5)];
    let refs: Vec<&qlearn::DenseQTable> = (0..tables).map(|i| &distinct[i % 2]).collect();

    let time_pass = |f: &dyn Fn() -> qlearn::DenseQTable| {
        // At least 2 passes and 20 ms, like the backend probes.
        let started = Instant::now();
        let mut passes = 0u32;
        while passes < 2 || started.elapsed().as_secs_f64() < 0.02 {
            std::hint::black_box(f());
            passes += 1;
        }
        started.elapsed().as_secs_f64() * 1e9 / f64::from(passes)
    };
    let eager_ns = time_pass(&|| qlearn::federated::merge_eager(&refs));
    let streaming_ns = time_pass(&|| qlearn::federated::merge(&refs));
    MergeProbe {
        tables,
        states,
        actions,
        eager_ns,
        streaming_ns,
    }
}

/// Benchmarks the argmax + update hot loop of both storage backends on
/// a fully-populated `states`-state table of `actions` actions (compact
/// keys, as produced by the dense `StateSpace` encoding; the dense
/// table declares the space so it gets its direct slot-table index,
/// exactly as the agent does).
#[must_use]
pub fn probe_backends(states: usize, actions: usize) -> Vec<BackendProbe> {
    vec![
        probe_backend(QTable::<qlearn::HashStore>::empty(actions, 0.0), states),
        probe_backend(
            qlearn::DenseQTable::dense_for_space(actions, 0.0, states as u64),
            states,
        ),
    ]
}

impl PerfReport {
    /// The `BENCH.json` document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let cfg = &self.config;
        let grid = Json::Obj(vec![
            (
                "apps".into(),
                Json::Arr(cfg.apps.iter().map(Json::str).collect()),
            ),
            (
                "governors".into(),
                Json::Arr(cfg.governors.iter().map(Json::str).collect()),
            ),
            (
                "seeds".into(),
                Json::Arr(cfg.seeds.iter().map(|&s| Json::num(s as f64)).collect()),
            ),
            ("duration_s".into(), Json::num(cfg.duration_s)),
            ("train_budget_s".into(), Json::num(cfg.train_budget_s)),
            ("workers".into(), Json::num(cfg.workers as f64)),
        ]);
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("app".into(), Json::str(&c.cell.app)),
                    ("governor".into(), Json::str(&c.cell.governor)),
                    ("seed".into(), Json::num(c.cell.seed as f64)),
                    ("duration_s".into(), Json::num(c.cell.duration_s)),
                    ("ticks".into(), Json::num(c.ticks as f64)),
                    ("wall_s".into(), Json::num(c.wall_s)),
                    ("ticks_per_sec".into(), Json::num(c.ticks_per_sec)),
                    ("control_steps".into(), Json::num(c.control_steps as f64)),
                    (
                        "ns_per_control_step".into(),
                        Json::num(c.ns_per_control_step),
                    ),
                    ("avg_power_w".into(), Json::num(c.summary.avg_power_w)),
                    ("avg_fps".into(), Json::num(c.summary.avg_fps)),
                ])
            })
            .collect();
        let probes = self
            .probes
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("backend".into(), Json::str(&p.backend)),
                    ("states".into(), Json::num(p.states as f64)),
                    ("actions".into(), Json::num(p.actions as f64)),
                    ("argmax_ns".into(), Json::num(p.argmax_ns)),
                    ("update_ns".into(), Json::num(p.update_ns)),
                ])
            })
            .collect();
        let dense_speedup = self.dense_speedup().map_or(Json::Null, Json::num);
        let merge = Json::Obj(vec![
            ("tables".into(), Json::num(self.merge.tables as f64)),
            ("states".into(), Json::num(self.merge.states as f64)),
            ("actions".into(), Json::num(self.merge.actions as f64)),
            ("eager_ns".into(), Json::num(self.merge.eager_ns)),
            ("streaming_ns".into(), Json::num(self.merge.streaming_ns)),
            ("speedup".into(), Json::num(self.merge.speedup())),
        ]);
        Json::Obj(vec![
            ("schema".into(), Json::num(f64::from(SCHEMA_VERSION))),
            ("harness".into(), Json::str("next-sim perf")),
            ("mode".into(), Json::str(&cfg.mode)),
            ("platform".into(), Json::str(&cfg.platform)),
            ("grid".into(), grid),
            (
                "train".into(),
                Json::Obj(vec![("wall_s".into(), Json::num(self.train_wall_s))]),
            ),
            ("cells".into(), Json::Arr(cells)),
            (
                "totals".into(),
                Json::Obj(vec![
                    ("cells".into(), Json::num(self.cells.len() as f64)),
                    ("ticks".into(), Json::num(total_ticks(self) as f64)),
                    ("grid_wall_s".into(), Json::num(self.grid_wall_s)),
                    (
                        "ticks_per_sec".into(),
                        Json::num(throughput_ticks_per_sec(self)),
                    ),
                ]),
            ),
            ("qtable".into(), Json::Arr(probes)),
            ("dense_speedup".into(), dense_speedup),
            ("merge".into(), merge),
        ])
    }

    /// How much faster the dense backend ran the argmax+update loop
    /// than the hash backend (`hash_time / dense_time`), if both probes
    /// are present.
    #[must_use]
    pub fn dense_speedup(&self) -> Option<f64> {
        let hash = self.probes.iter().find(|p| p.backend == "hash")?;
        let dense = self.probes.iter().find(|p| p.backend == "dense")?;
        let dense_total = dense.argmax_ns + dense.update_ns;
        (dense_total > 0.0).then(|| (hash.argmax_ns + hash.update_ns) / dense_total)
    }
}

/// Applies the CI throughput floor: the report's aggregate ticks/sec
/// must reach `min_ratio` of the baseline's `ticks_per_sec`.
///
/// `baseline_text` is the checked-in baseline JSON (see
/// `ci/perf-baseline.json`); it needs a top-level numeric
/// `ticks_per_sec` field.
///
/// # Errors
///
/// Returns a human-readable description when the baseline cannot be
/// read or the floor is violated.
pub fn check_floor(
    report: &PerfReport,
    baseline_text: &str,
    min_ratio: f64,
) -> Result<String, String> {
    let baseline = Json::parse(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let base_tps = baseline
        .get("ticks_per_sec")
        .and_then(Json::as_f64)
        .ok_or("baseline: missing numeric 'ticks_per_sec'")?;
    if base_tps <= 0.0 || base_tps.is_nan() {
        return Err("baseline: 'ticks_per_sec' must be positive".to_owned());
    }
    let measured = throughput_ticks_per_sec(report);
    let floor = base_tps * min_ratio;
    if measured < floor {
        return Err(format!(
            "throughput {measured:.0} ticks/s fell below the floor {floor:.0} ticks/s \
             (= {min_ratio} x baseline {base_tps:.0})",
        ));
    }
    Ok(format!(
        "throughput {measured:.0} ticks/s >= floor {floor:.0} ticks/s \
         ({:.1}x the gated minimum)",
        measured / floor
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PerfConfig {
        PerfConfig {
            mode: "test".to_owned(),
            platform: "exynos9810".to_owned(),
            apps: vec!["facebook".to_owned()],
            governors: vec!["schedutil".to_owned(), "next".to_owned()],
            seeds: vec![1],
            duration_s: 5.0,
            train_budget_s: 10.0,
            workers: 2,
            probe_states: 500,
        }
    }

    #[test]
    fn report_renders_valid_json_with_expected_fields() {
        let report = run(&tiny_config());
        assert_eq!(report.cells.len(), 2);
        let text = report.to_json().render();
        let doc = Json::parse(&text).expect("BENCH.json must be valid JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("mode").and_then(Json::as_str), Some("test"));
        assert_eq!(
            doc.get("platform").and_then(Json::as_str),
            Some("exynos9810")
        );
        let cells = doc
            .get("cells")
            .and_then(Json::as_array)
            .expect("cells array");
        assert_eq!(cells.len(), 2);
        for cell in cells {
            assert_eq!(
                cell.get("ticks").and_then(Json::as_f64),
                Some(200.0),
                "5 s grid"
            );
            assert!(cell.get("wall_s").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(
                cell.get("ns_per_control_step")
                    .and_then(Json::as_f64)
                    .unwrap()
                    > 0.0
            );
        }
        let probes = doc.get("qtable").and_then(Json::as_array).expect("probes");
        assert_eq!(probes.len(), 2);
        assert_eq!(
            probes[0].get("backend").and_then(Json::as_str),
            Some("hash")
        );
        assert_eq!(
            probes[1].get("backend").and_then(Json::as_str),
            Some("dense")
        );
        assert!(doc
            .get("totals")
            .and_then(|t| t.get("ticks_per_sec"))
            .is_some());
        let merge = doc.get("merge").expect("merge probe section");
        assert_eq!(merge.get("tables").and_then(Json::as_f64), Some(16.0));
        assert!(merge.get("speedup").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn merge_probe_measures_both_paths() {
        // Structural checks only — the performance claim itself lives
        // in the `federated_merge` criterion bench and the BENCH.json
        // artifact, where wall-clock noise doesn't fail `cargo test`.
        let probe = probe_merge(2_000, 8, 9);
        assert_eq!(probe.tables, 8);
        assert_eq!(probe.states, 2_000);
        assert_eq!(probe.actions, 9);
        assert!(probe.eager_ns > 0.0 && probe.streaming_ns > 0.0);
        assert!(probe.speedup() > 0.0);
    }

    #[test]
    fn control_step_accounting_follows_governor_period() {
        let report = run(&tiny_config());
        for cell in &report.cells {
            let expect = match cell.cell.governor.as_str() {
                "schedutil" | "next" => 50, // 5 s / 100 ms
                other => panic!("unexpected governor {other}"),
            };
            assert_eq!(cell.control_steps, expect);
        }
    }

    #[test]
    fn floor_check_passes_and_fails_correctly() {
        let report = run(&tiny_config());
        let tps = throughput_ticks_per_sec(&report);
        assert!(tps > 0.0);
        let generous = format!("{{\"ticks_per_sec\": {}}}", tps / 10.0);
        assert!(check_floor(&report, &generous, 0.5).is_ok());
        let impossible = format!("{{\"ticks_per_sec\": {}}}", tps * 1e6);
        assert!(check_floor(&report, &impossible, 0.5).is_err());
        assert!(check_floor(&report, "not json", 0.5).is_err());
        assert!(check_floor(&report, "{}", 0.5).is_err());
    }

    #[test]
    fn governor_periods_are_positive() {
        for gov in StandardEvaluator::GOVERNORS {
            assert!(governor_period_s(gov) > 0.0, "{gov}");
        }
    }

    #[test]
    fn probe_sequence_is_a_permutation() {
        let mut seq = probe_sequence(1000);
        seq.sort_unstable();
        assert_eq!(seq, (0..1000).collect::<Vec<u64>>());
    }
}
