//! Self-contained single-file HTML day viewer.
//!
//! [`day_html`] renders recorded battery-day cells — `(DayReport,
//! TickTrace)` pairs from [`simkit::run_days_traced`] — as one HTML
//! document with **no external assets**: styles, the (tiny) script and
//! every chart are inline, the charts are plain SVG, and nothing reads
//! the clock, so the same cells always render byte-identical HTML. The
//! CLI writes it via `next-sim day --report day.html` and CI uploads it
//! as an artifact.
//!
//! Per cell the viewer shows:
//!
//! * the session/gap **timeline** (one rect per pickup, colored by app),
//! * the **thermal trace** (device, battery and per-domain die
//!   temperatures over the day, downsampled to a bounded point count),
//! * per-session **PPDW bars** (Eq. 1 of the paper),
//! * the governor's **action heatmap** (time × action index), rendered
//!   only for governors that expose decisions (the `next` agent).
//!
//! Machine-readable section markers (`<!-- section:timeline -->`,
//! `:thermal`, `:ppdw`, `:actions`) bracket each chart so smoke tests
//! can assert presence without parsing HTML.
//!
//! # Example
//!
//! ```
//! use bench::report::day_html;
//! use next_core::QTableStore;
//! use simkit::day::{run_day_traced, DaySpec};
//! use workload::{DayPlan, DayPlanConfig, Persona};
//!
//! let cfg = DayPlanConfig {
//!     pickups: 1,
//!     day_length_s: 120.0,
//!     session_scale: 0.1,
//!     min_session_s: 10.0,
//! };
//! let plan = DayPlan::generate(&Persona::socialite(), &cfg, 7);
//! let spec = DaySpec::new(plan, "schedutil");
//! let mut store: QTableStore = QTableStore::in_memory();
//! let cell = run_day_traced(&spec, &mut store);
//! let html = day_html(std::slice::from_ref(&cell));
//! assert!(html.starts_with("<!DOCTYPE html>"));
//! assert!(html.contains("<!-- section:timeline -->"));
//! assert!(html.contains("<!-- section:thermal -->"));
//! ```

use std::fmt::Write as _;

use simkit::day::DayReport;
use simkit::trace::TickTrace;
use simkit::PlatformPreset;

/// Maximum points per rendered polyline; a full 16 h day (~2.4 M
/// ticks) is strided down to this budget so the file stays small.
const MAX_POINTS: usize = 1200;

/// Time buckets along the action heatmap's x axis.
const HEAT_BUCKETS: usize = 72;

/// Chart canvas width in CSS pixels.
const W: f64 = 900.0;

/// Line-chart color palette (domains, then device/battery reuse).
const PALETTE: [&str; 8] = [
    "#4363d8", "#e6194b", "#3cb44b", "#f58231", "#911eb4", "#0aa6a6", "#f032e6", "#808000",
];

/// Escapes text for HTML/SVG bodies and attribute values.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a float with `digits` decimals (charts never need more).
fn fx(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Deterministic app → palette color (stable across cells so the same
/// app gets the same color in every timeline).
fn app_color(app: &str) -> &'static str {
    let mut h: u64 = 1_469_598_103;
    for b in app.bytes() {
        h = h.wrapping_mul(31).wrapping_add(u64::from(b));
    }
    #[allow(clippy::cast_possible_truncation)]
    PALETTE[(h % PALETTE.len() as u64) as usize]
}

/// Stride that keeps at most [`MAX_POINTS`] of `len` samples.
fn stride_for(len: usize) -> usize {
    len.div_ceil(MAX_POINTS).max(1)
}

/// An SVG polyline for `(x, y)` points already in pixel space.
fn polyline(points: &[(f64, f64)], color: &str) -> String {
    let mut pts = String::with_capacity(points.len() * 12);
    for (x, y) in points {
        let _ = write!(pts, "{},{} ", fx(*x, 1), fx(*y, 1));
    }
    format!(
        "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.2\" points=\"{}\"/>\n",
        pts.trim_end()
    )
}

/// The session/gap timeline band for one cell.
fn timeline_svg(report: &DayReport) -> String {
    let day_s = report.plan.day_length_s.max(1e-9);
    let h = 64.0;
    let band_y = 18.0;
    let band_h = 28.0;
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {h}\" width=\"{W}\" height=\"{h}\" role=\"img\">\n\
         <rect x=\"0\" y=\"{band_y}\" width=\"{W}\" height=\"{band_h}\" fill=\"#eceff4\"/>\n"
    );
    for (s, p) in report.sessions.iter().zip(&report.plan.pickups) {
        let x = s.start_s / day_s * W;
        let w = (p.duration_s / day_s * W).max(1.0);
        let color = app_color(&s.app);
        let _ = writeln!(
            svg,
            "<rect x=\"{}\" y=\"{band_y}\" width=\"{}\" height=\"{band_h}\" fill=\"{color}\">\
             <title>#{} {} @ {} s for {} s</title></rect>",
            fx(x, 2),
            fx(w, 2),
            s.pickup,
            esc(&s.app),
            fx(s.start_s, 0),
            fx(p.duration_s, 0),
        );
    }
    // Hour ticks along the bottom edge.
    let hours = (day_s / 3600.0).ceil();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    for hr in 0..=(hours as u64) {
        #[allow(clippy::cast_precision_loss)]
        let x = (hr as f64) * 3600.0 / day_s * W;
        if x > W {
            break;
        }
        let _ = writeln!(
            svg,
            "<line x1=\"{x}\" y1=\"{}\" x2=\"{x}\" y2=\"{}\" stroke=\"#999\"/>\
             <text x=\"{x}\" y=\"{}\" font-size=\"9\" fill=\"#555\">{hr}h</text>",
            band_y + band_h,
            band_y + band_h + 5.0,
            band_y + band_h + 15.0,
            x = fx(x, 1),
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// The thermal line chart: device, battery and per-domain temperatures.
fn thermal_svg(trace: &TickTrace, domain_names: &[String]) -> String {
    let records = &trace.records;
    if records.is_empty() {
        return "<p class=\"empty\">no ticks recorded</p>\n".to_owned();
    }
    let h = 220.0;
    let pad = 28.0;
    let day_s = records.last().map_or(1.0, |r| r.time_s).max(1e-9);
    let m = usize::from(trace.meta.n_domains);
    // Series: device, battery, then one per domain.
    let mut names: Vec<String> = vec!["device".to_owned(), "battery".to_owned()];
    for d in 0..m {
        names.push(
            domain_names
                .get(d)
                .cloned()
                .unwrap_or_else(|| format!("domain{d}")),
        );
    }
    let value = |ri: usize, si: usize| -> f64 {
        let r = &records[ri];
        f64::from(match si {
            0 => r.temp_device_c,
            1 => r.temp_battery_c,
            _ => r.temp_domain_c.get(si - 2).copied().unwrap_or(0.0),
        })
    };
    let stride = stride_for(records.len());
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for ri in (0..records.len()).step_by(stride) {
        for si in 0..names.len() {
            let v = value(ri, si);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let span = (hi - lo).max(0.5);
    let x_of = |t: f64| t / day_s * (W - 2.0 * pad) + pad;
    let y_of = |v: f64| h - pad - (v - lo) / span * (h - 2.0 * pad);
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {h}\" width=\"{W}\" height=\"{h}\" role=\"img\">\n\
         <rect x=\"{pad}\" y=\"{pad}\" width=\"{}\" height=\"{}\" fill=\"#fafbfc\" stroke=\"#ddd\"/>\n",
        W - 2.0 * pad,
        h - 2.0 * pad,
    );
    let _ = writeln!(
        svg,
        "<text x=\"4\" y=\"{}\" font-size=\"9\" fill=\"#555\">{} °C</text>\
         <text x=\"4\" y=\"{}\" font-size=\"9\" fill=\"#555\">{} °C</text>",
        fx(y_of(hi), 1),
        fx(hi, 1),
        fx(y_of(lo), 1),
        fx(lo, 1),
    );
    for (si, name) in names.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let points: Vec<(f64, f64)> = (0..records.len())
            .step_by(stride)
            .map(|ri| (x_of(records[ri].time_s), y_of(value(ri, si))))
            .collect();
        svg.push_str(&polyline(&points, color));
        // Legend swatch + label, laid out left to right.
        #[allow(clippy::cast_precision_loss)]
        let lx = pad + (si as f64) * 110.0;
        let _ = writeln!(
            svg,
            "<rect x=\"{}\" y=\"4\" width=\"10\" height=\"10\" fill=\"{color}\"/>\
             <text x=\"{}\" y=\"13\" font-size=\"10\" fill=\"#333\">{}</text>",
            fx(lx, 1),
            fx(lx + 13.0, 1),
            esc(name),
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Per-session PPDW bar chart.
fn ppdw_svg(report: &DayReport) -> String {
    if report.sessions.is_empty() {
        return "<p class=\"empty\">no sessions</p>\n".to_owned();
    }
    let h = 160.0;
    let pad = 24.0;
    let max = report
        .sessions
        .iter()
        .map(|s| s.ppdw)
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let n = report.sessions.len() as f64;
    let slot = (W - 2.0 * pad) / n;
    let bar_w = (slot * 0.8).min(40.0);
    let mut svg =
        format!("<svg viewBox=\"0 0 {W} {h}\" width=\"{W}\" height=\"{h}\" role=\"img\">\n");
    for (i, s) in report.sessions.iter().enumerate() {
        #[allow(clippy::cast_precision_loss)]
        let x = pad + (i as f64) * slot + (slot - bar_w) / 2.0;
        let bar_h = s.ppdw / max * (h - 2.0 * pad);
        let _ = writeln!(
            svg,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\">\
             <title>#{} {}: PPDW {}</title></rect>",
            fx(x, 1),
            fx(h - pad - bar_h, 1),
            fx(bar_w, 1),
            fx(bar_h.max(0.5), 1),
            app_color(&s.app),
            s.pickup,
            esc(&s.app),
            fx(s.ppdw, 3),
        );
    }
    let _ = writeln!(
        svg,
        "<text x=\"4\" y=\"{}\" font-size=\"9\" fill=\"#555\">max {}</text>",
        pad + 4.0,
        fx(max, 3),
    );
    svg.push_str("</svg>\n");
    svg
}

/// Action heatmap (time bucket × action index) for governors that
/// expose decisions; `None` when the trace recorded no actions.
fn actions_svg(trace: &TickTrace, action_count: usize) -> Option<String> {
    let records = &trace.records;
    let day_s = records.last().map_or(0.0, |r| r.time_s).max(1e-9);
    let rows = records
        .iter()
        .filter_map(|r| r.action)
        .map(|a| usize::from(a) + 1)
        .max()?
        .max(action_count);
    let mut counts = vec![0u32; rows * HEAT_BUCKETS];
    for r in records {
        if let Some(a) = r.action {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let b = ((r.time_s / day_s * HEAT_BUCKETS as f64) as usize).min(HEAT_BUCKETS - 1);
            counts[usize::from(a) * HEAT_BUCKETS + b] += 1;
        }
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let cell_h = 14.0;
    let pad = 24.0;
    #[allow(clippy::cast_precision_loss)]
    let h = pad + rows as f64 * cell_h + 8.0;
    #[allow(clippy::cast_precision_loss)]
    let cell_w = (W - 2.0 * pad) / HEAT_BUCKETS as f64;
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {h}\" width=\"{W}\" height=\"{}\" role=\"img\">\n",
        fx(h, 0)
    );
    for a in 0..rows {
        #[allow(clippy::cast_precision_loss)]
        let y = pad + a as f64 * cell_h;
        let _ = writeln!(
            svg,
            "<text x=\"2\" y=\"{}\" font-size=\"9\" fill=\"#555\">a{a}</text>",
            fx(y + cell_h - 4.0, 1),
        );
        for b in 0..HEAT_BUCKETS {
            let c = counts[a * HEAT_BUCKETS + b];
            if c == 0 {
                continue;
            }
            let opacity = f64::from(c) / f64::from(peak);
            #[allow(clippy::cast_precision_loss)]
            let x = pad + b as f64 * cell_w;
            let _ = writeln!(
                svg,
                "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#4363d8\" \
                 fill-opacity=\"{}\"><title>action {a}, bucket {b}: {c}</title></rect>",
                fx(x, 1),
                fx(y, 1),
                fx(cell_w - 0.5, 2),
                fx(cell_h - 1.0, 1),
                fx(opacity.max(0.08), 3),
            );
        }
    }
    svg.push_str("</svg>\n");
    Some(svg)
}

/// Key figures table for one cell.
fn kpi_table(report: &DayReport) -> String {
    format!(
        "<table class=\"kpi\"><tr>\
         <td>screen-on</td><td>{} s</td>\
         <td>energy</td><td>{} J</td>\
         <td>avg FPS</td><td>{}</td>\
         <td>avg power</td><td>{} W</td>\
         <td>peak hot-spot</td><td>{} °C</td>\
         <td>drain</td><td>{} %</td>\
         <td>trainings</td><td>{}</td>\
         </tr></table>\n",
        fx(report.screen_on_s, 0),
        fx(report.energy_total_j(), 0),
        fx(report.avg_fps, 2),
        fx(report.avg_power_w, 3),
        fx(report.peak_temp_hot_c, 2),
        fx(report.battery_drain_pct, 2),
        report.trainings,
    )
}

/// Renders recorded day cells as one self-contained HTML document.
///
/// Deterministic: the output is a pure function of `cells` (no clock,
/// no randomness), so regenerating the report from a replayed trace
/// yields the identical file.
#[must_use]
pub fn day_html(cells: &[(DayReport, TickTrace)]) -> String {
    let mut body = String::new();
    for (ci, (report, trace)) in cells.iter().enumerate() {
        // Domain names / action count from the preset when the platform
        // is known; generic fallbacks keep foreign traces renderable.
        let preset = PlatformPreset::by_name(&report.platform);
        let domain_names: Vec<String> = preset.as_ref().map_or_else(Vec::new, |p| {
            p.soc
                .platform
                .domains()
                .iter()
                .map(|d| d.name.clone())
                .collect()
        });
        let action_count = preset.as_ref().map_or(0, |p| p.soc.platform.action_count());
        let _ = write!(
            body,
            "<section class=\"cell\" id=\"cell{ci}\">\n\
             <h2>{} day · seed {} · <b>{}</b> on {}</h2>\n",
            esc(&report.plan.persona),
            report.plan.seed,
            esc(&report.governor),
            esc(&report.platform),
        );
        body.push_str(&kpi_table(report));
        body.push_str("<!-- section:timeline -->\n<h3>Session / gap timeline</h3>\n");
        body.push_str(&timeline_svg(report));
        body.push_str("<!-- section:thermal -->\n<h3>Thermal trace</h3>\n");
        body.push_str(&thermal_svg(trace, &domain_names));
        body.push_str("<!-- section:ppdw -->\n<h3>Per-session PPDW</h3>\n");
        body.push_str(&ppdw_svg(report));
        body.push_str("<!-- section:actions -->\n<h3>Action heatmap</h3>\n");
        match actions_svg(trace, action_count) {
            Some(svg) => body.push_str(&svg),
            None => {
                body.push_str("<p class=\"empty\">no recorded decisions (baseline governor)</p>\n");
            }
        }
        body.push_str("</section>\n");
    }
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>next-sim day report</title>\n\
         <style>\n\
         body{{font:14px/1.45 system-ui,sans-serif;margin:24px;color:#222;max-width:960px}}\n\
         h2{{border-bottom:1px solid #ddd;padding-bottom:4px}}\n\
         .kpi td{{padding:2px 8px 2px 0;color:#444}}\n\
         .kpi td:nth-child(odd){{color:#888;font-size:12px;text-transform:uppercase}}\n\
         .empty{{color:#888;font-style:italic}}\n\
         section.cell{{margin-bottom:40px}}\n\
         </style>\n</head>\n<body>\n\
         <h1>next-sim battery-day report</h1>\n\
         <p>{} recorded cell(s). Hover chart elements for exact values.</p>\n\
         {body}\
         <script>\n\
         // Clicking a section heading collapses its chart (pure DOM, no
         // external code; the report stays fully static without it).\n\
         for (const h of document.querySelectorAll('h3')) {{\n\
           h.style.cursor = 'pointer';\n\
           h.addEventListener('click', () => {{\n\
             const el = h.nextElementSibling;\n\
             if (el) el.style.display = el.style.display === 'none' ? '' : 'none';\n\
           }});\n\
         }}\n\
         </script>\n</body>\n</html>\n",
        cells.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::trace::{SegmentKind, TickRecord, TickTrace, TraceMeta};

    /// A tiny synthetic cell (no simulation) for rendering tests.
    fn synthetic_cell() -> (DayReport, TickTrace) {
        use workload::{DayPlan, DayPlanConfig, Persona};
        let cfg = DayPlanConfig {
            pickups: 2,
            day_length_s: 600.0,
            session_scale: 0.1,
            min_session_s: 15.0,
        };
        let plan = DayPlan::generate(&Persona::socialite(), &cfg, 7);
        let meta = TraceMeta {
            platform: "exynos9810".to_owned(),
            persona: plan.persona.clone(),
            seed: plan.seed,
            plan: plan.config,
            ..TraceMeta::example()
        };
        let mut records = Vec::new();
        for i in 0..200u16 {
            let mut r = TickRecord::idle(f64::from(i) * 3.0, SegmentKind::Gap, 0, 3);
            r.temp_device_c = 25.0 + f32::from(i % 50) * 0.1;
            if i % 4 == 0 {
                r.action = Some(i % 9);
            }
            records.push(r);
        }
        let sessions: Vec<simkit::SessionReport> = plan
            .pickups
            .iter()
            .enumerate()
            .map(|(i, p)| simkit::SessionReport {
                pickup: i,
                app: p.app.clone(),
                start_s: p.start_s,
                duration_s: p.duration_s,
                summary: simkit::Summary::default(),
                ppdw: 1.0 + i as f64,
                start_temp_hot_c: 30.0,
            })
            .collect();
        let report = DayReport {
            governor: "next".to_owned(),
            platform: "exynos9810".to_owned(),
            sessions,
            screen_on_s: 60.0,
            screen_off_s: 540.0,
            energy_screen_on_j: 120.0,
            energy_gap_j: 60.0,
            avg_fps: 52.0,
            avg_power_w: 2.0,
            peak_temp_hot_c: 41.0,
            trainings: 1,
            battery_drain_pct: 0.3,
            charges_used: 0.003,
            plan,
        };
        (report, TickTrace { meta, records })
    }

    #[test]
    fn report_is_self_contained_and_marked() {
        let cell = synthetic_cell();
        let html = day_html(std::slice::from_ref(&cell));
        assert!(html.starts_with("<!DOCTYPE html>"));
        for marker in [
            "<!-- section:timeline -->",
            "<!-- section:thermal -->",
            "<!-- section:ppdw -->",
            "<!-- section:actions -->",
        ] {
            assert!(html.contains(marker), "missing {marker}");
        }
        // No external assets of any kind.
        for needle in ["http://", "https://", "<link", "src="] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
        assert!(html.contains("<polyline"), "thermal chart missing");
        assert!(html.contains("fill-opacity"), "action heatmap missing");
    }

    #[test]
    fn report_is_deterministic() {
        let cell = synthetic_cell();
        let a = day_html(std::slice::from_ref(&cell));
        let b = day_html(std::slice::from_ref(&cell));
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_without_decisions_says_so() {
        let (report, mut trace) = synthetic_cell();
        for r in &mut trace.records {
            r.action = None;
        }
        let html = day_html(&[(report, trace)]);
        assert!(html.contains("no recorded decisions"));
    }

    #[test]
    fn escapes_html_in_names() {
        let (mut report, trace) = synthetic_cell();
        report.governor = "<script>alert(1)</script>".to_owned();
        let html = day_html(&[(report, trace)]);
        assert!(!html.contains("<script>alert"));
        assert!(html.contains("&lt;script&gt;"));
    }
}
