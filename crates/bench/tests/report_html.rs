//! Smoke tests for the single-file HTML day viewer.
//!
//! The report is rendered from a real (tiny) recorded day and checked
//! for the contract CI relies on: well-formed skeleton, all four
//! section markers per cell, strictly no external assets, balanced
//! `<svg>`/`<section>` tags, and determinism.

use bench::report::day_html;
use next_core::QTableStore;
use simkit::day::{run_day_traced, DaySpec};
use simkit::trace::TickTrace;
use simkit::DayReport;
use workload::{DayPlan, DayPlanConfig, Persona};

fn recorded_cell(governor: &str) -> (DayReport, TickTrace) {
    let cfg = DayPlanConfig {
        pickups: 2,
        day_length_s: 240.0,
        session_scale: 0.1,
        min_session_s: 15.0,
    };
    let plan = DayPlan::generate(&Persona::socialite(), &cfg, 7);
    let spec = DaySpec::new(plan, governor).with_train_budget_s(30.0);
    let mut store: QTableStore = QTableStore::in_memory();
    run_day_traced(&spec, &mut store)
}

fn count(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

#[test]
fn report_skeleton_is_well_formed() {
    let cells = vec![recorded_cell("schedutil"), recorded_cell("next")];
    let html = day_html(&cells);
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.trim_end().ends_with("</html>"));
    assert_eq!(count(&html, "<html"), count(&html, "</html>"));
    assert_eq!(count(&html, "<body"), count(&html, "</body>"));
    assert_eq!(
        count(&html, "<svg"),
        count(&html, "</svg>"),
        "unbalanced svg"
    );
    assert_eq!(
        count(&html, "<section"),
        count(&html, "</section>"),
        "unbalanced section"
    );
}

#[test]
fn every_cell_carries_all_section_markers() {
    let cells = vec![recorded_cell("schedutil"), recorded_cell("next")];
    let html = day_html(&cells);
    for marker in [
        "<!-- section:timeline -->",
        "<!-- section:thermal -->",
        "<!-- section:ppdw -->",
        "<!-- section:actions -->",
    ] {
        assert_eq!(count(&html, marker), cells.len(), "marker {marker}");
    }
    // The learning governor draws a heatmap; the baseline states the
    // absence instead of rendering an empty chart.
    assert!(html.contains("fill-opacity"), "next action heatmap missing");
    assert!(
        html.contains("no recorded decisions"),
        "baseline note missing"
    );
}

#[test]
fn report_is_fully_self_contained() {
    let cells = vec![recorded_cell("schedutil")];
    let html = day_html(&cells);
    for needle in ["http://", "https://", "<link", "src=", "@import", "url("] {
        assert!(!html.contains(needle), "external reference: {needle}");
    }
}

#[test]
fn report_is_deterministic_across_renders() {
    let cells = vec![recorded_cell("schedutil")];
    assert_eq!(day_html(&cells), day_html(&cells));
}
