//! The `3m`-action space of Next (§IV-B).
//!
//! With `m` PE clusters and cluster-wise DVFS there are `3m` actions:
//! frequency up, frequency down, or do nothing, per DVFS domain. On the
//! Exynos 9810 (`m = 3`) that yields the paper's 9 actions; the
//! 9820-class preset (`m = 4`) yields 12. "Setting operating frequency
//! means to set the maxfreq of the respective PE to that operating
//! frequency" — actions move the cap, and the hardware stays free to
//! run anywhere between `minfreq` and the cap.
//!
//! Actions are indexed domain-major (`index = 3·domain + direction`),
//! so for `m = 3` the layout is bit-compatible with the seed's fixed
//! 9-action table.

use mpsoc::dvfs::DvfsController;
use mpsoc::platform::DomainId;

/// Directions per domain (up / down / hold).
pub const DIRECTIONS: usize = 3;

/// Direction of a frequency-cap move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Raise the cap one OPP.
    Up,
    /// Lower the cap one OPP.
    Down,
    /// Leave the cap unchanged.
    Hold,
}

impl Direction {
    /// All directions in index order.
    pub const ALL: [Direction; DIRECTIONS] = [Direction::Up, Direction::Down, Direction::Hold];

    /// Stable index of the direction within [`Direction::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Direction::Up => 0,
            Direction::Down => 1,
            Direction::Hold => 2,
        }
    }
}

/// One Next action: a direction applied to one domain's `maxfreq` cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Action {
    /// DVFS domain whose cap the action moves.
    pub domain: DomainId,
    /// The move.
    pub direction: Direction,
}

impl Action {
    /// Size of the action space for a platform with `n_domains` DVFS
    /// domains: `3m`.
    #[must_use]
    pub fn count(n_domains: usize) -> usize {
        DIRECTIONS * n_domains
    }

    /// The action at table index `idx` of an `n_domains`-domain
    /// platform.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= Action::count(n_domains)`.
    #[must_use]
    pub fn from_index(idx: usize, n_domains: usize) -> Self {
        assert!(
            idx < Action::count(n_domains),
            "action index {idx} out of range for {n_domains} domains"
        );
        Action {
            domain: DomainId::new(idx / DIRECTIONS),
            direction: Direction::ALL[idx % DIRECTIONS],
        }
    }

    /// The table index of this action (domain-major).
    #[must_use]
    pub fn index(self) -> usize {
        self.domain.index() * DIRECTIONS + self.direction.index()
    }

    /// All actions of an `n_domains`-domain platform, in index order.
    pub fn all(n_domains: usize) -> impl Iterator<Item = Action> {
        (0..Action::count(n_domains)).map(move |i| Action::from_index(i, n_domains))
    }

    /// Applies the action to the DVFS controller by stepping the
    /// domain's `maxfreq` cap.
    pub fn apply(self, dvfs: &mut DvfsController) {
        let dom = dvfs.domain_mut(self.domain);
        match self.direction {
            Direction::Up => {
                dom.step_max_up();
            }
            Direction::Down => {
                dom.step_max_down();
            }
            Direction::Hold => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc::platform::Platform;

    fn big() -> DomainId {
        DomainId::new(0)
    }
    fn little() -> DomainId {
        DomainId::new(1)
    }
    fn gpu() -> DomainId {
        DomainId::new(2)
    }

    #[test]
    fn three_domains_give_the_papers_nine_actions() {
        assert_eq!(Action::count(3), 9);
        let mut seen = std::collections::HashSet::new();
        for a in Action::all(3) {
            seen.insert((a.domain, a.direction));
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn four_domains_give_twelve_actions() {
        assert_eq!(Action::count(4), 12);
        assert_eq!(Action::all(4).count(), 12);
        let last = Action::from_index(11, 4);
        assert_eq!(last.domain.index(), 3);
        assert_eq!(last.direction, Direction::Hold);
    }

    #[test]
    fn index_roundtrip_for_any_m() {
        for m in 1..=6 {
            for i in 0..Action::count(m) {
                assert_eq!(Action::from_index(i, m).index(), i);
            }
        }
    }

    #[test]
    fn seed_compatible_ordering_for_m3() {
        // The seed's fixed table was big(Up,Down,Hold), little(...),
        // gpu(...); the computed indexing must match it exactly.
        let expect = [
            (big(), Direction::Up),
            (big(), Direction::Down),
            (big(), Direction::Hold),
            (little(), Direction::Up),
            (little(), Direction::Down),
            (little(), Direction::Hold),
            (gpu(), Direction::Up),
            (gpu(), Direction::Down),
            (gpu(), Direction::Hold),
        ];
        for (i, &(domain, direction)) in expect.iter().enumerate() {
            assert_eq!(Action::from_index(i, 3), Action { domain, direction });
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = Action::from_index(9, 3);
    }

    #[test]
    fn up_down_move_the_cap() {
        let mut dvfs = DvfsController::exynos9810();
        let start = dvfs.domain(big()).max_cap().freq_khz;
        Action {
            domain: big(),
            direction: Direction::Down,
        }
        .apply(&mut dvfs);
        let lowered = dvfs.domain(big()).max_cap().freq_khz;
        assert!(lowered < start);
        Action {
            domain: big(),
            direction: Direction::Up,
        }
        .apply(&mut dvfs);
        assert_eq!(dvfs.domain(big()).max_cap().freq_khz, start);
    }

    #[test]
    fn hold_changes_nothing() {
        let mut dvfs = DvfsController::exynos9810();
        let before: Vec<u32> = dvfs
            .ids()
            .map(|c| dvfs.domain(c).max_cap().freq_khz)
            .collect();
        for c in dvfs.ids().collect::<Vec<_>>() {
            Action {
                domain: c,
                direction: Direction::Hold,
            }
            .apply(&mut dvfs);
        }
        let after: Vec<u32> = dvfs
            .ids()
            .map(|c| dvfs.domain(c).max_cap().freq_khz)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn actions_only_touch_their_domain() {
        let mut dvfs = DvfsController::exynos9810();
        Action {
            domain: gpu(),
            direction: Direction::Down,
        }
        .apply(&mut dvfs);
        assert_eq!(dvfs.domain(big()).max_cap().freq_khz, 2_704_000);
        assert_eq!(dvfs.domain(little()).max_cap().freq_khz, 1_794_000);
        assert_eq!(dvfs.domain(gpu()).max_cap().freq_khz, 546_000);
    }

    #[test]
    fn actions_drive_a_four_domain_platform() {
        let mut dvfs = DvfsController::for_platform(&Platform::exynos9820());
        let mid = DomainId::new(1);
        let start = dvfs.domain(mid).max_cap().freq_khz;
        Action::from_index(mid.index() * DIRECTIONS + 1, 4).apply(&mut dvfs); // mid Down
        assert!(dvfs.domain(mid).max_cap().freq_khz < start);
        assert_eq!(
            dvfs.domain(big()).max_cap().freq_khz,
            2_730_000,
            "other domains untouched"
        );
    }

    #[test]
    fn repeated_down_saturates_at_bottom() {
        let mut dvfs = DvfsController::exynos9810();
        for _ in 0..50 {
            Action {
                domain: big(),
                direction: Direction::Down,
            }
            .apply(&mut dvfs);
        }
        assert_eq!(dvfs.domain(big()).max_cap().freq_khz, 650_000);
    }
}
