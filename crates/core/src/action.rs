//! The 9-action space of Next (§IV-B).
//!
//! With `m` PE clusters and cluster-wise DVFS there are `3m` actions:
//! frequency up, frequency down, or do nothing, per cluster. On the
//! Exynos 9810 (`m = 3`) that yields 9 actions. "Setting operating
//! frequency means to set the maxfreq of the respective PE to that
//! operating frequency" — actions move the cap, and the hardware stays
//! free to run anywhere between `minfreq` and the cap.

use mpsoc::dvfs::DvfsController;
use mpsoc::freq::ClusterId;

/// Direction of a frequency-cap move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Raise the cap one OPP.
    Up,
    /// Lower the cap one OPP.
    Down,
    /// Leave the cap unchanged.
    Hold,
}

/// One of the nine Next actions: a direction applied to one cluster's
/// `maxfreq` cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Action {
    /// Cluster whose cap the action moves.
    pub cluster: ClusterId,
    /// The move.
    pub direction: Direction,
}

impl Action {
    /// Number of actions (3 clusters × 3 directions).
    pub const COUNT: usize = 9;

    /// All actions in index order.
    pub const ALL: [Action; 9] = [
        Action {
            cluster: ClusterId::Big,
            direction: Direction::Up,
        },
        Action {
            cluster: ClusterId::Big,
            direction: Direction::Down,
        },
        Action {
            cluster: ClusterId::Big,
            direction: Direction::Hold,
        },
        Action {
            cluster: ClusterId::Little,
            direction: Direction::Up,
        },
        Action {
            cluster: ClusterId::Little,
            direction: Direction::Down,
        },
        Action {
            cluster: ClusterId::Little,
            direction: Direction::Hold,
        },
        Action {
            cluster: ClusterId::Gpu,
            direction: Direction::Up,
        },
        Action {
            cluster: ClusterId::Gpu,
            direction: Direction::Down,
        },
        Action {
            cluster: ClusterId::Gpu,
            direction: Direction::Hold,
        },
    ];

    /// The action at table index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= Action::COUNT`.
    #[must_use]
    pub fn from_index(idx: usize) -> Self {
        Action::ALL[idx]
    }

    /// The table index of this action.
    #[must_use]
    pub fn index(self) -> usize {
        Action::ALL
            .iter()
            .position(|a| *a == self)
            .expect("action in table")
    }

    /// Applies the action to the DVFS controller by stepping the
    /// cluster's `maxfreq` cap.
    pub fn apply(self, dvfs: &mut DvfsController) {
        let dom = dvfs.domain_mut(self.cluster);
        match self.direction {
            Direction::Up => {
                dom.step_max_up();
            }
            Direction::Down => {
                dom.step_max_down();
            }
            Direction::Hold => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_actions_cover_all_cluster_direction_pairs() {
        assert_eq!(Action::COUNT, 9);
        let mut seen = std::collections::HashSet::new();
        for a in Action::ALL {
            seen.insert((a.cluster, a.direction));
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..Action::COUNT {
            assert_eq!(Action::from_index(i).index(), i);
        }
    }

    #[test]
    fn up_down_move_the_cap() {
        let mut dvfs = DvfsController::exynos9810();
        let start = dvfs.domain(ClusterId::Big).max_cap().freq_khz;
        Action {
            cluster: ClusterId::Big,
            direction: Direction::Down,
        }
        .apply(&mut dvfs);
        let lowered = dvfs.domain(ClusterId::Big).max_cap().freq_khz;
        assert!(lowered < start);
        Action {
            cluster: ClusterId::Big,
            direction: Direction::Up,
        }
        .apply(&mut dvfs);
        assert_eq!(dvfs.domain(ClusterId::Big).max_cap().freq_khz, start);
    }

    #[test]
    fn hold_changes_nothing() {
        let mut dvfs = DvfsController::exynos9810();
        let before: Vec<u32> = ClusterId::ALL
            .iter()
            .map(|&c| dvfs.domain(c).max_cap().freq_khz)
            .collect();
        for c in ClusterId::ALL {
            Action {
                cluster: c,
                direction: Direction::Hold,
            }
            .apply(&mut dvfs);
        }
        let after: Vec<u32> = ClusterId::ALL
            .iter()
            .map(|&c| dvfs.domain(c).max_cap().freq_khz)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn actions_only_touch_their_cluster() {
        let mut dvfs = DvfsController::exynos9810();
        Action {
            cluster: ClusterId::Gpu,
            direction: Direction::Down,
        }
        .apply(&mut dvfs);
        assert_eq!(dvfs.domain(ClusterId::Big).max_cap().freq_khz, 2_704_000);
        assert_eq!(dvfs.domain(ClusterId::Little).max_cap().freq_khz, 1_794_000);
        assert_eq!(dvfs.domain(ClusterId::Gpu).max_cap().freq_khz, 546_000);
    }

    #[test]
    fn repeated_down_saturates_at_bottom() {
        let mut dvfs = DvfsController::exynos9810();
        for _ in 0..50 {
            Action {
                cluster: ClusterId::Big,
                direction: Direction::Down,
            }
            .apply(&mut dvfs);
        }
        assert_eq!(dvfs.domain(ClusterId::Big).max_cap().freq_khz, 650_000);
    }
}
