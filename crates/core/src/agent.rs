//! The Next agent: frame-window target extraction + Q-learning control
//! loop (§IV).
//!
//! Every 25 ms the agent records an FPS sample into its
//! [`FrameWindow`]; every 100 ms it is invoked to act: it refreshes the
//! target FPS from the window mode (once per window length), encodes the
//! observation, applies the Eq. 3 Q-update for the previous transition
//! with a PPDW-based reward, picks the next of the 9 actions ε-greedily,
//! and moves the corresponding cluster's `maxfreq` cap.
//!
//! Training happens once per application: the agent tracks an
//! exponential moving average of its temporal-difference error and
//! declares convergence when the average settles, after which the
//! caller typically switches the agent to greedy inference
//! ([`NextAgent::set_training`]) and persists the table
//! ([`crate::store::QTableStore`]).

use governors::{ControlDecision, Governor};
use mpsoc::dvfs::DvfsController;
use mpsoc::platform::Platform;
use mpsoc::soc::SocState;
use qlearn::backend::{DenseStore, QStore};
use qlearn::policy::EpsilonGreedy;
use qlearn::qtable::{DenseQTable, QTable, StateKey};
use qlearn::QLearning;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::action::Action;
use crate::frame_window::FrameWindow;
use crate::ppdw::{ppdw, PpdwBounds};
use crate::state::StateEncoder;

/// Configuration of a [`NextAgent`].
#[derive(Debug, Clone, PartialEq)]
pub struct NextConfig {
    /// The platform the agent controls: its DVFS-domain list sizes the
    /// action space (`3m`) and the frequency digits of the state
    /// encoding.
    pub platform: Platform,
    /// FPS quantisation bins for the state encoding (paper: 30).
    pub fps_bins: usize,
    /// Frame-window capacity in samples (paper: 160 = 4 s of 25 ms).
    pub window_samples: usize,
    /// Frame sampling period, seconds (paper: 25 ms).
    pub sample_period_s: f64,
    /// Control period, seconds (paper: Next is invoked every 100 ms).
    pub control_period_s: f64,
    /// How often the target FPS is refreshed from the window mode,
    /// seconds (paper: once per 4 s frame window).
    pub target_refresh_s: f64,
    /// Downward hysteresis of the target: when the new window mode is
    /// *below* the current target, the target falls to at most
    /// `target_decay · target` per refresh instead of jumping straight
    /// down. The mode of the agent's own delivered FPS is
    /// self-referential — without damping, a transient dip can drag the
    /// target (and then the caps) into a death spiral. Raising is
    /// instant; 1.0 disables damping (ablation).
    pub target_decay: f64,
    /// Q-learning rate α.
    pub alpha: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Initial exploration rate during training.
    pub epsilon0: f64,
    /// Multiplicative ε decay per control step.
    pub epsilon_decay: f64,
    /// Exploration floor during training.
    pub epsilon_min: f64,
    /// PPDW normalisation envelope (Eq. 2).
    pub bounds: PpdwBounds,
    /// Ambient temperature used in PPDW, °C.
    pub ambient_c: f64,
    /// Weight of the PPDW term in the reward.
    pub ppdw_weight: f64,
    /// Weight of the target-FPS attainment term in the reward
    /// (0 reduces the reward to pure PPDW — the ablation case).
    pub fps_weight: f64,
    /// Weight of the cap-headroom shaping term: a small penalty on the
    /// summed `maxfreq` cap levels. Without it the reward is flat while
    /// a cap sits above the frequencies the kernel actually uses, so
    /// the learner has no gradient towards tighter caps until a cap
    /// happens to bind. Set 0 to disable (ablation).
    pub headroom_weight: f64,
    /// Initial Q-value for unvisited state-action pairs. The agent
    /// already explores untried actions first (directed exploration),
    /// so the default is neutral 0; a large value would additionally
    /// propagate optimism through the γ-bootstrap (slower but more
    /// systematic — exposed for experiments).
    pub optimistic_q: f64,
    /// Use double Q-learning (van Hasselt 2010): two tables, each
    /// bootstrapping through the other's estimate, which removes the
    /// max-operator's systematic over-estimation under reward noise.
    /// Control uses the combined estimate. Ablated in the bench
    /// harness.
    pub double_q: bool,
    /// QoS guard: when the delivered FPS stays below
    /// `qos_guard_ratio · target` for `qos_guard_s` seconds (and the
    /// target is a real QoS demand, ≥ 15 FPS), every `maxfreq` cap is
    /// re-opened and learning resumes from full service. This is the
    /// watchdog that breaks the coordinated-caps local optimum: from a
    /// deep cap configuration, restoring QoS needs several *joint* up
    /// moves through a reward-flat region that a myopic learner cannot
    /// cross on its own. Set `qos_guard_s` to infinity to disable
    /// (ablation).
    pub qos_guard_s: f64,
    /// Undershoot ratio that arms the QoS guard (default 0.7).
    pub qos_guard_ratio: f64,
    /// Convergence: TD-error EMA threshold (relative).
    pub td_tolerance: f64,
    /// Convergence: consecutive below-threshold updates required.
    pub convergence_updates: u32,
    /// Minimum updates before convergence may be declared.
    pub min_updates: u32,
    /// RNG seed for exploration.
    pub seed: u64,
}

impl NextConfig {
    /// The paper's configuration: 30 FPS bins, 4 s window of 25 ms
    /// samples, 100 ms control period, 21 °C ambient.
    #[must_use]
    pub fn paper() -> Self {
        NextConfig {
            platform: Platform::exynos9810(),
            fps_bins: 30,
            window_samples: 160,
            sample_period_s: 0.025,
            control_period_s: 0.1,
            target_refresh_s: 4.0,
            target_decay: 0.7,
            alpha: 0.25,
            gamma: 0.5,
            epsilon0: 0.5,
            epsilon_decay: 0.998,
            epsilon_min: 0.05,
            bounds: PpdwBounds::exynos9810(),
            ambient_c: mpsoc::DEFAULT_AMBIENT_C,
            ppdw_weight: 1.0,
            fps_weight: 2.0,
            headroom_weight: 0.4,
            optimistic_q: 0.0,
            double_q: false,
            qos_guard_s: 3.0,
            qos_guard_ratio: 0.7,
            td_tolerance: 0.10,
            convergence_updates: 100,
            min_updates: 400,
            seed: 0x5eed,
        }
    }

    /// The paper's hyper-parameters applied to a different platform:
    /// the action space and state encoding follow the platform's
    /// DVFS-domain list.
    #[must_use]
    pub fn paper_on(platform: Platform) -> Self {
        NextConfig {
            platform,
            ..NextConfig::paper()
        }
    }

    /// Same as [`NextConfig::paper`] with a different FPS bin count
    /// (the Fig. 6 sweep).
    #[must_use]
    pub fn with_fps_bins(mut self, bins: usize) -> Self {
        self.fps_bins = bins;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables the target-FPS reward term (pure-PPDW ablation).
    #[must_use]
    pub fn pure_ppdw(mut self) -> Self {
        self.fps_weight = 0.0;
        self
    }
}

impl Default for NextConfig {
    fn default() -> Self {
        NextConfig::paper()
    }
}

/// Counters describing training progress.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrainingStats {
    /// Q-updates applied so far.
    pub updates: u64,
    /// Simulated control time accumulated, seconds.
    pub sim_time_s: f64,
    /// Current TD-error EMA (relative).
    pub td_ema: f64,
    /// Simulated time at which convergence was declared, if yet.
    pub converged_at_s: Option<f64>,
    /// Cumulative reward collected.
    pub total_reward: f64,
}

/// The Next agent.
///
/// The Q-tables are generic over the [`QStore`] backend. The default is
/// the dense-indexed arena: the control loop's argmax and update touch
/// one contiguous row per invocation instead of probing a hash map once
/// per action. The campaign runner instead drives agents over
/// [`qlearn::OverlayStore`] tables so a warm start shares the round's
/// merged global by `Arc` instead of cloning it.
#[derive(Debug, Clone)]
pub struct NextAgent<S: QStore = DenseStore> {
    config: NextConfig,
    encoder: StateEncoder,
    /// Action-space size of the platform (`3m`).
    n_actions: usize,
    /// The platform's DVFS-domain count (`m`).
    n_domains: usize,
    /// Sum of the platform's top cap levels — normalises the headroom
    /// shaping term.
    headroom_norm: f64,
    window: FrameWindow,
    table: QTable<S>,
    /// Second table for double Q-learning (None in single-Q mode).
    table_b: Option<QTable<S>>,
    learner: QLearning,
    policy: EpsilonGreedy,
    rng: StdRng,
    target_fps: f64,
    since_target_refresh_s: f64,
    prev: Option<(StateKey, usize)>,
    training: bool,
    below_tol_streak: u32,
    /// EMA of the rate at which brand-new states are being discovered;
    /// convergence requires this to die out.
    explore_ema: f64,
    /// Consecutive control steps spent in deep undershoot (QoS guard).
    guard_steps: u32,
    /// Running mean reward, used to scale prior initialisation.
    reward_ema: f64,
    /// Action/reward of the most recent control step, exposed to the
    /// trace recorder (None after a QoS-guard pop or session start).
    last_decision: Option<ControlDecision>,
    stats: TrainingStats,
}

impl NextAgent {
    /// Creates an untrained agent (training mode on, empty table with
    /// optimistic initialisation) on the default dense backend.
    #[must_use]
    pub fn new(config: NextConfig) -> Self {
        // Declaring the encoder's state-space size lets small spaces
        // (coarse FPS bins) use the direct slot-table row index; the
        // paper's 30-bin space exceeds the direct limit and keeps the
        // fast-hashed index automatically.
        let encoder = StateEncoder::for_platform(&config.platform, config.fps_bins)
            // qlint::allow(PN01, reason = "Platform construction validates its ladders, so its encoding cannot fail; documented under # Panics")
            .expect("platform yields a valid state encoding");
        let table = DenseQTable::dense_for_space(
            config.platform.action_count(),
            config.optimistic_q,
            encoder.state_space_size(),
        );
        NextAgent::from_parts(config, encoder, table, true)
    }
}

impl<S: QStore> NextAgent<S> {
    /// Creates an agent from a previously-trained table. `training`
    /// selects between continued learning and greedy inference.
    ///
    /// A table whose direct index was declared for a smaller state
    /// space (e.g. trained at coarser FPS bins) is re-homed into one
    /// covering this config's space, so warm-starting across configs
    /// cannot run out of index capacity mid-training.
    ///
    /// # Panics
    ///
    /// Panics if the table's action count does not match the platform or
    /// the configuration is invalid.
    #[must_use]
    pub fn with_table(config: NextConfig, table: QTable<S>, training: bool) -> Self {
        let encoder = StateEncoder::for_platform(&config.platform, config.fps_bins)
            // qlint::allow(PN01, reason = "Platform construction validates its ladders, so its encoding cannot fail; documented under # Panics")
            .expect("platform yields a valid state encoding");
        let table = table.resized_for_space(encoder.state_space_size());
        NextAgent::from_parts(config, encoder, table, training)
    }

    /// Fraction of `epsilon0` a warm-started agent explores with: the
    /// fleet table already encodes the fleet's experience, so local
    /// rounds refine it instead of re-exploring from scratch.
    pub const WARM_START_EPSILON_SCALE: f64 = 0.3;

    /// Creates a **training** agent warm-started from a previously
    /// learned table — the §IV-C device-side hook: the cloud pushes the
    /// merged fleet table down and the device continues learning from
    /// it. Unlike a fresh agent, exploration restarts at
    /// [`NextAgent::WARM_START_EPSILON_SCALE`]`·epsilon0` (floored at
    /// `epsilon_min`), while convergence tracking starts clean so a
    /// fleet round re-converges on its own evidence.
    ///
    /// A table declared for a smaller state space is re-homed exactly
    /// as in [`NextAgent::with_table`].
    ///
    /// # Panics
    ///
    /// Panics if the table's action count does not match the platform or
    /// the configuration is invalid.
    #[must_use]
    pub fn warm_start(config: NextConfig, table: QTable<S>) -> Self {
        let eps = (config.epsilon0 * Self::WARM_START_EPSILON_SCALE).max(config.epsilon_min);
        let mut agent = NextAgent::with_table(config, table, true);
        agent.policy.reset_epsilon(eps);
        agent
    }

    /// The exploration rate currently in effect (0 in greedy mode).
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.policy.epsilon()
    }

    fn from_parts(
        config: NextConfig,
        encoder: StateEncoder,
        table: QTable<S>,
        training: bool,
    ) -> Self {
        let n_actions = config.platform.action_count();
        assert_eq!(table.n_actions(), n_actions, "table action count mismatch");
        assert!(config.fps_bins > 0, "fps_bins must be positive");
        assert!(
            config.control_period_s > 0.0,
            "control period must be positive"
        );
        let policy = if training {
            EpsilonGreedy::new(config.epsilon0, config.epsilon_decay, config.epsilon_min)
        } else {
            EpsilonGreedy::greedy()
        };
        let table_b = config.double_q.then(|| {
            QTable::empty_for_space(n_actions, config.optimistic_q, encoder.state_space_size())
        });
        // A platform of single-level ladders has zero steppable cap
        // range; floor at 1 so the (always-zero) headroom term divides
        // cleanly instead of poisoning the reward with NaN.
        let headroom_norm = config.platform.cap_level_sum().max(1) as f64;
        NextAgent {
            encoder,
            n_actions,
            n_domains: config.platform.n_domains(),
            headroom_norm,
            window: FrameWindow::new(config.window_samples),
            table,
            table_b,
            learner: QLearning::new(config.alpha, config.gamma),
            policy,
            rng: StdRng::seed_from_u64(config.seed),
            target_fps: 0.0,
            since_target_refresh_s: f64::INFINITY, // refresh at first chance
            prev: None,
            training,
            below_tol_streak: 0,
            explore_ema: 1.0,
            guard_steps: 0,
            reward_ema: 2.0,
            last_decision: None,
            stats: TrainingStats::default(),
            config,
        }
    }

    /// The agent's configuration.
    #[must_use]
    pub fn config(&self) -> &NextConfig {
        &self.config
    }

    /// Whether the agent is learning (vs. greedy inference).
    #[must_use]
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Switches between training and greedy inference.
    pub fn set_training(&mut self, training: bool) {
        if training == self.training {
            return;
        }
        self.training = training;
        self.policy = if training {
            EpsilonGreedy::new(
                self.config.epsilon0,
                self.config.epsilon_decay,
                self.config.epsilon_min,
            )
        } else {
            EpsilonGreedy::greedy()
        };
        self.prev = None;
    }

    /// The current target FPS derived from the frame window's mode.
    #[must_use]
    pub fn target_fps(&self) -> f64 {
        self.target_fps
    }

    /// Training progress counters.
    #[must_use]
    pub fn stats(&self) -> TrainingStats {
        self.stats
    }

    /// Whether the TD-error EMA has settled (§IV-B's "fully trained").
    #[must_use]
    pub fn is_converged(&self) -> bool {
        self.stats.converged_at_s.is_some()
    }

    /// Read access to the learned Q-table (persist via
    /// [`crate::store::QTableStore`]).
    #[must_use]
    pub fn table(&self) -> &QTable<S> {
        &self.table
    }

    /// Consumes the agent, returning the learned table. In double-Q
    /// mode the two tables are merged (visit-weighted average), which
    /// preserves the greedy ordering of the combined estimate.
    #[must_use]
    pub fn into_table(self) -> QTable<S> {
        match self.table_b {
            None => self.table,
            Some(b) => qlearn::federated::merge(&[&self.table, &b]),
        }
    }

    /// Records one 25 ms FPS sample into the frame window.
    pub fn observe_frame_sample(&mut self, fps: f64) {
        self.window.push(fps);
    }

    /// Clears session-local state (frame window, pending transition) as
    /// on an app switch; the learned table is retained.
    pub fn start_session(&mut self) {
        self.window.clear();
        self.prev = None;
        self.last_decision = None;
        self.target_fps = 0.0;
        self.since_target_refresh_s = f64::INFINITY;
    }

    /// The reward function: normalised PPDW plus target-FPS attainment.
    ///
    /// `R(s, a) = w_p · PPDW_norm + w_f · (1 − miss / 60)`, where
    /// `miss = (Target − FPS)⁺ + ½·(FPS − Target)⁺`.
    ///
    /// Undershooting the user-derived target costs full weight (QoS is
    /// sacred); overshooting costs half weight (rendering frames the
    /// interaction pattern does not ask for wastes power, which the PPDW
    /// term also punishes through its denominator). The agent therefore
    /// maximises PPDW *subject to* tracking the target, the §IV-B
    /// objective (`FPS_current = Target FPS` with the best PPDW).
    #[must_use]
    pub fn reward(&self, state: &SocState) -> f64 {
        // FPS is floored at the envelope's FPS_least (Eq. 2 uses 1 FPS
        // as the least frame rate): a frameless interval — music
        // playing on a static screen — must still reward drawing less
        // power and running cooler, otherwise the agent has no gradient
        // during exactly the sessions the paper showcases (Spotify).
        let fps_floored = state.fps.max(self.config.bounds.fps_least);
        let raw = ppdw(
            fps_floored,
            state.power_w,
            state.temp_hot_c,
            self.config.ambient_c,
        );
        let ppdw_term = self.config.bounds.soft_normalize(raw);
        let undershoot = (self.target_fps - state.fps).max(0.0);
        let overshoot = (state.fps - self.target_fps).max(0.0);
        let miss = (undershoot + 0.5 * overshoot) / 60.0;
        // Attainment is worth more at higher targets: meeting a 60 FPS
        // demand earns the full term, meeting a 15 FPS demand a quarter
        // of it. Without this, the agent can *create* an easy target by
        // under-serving (the mode follows delivered FPS) and then be
        // fully rewarded for meeting it.
        let demand_scale = (self.target_fps / 60.0).clamp(0.0, 1.0);
        let fps_term = (1.0 - miss.min(1.0)) * demand_scale;
        // Headroom shaping: unused cap range is latent boost power,
        // normalised by the platform's summed top cap levels
        // (17 + 9 + 5 = 31 on the Exynos 9810).
        let cap_sum: usize = state.max_cap_level.iter().sum();
        let headroom_term = cap_sum as f64 / self.headroom_norm;
        self.config.ppdw_weight * ppdw_term + self.config.fps_weight * fps_term
            - self.config.headroom_weight * headroom_term
    }

    fn refresh_target(&mut self) {
        self.since_target_refresh_s += self.config.control_period_s;
        if self.since_target_refresh_s >= self.config.target_refresh_s {
            if let Some(mode) = self.window.mode() {
                let mode = f64::from(mode);
                self.target_fps = if mode >= self.target_fps {
                    mode
                } else {
                    // Damped descent (see NextConfig::target_decay).
                    mode.max(self.config.target_decay * self.target_fps)
                };
                self.since_target_refresh_s = 0.0;
            }
        }
    }

    /// Heuristic action preference used to *initialise* the Q-values of
    /// a newly encountered state (and as the fallback policy for states
    /// never seen during training).
    ///
    /// It is a proportional base controller over the observable error:
    /// when undershooting the target, raising a busy cluster's cap is
    /// preferred; otherwise shedding slack (cap far above the used
    /// frequency, or a mostly idle cluster) is preferred; holding earns
    /// a small default preference. Q-learning then *refines* these
    /// priors with real returns — the priors only decide what gets
    /// tried first, which is what makes tabular learning converge
    /// within the paper's minutes-long training budget.
    fn prior_bias(action: Action, state: &SocState, target_fps: f64) -> f64 {
        use crate::action::Direction;
        let i = action.domain.index();
        let util = state.util[i];
        let slack = state.max_cap_level[i] as f64 - state.freq_level[i] as f64;
        let undershooting = state.fps < target_fps - 2.0;
        match action.direction {
            Direction::Up => {
                if undershooting && util > 0.6 {
                    0.12
                } else {
                    -0.12
                }
            }
            Direction::Down => {
                if undershooting && util > 0.6 {
                    -0.12
                } else if slack > 1.0 || util < 0.5 {
                    0.12
                } else {
                    -0.04
                }
            }
            Direction::Hold => 0.05,
        }
    }

    /// Seeds the Q-values of a state on first encounter: every action
    /// starts at `(1 + bias) · V̂`, where `V̂` is the running value-scale
    /// estimate. Consistent-scale initialisation keeps the first real
    /// TD errors small, so convergence tracking measures learning, not
    /// initialisation shock.
    fn ensure_state_initialized(&mut self, key: StateKey, state: &SocState) -> bool {
        if self.table.contains(key) {
            return false;
        }
        let v_hat = self.value_scale();
        for action in Action::all(self.n_domains) {
            let bias = Self::prior_bias(action, state, self.target_fps);
            self.table.set(key, action.index(), v_hat * (1.0 + bias));
            if let Some(b) = &mut self.table_b {
                b.set(key, action.index(), v_hat * (1.0 + bias));
            }
        }
        true
    }

    /// Running estimate of the value scale `r̄ / (1 − γ)`.
    fn value_scale(&self) -> f64 {
        (self.reward_ema / (1.0 - self.learner.gamma())).max(0.5)
    }

    /// One 100 ms control invocation: learn from the previous
    /// transition, choose the next action and apply it to the DVFS caps.
    pub fn step(&mut self, state: &SocState, dvfs: &mut DvfsController) {
        self.refresh_target();

        // QoS guard (see NextConfig::qos_guard_s). A frameless interval
        // (fps < 1) is not cap starvation — loading screens and music
        // playback render nothing no matter the frequency — so it never
        // arms the guard.
        if self.target_fps >= 15.0
            && state.fps >= 1.0
            && state.fps < self.config.qos_guard_ratio * self.target_fps
        {
            self.guard_steps += 1;
        } else {
            self.guard_steps = 0;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let guard_limit = (self.config.qos_guard_s / self.config.control_period_s)
            .round()
            .max(1.0) as u32;
        if self.guard_steps >= guard_limit {
            dvfs.reset_caps();
            self.guard_steps = 0;
            // The pop is an external intervention: do not credit the
            // previous action with its outcome, and skip this period's
            // action (the observed state no longer matches the caps).
            self.prev = None;
            self.last_decision = None;
            self.stats.sim_time_s += self.config.control_period_s;
            return;
        }

        let key = self.encoder.encode(state, self.target_fps);
        let reward = self.reward(state);
        self.stats.total_reward += reward;
        self.reward_ema = 0.98 * self.reward_ema + 0.02 * reward;

        let action_idx = if self.training {
            let fresh = self.ensure_state_initialized(key, state);
            self.explore_ema = 0.98 * self.explore_ema + if fresh { 0.02 } else { 0.0 };
            if let Some((ps, pa)) = self.prev {
                // Robbins-Monro style visit-adaptive learning rate:
                // well-visited pairs average over more experience, so
                // their estimates (and the TD noise) settle.
                let visits = self.table.visits(ps, pa) as f64;
                let alpha = (self.config.alpha / (1.0 + 0.05 * visits)).max(0.02);
                let (td, q_before) = if self.table_b.is_some() {
                    self.double_q_update(ps, pa, reward, key, alpha)
                } else {
                    let q_before = self.table.q(ps, pa);
                    let td = reward + self.learner.gamma() * self.table.max_q(key) - q_before;
                    self.learner
                        .update_with_alpha(&mut self.table, ps, pa, reward, key, alpha);
                    (td, q_before)
                };
                self.track_convergence(td, q_before);
            }
            let a = self.choose_action(key);
            self.policy.step();
            a
        } else if self.table.contains(key) {
            self.choose_action(key)
        } else {
            // State never met during training: fall back to the
            // heuristic base controller (argmax of the priors).
            Action::all(self.n_domains)
                .map(|a| (a, Self::prior_bias(a, state, self.target_fps)))
                .max_by(|x, y| x.1.total_cmp(&y.1))
                .map(|(a, _)| a.index())
                // qlint::allow(PN01, reason = "Action::all always yields at least the no-op action")
                .expect("action set non-empty")
        };
        Action::from_index(action_idx, self.n_domains).apply(dvfs);
        self.prev = Some((key, action_idx));
        #[allow(clippy::cast_possible_truncation)]
        {
            self.last_decision = Some(ControlDecision {
                action: action_idx as u16,
                reward,
            });
        }
        self.stats.sim_time_s += self.config.control_period_s;
    }

    /// ε-greedy action choice over the active estimate (single table,
    /// or the combined `Q_A + Q_B` in double-Q mode).
    fn choose_action(&mut self, key: StateKey) -> usize {
        match &self.table_b {
            None => self.policy.choose(&mut self.rng, &self.table, key),
            Some(b) => {
                if self.policy.epsilon() > 0.0
                    && self.rng.gen_range(0.0..1.0) < self.policy.epsilon()
                {
                    return self.rng.gen_range(0..self.n_actions);
                }
                let mut best = 0;
                let mut best_v = self.table.q(key, 0) + b.q(key, 0);
                for a in 1..self.n_actions {
                    let v = self.table.q(key, a) + b.q(key, a);
                    if v > best_v {
                        best = a;
                        best_v = v;
                    }
                }
                best
            }
        }
    }

    /// One double-Q update (van Hasselt): a fair coin picks the table
    /// to update; the bootstrap is the *other* table's estimate at the
    /// updated table's greedy action. Returns `(td, q_before)`.
    fn double_q_update(
        &mut self,
        state: StateKey,
        action: usize,
        reward: f64,
        next_state: StateKey,
        alpha: f64,
    ) -> (f64, f64) {
        // qlint::allow(PN01, reason = "only called from the double-Q branch, which requires table_b")
        let b = self.table_b.as_mut().expect("double-Q mode");
        let gamma = self.learner.gamma();
        let coin = self.rng.gen_range(0.0..1.0) < 0.5;
        let (primary, other): (&mut QTable<S>, &QTable<S>) = if coin {
            (&mut self.table, b)
        } else {
            (b, &self.table)
        };
        let greedy = primary.best_action(next_state).0;
        let bootstrap = other.q(next_state, greedy);
        let q_before = primary.q(state, action);
        let td = reward + gamma * bootstrap - q_before;
        primary.set(state, action, q_before + alpha * td);
        (td, q_before)
    }

    fn track_convergence(&mut self, td: f64, q_before: f64) {
        self.stats.updates += 1;
        let rel = td.abs() / (q_before.abs() + 1.0);
        let beta = 0.01;
        self.stats.td_ema = (1.0 - beta) * self.stats.td_ema + beta * rel;
        if self.stats.updates >= u64::from(self.config.min_updates)
            && self.stats.td_ema < self.config.td_tolerance
            && self.explore_ema < 0.05
        {
            self.below_tol_streak += 1;
            if self.below_tol_streak >= self.config.convergence_updates
                && self.stats.converged_at_s.is_none()
            {
                self.stats.converged_at_s = Some(self.stats.sim_time_s);
            }
        } else {
            self.below_tol_streak = 0;
        }
    }
}

impl<S: QStore> Governor for NextAgent<S> {
    fn name(&self) -> &str {
        "next"
    }

    /// The agent's table and encoder are shaped by its configured
    /// platform; driving a structurally different device would silently
    /// corrupt the key space, so binding asserts compatibility.
    fn bind(&mut self, platform: &Platform) {
        assert_eq!(
            platform.freq_levels(),
            self.config.platform.freq_levels(),
            "NextAgent configured for '{}' cannot drive platform '{}'",
            self.config.platform.name(),
            platform.name()
        );
    }

    fn period_s(&self) -> f64 {
        self.config.control_period_s
    }

    fn control(&mut self, state: &SocState, dvfs: &mut DvfsController) {
        self.step(state, dvfs);
    }

    fn observe(&mut self, state: &SocState) {
        self.observe_frame_sample(state.fps);
    }

    fn reset(&mut self) {
        self.start_session();
    }

    fn last_decision(&self) -> Option<ControlDecision> {
        self.last_decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc::perf::FrameDemand;
    use mpsoc::platform::PerDomain;
    use mpsoc::soc::{Soc, SocConfig};

    fn run_loop(agent: &mut NextAgent, soc: &mut Soc, demand: &FrameDemand, seconds: f64) -> f64 {
        let ticks = (seconds / 0.025) as usize;
        let mut power = 0.0;
        for t in 0..ticks {
            let out = soc.tick(0.025, demand);
            agent.observe_frame_sample(out.fps);
            power += out.power_w;
            if (t + 1) % 4 == 0 {
                let s = soc.state();
                agent.step(&s, soc.dvfs_mut());
            }
        }
        power / ticks as f64
    }

    fn ui_demand() -> FrameDemand {
        FrameDemand::new(4.0e6, 2.0e6, 5.0e6).with_background(0.1e9, 0.05e9, 0.0)
    }

    #[test]
    fn target_follows_window_mode() {
        let mut agent = NextAgent::new(NextConfig::paper());
        for _ in 0..160 {
            agent.observe_frame_sample(42.0);
        }
        let mut soc = Soc::new(SocConfig::exynos9810());
        let s = soc.state();
        agent.step(&s, soc.dvfs_mut());
        assert_eq!(agent.target_fps(), 42.0);
    }

    #[test]
    fn target_refresh_respects_window_period() {
        let mut agent = NextAgent::new(NextConfig::paper());
        for _ in 0..160 {
            agent.observe_frame_sample(42.0);
        }
        let mut soc = Soc::new(SocConfig::exynos9810());
        let s = soc.state();
        agent.step(&s, soc.dvfs_mut());
        assert_eq!(agent.target_fps(), 42.0);
        // New samples immediately: target must NOT change until 4 s of
        // control steps have elapsed.
        for _ in 0..160 {
            agent.observe_frame_sample(10.0);
        }
        for _ in 0..39 {
            let s = soc.state();
            agent.step(&s, soc.dvfs_mut());
        }
        assert_eq!(agent.target_fps(), 42.0, "target refreshed too early");
        let s = soc.state();
        agent.step(&s, soc.dvfs_mut());
        // Downward moves are damped: one refresh drops at most to
        // target_decay · 42.
        let expect = 0.7 * 42.0;
        assert!(
            (agent.target_fps() - expect).abs() < 1e-9,
            "damped refresh expected {expect}, got {}",
            agent.target_fps()
        );
        // Raising is instant.
        for _ in 0..160 {
            agent.observe_frame_sample(55.0);
        }
        for _ in 0..40 {
            let s = soc.state();
            agent.step(&s, soc.dvfs_mut());
        }
        assert_eq!(agent.target_fps(), 55.0, "upward refresh is undamped");
    }

    #[test]
    fn reward_prefers_meeting_target_efficiently() {
        let mut agent = NextAgent::new(NextConfig::paper());
        agent.target_fps = 60.0;
        let mk = |fps: f64, p: f64, t: f64| SocState {
            time_s: 0.0,
            freq_khz: PerDomain::new(3),
            freq_level: PerDomain::new(3),
            max_cap_level: PerDomain::new(3),
            fps,
            power_w: p,
            temp_domain_c: PerDomain::from_fn(3, |_| t),
            temp_hot_c: t,
            temp_device_c: t - 5.0,
            temp_battery_c: t - 5.0,
            util: PerDomain::from_fn(3, |_| 0.5),
        };
        let on_target_cheap = agent.reward(&mk(60.0, 2.0, 35.0));
        let on_target_hot = agent.reward(&mk(60.0, 8.0, 70.0));
        let off_target = agent.reward(&mk(10.0, 2.0, 35.0));
        assert!(
            on_target_cheap > on_target_hot,
            "cooler/cheaper must score higher"
        );
        assert!(
            on_target_cheap > off_target,
            "missing the target must cost reward"
        );
    }

    #[test]
    fn pure_ppdw_ablation_ignores_target() {
        let mut agent = NextAgent::new(NextConfig::paper().pure_ppdw());
        agent.target_fps = 60.0;
        let mk = |fps: f64| SocState {
            time_s: 0.0,
            freq_khz: PerDomain::new(3),
            freq_level: PerDomain::new(3),
            max_cap_level: PerDomain::new(3),
            fps,
            power_w: 3.0,
            temp_domain_c: PerDomain::from_fn(3, |_| 43.0),
            temp_hot_c: 45.0,
            temp_device_c: 38.0,
            temp_battery_c: 37.0,
            util: PerDomain::from_fn(3, |_| 0.5),
        };
        // With the same power/temperature inputs, reward grows with fps
        // (the PPDW numerator) and ignores the distance to target.
        let r30 = agent.reward(&mk(30.0));
        let r60 = agent.reward(&mk(60.0));
        assert!(
            r60 > r30,
            "higher FPS at equal power/temp must raise pure-PPDW reward"
        );
    }

    #[test]
    fn training_updates_table_and_accumulates_stats() {
        let mut agent = NextAgent::new(NextConfig::paper());
        let mut soc = Soc::new(SocConfig::exynos9810());
        run_loop(&mut agent, &mut soc, &ui_demand(), 20.0);
        let stats = agent.stats();
        assert!(stats.updates > 150, "updates {}", stats.updates);
        assert!(!agent.table().is_empty());
        assert!(stats.sim_time_s > 19.0);
    }

    #[test]
    fn inference_mode_never_updates_table() {
        let mut trained = NextAgent::new(NextConfig::paper());
        let mut soc = Soc::new(SocConfig::exynos9810());
        run_loop(&mut trained, &mut soc, &ui_demand(), 10.0);
        let table = trained.into_table();
        let before = table.total_visits();

        let mut agent = NextAgent::with_table(NextConfig::paper(), table, false);
        let mut soc2 = Soc::new(SocConfig::exynos9810());
        run_loop(&mut agent, &mut soc2, &ui_demand(), 10.0);
        assert_eq!(agent.stats().updates, 0);
        assert_eq!(
            agent.table().total_visits(),
            before,
            "greedy mode must not learn"
        );
    }

    #[test]
    fn agent_moves_caps() {
        let mut agent = NextAgent::new(NextConfig::paper());
        let mut soc = Soc::new(SocConfig::exynos9810());
        run_loop(&mut agent, &mut soc, &ui_demand(), 30.0);
        let caps: Vec<usize> = soc
            .dvfs()
            .ids()
            .map(|c| soc.dvfs().domain(c).max_cap_level())
            .collect();
        let tops: Vec<usize> = soc
            .dvfs()
            .ids()
            .map(|c| soc.dvfs().domain(c).table().len() - 1)
            .collect();
        assert_ne!(
            caps, tops,
            "after 30 s of light UI the agent should have lowered some cap"
        );
    }

    #[test]
    fn trained_agent_saves_power_vs_schedutil_on_light_ui() {
        // Train on the light UI workload, then compare steady power.
        let mut agent = NextAgent::new(NextConfig::paper());
        let mut soc = Soc::new(SocConfig::exynos9810());
        run_loop(&mut agent, &mut soc, &ui_demand(), 120.0);
        agent.set_training(false);
        let mut soc_next = Soc::new(SocConfig::exynos9810());
        let p_next = run_loop(&mut agent, &mut soc_next, &ui_demand(), 30.0);

        let mut soc_sched = Soc::new(SocConfig::exynos9810());
        let mut p_sched = 0.0;
        let ticks = (30.0 / 0.025) as usize;
        for _ in 0..ticks {
            p_sched += soc_sched.tick(0.025, &ui_demand()).power_w;
        }
        p_sched /= ticks as f64;
        assert!(
            p_next <= p_sched * 1.05,
            "trained Next ({p_next} W) should not exceed schedutil ({p_sched} W)"
        );
    }

    #[test]
    fn start_session_clears_window_but_keeps_table() {
        let mut agent = NextAgent::new(NextConfig::paper());
        let mut soc = Soc::new(SocConfig::exynos9810());
        run_loop(&mut agent, &mut soc, &ui_demand(), 10.0);
        let states = agent.table().len();
        assert!(states > 0);
        agent.start_session();
        assert_eq!(agent.target_fps(), 0.0);
        assert_eq!(agent.table().len(), states);
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            let mut agent = NextAgent::new(NextConfig::paper().with_seed(11));
            let mut soc = Soc::new(SocConfig::exynos9810());
            run_loop(&mut agent, &mut soc, &ui_demand(), 10.0);
            agent.table().encode()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn double_q_mode_trains_and_is_deterministic() {
        let mut config = NextConfig::paper().with_seed(21);
        config.double_q = true;
        let run = |config: NextConfig| {
            let mut agent = NextAgent::new(config);
            let mut soc = Soc::new(SocConfig::exynos9810());
            run_loop(&mut agent, &mut soc, &ui_demand(), 30.0);
            assert!(agent.stats().updates > 200);
            agent.into_table().encode()
        };
        let a = run(config.clone());
        let b = run(config);
        assert_eq!(a, b, "double-Q training must be seed-deterministic");
    }

    #[test]
    fn double_q_merged_table_usable_for_inference() {
        let mut config = NextConfig::paper();
        config.double_q = true;
        let mut agent = NextAgent::new(config);
        let mut soc = Soc::new(SocConfig::exynos9810());
        run_loop(&mut agent, &mut soc, &ui_demand(), 60.0);
        let merged = agent.into_table();
        assert!(!merged.is_empty());
        // The merged table drives a plain single-table agent.
        let mut infer = NextAgent::with_table(NextConfig::paper(), merged, false);
        let mut soc2 = Soc::new(SocConfig::exynos9810());
        let p = run_loop(&mut infer, &mut soc2, &ui_demand(), 20.0);
        assert!(p > 0.5 && p.is_finite());
    }

    #[test]
    fn warm_start_across_fps_bin_configs_does_not_outgrow_the_index() {
        // Train at 2 FPS bins: the 622k-state space fits the direct
        // slot-table index. Warm-starting that table under the paper's
        // 30-bin config produces keys far beyond the small index's
        // declared capacity — with_table must re-home the rows.
        let mut coarse = NextAgent::new(NextConfig::paper().with_fps_bins(2));
        let mut soc = Soc::new(SocConfig::exynos9810());
        run_loop(&mut coarse, &mut soc, &ui_demand(), 10.0);
        let table = coarse.into_table();
        let states = table.len();
        assert!(states > 0);

        let mut warm = NextAgent::with_table(NextConfig::paper(), table, true);
        let mut soc2 = Soc::new(SocConfig::exynos9810());
        run_loop(&mut warm, &mut soc2, &ui_demand(), 10.0);
        assert!(warm.stats().updates > 0);
        assert!(
            warm.table().len() >= states,
            "rows must survive the re-homing"
        );
    }

    #[test]
    #[should_panic(expected = "action count mismatch")]
    fn wrong_table_arity_panics() {
        let _ = NextAgent::with_table(NextConfig::paper(), DenseQTable::dense(4), true);
    }

    #[test]
    fn warm_start_trains_with_reduced_exploration() {
        let mut donor = NextAgent::new(NextConfig::paper());
        let mut soc = Soc::new(SocConfig::exynos9810());
        run_loop(&mut donor, &mut soc, &ui_demand(), 10.0);
        let table = donor.into_table();
        let states = table.len();

        let config = NextConfig::paper();
        let warm = NextAgent::warm_start(config.clone(), table);
        assert!(warm.is_training(), "warm start must keep learning");
        assert!(
            warm.epsilon() < config.epsilon0,
            "warm start explores less than a cold start: {} vs {}",
            warm.epsilon(),
            config.epsilon0
        );
        assert!(warm.epsilon() >= config.epsilon_min);
        assert_eq!(warm.stats(), TrainingStats::default(), "fresh telemetry");
        assert_eq!(warm.table().len(), states, "fleet knowledge retained");

        // And it keeps learning: updates accumulate on the warm table.
        let mut warm = warm;
        let mut soc2 = Soc::new(SocConfig::exynos9810());
        run_loop(&mut warm, &mut soc2, &ui_demand(), 10.0);
        assert!(warm.stats().updates > 0);
    }
}
