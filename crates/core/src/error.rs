//! Typed errors for malformed platform descriptors.
//!
//! The state-space machinery used to `assert!` its invariants, which
//! turned a bad [`mpsoc::Platform`] into a process abort. Constructors
//! now return [`CoreError`] so callers assembling platforms at runtime
//! (CLI flags, config files, fleets) can surface the problem instead of
//! crashing; the panicking `_unchecked` constructors remain for tests
//! and static presets.

use std::fmt;

/// Error produced when building Next's state machinery from a platform
/// descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A platform domain declared an empty OPP table (zero frequency
    /// levels), which would give the encoder a zero-cardinality digit.
    EmptyOppTable {
        /// Index of the offending domain in the platform's domain list.
        domain: usize,
    },
    /// The FPS quantiser was configured with zero bins.
    ZeroBins,
    /// A state space was declared with no dimensions at all.
    EmptyStateSpace,
    /// A state-space dimension has zero cardinality.
    ZeroCardinality {
        /// Index of the offending dimension.
        dim: usize,
    },
    /// The product of the dimension cardinalities overflows the `u64`
    /// key space.
    StateSpaceTooLarge,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyOppTable { domain } => {
                write!(f, "platform domain {domain} has an empty OPP table")
            }
            CoreError::ZeroBins => write!(f, "FPS quantiser needs at least one bin"),
            CoreError::EmptyStateSpace => {
                write!(f, "state space needs at least one dimension")
            }
            CoreError::ZeroCardinality { dim } => {
                write!(f, "state-space dimension {dim} has zero cardinality")
            }
            CoreError::StateSpaceTooLarge => {
                write!(f, "state space size overflows the u64 key space")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        assert!(CoreError::EmptyOppTable { domain: 2 }
            .to_string()
            .contains("domain 2"));
        assert!(CoreError::ZeroCardinality { dim: 5 }
            .to_string()
            .contains("dimension 5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
