//! The frame window: the user-interaction sensor of Next (§IV-A).
//!
//! The agent samples the presented frame rate every 25 ms over a rolling
//! window of 4 seconds — 160 samples — and computes the **mathematical
//! mode**. The mode is "the most possible frame rate suitable to provide
//! the desirable QoS for the user during that session": scrolling
//! sessions mode at 60, reading sessions mode near 0–10, video at its
//! native rate. The mode becomes the RL module's target FPS for the next
//! window.

use std::collections::VecDeque;

/// Rolling FPS sample window with mode extraction.
///
/// Samples are rounded to whole FPS before entering the histogram, the
/// resolution at which a mode is meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameWindow {
    capacity: usize,
    samples: VecDeque<u32>,
    /// Histogram over 0..=60 FPS for O(1) mode maintenance.
    histogram: Vec<u32>,
}

/// Highest whole FPS the window tracks (display refresh).
pub const MAX_FPS: u32 = 60;

impl FrameWindow {
    /// Creates a window holding `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window needs capacity");
        FrameWindow {
            capacity,
            samples: VecDeque::with_capacity(capacity),
            histogram: vec![0; (MAX_FPS + 1) as usize],
        }
    }

    /// The paper's window: 4 s of 25 ms samples (160 values).
    #[must_use]
    pub fn paper_default() -> Self {
        FrameWindow::new(160)
    }

    /// Maximum number of samples retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the window is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Pushes one FPS sample (clamped to `[0, 60]`, rounded to whole
    /// FPS), evicting the oldest when full.
    ///
    /// Non-finite samples (NaN, ±∞ from a degenerate frame interval) are
    /// dropped: recording them would alias to 0 FPS after the clamp and
    /// silently skew the mode — the target FPS — toward idle.
    pub fn push(&mut self, fps: f64) {
        if !fps.is_finite() {
            return;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let value = fps.clamp(0.0, f64::from(MAX_FPS)).round() as u32;
        if self.samples.len() == self.capacity {
            // qlint::allow(PN01, reason = "capacity is validated > 0, so a full deque pops")
            let old = self.samples.pop_front().expect("non-empty at capacity");
            self.histogram[old as usize] -= 1;
        }
        self.samples.push_back(value);
        self.histogram[value as usize] += 1;
    }

    /// The mode of the samples — the target FPS. Ties break towards the
    /// *higher* frame rate (never under-serve the user). `None` when
    /// empty.
    #[must_use]
    pub fn mode(&self) -> Option<u32> {
        if self.samples.is_empty() {
            return None;
        }
        let mut best = 0u32;
        let mut best_count = 0u32;
        for (fps, &count) in self.histogram.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            let fps = fps as u32;
            if count >= best_count && count > 0 {
                best = fps;
                best_count = count;
            }
        }
        Some(best)
    }

    /// Clears all samples (app switch).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.histogram.iter_mut().for_each(|c| *c = 0);
    }

    /// Iterator over the retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.samples.iter().copied()
    }
}

impl Default for FrameWindow {
    fn default() -> Self {
        FrameWindow::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_holds_160_samples() {
        let w = FrameWindow::paper_default();
        assert_eq!(w.capacity(), 160);
    }

    #[test]
    fn mode_of_uniform_stream() {
        let mut w = FrameWindow::new(10);
        for _ in 0..10 {
            w.push(60.0);
        }
        assert_eq!(w.mode(), Some(60));
        assert!(w.is_full());
    }

    #[test]
    fn mode_tracks_majority() {
        let mut w = FrameWindow::new(160);
        for _ in 0..100 {
            w.push(30.0);
        }
        for _ in 0..60 {
            w.push(60.0);
        }
        assert_eq!(w.mode(), Some(30));
    }

    #[test]
    fn ties_break_towards_higher_fps() {
        let mut w = FrameWindow::new(4);
        w.push(20.0);
        w.push(20.0);
        w.push(60.0);
        w.push(60.0);
        assert_eq!(w.mode(), Some(60));
    }

    #[test]
    fn eviction_forgets_old_interaction() {
        let mut w = FrameWindow::new(4);
        for _ in 0..4 {
            w.push(10.0);
        }
        assert_eq!(w.mode(), Some(10));
        for _ in 0..4 {
            w.push(55.0);
        }
        assert_eq!(w.mode(), Some(55), "old samples must age out");
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn samples_round_and_clamp() {
        let mut w = FrameWindow::new(8);
        w.push(59.6); // → 60
        w.push(72.0); // → 60
        w.push(-3.0); // → 0
        w.push(0.4); // → 0
        let collected: Vec<u32> = w.iter().collect();
        assert_eq!(collected, vec![60, 60, 0, 0]);
    }

    #[test]
    fn non_finite_samples_are_skipped() {
        // Regression: NaN used to survive the clamp (`NaN as u32 == 0`)
        // and count as a 0 FPS sample, dragging the mode — and with it
        // the agent's target FPS — toward idle.
        let mut w = FrameWindow::new(8);
        w.push(60.0);
        w.push(f64::NAN);
        w.push(f64::INFINITY);
        w.push(f64::NEG_INFINITY);
        w.push(60.0);
        assert_eq!(w.len(), 2, "non-finite samples must not be recorded");
        assert_eq!(w.mode(), Some(60));
        assert!(w.iter().all(|s| s == 60));

        // A NaN-heavy stream must not manufacture an idle mode.
        let mut w2 = FrameWindow::new(4);
        for _ in 0..10 {
            w2.push(f64::NAN);
        }
        assert_eq!(w2.mode(), None, "only non-finite input: no mode");
        assert!(w2.is_empty());
    }

    #[test]
    fn empty_window_has_no_mode() {
        let w = FrameWindow::new(5);
        assert_eq!(w.mode(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut w = FrameWindow::new(5);
        w.push(30.0);
        w.clear();
        assert_eq!(w.mode(), None);
        assert_eq!(w.len(), 0);
        // Histogram must also be clean: a single new sample wins.
        w.push(10.0);
        assert_eq!(w.mode(), Some(10));
    }

    #[test]
    fn mode_is_always_an_observed_value() {
        let mut w = FrameWindow::new(50);
        let inputs = [3.0, 17.0, 42.0, 42.0, 8.0, 17.0, 42.0];
        for &x in &inputs {
            w.push(x);
        }
        let m = w.mode().unwrap();
        assert!(w.iter().any(|s| s == m), "mode {m} not among samples");
        assert_eq!(m, 42);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = FrameWindow::new(0);
    }
}
