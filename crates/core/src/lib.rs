//! **Next** — the user-interaction-aware reinforcement-learning DVFS
//! agent of Dey et al., *"User Interaction Aware Reinforcement Learning
//! for Power and Thermal Efficiency of CPU-GPU Mobile MPSoCs"*
//! (DATE 2020).
//!
//! Next runs in the application layer (on the LITTLE cluster of the real
//! device) and closes a loop around the platform every 100 ms:
//!
//! 1. the [`frame_window`] samples the presented frame rate every 25 ms
//!    over a 4 s window and takes the **mode** — the frame rate the
//!    user's current interaction pattern actually asks for — as the
//!    *target FPS*;
//! 2. the RL module observes the state (per-cluster frequencies, current
//!    FPS, target FPS, power, big-cluster and device temperatures),
//!    earns a reward built from the paper's new **PPDW** metric
//!    ([`mod@ppdw`], performance per degree watt) plus target-FPS
//!    attainment, and Q-learns over 9 actions (frequency up / down /
//!    hold per cluster, [`action`]);
//! 3. the chosen action moves the corresponding cluster's `maxfreq` cap
//!    — the hardware stays free to idle below it.
//!
//! Trained Q-tables are kept per application in a [`store::QTableStore`]
//! and reused on later launches, so training happens once per app
//! (§IV-B); [`qlearn::federated`] covers the cloud/federated variant.
//!
//! # Example
//!
//! ```
//! use mpsoc::{Soc, SocConfig};
//! use next_core::{NextAgent, NextConfig};
//!
//! let mut soc = Soc::new(SocConfig::exynos9810());
//! let mut agent = NextAgent::new(NextConfig::default());
//! // Engine loop: sample FPS every 25 ms, control every 100 ms.
//! let demand = mpsoc::perf::FrameDemand::new(4.0e6, 2.0e6, 6.0e6);
//! for tick in 0..400 {
//!     let out = soc.tick(0.025, &demand);
//!     agent.observe_frame_sample(out.fps);
//!     if tick % 4 == 0 {
//!         let state = soc.state();
//!         agent.step(&state, soc.dvfs_mut());
//!     }
//! }
//! assert!(agent.stats().updates > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod agent;
mod error;
pub mod frame_window;
pub mod ppdw;
pub mod space;
pub mod state;
pub mod store;

pub use action::{Action, Direction};
pub use agent::{NextAgent, NextConfig, TrainingStats};
pub use error::CoreError;
pub use frame_window::FrameWindow;
pub use ppdw::{ppdw, PpdwBounds};
pub use space::StateSpace;
pub use state::StateEncoder;
pub use store::QTableStore;
