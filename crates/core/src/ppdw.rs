//! **PPDW** — performance per degree watt, the paper's new metric
//! (§III-B, Eq. 1):
//!
//! ```text
//! PPDW_i = FPS_i / (ΔT × P_i),   ΔT = T_i − T_a
//! ```
//!
//! where `T_a` is the ambient temperature. Unlike performance-per-watt,
//! PPDW penalises thermal headroom consumption as well as power draw,
//! which is what makes it suitable for passively-cooled mobile devices.
//!
//! Eq. 2 bounds the optimisation: the achievable PPDW lies between
//! `PPDW_worst` (least FPS at maximum power and peak temperature) and
//! `PPDW_best` (maximum FPS at least power with minimal heating).

/// Floor applied to `ΔT` so a device at ambient does not divide by zero
/// (physically: the sensor resolution is coarser than 0.5 °C anyway).
pub const DELTA_T_FLOOR_C: f64 = 0.5;

/// Floor applied to power (the platform floor is never truly zero).
pub const POWER_FLOOR_W: f64 = 0.05;

/// Evaluates Eq. 1 with the numerical floors applied.
///
/// Negative FPS is clamped to zero, so the result is always
/// non-negative and finite.
#[must_use]
pub fn ppdw(fps: f64, power_w: f64, temp_c: f64, ambient_c: f64) -> f64 {
    let delta_t = (temp_c - ambient_c).max(DELTA_T_FLOOR_C);
    let power = power_w.max(POWER_FLOOR_W);
    fps.max(0.0) / (delta_t * power)
}

/// The Eq. 2 envelope for a platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpdwBounds {
    /// Least frame rate considered (the paper uses 1 FPS).
    pub fps_least: f64,
    /// Maximum frame rate (display refresh, 60 FPS).
    pub fps_max: f64,
    /// Least platform power, watts.
    pub power_least_w: f64,
    /// Maximum platform power, watts.
    pub power_max_w: f64,
    /// Least achievable `ΔT` above ambient, °C.
    pub delta_t_least_c: f64,
    /// Maximum allowed `ΔT` above ambient, °C.
    pub delta_t_max_c: f64,
}

impl PpdwBounds {
    /// The calibrated Note 9 envelope: 1–60 FPS, 1–16 W, 1–70 °C above
    /// ambient.
    #[must_use]
    pub fn exynos9810() -> Self {
        PpdwBounds {
            fps_least: 1.0,
            fps_max: 60.0,
            power_least_w: 1.0,
            power_max_w: 16.0,
            delta_t_least_c: 1.0,
            delta_t_max_c: 70.0,
        }
    }

    /// `PPDW_best = FPS_max / (ΔT_least × P_least)` (Eq. 2).
    #[must_use]
    pub fn best(&self) -> f64 {
        self.fps_max
            / (self.delta_t_least_c.max(DELTA_T_FLOOR_C) * self.power_least_w.max(POWER_FLOOR_W))
    }

    /// `PPDW_worst = FPS_least / (ΔT_max × P_max)` (Eq. 2).
    #[must_use]
    pub fn worst(&self) -> f64 {
        self.fps_least
            / (self.delta_t_max_c.max(DELTA_T_FLOOR_C) * self.power_max_w.max(POWER_FLOOR_W))
    }

    /// Whether a measured PPDW value lies inside the Eq. 2 envelope
    /// `best ≥ value > worst`.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value > self.worst() && value <= self.best()
    }

    /// Normalises a PPDW value into `[0, 1]` against the envelope
    /// (clamped, linear).
    #[must_use]
    pub fn normalize(&self, value: f64) -> f64 {
        let best = self.best();
        let worst = self.worst();
        ((value - worst) / (best - worst)).clamp(0.0, 1.0)
    }

    /// Reference scale of the envelope: the geometric mean of `best`
    /// and `worst`, which lands in the realistic operating range
    /// (the envelope spans ~5 orders of magnitude, so linear
    /// normalisation crushes every practical value towards 0).
    #[must_use]
    pub fn reference(&self) -> f64 {
        (self.best() * self.worst()).sqrt()
    }

    /// Soft normalisation `v / (v + reference)` into `[0, 1)`: 0 at
    /// zero, ½ at the reference scale, saturating towards 1. Monotonic
    /// with a usable gradient across the whole realistic PPDW range —
    /// the scale the agent's reward uses.
    #[must_use]
    pub fn soft_normalize(&self, value: f64) -> f64 {
        let v = value.max(0.0);
        v / (v + self.reference())
    }
}

impl Default for PpdwBounds {
    fn default() -> Self {
        PpdwBounds::exynos9810()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_hand_computation() {
        // 60 FPS at 3 W and 20 °C above 21 °C ambient.
        let v = ppdw(60.0, 3.0, 41.0, 21.0);
        assert!((v - 60.0 / (20.0 * 3.0)).abs() < 1e-12);
    }

    #[test]
    fn floors_prevent_division_blowup() {
        let at_ambient = ppdw(60.0, 3.0, 21.0, 21.0);
        assert!(at_ambient.is_finite());
        let below_ambient = ppdw(60.0, 3.0, 15.0, 21.0);
        assert!(below_ambient.is_finite());
        assert_eq!(at_ambient, below_ambient, "both clamp to the ΔT floor");
        assert!(ppdw(60.0, 0.0, 40.0, 21.0).is_finite());
    }

    #[test]
    fn zero_fps_gives_zero() {
        assert_eq!(ppdw(0.0, 5.0, 50.0, 21.0), 0.0);
        assert_eq!(ppdw(-3.0, 5.0, 50.0, 21.0), 0.0);
    }

    #[test]
    fn higher_fps_better_lower_power_better_cooler_better() {
        let base = ppdw(30.0, 4.0, 50.0, 21.0);
        assert!(ppdw(40.0, 4.0, 50.0, 21.0) > base);
        assert!(ppdw(30.0, 3.0, 50.0, 21.0) > base);
        assert!(ppdw(30.0, 4.0, 45.0, 21.0) > base);
    }

    #[test]
    fn bounds_order_and_containment() {
        let b = PpdwBounds::exynos9810();
        assert!(b.best() > b.worst());
        // A sane operating point sits inside the envelope.
        let v = ppdw(45.0, 3.0, 45.0, 21.0);
        assert!(
            b.contains(v),
            "typical point {v} outside [{}, {}]",
            b.worst(),
            b.best()
        );
        assert!(!b.contains(b.best() * 2.0));
        assert!(!b.contains(0.0));
    }

    #[test]
    fn paper_worst_case_examples_score_terribly() {
        // "generated FPS is 1 while executing all CPU and GPU cores at
        // their corresponding maximum frequencies" — Fig. 4's red
        // points sit near zero.
        let b = PpdwBounds::exynos9810();
        let v = ppdw(1.0, 14.0, 85.0, 21.0);
        assert!(v < b.best() * 0.01, "worst case {v} not near zero");
    }

    #[test]
    fn normalize_is_clamped_and_monotonic() {
        let b = PpdwBounds::exynos9810();
        assert_eq!(b.normalize(-1.0), 0.0);
        assert_eq!(b.normalize(b.best() * 10.0), 1.0);
        let lo = b.normalize(ppdw(10.0, 5.0, 60.0, 21.0));
        let hi = b.normalize(ppdw(55.0, 2.0, 35.0, 21.0));
        assert!(hi > lo);
    }
}
