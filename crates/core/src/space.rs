//! Dense state-space descriptor: dimension cardinalities → flat index.
//!
//! The Next observation is a tuple of small discrete digits (OPP cap
//! levels, quantiser bins). Packing that tuple mixed-radix yields a
//! **compact** key space `0..size` with no holes between adjacent
//! states, which is exactly what the dense-indexed Q-table backend
//! ([`qlearn::DenseQTable`]) wants: nearby observations land in nearby
//! rows, and the whole space has a known size for capacity planning.
//!
//! [`StateSpace`] replaces the ad-hoc packing arithmetic that used to
//! live inside the state encoder: the radices are declared once — one
//! frequency digit per platform DVFS domain plus the quantised signals
//! — and pack/unpack/size all derive from the same declaration.

use qlearn::qtable::StateKey;

use crate::error::CoreError;

/// Descriptor of a discretised state space: one cardinality (radix) per
/// observation dimension, most-significant dimension first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpace {
    dims: Vec<usize>,
}

impl StateSpace {
    /// Creates a descriptor from per-dimension cardinalities
    /// (most-significant first).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyStateSpace`] for an empty dimension
    /// list, [`CoreError::ZeroCardinality`] if any cardinality is zero,
    /// and [`CoreError::StateSpaceTooLarge`] if the total size
    /// overflows `u64`.
    pub fn new(dims: &[usize]) -> Result<Self, CoreError> {
        if dims.is_empty() {
            return Err(CoreError::EmptyStateSpace);
        }
        if let Some(dim) = dims.iter().position(|&d| d == 0) {
            return Err(CoreError::ZeroCardinality { dim });
        }
        let mut size: u64 = 1;
        for &d in dims {
            size = size
                .checked_mul(d as u64)
                .ok_or(CoreError::StateSpaceTooLarge)?;
        }
        Ok(StateSpace {
            dims: dims.to_vec(),
        })
    }

    /// Panicking convenience constructor for tests and static presets.
    ///
    /// # Panics
    ///
    /// Panics where [`StateSpace::new`] would return an error.
    #[must_use]
    pub fn new_unchecked(dims: &[usize]) -> Self {
        // qlint::allow(PN01, reason = "documented panicking constructor; fallible callers use StateSpace::new")
        StateSpace::new(dims).expect("valid state-space dimensions")
    }

    /// Number of dimensions.
    #[must_use]
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// The per-dimension cardinalities, most-significant first.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of distinct states (the product of the radices).
    /// Every key produced by [`StateSpace::flat_index`] is `< size()`.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.dims.iter().map(|&d| d as u64).product()
    }

    /// Packs one digit per dimension into the dense flat index
    /// (mixed-radix, first digit most significant).
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != n_dims()` or any digit reaches its
    /// radix.
    #[must_use]
    pub fn flat_index(&self, digits: &[usize]) -> StateKey {
        assert_eq!(
            digits.len(),
            self.dims.len(),
            "digit count must match dimensions"
        );
        let mut key: u64 = 0;
        for (&digit, &radix) in digits.iter().zip(&self.dims) {
            assert!(digit < radix, "digit {digit} exceeds radix {radix}");
            key = key * radix as u64 + digit as u64;
        }
        key
    }

    /// Unpacks a flat index back into one digit per dimension (inverse
    /// of [`StateSpace::flat_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != n_dims()` or `key >= size()`.
    pub fn unpack_into(&self, key: StateKey, digits: &mut [usize]) {
        assert_eq!(
            digits.len(),
            self.dims.len(),
            "digit count must match dimensions"
        );
        assert!(key < self.size(), "key {key} outside the state space");
        let mut rest = key;
        for i in (0..self.dims.len()).rev() {
            let r = self.dims[i] as u64;
            digits[i] = (rest % r) as usize;
            rest /= r;
        }
    }

    /// Unpacks a flat index, allocating the digit vector.
    ///
    /// # Panics
    ///
    /// Panics if `key >= size()`.
    #[must_use]
    pub fn unpack(&self, key: StateKey) -> Vec<usize> {
        let mut digits = vec![0; self.dims.len()];
        self.unpack_into(key, &mut digits);
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_is_mixed_radix_msd_first() {
        let space = StateSpace::new_unchecked(&[3, 4, 5]);
        assert_eq!(space.size(), 60);
        assert_eq!(space.flat_index(&[0, 0, 0]), 0);
        assert_eq!(space.flat_index(&[0, 0, 1]), 1);
        assert_eq!(space.flat_index(&[0, 1, 0]), 5);
        assert_eq!(space.flat_index(&[1, 0, 0]), 20);
        assert_eq!(space.flat_index(&[2, 3, 4]), 59);
    }

    #[test]
    fn pack_unpack_roundtrip_covers_the_space() {
        let space = StateSpace::new_unchecked(&[2, 3, 2]);
        let mut seen = std::collections::HashSet::new();
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..2 {
                    let key = space.flat_index(&[a, b, c]);
                    assert!(key < space.size());
                    assert_eq!(space.unpack(key), vec![a, b, c]);
                    seen.insert(key);
                }
            }
        }
        assert_eq!(
            seen.len() as u64,
            space.size(),
            "packing must be a bijection"
        );
    }

    #[test]
    fn unpack_into_avoids_allocation() {
        let space = StateSpace::new_unchecked(&[7, 11]);
        let mut digits = [0usize; 2];
        space.unpack_into(38, &mut digits);
        assert_eq!(space.flat_index(&digits), 38);
    }

    #[test]
    #[should_panic(expected = "exceeds radix")]
    fn digit_at_radix_panics() {
        let _ = StateSpace::new_unchecked(&[3, 3]).flat_index(&[0, 3]);
    }

    #[test]
    #[should_panic(expected = "outside the state space")]
    fn unpack_out_of_range_panics() {
        let _ = StateSpace::new_unchecked(&[2, 2]).unpack(4);
    }

    #[test]
    fn zero_cardinality_is_a_typed_error() {
        assert_eq!(
            StateSpace::new(&[3, 0]),
            Err(CoreError::ZeroCardinality { dim: 1 })
        );
        assert_eq!(StateSpace::new(&[]), Err(CoreError::EmptyStateSpace));
    }

    #[test]
    fn overflowing_space_is_a_typed_error() {
        assert_eq!(
            StateSpace::new(&[usize::MAX, usize::MAX]),
            Err(CoreError::StateSpaceTooLarge)
        );
    }

    #[test]
    #[should_panic(expected = "valid state-space dimensions")]
    fn unchecked_constructor_panics_on_bad_dims() {
        let _ = StateSpace::new_unchecked(&[3, 0]);
    }
}
