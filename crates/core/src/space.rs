//! Dense state-space descriptor: dimension cardinalities → flat index.
//!
//! The Next observation is a tuple of small discrete digits (OPP cap
//! levels, quantiser bins). Packing that tuple mixed-radix yields a
//! **compact** key space `0..size` with no holes between adjacent
//! states, which is exactly what the dense-indexed Q-table backend
//! ([`qlearn::DenseQTable`]) wants: nearby observations land in nearby
//! rows, and the whole space has a known size for capacity planning.
//!
//! [`StateSpace`] replaces the ad-hoc packing arithmetic that used to
//! live inside the state encoder: the radices are declared once, and
//! pack/unpack/size all derive from the same declaration.

use qlearn::qtable::StateKey;

/// Descriptor of a discretised state space: one cardinality (radix) per
/// observation dimension, most-significant dimension first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpace {
    dims: Vec<usize>,
}

impl StateSpace {
    /// Creates a descriptor from per-dimension cardinalities
    /// (most-significant first).
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, any cardinality is zero, or the total
    /// size overflows `u64`.
    #[must_use]
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "state space needs at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "every dimension needs at least one value"
        );
        let mut size: u64 = 1;
        for &d in dims {
            size = size
                .checked_mul(d as u64)
                .expect("state space size must fit in a u64 key");
        }
        StateSpace {
            dims: dims.to_vec(),
        }
    }

    /// Number of dimensions.
    #[must_use]
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// The per-dimension cardinalities, most-significant first.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of distinct states (the product of the radices).
    /// Every key produced by [`StateSpace::flat_index`] is `< size()`.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.dims.iter().map(|&d| d as u64).product()
    }

    /// Packs one digit per dimension into the dense flat index
    /// (mixed-radix, first digit most significant).
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != n_dims()` or any digit reaches its
    /// radix.
    #[must_use]
    pub fn flat_index(&self, digits: &[usize]) -> StateKey {
        assert_eq!(
            digits.len(),
            self.dims.len(),
            "digit count must match dimensions"
        );
        let mut key: u64 = 0;
        for (&digit, &radix) in digits.iter().zip(&self.dims) {
            assert!(digit < radix, "digit {digit} exceeds radix {radix}");
            key = key * radix as u64 + digit as u64;
        }
        key
    }

    /// Unpacks a flat index back into one digit per dimension (inverse
    /// of [`StateSpace::flat_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != n_dims()` or `key >= size()`.
    pub fn unpack_into(&self, key: StateKey, digits: &mut [usize]) {
        assert_eq!(
            digits.len(),
            self.dims.len(),
            "digit count must match dimensions"
        );
        assert!(key < self.size(), "key {key} outside the state space");
        let mut rest = key;
        for i in (0..self.dims.len()).rev() {
            let r = self.dims[i] as u64;
            digits[i] = (rest % r) as usize;
            rest /= r;
        }
    }

    /// Unpacks a flat index, allocating the digit vector.
    ///
    /// # Panics
    ///
    /// Panics if `key >= size()`.
    #[must_use]
    pub fn unpack(&self, key: StateKey) -> Vec<usize> {
        let mut digits = vec![0; self.dims.len()];
        self.unpack_into(key, &mut digits);
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_is_mixed_radix_msd_first() {
        let space = StateSpace::new(&[3, 4, 5]);
        assert_eq!(space.size(), 60);
        assert_eq!(space.flat_index(&[0, 0, 0]), 0);
        assert_eq!(space.flat_index(&[0, 0, 1]), 1);
        assert_eq!(space.flat_index(&[0, 1, 0]), 5);
        assert_eq!(space.flat_index(&[1, 0, 0]), 20);
        assert_eq!(space.flat_index(&[2, 3, 4]), 59);
    }

    #[test]
    fn pack_unpack_roundtrip_covers_the_space() {
        let space = StateSpace::new(&[2, 3, 2]);
        let mut seen = std::collections::HashSet::new();
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..2 {
                    let key = space.flat_index(&[a, b, c]);
                    assert!(key < space.size());
                    assert_eq!(space.unpack(key), vec![a, b, c]);
                    seen.insert(key);
                }
            }
        }
        assert_eq!(
            seen.len() as u64,
            space.size(),
            "packing must be a bijection"
        );
    }

    #[test]
    fn unpack_into_avoids_allocation() {
        let space = StateSpace::new(&[7, 11]);
        let mut digits = [0usize; 2];
        space.unpack_into(38, &mut digits);
        assert_eq!(space.flat_index(&digits), 38);
    }

    #[test]
    #[should_panic(expected = "exceeds radix")]
    fn digit_at_radix_panics() {
        let _ = StateSpace::new(&[3, 3]).flat_index(&[0, 3]);
    }

    #[test]
    #[should_panic(expected = "outside the state space")]
    fn unpack_out_of_range_panics() {
        let _ = StateSpace::new(&[2, 2]).unpack(4);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_cardinality_panics() {
        let _ = StateSpace::new(&[3, 0]);
    }

    #[test]
    #[should_panic(expected = "fit in a u64")]
    fn overflowing_space_panics() {
        let _ = StateSpace::new(&[usize::MAX, usize::MAX]);
    }
}
