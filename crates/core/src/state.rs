//! RL state encoding (§IV-B).
//!
//! The observed state of the Next environment consists of the eight
//! signals the paper lists for the Exynos 9810 implementation:
//! `big CPUfreq`, `LITTLE CPUfreq`, `GPUfreq`, `FPS_current`,
//! `Target FPS`, `Power_current`, `Temperature_big` and
//! `Temperature_device`. Frequencies are already discrete (OPP levels);
//! the continuous signals are quantised, and the whole tuple is packed
//! into a single mixed-radix [`StateKey`] for the Q-table.

use mpsoc::freq::ClusterId;
use mpsoc::soc::SocState;
use qlearn::discretize::Quantizer;
use qlearn::qtable::StateKey;

use crate::space::StateSpace;

/// Packs the paper's 8-signal observation into Q-table state keys.
///
/// The mixed-radix packing itself lives in [`StateSpace`]; the encoder
/// only quantises the continuous signals into digits. Keys are dense
/// (`0..state_space_size()`), which the dense-indexed Q-table backend
/// exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateEncoder {
    space: StateSpace,
    fps_quant: Quantizer,
    power_quant: Quantizer,
    temp_quant: Quantizer,
}

/// A decoded state, for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedState {
    /// OPP level per cluster, by [`ClusterId::index`].
    pub freq_level: [usize; 3],
    /// Quantised current-FPS bin.
    pub fps_bin: usize,
    /// Quantised target-FPS bin.
    pub target_bin: usize,
    /// Quantised power bin.
    pub power_bin: usize,
    /// Quantised big-cluster temperature bin.
    pub temp_big_bin: usize,
    /// Quantised device temperature bin.
    pub temp_device_bin: usize,
}

impl StateEncoder {
    /// Creates an encoder for the given per-cluster OPP table sizes and
    /// FPS quantisation bin count.
    ///
    /// # Panics
    ///
    /// Panics if any table size or `fps_bins` is zero.
    #[must_use]
    pub fn new(freq_levels: [usize; 3], fps_bins: usize) -> Self {
        assert!(
            freq_levels.iter().all(|&n| n > 0),
            "cluster tables must be non-empty"
        );
        let fps_quant = Quantizer::fps(fps_bins);
        let power_quant = Quantizer::power();
        let temp_quant = Quantizer::temperature();
        let space = StateSpace::new(&[
            freq_levels[0],
            freq_levels[1],
            freq_levels[2],
            fps_quant.bins(),
            fps_quant.bins(),
            power_quant.bins(),
            temp_quant.bins(),
            temp_quant.bins(),
        ]);
        StateEncoder {
            space,
            fps_quant,
            power_quant,
            temp_quant,
        }
    }

    /// Encoder for the Exynos 9810 ladders (18/10/6 levels) at the
    /// paper's preferred 30 FPS bins.
    #[must_use]
    pub fn exynos9810(fps_bins: usize) -> Self {
        StateEncoder::new([18, 10, 6], fps_bins)
    }

    /// The FPS quantiser in use.
    #[must_use]
    pub fn fps_quantizer(&self) -> &Quantizer {
        &self.fps_quant
    }

    /// The dense state-space descriptor behind the encoding.
    #[must_use]
    pub fn space(&self) -> &StateSpace {
        &self.space
    }

    /// Total number of distinct encodable states.
    #[must_use]
    pub fn state_space_size(&self) -> u64 {
        self.space.size()
    }

    /// Encodes an observed SoC state plus the frame-window target FPS.
    ///
    /// The frequency digits are the **`maxfreq` cap levels** — the
    /// operating-frequency settings the agent itself writes. The
    /// instantaneous frequency bounces between OPPs every scheduling
    /// period under the kernel's boost/decay policy, which would turn
    /// the frequency digits into high-entropy noise; the cap is the
    /// stable, Markovian part of the frequency state (§IV-A: "setting
    /// operating frequency means to set the maxfreq").
    ///
    /// # Panics
    ///
    /// Panics if a cap level exceeds its declared table size.
    #[must_use]
    pub fn encode(&self, state: &SocState, target_fps: f64) -> StateKey {
        let digits = [
            state.max_cap_level[ClusterId::Big.index()],
            state.max_cap_level[ClusterId::Little.index()],
            state.max_cap_level[ClusterId::Gpu.index()],
            self.fps_quant.index(state.fps),
            self.fps_quant.index(target_fps),
            self.power_quant.index(state.power_w),
            self.temp_quant.index(state.temp_big_c),
            self.temp_quant.index(state.temp_device_c),
        ];
        self.space.flat_index(&digits)
    }

    /// Decodes a key back into its components (inverse of
    /// [`StateEncoder::encode`] at bin resolution).
    #[must_use]
    pub fn decode(&self, key: StateKey) -> DecodedState {
        let mut digits = [0usize; 8];
        self.space.unpack_into(key, &mut digits);
        DecodedState {
            freq_level: [digits[0], digits[1], digits[2]],
            fps_bin: digits[3],
            target_bin: digits[4],
            power_bin: digits[5],
            temp_big_bin: digits[6],
            temp_device_bin: digits[7],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state(fps: f64, power: f64, tb: f64, td: f64, levels: [usize; 3]) -> SocState {
        SocState {
            time_s: 0.0,
            freq_khz: [0; 3],
            freq_level: levels,
            max_cap_level: levels,
            fps,
            power_w: power,
            temp_big_c: tb,
            temp_little_c: tb - 3.0,
            temp_gpu_c: tb - 2.0,
            temp_device_c: td,
            temp_battery_c: td - 1.0,
            util: [0.5; 3],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let enc = StateEncoder::exynos9810(30);
        let state = sample_state(43.0, 5.5, 61.0, 44.0, [17, 9, 5]);
        let key = enc.encode(&state, 30.0);
        let dec = enc.decode(key);
        assert_eq!(dec.freq_level, [17, 9, 5]);
        assert_eq!(dec.fps_bin, enc.fps_quantizer().index(43.0));
        assert_eq!(dec.target_bin, enc.fps_quantizer().index(30.0));
    }

    #[test]
    fn distinct_observations_distinct_keys() {
        let enc = StateEncoder::exynos9810(30);
        let a = enc.encode(&sample_state(60.0, 3.0, 40.0, 35.0, [0, 0, 0]), 60.0);
        let b = enc.encode(&sample_state(60.0, 3.0, 40.0, 35.0, [1, 0, 0]), 60.0);
        let c = enc.encode(&sample_state(10.0, 3.0, 40.0, 35.0, [0, 0, 0]), 60.0);
        let d = enc.encode(&sample_state(60.0, 3.0, 40.0, 35.0, [0, 0, 0]), 30.0);
        let keys = [a, b, c, d];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn nearby_values_in_same_bin_share_key() {
        let enc = StateEncoder::exynos9810(30);
        let a = enc.encode(&sample_state(30.2, 5.0, 50.0, 40.0, [4, 4, 2]), 60.0);
        let b = enc.encode(&sample_state(31.0, 5.1, 50.4, 40.3, [4, 4, 2]), 60.0);
        assert_eq!(
            a, b,
            "quantisation should coalesce near-identical observations"
        );
    }

    #[test]
    fn state_space_size_matches_paper_scale() {
        let enc = StateEncoder::exynos9810(30);
        let expect = 18u64 * 10 * 6 * 30 * 30 * 4 * 6 * 6;
        assert_eq!(enc.state_space_size(), expect);
        // Fewer FPS bins shrink the space quadratically (both the
        // current-FPS and target-FPS dimensions).
        let small = StateEncoder::exynos9810(10);
        assert_eq!(small.state_space_size(), 18 * 10 * 6 * 10 * 10 * 4 * 6 * 6);
    }

    #[test]
    fn keys_fit_in_u64_headroom() {
        let enc = StateEncoder::exynos9810(60);
        assert!(enc.state_space_size() < u64::MAX / 1024);
    }

    #[test]
    fn extreme_observations_clamp_not_panic() {
        let enc = StateEncoder::exynos9810(30);
        let state = sample_state(500.0, 100.0, 200.0, -10.0, [17, 9, 5]);
        let key = enc.encode(&state, 1e9);
        let dec = enc.decode(key);
        assert_eq!(dec.fps_bin, 29);
        assert_eq!(dec.power_bin, 3);
        assert_eq!(dec.temp_big_bin, 5);
        assert_eq!(dec.temp_device_bin, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds radix")]
    fn out_of_range_level_panics() {
        let enc = StateEncoder::exynos9810(30);
        let state = sample_state(30.0, 3.0, 40.0, 35.0, [18, 0, 0]);
        let _ = enc.encode(&state, 30.0);
    }
}
