//! RL state encoding (§IV-B).
//!
//! The observed state of the Next environment consists of the signals
//! the paper lists: one operating-frequency digit per DVFS domain
//! (`big CPUfreq`, `LITTLE CPUfreq`, `GPUfreq` on the Exynos 9810 —
//! however many domains the platform declares in general),
//! `FPS_current`, `Target FPS`, `Power_current`, the hot-spot
//! temperature (`Temperature_big`) and `Temperature_device`.
//! Frequencies are already discrete (OPP levels); the continuous
//! signals are quantised, and the whole tuple is packed into a single
//! mixed-radix [`StateKey`] for the Q-table.

use mpsoc::platform::{Platform, MAX_DOMAINS};
use mpsoc::soc::SocState;
use qlearn::discretize::Quantizer;
use qlearn::qtable::StateKey;

use crate::error::CoreError;
use crate::space::StateSpace;

/// Quantised signals beyond the per-domain frequency digits: current
/// FPS, target FPS, power, hot-spot temperature, device temperature.
const SIGNAL_DIMS: usize = 5;

/// Packs the paper's observation tuple into Q-table state keys.
///
/// The mixed-radix packing itself lives in [`StateSpace`]; the encoder
/// only quantises the continuous signals into digits. Keys are dense
/// (`0..state_space_size()`), which the dense-indexed Q-table backend
/// exploits. The number of frequency digits — and so the key space —
/// follows the platform's DVFS-domain count.
#[derive(Debug, Clone, PartialEq)]
pub struct StateEncoder {
    space: StateSpace,
    n_domains: usize,
    fps_quant: Quantizer,
    power_quant: Quantizer,
    temp_quant: Quantizer,
}

/// A decoded state, for diagnostics and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedState {
    /// OPP cap level per DVFS domain, in platform order.
    pub freq_level: Vec<usize>,
    /// Quantised current-FPS bin.
    pub fps_bin: usize,
    /// Quantised target-FPS bin.
    pub target_bin: usize,
    /// Quantised power bin.
    pub power_bin: usize,
    /// Quantised hot-spot temperature bin.
    pub temp_hot_bin: usize,
    /// Quantised device temperature bin.
    pub temp_device_bin: usize,
}

impl StateEncoder {
    /// Creates an encoder for the given per-domain OPP table sizes and
    /// FPS quantisation bin count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyOppTable`] if any table size is zero,
    /// [`CoreError::ZeroBins`] if `fps_bins` is zero, and propagates
    /// [`StateSpace::new`] errors for degenerate shapes.
    pub fn new(freq_levels: &[usize], fps_bins: usize) -> Result<Self, CoreError> {
        if let Some(domain) = freq_levels.iter().position(|&n| n == 0) {
            return Err(CoreError::EmptyOppTable { domain });
        }
        if fps_bins == 0 {
            return Err(CoreError::ZeroBins);
        }
        let fps_quant = Quantizer::fps(fps_bins);
        let power_quant = Quantizer::power();
        let temp_quant = Quantizer::temperature();
        let mut dims: Vec<usize> = freq_levels.to_vec();
        dims.extend([
            fps_quant.bins(),
            fps_quant.bins(),
            power_quant.bins(),
            temp_quant.bins(),
            temp_quant.bins(),
        ]);
        let space = StateSpace::new(&dims)?;
        Ok(StateEncoder {
            space,
            n_domains: freq_levels.len(),
            fps_quant,
            power_quant,
            temp_quant,
        })
    }

    /// Panicking convenience constructor for tests and static presets.
    ///
    /// # Panics
    ///
    /// Panics where [`StateEncoder::new`] would return an error.
    #[must_use]
    pub fn new_unchecked(freq_levels: &[usize], fps_bins: usize) -> Self {
        // qlint::allow(PN01, reason = "documented panicking constructor; fallible callers use StateEncoder::new")
        StateEncoder::new(freq_levels, fps_bins).expect("valid encoder shape")
    }

    /// Encoder for a platform's declared domain ladders.
    ///
    /// # Errors
    ///
    /// Propagates [`StateEncoder::new`] errors.
    pub fn for_platform(platform: &Platform, fps_bins: usize) -> Result<Self, CoreError> {
        StateEncoder::new(&platform.freq_levels(), fps_bins)
    }

    /// Encoder for the Exynos 9810 ladders (18/10/6 levels) at the
    /// paper's preferred 30 FPS bins.
    #[must_use]
    pub fn exynos9810(fps_bins: usize) -> Self {
        StateEncoder::new_unchecked(&[18, 10, 6], fps_bins)
    }

    /// Number of DVFS-domain frequency digits in the encoding.
    #[must_use]
    pub fn n_domains(&self) -> usize {
        self.n_domains
    }

    /// The FPS quantiser in use.
    #[must_use]
    pub fn fps_quantizer(&self) -> &Quantizer {
        &self.fps_quant
    }

    /// The dense state-space descriptor behind the encoding.
    #[must_use]
    pub fn space(&self) -> &StateSpace {
        &self.space
    }

    /// Total number of distinct encodable states.
    #[must_use]
    pub fn state_space_size(&self) -> u64 {
        self.space.size()
    }

    /// Encodes an observed SoC state plus the frame-window target FPS.
    ///
    /// The frequency digits are the **`maxfreq` cap levels** — the
    /// operating-frequency settings the agent itself writes. The
    /// instantaneous frequency bounces between OPPs every scheduling
    /// period under the kernel's boost/decay policy, which would turn
    /// the frequency digits into high-entropy noise; the cap is the
    /// stable, Markovian part of the frequency state (§IV-A: "setting
    /// operating frequency means to set the maxfreq").
    ///
    /// # Panics
    ///
    /// Panics if the state's domain count differs from the encoder's or
    /// a cap level exceeds its declared table size.
    #[must_use]
    pub fn encode(&self, state: &SocState, target_fps: f64) -> StateKey {
        assert_eq!(
            state.max_cap_level.len(),
            self.n_domains,
            "state domain count must match the encoder's platform"
        );
        let mut digits = [0usize; MAX_DOMAINS + SIGNAL_DIMS];
        let n = self.n_domains;
        digits[..n].copy_from_slice(&state.max_cap_level);
        digits[n] = self.fps_quant.index(state.fps);
        digits[n + 1] = self.fps_quant.index(target_fps);
        digits[n + 2] = self.power_quant.index(state.power_w);
        digits[n + 3] = self.temp_quant.index(state.temp_hot_c);
        digits[n + 4] = self.temp_quant.index(state.temp_device_c);
        self.space.flat_index(&digits[..n + SIGNAL_DIMS])
    }

    /// Decodes a key back into its components (inverse of
    /// [`StateEncoder::encode`] at bin resolution).
    #[must_use]
    pub fn decode(&self, key: StateKey) -> DecodedState {
        let mut digits = vec![0usize; self.space.n_dims()];
        self.space.unpack_into(key, &mut digits);
        let n = self.n_domains;
        DecodedState {
            freq_level: digits[..n].to_vec(),
            fps_bin: digits[n],
            target_bin: digits[n + 1],
            power_bin: digits[n + 2],
            temp_hot_bin: digits[n + 3],
            temp_device_bin: digits[n + 4],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc::platform::PerDomain;

    fn sample_state(fps: f64, power: f64, th: f64, td: f64, levels: &[usize]) -> SocState {
        let n = levels.len();
        SocState {
            time_s: 0.0,
            freq_khz: PerDomain::new(n),
            freq_level: PerDomain::from_slice(levels),
            max_cap_level: PerDomain::from_slice(levels),
            fps,
            power_w: power,
            temp_domain_c: PerDomain::from_fn(n, |_| th),
            temp_hot_c: th,
            temp_device_c: td,
            temp_battery_c: td - 1.0,
            util: PerDomain::from_fn(n, |_| 0.5),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let enc = StateEncoder::exynos9810(30);
        let state = sample_state(43.0, 5.5, 61.0, 44.0, &[17, 9, 5]);
        let key = enc.encode(&state, 30.0);
        let dec = enc.decode(key);
        assert_eq!(dec.freq_level, vec![17, 9, 5]);
        assert_eq!(dec.fps_bin, enc.fps_quantizer().index(43.0));
        assert_eq!(dec.target_bin, enc.fps_quantizer().index(30.0));
    }

    #[test]
    fn four_domain_encoder_roundtrips() {
        let platform = Platform::exynos9820();
        let enc = StateEncoder::for_platform(&platform, 30).unwrap();
        assert_eq!(enc.n_domains(), 4);
        let expect = 16u64 * 12 * 9 * 9 * 30 * 30 * 4 * 6 * 6;
        assert_eq!(enc.state_space_size(), expect);
        let state = sample_state(25.0, 4.0, 55.0, 40.0, &[15, 11, 8, 8]);
        let key = enc.encode(&state, 60.0);
        let dec = enc.decode(key);
        assert_eq!(dec.freq_level, vec![15, 11, 8, 8]);
        assert_eq!(dec.target_bin, enc.fps_quantizer().index(60.0));
    }

    #[test]
    fn distinct_observations_distinct_keys() {
        let enc = StateEncoder::exynos9810(30);
        let a = enc.encode(&sample_state(60.0, 3.0, 40.0, 35.0, &[0, 0, 0]), 60.0);
        let b = enc.encode(&sample_state(60.0, 3.0, 40.0, 35.0, &[1, 0, 0]), 60.0);
        let c = enc.encode(&sample_state(10.0, 3.0, 40.0, 35.0, &[0, 0, 0]), 60.0);
        let d = enc.encode(&sample_state(60.0, 3.0, 40.0, 35.0, &[0, 0, 0]), 30.0);
        let keys = [a, b, c, d];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn nearby_values_in_same_bin_share_key() {
        let enc = StateEncoder::exynos9810(30);
        let a = enc.encode(&sample_state(30.2, 5.0, 50.0, 40.0, &[4, 4, 2]), 60.0);
        let b = enc.encode(&sample_state(31.0, 5.1, 50.4, 40.3, &[4, 4, 2]), 60.0);
        assert_eq!(
            a, b,
            "quantisation should coalesce near-identical observations"
        );
    }

    #[test]
    fn state_space_size_matches_paper_scale() {
        let enc = StateEncoder::exynos9810(30);
        let expect = 18u64 * 10 * 6 * 30 * 30 * 4 * 6 * 6;
        assert_eq!(enc.state_space_size(), expect);
        // Fewer FPS bins shrink the space quadratically (both the
        // current-FPS and target-FPS dimensions).
        let small = StateEncoder::exynos9810(10);
        assert_eq!(small.state_space_size(), 18 * 10 * 6 * 10 * 10 * 4 * 6 * 6);
    }

    #[test]
    fn keys_fit_in_u64_headroom() {
        let enc = StateEncoder::exynos9810(60);
        assert!(enc.state_space_size() < u64::MAX / 1024);
    }

    #[test]
    fn extreme_observations_clamp_not_panic() {
        let enc = StateEncoder::exynos9810(30);
        let state = sample_state(500.0, 100.0, 200.0, -10.0, &[17, 9, 5]);
        let key = enc.encode(&state, 1e9);
        let dec = enc.decode(key);
        assert_eq!(dec.fps_bin, 29);
        assert_eq!(dec.power_bin, 3);
        assert_eq!(dec.temp_hot_bin, 5);
        assert_eq!(dec.temp_device_bin, 0);
    }

    #[test]
    fn malformed_shapes_are_typed_errors() {
        assert_eq!(
            StateEncoder::new(&[18, 0, 6], 30),
            Err(CoreError::EmptyOppTable { domain: 1 })
        );
        assert_eq!(StateEncoder::new(&[18, 10, 6], 0), Err(CoreError::ZeroBins));
        assert!(StateEncoder::new(&[], 30).is_ok_and(|e| e.n_domains() == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds radix")]
    fn out_of_range_level_panics() {
        let enc = StateEncoder::exynos9810(30);
        let state = sample_state(30.0, 3.0, 40.0, 35.0, &[18, 0, 0]);
        let _ = enc.encode(&state, 30.0);
    }

    #[test]
    #[should_panic(expected = "must match the encoder's platform")]
    fn mismatched_domain_count_panics() {
        let enc = StateEncoder::exynos9810(30);
        let state = sample_state(30.0, 3.0, 40.0, 35.0, &[0, 0, 0, 0]);
        let _ = enc.encode(&state, 30.0);
    }
}
