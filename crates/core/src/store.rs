//! Per-application Q-table store (§IV-B).
//!
//! "The training for every newly executing application is only performed
//! once and the Q-table results are stored on the memory so that later
//! when the application is executed again the agent is able to refer to
//! the Q-table." The store keeps tables keyed by application name, with
//! optional directory-backed persistence using the self-contained text
//! codec of [`qlearn::qtable::QTable`].

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use qlearn::backend::{DenseStore, QStore};
use qlearn::qtable::QTable;

/// In-memory, optionally disk-backed store of per-app Q-tables.
///
/// Generic over the table's [`QStore`] backend (default: dense). The
/// campaign runner instantiates it over [`qlearn::OverlayStore`] so a
/// device day's tables are copy-on-write views of the round's shared
/// global instead of full clones.
#[derive(Debug)]
pub struct QTableStore<S: QStore = DenseStore> {
    dir: Option<PathBuf>,
    // BTreeMap, not HashMap: `cached_apps` feeds campaign manifests, so
    // the key order must be app-name order, never hash order (ND03).
    cache: BTreeMap<String, QTable<S>>,
}

// Manual impl: deriving would demand `S: Default` for no reason.
impl<S: QStore> Default for QTableStore<S> {
    fn default() -> Self {
        QTableStore {
            dir: None,
            cache: BTreeMap::new(),
        }
    }
}

impl<S: QStore> QTableStore<S> {
    /// A purely in-memory store (tables vanish with the process).
    #[must_use]
    pub fn in_memory() -> Self {
        QTableStore::default()
    }

    /// A store persisting tables as `<dir>/<app>.qtable`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn at_dir<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(QTableStore {
            dir: Some(dir.as_ref().to_path_buf()),
            cache: BTreeMap::new(),
        })
    }

    /// Whether a table for `app` exists (cache or disk).
    #[must_use]
    pub fn contains(&self, app: &str) -> bool {
        self.cache.contains_key(app)
            || self
                .dir
                .as_ref()
                .is_some_and(|d| d.join(Self::file_name(app)).exists())
    }

    /// Loads the table for `app` if present.
    ///
    /// Disk corruption is reported as `None` (the paper's agent would
    /// simply retrain).
    #[must_use]
    pub fn load(&mut self, app: &str) -> Option<QTable<S>> {
        if let Some(t) = self.cache.get(app) {
            return Some(t.clone());
        }
        let dir = self.dir.as_ref()?;
        let text = fs::read_to_string(dir.join(Self::file_name(app))).ok()?;
        let table = QTable::<S>::decode(&text).ok()?;
        self.cache.insert(app.to_owned(), table.clone());
        Some(table)
    }

    /// Removes and returns the cached table for `app` **without
    /// cloning** — the zero-copy exit for tables the caller owns from
    /// here on (a device day's overlays on their way to delta
    /// extraction). Purely a cache operation: any on-disk copy is left
    /// in place.
    #[must_use]
    pub fn take(&mut self, app: &str) -> Option<QTable<S>> {
        self.cache.remove(app)
    }

    /// Saves the table for `app` (cache + disk when configured).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save(&mut self, app: &str, table: &QTable<S>) -> io::Result<()> {
        self.cache.insert(app.to_owned(), table.clone());
        if let Some(dir) = &self.dir {
            fs::write(dir.join(Self::file_name(app)), table.encode())?;
        }
        Ok(())
    }

    /// Removes the table for `app` from cache and disk.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from removing the file (missing files are
    /// not an error).
    pub fn remove(&mut self, app: &str) -> io::Result<()> {
        self.cache.remove(app);
        if let Some(dir) = &self.dir {
            match fs::remove_file(dir.join(Self::file_name(app))) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Names of the apps with cached tables, in app-name order (the
    /// cache is a `BTreeMap`, so no explicit sort is needed).
    #[must_use]
    pub fn cached_apps(&self) -> Vec<String> {
        self.cache.keys().cloned().collect()
    }

    /// Sanitised on-disk file name for an app.
    fn file_name(app: &str) -> String {
        let safe: String = app
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{safe}.qtable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlearn::DenseQTable;

    fn sample_table() -> DenseQTable {
        let mut t = DenseQTable::dense(9);
        t.set(1, 2, 3.5);
        t.set(99, 0, -1.0);
        t
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("next-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_roundtrip() {
        let mut store = QTableStore::in_memory();
        assert!(!store.contains("facebook"));
        assert!(store.load("facebook").is_none());
        store.save("facebook", &sample_table()).unwrap();
        assert!(store.contains("facebook"));
        assert_eq!(store.load("facebook").unwrap(), sample_table());
        assert_eq!(store.cached_apps(), vec!["facebook".to_owned()]);
    }

    #[test]
    fn disk_roundtrip_survives_new_store() {
        let dir = temp_dir("disk");
        {
            let mut store = QTableStore::at_dir(&dir).unwrap();
            store.save("pubg", &sample_table()).unwrap();
        }
        // Fresh store, same directory — simulates a device reboot.
        let mut store2 = QTableStore::at_dir(&dir).unwrap();
        assert!(store2.contains("pubg"));
        assert_eq!(store2.load("pubg").unwrap(), sample_table());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_loads_as_none() {
        let dir = temp_dir("corrupt");
        let mut store: QTableStore = QTableStore::at_dir(&dir).unwrap();
        fs::write(dir.join("bad.qtable"), "this is not a table").unwrap();
        assert!(store.load("bad").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_deletes_everywhere() {
        let dir = temp_dir("remove");
        let mut store = QTableStore::at_dir(&dir).unwrap();
        store.save("spotify", &sample_table()).unwrap();
        store.remove("spotify").unwrap();
        assert!(!store.contains("spotify"));
        assert!(store.load("spotify").is_none());
        // Removing again is fine.
        store.remove("spotify").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_names_are_sanitised() {
        assert_eq!(
            QTableStore::<DenseStore>::file_name("web/browser v2!"),
            "web_browser_v2_.qtable"
        );
        assert_eq!(QTableStore::<DenseStore>::file_name("pubg"), "pubg.qtable");
    }

    #[test]
    fn take_moves_the_cached_table_out() {
        let mut store = QTableStore::in_memory();
        store.save("pubg", &sample_table()).unwrap();
        assert_eq!(store.take("pubg"), Some(sample_table()));
        assert!(!store.contains("pubg"), "taken tables leave the cache");
        assert!(store.take("pubg").is_none());
    }

    #[test]
    fn overlay_backed_store_roundtrips() {
        use qlearn::OverlayStore;
        use std::sync::Arc;
        let base = Arc::new(sample_table());
        let mut store: QTableStore<OverlayStore> = QTableStore::in_memory();
        let mut t = QTable::overlay(Arc::clone(&base));
        t.set(1, 2, -4.0);
        store.save("pubg", &t).unwrap();
        let back = store.take("pubg").expect("cached");
        assert_eq!(back.q(1, 2), -4.0);
        assert_eq!(back.q(99, 0), base.q(99, 0), "base reads through");
    }
}
