//! Property-based tests of the Next agent's building blocks.

use proptest::prelude::*;

use mpsoc::platform::PerDomain;
use mpsoc::soc::SocState;
use next_core::ppdw::{ppdw, PpdwBounds};
use next_core::{Action, FrameWindow, StateEncoder, StateSpace};

fn arb_soc_state() -> impl Strategy<Value = SocState> {
    (
        0.0..80.0f64,   // fps (can exceed 60 transiently)
        0.0..20.0f64,   // power
        15.0..110.0f64, // temp of the hot spot
        15.0..90.0f64,  // temp device
        0usize..18,
        0usize..10,
        0usize..6,
    )
        .prop_map(|(fps, power, th, td, lb, ll, lg)| SocState {
            time_s: 0.0,
            freq_khz: PerDomain::new(3),
            freq_level: PerDomain::from_slice(&[lb, ll, lg]),
            max_cap_level: PerDomain::from_slice(&[lb, ll, lg]),
            fps,
            power_w: power,
            temp_domain_c: PerDomain::from_slice(&[th, th - 2.0, th - 1.0]),
            temp_hot_c: th,
            temp_device_c: td,
            temp_battery_c: td - 1.0,
            util: PerDomain::from_fn(3, |_| 0.5),
        })
}

proptest! {
    /// Eq. 1 is always finite and non-negative, whatever the inputs.
    #[test]
    fn ppdw_always_finite_nonnegative(
        fps in -10.0..200.0f64,
        p in -5.0..50.0f64,
        t in -50.0..200.0f64,
        ambient in -10.0..45.0f64,
    ) {
        let v = ppdw(fps, p, t, ambient);
        prop_assert!(v.is_finite());
        prop_assert!(v >= 0.0);
    }

    /// PPDW is monotone: more FPS at the same cost never scores lower;
    /// more power or heat at the same FPS never scores higher.
    #[test]
    fn ppdw_monotone(
        fps in 1.0..60.0f64,
        dfps in 0.0..30.0f64,
        p in 0.5..15.0f64,
        dp in 0.0..5.0f64,
        t in 25.0..90.0f64,
        dt in 0.0..20.0f64,
    ) {
        let base = ppdw(fps, p, t, 21.0);
        prop_assert!(ppdw(fps + dfps, p, t, 21.0) >= base);
        prop_assert!(ppdw(fps, p + dp, t, 21.0) <= base);
        prop_assert!(ppdw(fps, p, t + dt, 21.0) <= base);
    }

    /// Both normalisations map into the unit interval and preserve
    /// order (Eq. 2's envelope semantics).
    #[test]
    fn normalizations_unit_interval_and_monotone(a in 0.0..100.0f64, b in 0.0..100.0f64) {
        let bounds = PpdwBounds::exynos9810();
        for v in [a, b] {
            prop_assert!((0.0..=1.0).contains(&bounds.normalize(v)));
            prop_assert!((0.0..1.0).contains(&bounds.soft_normalize(v)));
        }
        if a < b {
            prop_assert!(bounds.normalize(a) <= bounds.normalize(b));
            prop_assert!(bounds.soft_normalize(a) <= bounds.soft_normalize(b));
        }
    }

    /// The frame-window mode is always one of the retained samples and
    /// within the display range.
    #[test]
    fn window_mode_is_observed_sample(samples in proptest::collection::vec(0.0..70.0f64, 1..300)) {
        let mut w = FrameWindow::new(160);
        for &s in &samples {
            w.push(s);
        }
        let mode = w.mode().expect("non-empty window");
        prop_assert!(mode <= 60);
        prop_assert!(w.iter().any(|s| s == mode), "mode {mode} not among samples");
    }

    /// The mode is a true mode: no retained value occurs strictly more
    /// often.
    #[test]
    fn window_mode_maximises_count(samples in proptest::collection::vec(0u32..61, 1..200)) {
        let mut w = FrameWindow::new(160);
        for &s in &samples {
            w.push(f64::from(s));
        }
        let mode = w.mode().unwrap();
        let count_of = |v: u32| w.iter().filter(|&s| s == v).count();
        let mode_count = count_of(mode);
        for v in 0..=60 {
            prop_assert!(count_of(v) <= mode_count);
        }
    }

    /// State encoding is injective at bin resolution: decode(encode(x))
    /// reproduces every quantised digit.
    #[test]
    fn state_encoding_roundtrips(state in arb_soc_state(), target in 0.0..60.0f64) {
        let enc = StateEncoder::exynos9810(30);
        let key = enc.encode(&state, target);
        let dec = enc.decode(key);
        prop_assert_eq!(&dec.freq_level[..], &state.max_cap_level[..]);
        prop_assert_eq!(dec.fps_bin, enc.fps_quantizer().index(state.fps));
        prop_assert_eq!(dec.target_bin, enc.fps_quantizer().index(target));
        prop_assert!(key < enc.state_space_size());
    }

    /// Distinct cap configurations never collide in the key space.
    #[test]
    fn distinct_caps_never_collide(
        s1 in arb_soc_state(),
        target in 0.0..60.0f64,
        bump in 1usize..5,
    ) {
        let enc = StateEncoder::exynos9810(30);
        let mut s2 = s1;
        s2.max_cap_level[0] = (s1.max_cap_level[0] + bump) % 18;
        prop_assume!(s2.max_cap_level != s1.max_cap_level);
        prop_assert_ne!(enc.encode(&s1, target), enc.encode(&s2, target));
    }
}

// Satellite coverage for the platform-generic shapes: the mixed-radix
// state space stays bijective and the action indexing stays a
// round-trip for *any* domain count, not just the paper's `m = 3`.
proptest! {
    /// `StateSpace` flat-index encode/decode is a bijection for
    /// arbitrary domain counts and cardinalities (1..=6 domains).
    #[test]
    fn state_space_bijective_for_any_shape(
        dims in proptest::collection::vec(1usize..7, 1..7),
        probe in proptest::collection::vec(0u64..1_000_000, 8..9),
    ) {
        let space = StateSpace::new(&dims).expect("positive cardinalities");
        let size = space.size();
        prop_assert_eq!(size, dims.iter().map(|&d| d as u64).product::<u64>());
        // Sampled keys decode and re-encode to themselves...
        for &p in &probe {
            let key = p % size;
            let digits = space.unpack(key);
            for (d, r) in digits.iter().zip(dims.iter()) {
                prop_assert!(d < r);
            }
            prop_assert_eq!(space.flat_index(&digits), key);
        }
        // ...and for small spaces, exhaustively, with no collisions.
        if size <= 4096 {
            let mut seen = std::collections::HashSet::new();
            for key in 0..size {
                prop_assert!(seen.insert(space.flat_index(&space.unpack(key))));
            }
            prop_assert_eq!(seen.len() as u64, size);
        }
    }

    /// `Action::index` ↔ `Action::all` ordering round-trips for any
    /// platform size `m`, and the enumeration is exactly the index
    /// order.
    #[test]
    fn action_indexing_roundtrips_for_any_m(m in 1usize..9) {
        let all: Vec<Action> = Action::all(m).collect();
        prop_assert_eq!(all.len(), Action::count(m));
        for (i, a) in all.iter().enumerate() {
            prop_assert_eq!(a.index(), i);
            prop_assert_eq!(Action::from_index(i, m), *a);
            prop_assert!(a.domain.index() < m);
        }
        // Every (domain, direction) pair appears exactly once.
        let distinct: std::collections::HashSet<_> =
            all.iter().map(|a| (a.domain, a.direction)).collect();
        prop_assert_eq!(distinct.len(), 3 * m);
    }
}
