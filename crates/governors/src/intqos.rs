//! Reimplementation of **Int. QoS PM** — Pathania et al., *"Integrated
//! CPU-GPU power management for 3D mobile games"* (DAC 2014) — the
//! state-of-the-art comparator of the paper's §V.
//!
//! The scheme targets 3D games: it averages the observed frame rate over
//! a sliding window and treats that average as the required QoS, builds
//! an online model of the game's CPU and GPU cost, and then picks the
//! *cheapest* CPU/GPU frequency pair whose predicted frame rate meets
//! the target according to a power cost model. Frequencies are pinned
//! (min = max), so unlike Next the hardware cannot idle below the chosen
//! point.
//!
//! The cost model is an online regression per managed domain,
//! `busy_hz = bg + c·fps`, separating constant background cycles `bg`
//! from per-frame cycles `c`; the achievable frame rate at a candidate
//! frequency `f` is then `(f − bg) / c`.
//!
//! The original scheme manages exactly one CPU and one GPU frequency
//! domain. On an N-domain platform the governor therefore *binds* to
//! the domain registry ([`Governor::bind`]): the fastest CPU-role
//! domain becomes the managed CPU, the first GPU-role domain the
//! managed GPU, and every remaining CPU-role domain is treated as a
//! helper cluster and held at a fixed mid-ladder frequency floor so the
//! render pipeline is never starved (on big.LITTLE, the LITTLE cores
//! carry the frame's helper threads).
//!
//! Two limitations the paper calls out are faithfully preserved:
//!
//! 1. the averaged-FPS target lags the user's true, rapidly varying QoS
//!    need (§II), and
//! 2. the method is only applicable to games, so the evaluation
//!    restricts it to Lineage and PubG (§V).

use mpsoc::dvfs::DvfsController;
use mpsoc::freq::{KiloHertz, Opp};
use mpsoc::platform::{DomainId, DomainRole, Platform};
use mpsoc::power::DomainPowerModel;
use mpsoc::soc::SocState;

use crate::Governor;

/// Samples retained in the FPS averaging window.
const WINDOW_LEN: usize = 8;

/// Safety margin applied to the averaged-FPS target (the original
/// scheme provisions for the windowed average with a small cushion).
const FPS_MARGIN: f64 = 1.05;

/// QoS targets are capped at the display refresh rate.
const MAX_TARGET_FPS: f64 = 60.0;

/// Minimum QoS requirement for a 3D game (the original scheme is handed
/// a fixed QoS constraint; 30 FPS is the customary playability floor).
/// Without a floor the self-referential averaged target can spiral down.
const MIN_TARGET_FPS: f64 = 30.0;

/// Ladder position of the helper-cluster frequency floor, as a fraction
/// of the ladder length. On the Exynos 9810's 10-level LITTLE ladder
/// this lands on level 4 = 949 MHz, the floor the original evaluation
/// used.
const HELPER_FLOOR_FRACTION: f64 = 0.4;

/// Exponentially-smoothed estimate of the amortised cycles one frame
/// costs on a domain (`util · f / fps`).
///
/// Background work is amortised into the per-frame cost at the observed
/// frame rate, which slightly over-provisions at lower targets — the
/// safe direction for a QoS governor. Under closed-loop feedback the
/// delivered-equals-target point is a stable fixed point of this
/// estimator.
#[derive(Debug, Clone, Default)]
struct FrameCost {
    cycles: f64,
}

impl FrameCost {
    fn observe(&mut self, busy_hz: f64, fps: f64) {
        if fps < 1.0 {
            return;
        }
        let sample = busy_hz / fps;
        self.cycles = if self.cycles <= 0.0 {
            sample
        } else {
            0.7 * self.cycles + 0.3 * sample
        };
    }

    fn get(&self) -> Option<f64> {
        (self.cycles > 0.0).then_some(self.cycles)
    }

    fn reset(&mut self) {
        self.cycles = 0.0;
    }
}

/// How the governor maps onto a platform's domain registry.
#[derive(Debug, Clone, PartialEq)]
struct Binding {
    /// Name and ladder shape of the platform the binding was derived
    /// from — enough to make [`Governor::bind`] idempotent without
    /// carrying a whole descriptor copy.
    platform_name: String,
    freq_levels: Vec<usize>,
    /// The managed CPU domain (fastest CPU-role domain).
    cpu: DomainId,
    /// The managed GPU domain (first GPU-role domain; falls back to the
    /// managed CPU on GPU-less platforms).
    gpu: DomainId,
    /// Remaining CPU-role domains with their frequency floors.
    helper_floors: Vec<(DomainId, KiloHertz)>,
    power_cpu: DomainPowerModel,
    power_gpu: DomainPowerModel,
}

impl Binding {
    fn for_platform(platform: &Platform) -> Self {
        let cpu = platform
            .ids()
            .filter(|&id| platform.domain(id).role == DomainRole::Cpu)
            .max_by_key(|&id| platform.domain(id).table.max().freq_khz)
            .unwrap_or_else(|| DomainId::new(0));
        let gpu = platform
            .ids()
            .find(|&id| platform.domain(id).role == DomainRole::Gpu)
            .unwrap_or(cpu);
        let helper_floors = platform
            .ids()
            .filter(|&id| id != cpu && platform.domain(id).role == DomainRole::Cpu)
            .map(|id| {
                let table = &platform.domain(id).table;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let level =
                    ((table.len() as f64 * HELPER_FLOOR_FRACTION) as usize).min(table.len() - 1);
                // qlint::allow(PN01, reason = "level is clamped to len-1 on the previous line")
                (id, table.opp(level).expect("level below len").freq_khz)
            })
            .collect();
        Binding {
            cpu,
            gpu,
            helper_floors,
            power_cpu: platform.domain(cpu).power,
            power_gpu: platform.domain(gpu).power,
            platform_name: platform.name().to_owned(),
            freq_levels: platform.freq_levels(),
        }
    }

    fn matches(&self, platform: &Platform) -> bool {
        self.platform_name == platform.name() && self.freq_levels == platform.freq_levels()
    }
}

/// The Int. QoS PM governor.
#[derive(Debug, Clone)]
pub struct IntQosPm {
    window: Vec<f64>,
    cpu_cost: FrameCost,
    gpu_cost: FrameCost,
    binding: Binding,
}

impl IntQosPm {
    /// Creates the governor, initially bound to the Exynos 9810
    /// registry; [`Governor::bind`] re-binds it to whatever platform it
    /// actually runs on.
    #[must_use]
    pub fn new() -> Self {
        IntQosPm {
            window: Vec::with_capacity(WINDOW_LEN),
            cpu_cost: FrameCost::default(),
            gpu_cost: FrameCost::default(),
            binding: Binding::for_platform(&Platform::exynos9810()),
        }
    }

    /// Current averaged-FPS QoS target (0 until the window has data).
    #[must_use]
    pub fn target_fps(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        }
    }

    #[allow(clippy::similar_names)]
    fn observe(&mut self, state: &SocState) {
        // Only rendered frames calibrate the cost model: loading
        // screens burn CPU at zero FPS under a different cost relation
        // entirely (the frame-free pathology §II of the Dey paper
        // points out).
        if state.fps < 5.0 {
            return;
        }
        let ci = self.binding.cpu.index();
        let gi = self.binding.gpu.index();
        let f_cpu = f64::from(state.freq_khz[ci]) * 1e3;
        let f_gpu = f64::from(state.freq_khz[gi]) * 1e3;
        self.cpu_cost.observe(state.util[ci] * f_cpu, state.fps);
        self.gpu_cost.observe(state.util[gi] * f_gpu, state.fps);
    }

    /// Predicted achievable FPS for a candidate frequency pair under the
    /// amortised cost model `f / c` per domain.
    #[allow(clippy::similar_names)]
    fn predict_fps(&self, cpu: Opp, gpu: Opp) -> Option<f64> {
        let c_cpu = self.cpu_cost.get()?;
        let c_gpu = self.gpu_cost.get()?;
        let by_cpu = cpu.freq_hz() / c_cpu;
        let by_gpu = gpu.freq_hz() / c_gpu;
        Some(by_cpu.min(by_gpu).min(MAX_TARGET_FPS))
    }

    /// Power cost of a candidate pair under the cost model (full
    /// utilisation at a nominal 50 °C die — only the ordering matters).
    fn cost(&self, cpu: Opp, gpu: Opp) -> f64 {
        self.binding.power_cpu.total_w(cpu, 1.0, 50.0)
            + self.binding.power_gpu.total_w(gpu, 1.0, 50.0)
    }
}

impl Default for IntQosPm {
    fn default() -> Self {
        IntQosPm::new()
    }
}

impl Governor for IntQosPm {
    fn name(&self) -> &str {
        "int-qos-pm"
    }

    /// The original scheme re-evaluates once per epoch (500 ms).
    fn period_s(&self) -> f64 {
        0.5
    }

    fn bind(&mut self, platform: &Platform) {
        if self.binding.matches(platform) {
            return;
        }
        // A different device invalidates the learned cost model.
        self.binding = Binding::for_platform(platform);
        self.window.clear();
        self.cpu_cost.reset();
        self.gpu_cost.reset();
    }

    fn control(&mut self, state: &SocState, dvfs: &mut DvfsController) {
        if self.window.len() == WINDOW_LEN {
            self.window.remove(0);
        }
        self.window.push(state.fps);
        self.observe(state);

        for &(id, floor_khz) in &self.binding.helper_floors {
            dvfs.set_min_freq(id, floor_khz)
                // qlint::allow(PN01, reason = "floors were read from the same domain tables at bind time")
                .expect("floor OPP in helper table");
        }

        let target = (self.target_fps() * FPS_MARGIN).clamp(MIN_TARGET_FPS, MAX_TARGET_FPS);

        // Exhaustive search over the CPU×GPU pair space (108 candidates
        // on the 9810 — cheap) for the minimum-cost pair meeting the
        // target.
        let cpu_table = dvfs.domain(self.binding.cpu).table().clone();
        let gpu_table = dvfs.domain(self.binding.gpu).table().clone();
        let mut meeting: Option<(f64, Opp, Opp)> = None;
        let mut fps_star: Option<(f64, f64, Opp, Opp)> = None; // (pred, cost, …)
        let mut have_model = true;
        for &cpu in cpu_table.iter() {
            for &gpu in gpu_table.iter() {
                let Some(pred) = self.predict_fps(cpu, gpu) else {
                    have_model = false;
                    continue;
                };
                let c = self.cost(cpu, gpu);
                if pred >= target && meeting.is_none_or(|(bc, _, _)| c < bc) {
                    meeting = Some((c, cpu, gpu));
                }
                // Track the cheapest pair within half a frame of the
                // best achievable rate, for the unreachable-target case.
                match fps_star {
                    None => fps_star = Some((pred, c, cpu, gpu)),
                    Some((fs, fc, _, _)) => {
                        if pred > fs + 0.5 || (pred >= fs - 0.5 && c < fc) {
                            fps_star = Some((pred.max(fs), c, cpu, gpu));
                        }
                    }
                }
            }
        }
        let (cpu, gpu) = if !have_model {
            // No model yet (game still loading): run at the top so QoS
            // is never sacrificed — the bootstrap behaviour of the
            // original.
            (cpu_table.max(), gpu_table.max())
        } else if let Some((_, b, g)) = meeting {
            (b, g)
        } else if let Some((_, _, b, g)) = fps_star {
            // Target unreachable: deliver the maximum achievable frame
            // rate at the least cost (over-clocking the non-bottleneck
            // domain buys nothing).
            (b, g)
        } else {
            (cpu_table.max(), gpu_table.max())
        };
        dvfs.pin_freq(self.binding.cpu, cpu.freq_khz)
            // qlint::allow(PN01, reason = "frequency was read from this domain's own OPP table")
            .expect("OPP from table valid");
        dvfs.pin_freq(self.binding.gpu, gpu.freq_khz)
            // qlint::allow(PN01, reason = "frequency was read from this domain's own OPP table")
            .expect("OPP from table valid");
    }

    fn reset(&mut self) {
        self.window.clear();
        self.cpu_cost.reset();
        self.gpu_cost.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc::perf::FrameDemand;
    use mpsoc::soc::{Soc, SocConfig};

    fn big() -> DomainId {
        DomainId::new(0)
    }
    fn gpu() -> DomainId {
        DomainId::new(2)
    }

    fn drive(gov: &mut IntQosPm, soc: &mut Soc, demand: &FrameDemand, seconds: f64) -> f64 {
        let ticks = (seconds / 0.025) as usize;
        let gov_every = (gov.period_s() / 0.025).round() as usize;
        let mut pow = 0.0;
        for t in 0..ticks {
            if t % gov_every == 0 {
                let s = soc.state();
                gov.control(&s, soc.dvfs_mut());
            }
            pow += soc.tick(0.025, demand).power_w;
        }
        pow / ticks as f64
    }

    fn game_demand() -> FrameDemand {
        // Lineage-class gameplay.
        FrameDemand::new(12.0e6, 3.2e6, 8.2e6).with_background(0.45e9, 0.2e9, 0.0)
    }

    #[test]
    fn bootstraps_at_top_frequencies() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = IntQosPm::new();
        gov.control(&soc.state(), soc.dvfs_mut());
        assert_eq!(soc.dvfs().current_khz(big()), 2_704_000);
        assert_eq!(soc.dvfs().current_khz(gpu()), 572_000);
    }

    #[test]
    fn binding_picks_fastest_cpu_and_floors_helpers() {
        let b = Binding::for_platform(&Platform::exynos9810());
        assert_eq!(b.cpu, big());
        assert_eq!(b.gpu, gpu());
        assert_eq!(b.helper_floors, vec![(DomainId::new(1), 949_000)]);

        let b = Binding::for_platform(&Platform::exynos9820());
        assert_eq!(b.cpu.index(), 0, "big M4 cluster is the managed CPU");
        assert_eq!(b.gpu.index(), 3);
        assert_eq!(b.helper_floors.len(), 2, "mid and LITTLE are helpers");
    }

    #[test]
    fn rebinding_to_another_platform_resets_the_model() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = IntQosPm::new();
        drive(&mut gov, &mut soc, &game_demand(), 20.0);
        assert!(gov.target_fps() > 0.0);
        gov.bind(&Platform::exynos9820());
        assert_eq!(gov.target_fps(), 0.0, "stale model must be dropped");
        assert!(gov.cpu_cost.get().is_none());
        // Re-binding to the same platform is a no-op.
        let before = gov.binding.clone();
        gov.bind(&Platform::exynos9820());
        assert_eq!(gov.binding, before);
    }

    #[test]
    fn drives_a_four_domain_platform() {
        let mut soc = Soc::new(SocConfig::exynos9820());
        let mut gov = IntQosPm::new();
        gov.bind(soc.platform());
        let p = drive(&mut gov, &mut soc, &game_demand(), 30.0);
        assert!(p > 1.0 && p.is_finite());
        assert!(gov.target_fps() > 25.0, "target fps {}", gov.target_fps());
    }

    #[test]
    fn settles_below_top_on_sustainable_load() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = IntQosPm::new();
        drive(&mut gov, &mut soc, &game_demand(), 60.0);
        let big_khz = soc.dvfs().current_khz(big());
        assert!(
            big_khz < 2_704_000,
            "should back off from the top once the model converges: {big_khz}"
        );
        assert!(gov.target_fps() > 25.0, "target fps {}", gov.target_fps());
    }

    #[test]
    fn saves_power_versus_performance_pinning() {
        let mut soc_qos = Soc::new(SocConfig::exynos9810());
        let mut gov = IntQosPm::new();
        let p_qos = drive(&mut gov, &mut soc_qos, &game_demand(), 60.0);

        let mut soc_perf = Soc::new(SocConfig::exynos9810());
        let mut perf = crate::Performance::new();
        let mut p_perf = 0.0;
        for _ in 0..2_400 {
            let s = soc_perf.state();
            perf.control(&s, soc_perf.dvfs_mut());
            p_perf += soc_perf.tick(0.025, &game_demand()).power_w;
        }
        p_perf /= 2_400.0;
        assert!(
            p_qos < p_perf,
            "IntQos {p_qos} W must undercut performance {p_perf} W"
        );
    }

    #[test]
    fn maintains_playable_fps() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = IntQosPm::new();
        drive(&mut gov, &mut soc, &game_demand(), 30.0);
        // Measure fps over the next 10 s.
        let mut fps = 0.0;
        let ticks = 400;
        for t in 0..ticks {
            if t % 20 == 0 {
                let s = soc.state();
                gov.control(&s, soc.dvfs_mut());
            }
            fps += soc.tick(0.025, &game_demand()).fps;
        }
        fps /= f64::from(ticks);
        // The averaged-FPS target settles at the 30 FPS QoS floor (the
        // reduced-QoS behaviour the paper criticises in §II); the
        // delivered rate must stay in that playable band.
        assert!(fps > 25.0, "Int. QoS PM sacrificed too much QoS: {fps} fps");
    }

    #[test]
    fn reset_clears_model() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = IntQosPm::new();
        drive(&mut gov, &mut soc, &game_demand(), 10.0);
        assert!(gov.target_fps() > 0.0);
        gov.reset();
        assert_eq!(gov.target_fps(), 0.0);
        assert!(gov.cpu_cost.get().is_none());
    }

    #[test]
    fn averaging_lags_fps_collapse() {
        // The documented weakness: when FPS collapses (loading screen),
        // the windowed average still reports a stale nonzero target for
        // several epochs.
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = IntQosPm::new();
        drive(&mut gov, &mut soc, &game_demand(), 30.0);
        let before = gov.target_fps();
        assert!(
            before > 25.0,
            "converged target should be playable: {before}"
        );
        // One epoch of zero-FPS loading.
        let loading = FrameDemand::new(0.0, 0.0, 0.0).with_background(2.0e9, 0.5e9, 0.0);
        drive(&mut gov, &mut soc, &loading, 1.0);
        assert!(
            gov.target_fps() > before * 0.5,
            "average should lag: {} vs {}",
            gov.target_fps(),
            before
        );
    }

    #[test]
    fn frame_cost_smooths_towards_samples() {
        let mut cost = FrameCost::default();
        assert!(cost.get().is_none());
        for _ in 0..50 {
            cost.observe(48.0 * 12.0e6, 48.0);
        }
        let c = cost.get().expect("model present");
        assert!((c - 12.0e6).abs() / 12.0e6 < 1e-9, "cost {c}");
    }

    #[test]
    fn frame_cost_ignores_degenerate_fps() {
        let mut cost = FrameCost::default();
        cost.observe(1.0e9, 0.5);
        assert!(cost.get().is_none(), "sub-1-FPS samples must not calibrate");
    }
}
