//! Baseline DVFS governors the paper compares Next against (§II, §V).
//!
//! * [`Schedutil`] — the stock Android governor: leaves the policy caps
//!   wide open and lets the kernel's utilisation-tracking frequency
//!   selection (built into [`mpsoc::Soc`]) run free. This is the
//!   *schedutil* baseline of Figs. 1, 3, 7 and 8.
//! * [`IntQosPm`] — a reimplementation of Pathania et al., *"Integrated
//!   CPU-GPU power management for 3D mobile games"* (DAC 2014): windowed
//!   average FPS as the QoS target plus a power-cost model that picks
//!   the cheapest CPU/GPU frequency pair meeting the target. Games
//!   only, exactly as the paper could only evaluate it on Lineage and
//!   PubG.
//! * [`simple`] — `performance`, `powersave` and `ondemand` governors
//!   for additional reference points and tests.
//!
//! All governors implement the [`Governor`] trait and actuate the SoC
//! exclusively through its [`DvfsController`] — the same interface the
//! Next agent uses, which keeps comparisons fair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod intqos;
pub mod schedutil;
pub mod simple;

use mpsoc::dvfs::DvfsController;
use mpsoc::platform::Platform;
use mpsoc::soc::SocState;

pub use intqos::IntQosPm;
pub use schedutil::Schedutil;
pub use simple::{Ondemand, Performance, Powersave};

/// Constructs a baseline governor by its report name. Returns `None`
/// for unknown names — including `"next"`, which is an RL agent in
/// `next_core` built from a trained Q-table rather than a stateless
/// baseline. The single factory behind every name→governor dispatch
/// (sweep evaluator, perf harness, day engine, CLI).
#[must_use]
pub fn by_name(name: &str) -> Option<Box<dyn Governor>> {
    let governor: Box<dyn Governor> = match name {
        "schedutil" => Box::new(Schedutil::new()),
        "intqos" => Box::new(IntQosPm::new()),
        "performance" => Box::new(Performance::new()),
        "powersave" => Box::new(Powersave::new()),
        "ondemand" => Box::new(Ondemand::new()),
        _ => return None,
    };
    Some(governor)
}

/// One control-period decision a learning governor took: the index of
/// the action it applied and the scalar reward it computed for the
/// step. Baselines that select frequencies without an explicit
/// action/reward structure never produce one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlDecision {
    /// Index into the platform's action space (`3m` actions; see the
    /// Next agent's `Action::from_index`).
    pub action: u16,
    /// Reward computed for the step.
    pub reward: f64,
}

/// A DVFS policy invoked periodically with the observable SoC state.
pub trait Governor {
    /// Human-readable governor name (used in reports).
    fn name(&self) -> &str;

    /// Binds the governor to the platform it is about to control — the
    /// domain registry of the device. The engine calls this before a
    /// run; governors with per-domain models (Int. QoS PM, Next)
    /// resolve their domain references here. Idempotent for an
    /// unchanged platform; the default does nothing.
    fn bind(&mut self, platform: &Platform) {
        let _ = platform;
    }

    /// Control period in seconds; the engine invokes
    /// [`Governor::control`] once per period.
    fn period_s(&self) -> f64 {
        0.1
    }

    /// Observes the state and actuates frequency policy.
    fn control(&mut self, state: &SocState, dvfs: &mut DvfsController);

    /// High-rate observation hook, invoked by the engine every
    /// simulation tick (25 ms) *between* control periods. Governors that
    /// sample faster than they act — like Next's 25 ms frame window —
    /// override this; the default does nothing.
    fn observe(&mut self, state: &SocState) {
        let _ = state;
    }

    /// Clears internal state (e.g. between sessions).
    fn reset(&mut self) {}

    /// The decision taken by the most recent [`Governor::control`]
    /// invocation, when the governor exposes one. The trace recorder
    /// reads this right after `control` to attribute an action/reward
    /// to the tick; the default (and every baseline) returns `None`,
    /// which records as "no explicit action".
    fn last_decision(&self) -> Option<ControlDecision> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &mut dyn Governor) {}
    }
}
