//! The stock Android `schedutil` baseline.
//!
//! On the real Note 9 (Android 9, kernel 4.9.59) the only available
//! governor is schedutil, driven by Energy Aware Scheduling: it tracks
//! per-cluster utilisation and selects `f ≈ 1.25 · util · f_cur` every
//! scheduling period. Our [`mpsoc::Soc`] embeds exactly that policy, so
//! the baseline governor's entire job is to keep the policy caps wide
//! open and let the kernel do its thing — mirroring a phone with no
//! user-space agent installed.

use mpsoc::dvfs::DvfsController;
use mpsoc::soc::SocState;

use crate::Governor;

/// The stock-Android baseline governor.
#[derive(Debug, Clone, Default)]
pub struct Schedutil {
    opened: bool,
}

impl Schedutil {
    /// Creates the baseline governor.
    #[must_use]
    pub fn new() -> Self {
        Schedutil::default()
    }
}

impl Governor for Schedutil {
    fn name(&self) -> &str {
        "schedutil"
    }

    fn control(&mut self, _state: &SocState, dvfs: &mut DvfsController) {
        // Open the caps once; afterwards the in-kernel util tracking
        // inside `Soc::tick` performs all frequency selection.
        if !self.opened {
            dvfs.reset_caps();
            self.opened = true;
        }
    }

    fn reset(&mut self) {
        self.opened = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc::perf::FrameDemand;
    use mpsoc::platform::DomainId;
    use mpsoc::soc::{Soc, SocConfig};

    fn big() -> DomainId {
        DomainId::new(0)
    }
    fn gpu() -> DomainId {
        DomainId::new(2)
    }

    #[test]
    fn opens_caps_and_lets_util_tracking_ramp() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        // Pre-constrain, as if a previous agent left caps behind.
        soc.dvfs_mut().set_max_freq(big(), 962_000).unwrap();
        let mut gov = Schedutil::new();
        let heavy = FrameDemand::new(25.0e6, 6.0e6, 30.0e6).with_background(0.5e9, 0.2e9, 0.0);
        for _ in 0..200 {
            let state = soc.state();
            gov.control(&state, soc.dvfs_mut());
            soc.tick(0.025, &heavy);
        }
        // Util tracking settles where utilisation ≈ 1/margin, which on
        // this load is well above the 962 MHz cap the foreign agent
        // left behind — proving the caps were re-opened.
        assert!(
            soc.dvfs().current_khz(big()) > 962_000,
            "schedutil should let the big cluster ramp past the stale cap: {} kHz",
            soc.dvfs().current_khz(big())
        );
        assert_eq!(
            soc.dvfs().domain(big()).max_cap().freq_khz,
            2_704_000,
            "caps must be fully open"
        );
    }

    #[test]
    fn reset_reopens_caps_next_control() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = Schedutil::new();
        gov.control(&soc.state(), soc.dvfs_mut());
        soc.dvfs_mut().set_max_freq(gpu(), 299_000).unwrap();
        // Without reset, the governor leaves foreign caps alone.
        gov.control(&soc.state(), soc.dvfs_mut());
        assert_eq!(soc.dvfs().domain(gpu()).max_cap().freq_khz, 299_000);
        // After reset it re-opens them.
        gov.reset();
        gov.control(&soc.state(), soc.dvfs_mut());
        assert_eq!(soc.dvfs().domain(gpu()).max_cap().freq_khz, 572_000);
    }

    #[test]
    fn name_is_schedutil() {
        assert_eq!(Schedutil::new().name(), "schedutil");
    }
}
