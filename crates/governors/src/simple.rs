//! Classic reference governors: `performance`, `powersave`, `ondemand`.
//!
//! They are not evaluated in the paper but give the test-suite and the
//! ablation benches fixed reference points at the two extremes of the
//! power/performance trade-off, plus the historical load-threshold
//! policy.

use mpsoc::dvfs::DvfsController;
use mpsoc::platform::DomainId;
use mpsoc::soc::SocState;

use crate::Governor;

/// Pins every cluster to its fastest OPP.
#[derive(Debug, Clone, Default)]
pub struct Performance;

impl Performance {
    /// Creates the governor.
    #[must_use]
    pub fn new() -> Self {
        Performance
    }
}

impl Governor for Performance {
    fn name(&self) -> &str {
        "performance"
    }

    fn control(&mut self, _state: &SocState, dvfs: &mut DvfsController) {
        for i in 0..dvfs.n_domains() {
            let id = DomainId::new(i);
            let top = dvfs.domain(id).table().max().freq_khz;
            // qlint::allow(PN01, reason = "frequency was read from this domain's own OPP table")
            dvfs.pin_freq(id, top).expect("top OPP always valid");
        }
    }
}

/// Pins every cluster to its slowest OPP.
#[derive(Debug, Clone, Default)]
pub struct Powersave;

impl Powersave {
    /// Creates the governor.
    #[must_use]
    pub fn new() -> Self {
        Powersave
    }
}

impl Governor for Powersave {
    fn name(&self) -> &str {
        "powersave"
    }

    fn control(&mut self, _state: &SocState, dvfs: &mut DvfsController) {
        for i in 0..dvfs.n_domains() {
            let id = DomainId::new(i);
            let bottom = dvfs.domain(id).table().min().freq_khz;
            // qlint::allow(PN01, reason = "frequency was read from this domain's own OPP table")
            dvfs.pin_freq(id, bottom).expect("bottom OPP always valid");
        }
    }
}

/// The classic `ondemand` policy: jump to the top OPP when utilisation
/// exceeds the up-threshold, otherwise step down one level per period.
#[derive(Debug, Clone)]
pub struct Ondemand {
    /// Utilisation above which the governor jumps to max (default 0.8).
    pub up_threshold: f64,
}

impl Ondemand {
    /// Creates the governor with the classic 80 % up-threshold.
    #[must_use]
    pub fn new() -> Self {
        Ondemand { up_threshold: 0.8 }
    }
}

impl Default for Ondemand {
    fn default() -> Self {
        Ondemand::new()
    }
}

impl Governor for Ondemand {
    fn name(&self) -> &str {
        "ondemand"
    }

    fn control(&mut self, state: &SocState, dvfs: &mut DvfsController) {
        for i in 0..dvfs.n_domains() {
            let id = DomainId::new(i);
            let util = state.util[i];
            let table = dvfs.domain(id).table().clone();
            if util > self.up_threshold {
                dvfs.pin_freq(id, table.max().freq_khz)
                    // qlint::allow(PN01, reason = "frequency was read from this domain's own OPP table")
                    .expect("top OPP valid");
            } else {
                let cur_level = dvfs.domain(id).current_level();
                let next = cur_level.saturating_sub(1);
                let target = table
                    .opp(next)
                    // qlint::allow(PN01, reason = "next is current_level-1 saturated at 0, always in range")
                    .expect("level below current is valid")
                    .freq_khz;
                // qlint::allow(PN01, reason = "frequency was read from this domain's own OPP table")
                dvfs.pin_freq(id, target).expect("OPP from table valid");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc::perf::FrameDemand;
    use mpsoc::soc::{Soc, SocConfig};

    fn big() -> DomainId {
        DomainId::new(0)
    }
    fn gpu() -> DomainId {
        DomainId::new(2)
    }

    fn run<G: Governor>(gov: &mut G, demand: &FrameDemand, seconds: f64) -> (Soc, f64) {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut pow = 0.0;
        let ticks = (seconds / 0.025) as usize;
        let gov_every = (gov.period_s() / 0.025).round().max(1.0) as usize;
        for t in 0..ticks {
            if t % gov_every == 0 {
                let s = soc.state();
                gov.control(&s, soc.dvfs_mut());
            }
            pow += soc.tick(0.025, demand).power_w;
        }
        (soc, pow / ticks as f64)
    }

    #[test]
    fn performance_pins_top() {
        let demand = FrameDemand::new(5.0e6, 2.0e6, 6.0e6);
        let (soc, _) = run(&mut Performance::new(), &demand, 1.0);
        assert_eq!(soc.dvfs().current_khz(big()), 2_704_000);
        assert_eq!(soc.dvfs().current_khz(gpu()), 572_000);
    }

    #[test]
    fn powersave_pins_bottom() {
        let demand = FrameDemand::new(25.0e6, 6.0e6, 30.0e6);
        let (soc, _) = run(&mut Powersave::new(), &demand, 1.0);
        assert_eq!(soc.dvfs().current_khz(big()), 650_000);
        assert_eq!(soc.dvfs().current_khz(gpu()), 260_000);
    }

    #[test]
    fn powersave_cheaper_than_performance() {
        let demand = FrameDemand::new(10.0e6, 3.0e6, 9.0e6).with_background(0.3e9, 0.1e9, 0.0);
        let (_, p_hi) = run(&mut Performance::new(), &demand, 10.0);
        let (_, p_lo) = run(&mut Powersave::new(), &demand, 10.0);
        assert!(
            p_lo < p_hi,
            "powersave {p_lo} W must undercut performance {p_hi} W"
        );
    }

    #[test]
    fn ondemand_jumps_under_load_and_decays_when_idle() {
        let mut gov = Ondemand::new();
        let heavy = FrameDemand::new(25.0e6, 8.0e6, 30.0e6).with_background(0.8e9, 0.4e9, 0.1e9);
        let (soc, _) = run(&mut gov, &heavy, 5.0);
        assert!(
            soc.dvfs().current_khz(big()) >= 2_000_000,
            "ondemand should be near top under load"
        );
        let idle = FrameDemand::default();
        let (soc, _) = run(&mut gov, &idle, 10.0);
        assert_eq!(soc.dvfs().current_khz(big()), 650_000);
    }

    #[test]
    fn governor_names() {
        assert_eq!(Performance::new().name(), "performance");
        assert_eq!(Powersave::new().name(), "powersave");
        assert_eq!(Ondemand::new().name(), "ondemand");
    }
}
