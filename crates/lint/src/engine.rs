//! The rule engine: walks one file's token stream, emits findings,
//! and applies `qlint::allow` suppressions.
//!
//! The engine is deliberately token-level, not AST-level: every rule
//! triggers on an identifier (or a short identifier/punctuation
//! sequence), which the [`crate::lexer`] guarantees is *code* — prose
//! in comments, doc comments and string literals can never
//! false-positive. Three pieces of context refine the raw matches:
//!
//! * **File kind** ([`FileKind`]) — library, binary, example, test or
//!   bench code, derived from the path by [`crate::walk`]. Rules
//!   declare which kinds they apply to ([`RuleId::applies`]).
//! * **Test regions** — items under `#[cfg(test)]` or `#[test]` are
//!   tracked by brace depth and exempt from every rule except
//!   [`RuleId::Un01`]: test code may freely time, panic and hash.
//! * **Allow markers** — `// qlint::allow(RULE, reason = "…")`
//!   suppresses a matching finding on the same line (trailing form) or
//!   on the next code line (standalone form). The reason string is
//!   mandatory and must be non-empty, so every exemption documents
//!   itself; a malformed marker is itself a finding ([`RuleId::Ql01`]),
//!   as is one that suppresses nothing ([`RuleId::Ql02`]).

use std::collections::BTreeSet;

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::RuleId;

/// What kind of source file is being linted, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: `src/**` except `src/bin/`.
    Lib,
    /// Binary code: `src/bin/**`.
    Bin,
    /// Example code: `examples/**`.
    Example,
    /// Integration tests: `tests/**`.
    Test,
    /// Criterion benches: `benches/**` (wall-clock by nature).
    Bench,
}

/// Per-file linting context.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// File kind (decides rule applicability).
    pub kind: FileKind,
    /// Whether the file belongs to an artifact-producing crate.
    pub artifact: bool,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// A parsed `qlint::allow` marker awaiting its finding.
struct Marker {
    rule: RuleId,
    /// Line the finding must be on for this marker to fire.
    target: Option<u32>,
    /// Marker's own position (for QL02 reporting).
    line: u32,
    col: u32,
    used: bool,
}

/// Lints one file. Appends findings to `out` and returns the number of
/// marker-suppressed findings.
pub fn lint_file(file: &str, ctx: &FileContext, src: &str, out: &mut Vec<Finding>) -> usize {
    let tokens = lex(src);
    let scan = scan_tokens(&tokens, ctx);

    // Lines containing at least one non-comment token: a standalone
    // marker targets the next such line, a trailing marker its own.
    let code_lines: BTreeSet<u32> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
            )
        })
        .map(|t| t.line)
        .collect();

    let mut findings = scan.findings;
    let mut suppressed = 0usize;
    if RuleId::Ql01.applies(ctx.kind, ctx.artifact) {
        let mut markers = collect_markers(file, &tokens, &scan.test_spans, &code_lines, out);
        for marker in &mut markers {
            let before = findings.len();
            findings.retain(|f| !(Some(f.line) == marker.target && f.rule == marker.rule));
            if findings.len() < before {
                marker.used = true;
                suppressed += before - findings.len();
            }
        }
        for marker in markers.iter().filter(|m| !m.used) {
            out.push(Finding {
                rule: RuleId::Ql02,
                file: file.to_owned(),
                line: marker.line,
                col: marker.col,
                message: format!(
                    "qlint::allow({}) suppresses nothing{}",
                    marker.rule.code(),
                    match marker.target {
                        Some(t) => format!(" (no {} finding on line {t})", marker.rule.code()),
                        None => " (no code line follows it)".to_owned(),
                    }
                ),
            });
        }
    }
    out.append(&mut findings);
    suppressed
}

/// Result of the raw scanning pass.
struct Scan {
    findings: Vec<Finding>,
    /// Closed line spans of `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(u32, u32)>,
}

/// Identifier sets per rule. `Instant` and `panic` need sequence
/// context and are matched separately.
const ND02_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "RandomState", "OsRng"];
const ND03_IDENTS: [&str; 2] = ["HashMap", "HashSet"];
const ND04_IDENTS: [&str; 7] = [
    "mpsc",
    "recv",
    "try_recv",
    "recv_timeout",
    "try_iter",
    "Receiver",
    "crossbeam",
];

#[allow(clippy::too_many_lines)]
fn scan_tokens(tokens: &[Token<'_>], ctx: &FileContext) -> Scan {
    let mut findings = Vec::new();
    let mut test_spans: Vec<(u32, u32)> = Vec::new();

    // Brace-depth tracking for `#[cfg(test)]`/`#[test]` item bodies.
    let mut depth = 0u32;
    let mut test_stack: Vec<(u32, u32)> = Vec::new(); // (depth of `{`, open line)
    let mut pending_test = false;
    let mut whole_file_test = false;

    let applies = |rule: RuleId| rule.applies(ctx.kind, ctx.artifact);
    let mut emit = |rule: RuleId, tok: &Token<'_>, message: String, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            rule,
            file: String::new(), // filled by the caller
            line: tok.line,
            col: tok.col,
            message,
        });
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        match tok.kind {
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. } => {
                i += 1;
                continue;
            }
            TokenKind::Punct if tok.text == "#" => {
                // Attribute: `#[…]` or `#![…]`. Consume it whole (its
                // tokens are metadata, not code) and look for a `test`
                // ident that is not negated by `not(test)`.
                let Some(after) = next_code(tokens, i + 1) else {
                    i += 1;
                    continue;
                };
                let next = &tokens[after];
                let (inner, open) = if next.text == "!" {
                    match next_code(tokens, after + 1) {
                        Some(j) if tokens[j].text == "[" => (true, j),
                        _ => {
                            i += 1;
                            continue;
                        }
                    }
                } else if next.text == "[" {
                    (false, after)
                } else {
                    i += 1;
                    continue;
                };
                let (end, is_test) = scan_attribute(tokens, open);
                if is_test {
                    if inner {
                        whole_file_test = true;
                    } else {
                        pending_test = true;
                    }
                }
                i = end;
                continue;
            }
            TokenKind::Punct if tok.text == "{" => {
                depth += 1;
                if pending_test {
                    test_stack.push((depth, tok.line));
                    pending_test = false;
                }
            }
            TokenKind::Punct if tok.text == "}" => {
                if test_stack.last().is_some_and(|&(d, _)| d == depth) {
                    if let Some((_, open_line)) = test_stack.pop() {
                        test_spans.push((open_line, tok.line));
                    }
                }
                depth = depth.saturating_sub(1);
            }
            TokenKind::Punct if tok.text == ";" => {
                // `#[cfg(test)] use …;` — attribute on a braceless item.
                pending_test = false;
            }
            _ => {}
        }

        let in_test = whole_file_test || !test_stack.is_empty();
        if tok.kind == TokenKind::Ident {
            // UN01 fires even inside test regions: test code is still
            // workspace code.
            if tok.text == "unsafe" && applies(RuleId::Un01) {
                emit(
                    RuleId::Un01,
                    tok,
                    "`unsafe` code (the workspace forbids it)".to_owned(),
                    &mut findings,
                );
            }
            if !in_test {
                check_ident(tokens, i, ctx, &applies, &mut emit, &mut findings);
            }
        }
        i += 1;
    }
    Scan {
        findings,
        test_spans,
    }
}

/// The per-identifier rule checks (everything except UN01).
fn check_ident(
    tokens: &[Token<'_>],
    i: usize,
    ctx: &FileContext,
    applies: &impl Fn(RuleId) -> bool,
    emit: &mut impl FnMut(RuleId, &Token<'_>, String, &mut Vec<Finding>),
    findings: &mut Vec<Finding>,
) {
    let tok = &tokens[i];
    let text = tok.text;
    if applies(RuleId::Nd01) {
        if text == "Instant" && followed_by(tokens, i, &[":", ":", "now"]) {
            emit(
                RuleId::Nd01,
                tok,
                "`Instant::now` reads the wall clock".to_owned(),
                findings,
            );
        }
        if text == "SystemTime" {
            emit(
                RuleId::Nd01,
                tok,
                "`SystemTime` is OS time".to_owned(),
                findings,
            );
        }
    }
    if applies(RuleId::Nd02) && ND02_IDENTS.contains(&text) {
        emit(
            RuleId::Nd02,
            tok,
            format!("`{text}` draws ambient OS entropy"),
            findings,
        );
    }
    if applies(RuleId::Nd03) && ND03_IDENTS.contains(&text) {
        emit(
            RuleId::Nd03,
            tok,
            format!("`{text}` iteration order is unspecified (artifact-producing crate)"),
            findings,
        );
    }
    if applies(RuleId::Nd04) && ND04_IDENTS.contains(&text) {
        emit(
            RuleId::Nd04,
            tok,
            format!("`{text}` harvests results in completion order"),
            findings,
        );
    }
    if applies(RuleId::Pn01) && ctx.kind == FileKind::Lib {
        if (text == "unwrap" || text == "expect") && preceded_by_dot(tokens, i) {
            emit(
                RuleId::Pn01,
                tok,
                format!("`.{text}()` can panic in library code"),
                findings,
            );
        }
        if text == "panic" && followed_by(tokens, i, &["!"]) {
            emit(
                RuleId::Pn01,
                tok,
                "`panic!` in library code".to_owned(),
                findings,
            );
        }
    }
}

/// Index of the next non-comment token at or after `from`.
fn next_code(tokens: &[Token<'_>], from: usize) -> Option<usize> {
    (from..tokens.len()).find(|&j| {
        !matches!(
            tokens[j].kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    })
}

/// Whether the non-comment tokens after `i` are exactly `texts`, one
/// entry per token (`::` is two `:` tokens in the stream).
fn followed_by(tokens: &[Token<'_>], i: usize, texts: &[&str]) -> bool {
    let mut at = i + 1;
    for want in texts {
        match next_code(tokens, at) {
            Some(j) if tokens[j].text == *want => at = j + 1,
            _ => return false,
        }
    }
    true
}

/// Whether the previous non-comment token is a `.`.
fn preceded_by_dot(tokens: &[Token<'_>], i: usize) -> bool {
    (0..i).rev().find_map(|j| match tokens[j].kind {
        TokenKind::LineComment { .. } | TokenKind::BlockComment { .. } => None,
        _ => Some(tokens[j].text == "."),
    }) == Some(true)
}

/// Consumes an attribute starting at the `[` token index. Returns the
/// index just past the matching `]` and whether the attribute gates on
/// `test` (ignoring `not(test)`).
fn scan_attribute(tokens: &[Token<'_>], open: usize) -> (usize, bool) {
    let mut bracket_depth = 0i32;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct if t.text == "[" => bracket_depth += 1,
            TokenKind::Punct if t.text == "]" => {
                bracket_depth -= 1;
                if bracket_depth == 0 {
                    j += 1;
                    break;
                }
            }
            TokenKind::Ident => idents.push(t.text),
            TokenKind::Punct if t.text == "(" || t.text == ")" => idents.push(t.text),
            _ => {}
        }
        j += 1;
    }
    let is_test = idents.iter().enumerate().any(|(k, &id)| {
        id == "test" && !(k >= 2 && idents[k - 1] == "(" && idents[k - 2] == "not")
    });
    (j, is_test)
}

/// Extracts well-formed markers from the token stream, reporting
/// malformed ones as QL01 findings directly into `out`.
fn collect_markers(
    file: &str,
    tokens: &[Token<'_>],
    test_spans: &[(u32, u32)],
    code_lines: &BTreeSet<u32>,
    out: &mut Vec<Finding>,
) -> Vec<Marker> {
    let in_test = |line: u32| test_spans.iter().any(|&(a, b)| a <= line && line <= b);
    let mut markers = Vec::new();
    for tok in tokens {
        let TokenKind::LineComment { doc: false } = tok.kind else {
            continue;
        };
        if !tok.text.contains("qlint::allow") {
            continue;
        }
        // Markers inside test regions are inert: no rule fires there,
        // so validating them would only produce QL02 noise.
        if in_test(tok.line) {
            continue;
        }
        match parse_marker(tok.text) {
            Ok(rule) => {
                let target = if code_lines.contains(&tok.line) {
                    Some(tok.line)
                } else {
                    code_lines.range(tok.line + 1..).next().copied()
                };
                markers.push(Marker {
                    rule,
                    target,
                    line: tok.line,
                    col: tok.col,
                    used: false,
                });
            }
            Err(reason) => out.push(Finding {
                rule: RuleId::Ql01,
                file: file.to_owned(),
                line: tok.line,
                col: tok.col,
                message: reason,
            }),
        }
    }
    markers
}

/// Parses `qlint::allow(RULE, reason = "…")` out of a line comment
/// already known to contain the string `qlint::allow`.
fn parse_marker(comment: &str) -> Result<RuleId, String> {
    let rest = comment.trim_start_matches('/').trim_start();
    let Some(args) = rest.strip_prefix("qlint::allow") else {
        return Err("a comment mentioning qlint::allow must be a marker: \
                    `// qlint::allow(RULE, reason = \"…\")`"
            .to_owned());
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        return Err("qlint::allow marker is missing its '(' argument list".to_owned());
    };
    let Some(close) = args.rfind(')') else {
        return Err("qlint::allow marker is missing its closing ')'".to_owned());
    };
    if !args[close + 1..].trim().is_empty() {
        return Err("qlint::allow marker has trailing text after ')'".to_owned());
    }
    let inner = &args[..close];
    let Some((code, reason_part)) = inner.split_once(',') else {
        return Err(format!(
            "qlint::allow({}) is missing its mandatory `reason = \"…\"`",
            inner.trim()
        ));
    };
    let code = code.trim();
    let Some(rule) = RuleId::from_code(code) else {
        return Err(format!("qlint::allow names unknown rule '{code}'"));
    };
    let reason_part = reason_part.trim();
    let Some(eq) = reason_part.strip_prefix("reason") else {
        return Err(format!(
            "qlint::allow({code}) needs `reason = \"…\"`, got '{reason_part}'"
        ));
    };
    let Some(quoted) = eq.trim_start().strip_prefix('=') else {
        return Err(format!("qlint::allow({code}) reason is missing its '='"));
    };
    let quoted = quoted.trim();
    let reason = quoted
        .strip_prefix('"')
        .and_then(|q| q.strip_suffix('"'))
        .ok_or_else(|| format!("qlint::allow({code}) reason must be a quoted string"))?;
    if reason.trim().is_empty() {
        return Err(format!(
            "qlint::allow({code}) has an empty reason — say why the exemption is sound"
        ));
    }
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> (Vec<Finding>, usize) {
        let ctx = FileContext {
            kind: FileKind::Lib,
            artifact: true,
        };
        let mut out = Vec::new();
        let suppressed = lint_file("mem.rs", &ctx, src, &mut out);
        (out, suppressed)
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n    #[test]\n    fn t() { foo().unwrap(); \
                   let m = std::collections::HashMap::new(); }\n}\n";
        let (findings, _) = lint_lib(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn not_test_cfg_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }\n";
        let (findings, _) = lint_lib(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::Pn01);
    }

    #[test]
    fn trailing_and_standalone_markers_suppress() {
        let src = "fn f() { x.unwrap(); } // qlint::allow(PN01, reason = \"test helper\")\n\
                   // qlint::allow(PN01, reason = \"invariant: y is Some\")\n\
                   fn g() { y.unwrap(); }\n";
        let (findings, suppressed) = lint_lib(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 2);
    }

    #[test]
    fn marker_without_reason_is_ql01() {
        let (findings, _) = lint_lib("// qlint::allow(PN01)\nfn f() { x.unwrap(); }\n");
        let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&RuleId::Ql01), "{findings:?}");
        assert!(
            rules.contains(&RuleId::Pn01),
            "malformed marker must not suppress"
        );
    }

    #[test]
    fn unused_marker_is_ql02() {
        let (findings, _) =
            lint_lib("// qlint::allow(ND01, reason = \"nothing here\")\nfn f() {}\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::Ql02);
    }

    #[test]
    fn doc_comments_never_trigger_or_mark() {
        let src = "/// Call `.unwrap()` or `Instant::now` — prose only.\n\
                   /// Even `// qlint::allow(PN01, reason = \"x\")` is prose here.\n\
                   fn f() {}\n";
        let (findings, _) = lint_lib(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn strings_never_trigger() {
        let src = "fn f() -> &'static str { \"Instant::now() .unwrap() HashMap unsafe\" }\n";
        let (findings, _) = lint_lib(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn instant_now_needs_the_full_path() {
        let (findings, _) = lint_lib("use std::time::Instant;\nfn f(i: Instant) {}\n");
        assert!(findings.is_empty(), "bare `Instant` is inert: {findings:?}");
        let (findings, _) = lint_lib("fn f() { let t = Instant::now(); }\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::Nd01);
    }

    #[test]
    fn unwrap_or_else_is_not_pn01() {
        let (findings, _) = lint_lib("fn f() { x.unwrap_or_else(Vec::new); }\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unsafe_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let p = unsafe { *x }; }\n}\n";
        let (findings, _) = lint_lib(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::Un01);
    }
}
