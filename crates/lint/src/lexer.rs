//! A hand-rolled Rust token scanner.
//!
//! The rule engine only needs to know *which identifiers appear as
//! code* — so this lexer's single job is to classify every byte of a
//! source file as comment, string/char literal, lifetime, number,
//! identifier or punctuation without ever confusing prose for code.
//! The hard cases it must get right (each covered by a round-trip
//! test):
//!
//! * nested block comments (`/* outer /* inner */ still out */`),
//! * cooked strings with escapes (`"qu\"ote"`), byte and C strings,
//! * raw strings with any hash depth (`r#"…"#`, `br##"…"##`),
//! * char literals versus lifetimes (`'"'` and `'\n'` are chars,
//!   `'a` in `<'a>` and loop labels are lifetimes),
//! * raw identifiers (`r#type` is an identifier, not a raw string).
//!
//! Tokens carry byte spans and 1-based line/column (byte columns), so
//! findings point at the exact source position. The scan is total: any
//! input produces a token list whose concatenated spans cover every
//! non-whitespace byte exactly once (unterminated literals run to end
//! of file rather than failing).

/// What a token is. Comments keep a `doc` flag because doc comments
/// are prose: the engine never reads rule triggers *or* allow markers
/// out of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Any string literal: cooked, byte, C, or raw at any hash depth.
    Str,
    /// A character or byte-character literal.
    Char,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A `//` comment. `doc` is true for `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// A `/* */` comment (nesting handled). `doc` for `/**` and `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// A single punctuation character (multi-char operators arrive as
    /// consecutive tokens; the engine matches sequences itself).
    Punct,
}

/// One lexed token: classification plus exact source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Token classification.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// Byte offset of the token start.
    pub start: usize,
    /// 1-based source line of the token start.
    pub line: u32,
    /// 1-based byte column of the token start.
    pub col: u32,
}

/// Lexes `src` into a complete token stream.
///
/// Total function: never fails, never skips a non-whitespace byte.
#[must_use]
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.advance(1);
                continue;
            }
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = self.next_token(b);
            out.push(Token {
                kind,
                text: &self.src[start..self.pos],
                start,
                line,
                col,
            });
        }
        out
    }

    fn next_token(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => {
                self.cooked_string();
                TokenKind::Str
            }
            b'\'' => self.char_or_lifetime(),
            b'0'..=b'9' => {
                self.number();
                TokenKind::Num
            }
            _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
            _ => {
                // One punctuation character; multi-byte UTF-8 scalars
                // (only reachable in pathological input) are consumed
                // whole so token boundaries stay char boundaries.
                let width = self.src[self.pos..]
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                self.advance(width);
                TokenKind::Punct
            }
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Consumes `n` bytes, keeping line/column in step.
    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos >= self.bytes.len() {
                return;
            }
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.advance(1);
        }
        let text = &self.src[start..self.pos];
        // `////…` dividers are plain comments; `///` and `//!` are doc.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        let start = self.pos;
        self.advance(2); // `/*`
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.advance(2);
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.advance(2);
            } else {
                self.advance(1);
            }
        }
        let text = &self.src[start..self.pos];
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
            || text.starts_with("/*!");
        TokenKind::BlockComment { doc }
    }

    /// Consumes a `"…"` string with escape handling. Multi-byte UTF-8
    /// content is safe to scan bytewise: continuation bytes are ≥ 0x80
    /// and can never equal `"` or `\`.
    fn cooked_string(&mut self) {
        self.advance(1); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.advance(2),
                b'"' => {
                    self.advance(1);
                    return;
                }
                _ => self.advance(1),
            }
        }
    }

    /// Consumes `r"…"`, `r#"…"#`, … after the prefix: `hashes` is the
    /// number of `#` between the prefix and the opening quote.
    fn raw_string(&mut self, hashes: usize) {
        self.advance(hashes + 1); // `#…#"`
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let closed = (1..=hashes).all(|i| self.peek(i) == Some(b'#'));
                self.advance(1);
                if closed {
                    self.advance(hashes);
                    return;
                }
            } else {
                self.advance(1);
            }
        }
    }

    /// At a `'`: decides between a char literal and a lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        match self.peek(1) {
            // `'\n'`, `'\u{7f}'`, `'\''` — escaped char literal.
            Some(b'\\') => {
                self.advance(1);
                self.char_literal_body();
                TokenKind::Char
            }
            // `'a'` is a char; `'a` (no closing quote after the
            // identifier run) is a lifetime or loop label.
            Some(c) if is_ident_start(c) => {
                let mut end = self.pos + 2;
                while self.bytes.get(end).copied().is_some_and(is_ident_continue) {
                    end += 1;
                }
                if self.bytes.get(end) == Some(&b'\'') {
                    self.advance(end + 1 - self.pos);
                    TokenKind::Char
                } else {
                    self.advance(end - self.pos);
                    TokenKind::Lifetime
                }
            }
            // `'0'`, `'"'`, `' '` — any other single char.
            Some(_) => {
                self.advance(1);
                self.char_literal_body();
                TokenKind::Char
            }
            None => {
                self.advance(1);
                TokenKind::Punct
            }
        }
    }

    /// Consumes the rest of a char literal after the opening `'`.
    fn char_literal_body(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.advance(2),
                b'\'' => {
                    self.advance(1);
                    return;
                }
                _ => {
                    let width = self.src[self.pos..]
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
                    self.advance(width);
                }
            }
        }
    }

    fn number(&mut self) {
        // `0x`/`0o`/`0b` literals never carry an exponent, so a `+`/`-`
        // after an `e` inside them is arithmetic, not a sign.
        let radix_prefixed = self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'));
        let mut prev = 0u8;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let take = match b {
                _ if is_ident_continue(b) => true,
                // `1.5` continues the number; `1..n` and `1.max()` stop.
                b'.' => self.peek(1).is_some_and(|n| n.is_ascii_digit()),
                // `1e-5`, `2.5E+3` exponent signs.
                b'+' | b'-' => !radix_prefixed && matches!(prev, b'e' | b'E'),
                _ => false,
            };
            if !take {
                return;
            }
            prev = b;
            self.advance(1);
        }
    }

    /// An identifier, or a literal it prefixes: `r"…"`/`br#"…"#`/
    /// `c"…"` raw/byte/C strings, `b'x'` byte chars, `r#ident` raw
    /// identifiers.
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.advance(1);
        }
        let ident = &self.src[start..self.pos];
        match (ident, self.bytes.get(self.pos)) {
            ("r" | "br" | "cr", Some(b'"')) => {
                self.raw_string(0);
                TokenKind::Str
            }
            ("r" | "br" | "cr", Some(b'#')) => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    self.raw_string(hashes);
                    TokenKind::Str
                } else if ident == "r" && self.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier `r#type`: consume `#` + ident.
                    self.advance(2);
                    while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                        self.advance(1);
                    }
                    TokenKind::Ident
                } else {
                    TokenKind::Ident
                }
            }
            ("b" | "c", Some(b'"')) => {
                self.cooked_string();
                TokenKind::Str
            }
            ("b", Some(b'\'')) => {
                self.char_or_lifetime();
                TokenKind::Char
            }
            _ => TokenKind::Ident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn spans_cover_every_non_whitespace_byte() {
        let src = r##"fn f<'a>(x: &'a str) -> u64 { r#"raw "q" "#.len() as u64 + 0x1f }"##;
        let tokens = lex(src);
        let mut pos = 0usize;
        for t in &tokens {
            assert!(t.start >= pos, "overlap at {}", t.start);
            assert!(
                src[pos..t.start].bytes().all(|b| b.is_ascii_whitespace()),
                "gap {pos}..{} is not whitespace",
                t.start
            );
            assert_eq!(&src[t.start..t.start + t.text.len()], t.text);
            pos = t.start + t.text.len();
        }
        assert!(src[pos..].bytes().all(|b| b.is_ascii_whitespace()));
    }

    #[test]
    fn char_versus_lifetime() {
        let toks = kinds("let q = '\"'; let l: &'a str; 'outer: loop {}");
        assert!(toks.contains(&(TokenKind::Char, "'\"'")));
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::Lifetime, "'outer")));
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::BlockComment { doc: false }, "/* x /* y */ z */"),
                (TokenKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r###"let s = r##"has "# inside"##; done"###);
        assert!(toks.contains(&(TokenKind::Str, r###"r##"has "# inside"##"###)));
        assert!(toks.contains(&(TokenKind::Ident, "done")));
    }

    #[test]
    fn raw_identifier_is_ident_not_string() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type")));
    }

    #[test]
    fn doc_comments_flagged() {
        let toks = kinds("/// doc\n//! inner\n// plain\n//// divider\nx");
        assert_eq!(toks[0].0, TokenKind::LineComment { doc: true });
        assert_eq!(toks[1].0, TokenKind::LineComment { doc: true });
        assert_eq!(toks[2].0, TokenKind::LineComment { doc: false });
        assert_eq!(toks[3].0, TokenKind::LineComment { doc: false });
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = kinds("0..64");
        assert_eq!(toks[0], (TokenKind::Num, "0"));
        assert!(toks.contains(&(TokenKind::Num, "64")));
        let toks = kinds("1.0e-5 2.5E+3 1.max(2) 0x1f");
        assert_eq!(toks[0], (TokenKind::Num, "1.0e-5"));
        assert_eq!(toks[1], (TokenKind::Num, "2.5E+3"));
        assert_eq!(toks[2], (TokenKind::Num, "1"));
        assert!(toks.contains(&(TokenKind::Ident, "max")));
        assert!(toks.contains(&(TokenKind::Num, "0x1f")));
    }

    #[test]
    fn line_and_column_are_one_based() {
        let tokens = lex("ab\n  cd");
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_literals_run_to_eof() {
        assert_eq!(kinds("\"open"), vec![(TokenKind::Str, "\"open")]);
        assert_eq!(
            kinds("/* open"),
            vec![(TokenKind::BlockComment { doc: false }, "/* open")]
        );
    }
}
