//! **qlint** — a dependency-free static determinism lint for this
//! workspace.
//!
//! Everything the reproduction ships — fixture byte-identity,
//! scalar/batch equivalence, worker-count invariance, record/replay,
//! kill/resume (ARCHITECTURE.md invariants 1–5) — rests on
//! source-level rules: no wall-clock or OS entropy in simulation
//! paths, fixed accumulation order, no unordered iteration where
//! bytes reach an artifact. Dynamic tests catch violations only after
//! a bug has shipped; this crate rejects the hazard at the source
//! line, before any simulation runs.
//!
//! The pass is a hand-rolled token scanner ([`lexer`]) feeding a rule
//! engine ([`engine`]) over every non-vendored `.rs` file in the
//! workspace ([`walk`]), in sorted path order, rendered as text or a
//! versioned `lint.json` ([`report`]) — the same dep-free artifact
//! discipline as `bench::json` and the NXQT/NXCP codecs. Rule catalog
//! and IDs live in [`rules`]; the prose catalog is `docs/LINT.md`.
//!
//! Exemptions are inline and self-documenting:
//!
//! ```text
//! // qlint::allow(ND01, reason = "wall-clock progress log, not simulation state")
//! ```
//!
//! The reason string is mandatory; a marker without one is itself a
//! finding (QL01), and a marker that suppresses nothing goes stale
//! loudly (QL02).
//!
//! # Example
//!
//! ```
//! use qlint::{lint_source, FileContext, FileKind, RuleId};
//!
//! let src = "fn f() { let t = std::time::Instant::now(); }\n";
//! let ctx = FileContext { kind: FileKind::Lib, artifact: false };
//! let (findings, _suppressed) = lint_source("demo.rs", &ctx, src);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, RuleId::Nd01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::io;
use std::path::Path;

pub use engine::{FileContext, FileKind, Finding};
pub use report::{Report, SCHEMA_VERSION};
pub use rules::{RuleId, ALL_RULES};

/// Lints one source file under an explicit context. Returns the
/// findings (file field filled with `file`) and the suppressed count.
#[must_use]
pub fn lint_source(file: &str, ctx: &FileContext, src: &str) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let suppressed = engine::lint_file(file, ctx, src, &mut findings);
    for f in &mut findings {
        if f.file.is_empty() {
            file.clone_into(&mut f.file);
        }
    }
    sort_findings(&mut findings);
    (findings, suppressed)
}

/// Lints every non-vendored `.rs` file under `root` (a workspace
/// checkout). Deterministic: files are walked in sorted path order and
/// findings are fully ordered, so repeated runs produce identical
/// reports.
///
/// # Errors
///
/// Returns any I/O error from walking the tree or reading a file.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = walk::collect_rs_files(root)?;
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for rel in &files {
        let ctx = walk::classify(rel);
        let src = std::fs::read_to_string(root.join(rel))?;
        let (mut file_findings, file_suppressed) = lint_source(rel, &ctx, &src);
        findings.append(&mut file_findings);
        suppressed += file_suppressed;
    }
    sort_findings(&mut findings);
    Ok(Report {
        findings,
        files_scanned: files.len(),
        suppressed,
    })
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule.code()).cmp(&(&b.file, b.line, b.col, b.rule.code()))
    });
}
