//! Lint report rendering: deterministic text and versioned
//! `lint.json` (via [`bench::json`], the house JSON emitter).

use bench::json::Json;

use crate::engine::Finding;
use crate::rules::ALL_RULES;

/// `lint.json` schema version. Bump on any structural change and keep
/// the parser accepting older versions, like the BENCH.json family.
pub const SCHEMA_VERSION: u64 = 1;

/// The outcome of linting a workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of findings suppressed by `qlint::allow` markers.
    pub suppressed: usize,
}

impl Report {
    /// Whether the tree is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Plain-text rendering: one `file:line:col: RULE: message` row per
    /// finding plus a one-line summary. Byte-identical for a given
    /// tree — no wall-clock times or environment data.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write;

        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: {}: {}",
                f.file,
                f.line,
                f.col,
                f.rule.code(),
                f.message
            );
        }
        let _ = writeln!(
            out,
            "lint: {} file(s) scanned, {} finding(s), {} suppressed by qlint::allow",
            self.files_scanned,
            self.findings.len(),
            self.suppressed
        );
        out
    }

    /// The versioned `lint.json` document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let rules = ALL_RULES
            .into_iter()
            .map(|r| {
                Json::Obj(vec![
                    ("id".into(), Json::str(r.code())),
                    ("summary".into(), Json::str(r.summary())),
                    ("invariant".into(), Json::str(r.invariant())),
                ])
            })
            .collect();
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("rule".into(), Json::str(f.rule.code())),
                    ("file".into(), Json::str(f.file.clone())),
                    ("line".into(), Json::num(f64::from(f.line))),
                    ("col".into(), Json::num(f64::from(f.col))),
                    ("message".into(), Json::str(f.message.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), Json::num_u64(SCHEMA_VERSION)),
            ("tool".into(), Json::str("qlint")),
            (
                "summary".into(),
                Json::Obj(vec![
                    (
                        "files_scanned".into(),
                        Json::num_u64(self.files_scanned as u64),
                    ),
                    ("findings".into(), Json::num_u64(self.findings.len() as u64)),
                    ("suppressed".into(), Json::num_u64(self.suppressed as u64)),
                ]),
            ),
            ("rules".into(), Json::Arr(rules)),
            ("findings".into(), Json::Arr(findings)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: RuleId::Nd01,
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 14,
                message: "`Instant::now` reads the wall clock".into(),
            }],
            files_scanned: 2,
            suppressed: 1,
        }
    }

    #[test]
    fn text_rows_carry_position_and_rule() {
        let text = sample().render_text();
        assert!(text.contains("crates/x/src/lib.rs:3:14: ND01:"), "{text}");
        assert!(text.contains("2 file(s) scanned, 1 finding(s), 1 suppressed"));
    }

    #[test]
    fn json_is_valid_and_versioned() {
        let json = sample().to_json();
        let text = json.render();
        let back = Json::parse(&text).expect("own rendering parses");
        assert_eq!(back, json, "render∘parse fixpoint");
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            back.get("rules")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(ALL_RULES.len())
        );
        let findings = back
            .get("findings")
            .and_then(Json::as_array)
            .expect("findings");
        assert_eq!(findings[0].get("rule").and_then(Json::as_str), Some("ND01"));
        assert_eq!(findings[0].get("line").and_then(Json::as_u64), Some(3));
    }
}
