//! The rule catalog: every rule this lint enforces, keyed by a stable
//! ID that CI output, `qlint::allow` markers and `docs/LINT.md` all
//! share. Each rule maps to one of the determinism invariants in
//! `docs/ARCHITECTURE.md` — the catalog is the machine-readable half
//! of that contract.

use crate::engine::FileKind;

/// Stable identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock / OS time acquisition (`Instant::now`, `SystemTime`).
    Nd01,
    /// Ambient entropy (`thread_rng`, `from_entropy`, `RandomState`,
    /// `OsRng`).
    Nd02,
    /// `HashMap`/`HashSet` in an artifact-producing crate.
    Nd03,
    /// Channel / completion-order primitives (`mpsc`, `recv`, …).
    Nd04,
    /// `unwrap`/`expect`/`panic!` in library code.
    Pn01,
    /// An `unsafe` keyword anywhere in the workspace.
    Un01,
    /// A malformed `qlint::allow` marker (bad syntax, unknown rule,
    /// missing or empty reason).
    Ql01,
    /// A `qlint::allow` marker that suppressed nothing.
    Ql02,
}

/// Every rule, in catalog (and report) order.
pub const ALL_RULES: [RuleId; 8] = [
    RuleId::Nd01,
    RuleId::Nd02,
    RuleId::Nd03,
    RuleId::Nd04,
    RuleId::Pn01,
    RuleId::Un01,
    RuleId::Ql01,
    RuleId::Ql02,
];

impl RuleId {
    /// The stable rule code used in findings and allow markers.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            RuleId::Nd01 => "ND01",
            RuleId::Nd02 => "ND02",
            RuleId::Nd03 => "ND03",
            RuleId::Nd04 => "ND04",
            RuleId::Pn01 => "PN01",
            RuleId::Un01 => "UN01",
            RuleId::Ql01 => "QL01",
            RuleId::Ql02 => "QL02",
        }
    }

    /// Parses a rule code as written in an allow marker.
    #[must_use]
    pub fn from_code(code: &str) -> Option<RuleId> {
        ALL_RULES.into_iter().find(|r| r.code() == code)
    }

    /// One-line description for the catalog section of `lint.json`.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::Nd01 => "wall-clock or OS time acquisition (Instant::now, SystemTime)",
            RuleId::Nd02 => "ambient entropy (thread_rng, from_entropy, RandomState, OsRng)",
            RuleId::Nd03 => "HashMap/HashSet in an artifact-producing crate",
            RuleId::Nd04 => "channel / completion-order primitive (mpsc, recv, Receiver, ...)",
            RuleId::Pn01 => "unwrap/expect/panic! in library code",
            RuleId::Un01 => "unsafe code",
            RuleId::Ql01 => "malformed qlint::allow marker",
            RuleId::Ql02 => "unused qlint::allow marker",
        }
    }

    /// Which determinism invariant (docs/ARCHITECTURE.md) the rule
    /// protects.
    #[must_use]
    pub fn invariant(self) -> &'static str {
        match self {
            RuleId::Nd01 | RuleId::Nd02 => {
                "1-5: simulation output is a pure function of (config, seed)"
            }
            RuleId::Nd03 => "2-3: artifact bytes are identical across runs and worker counts",
            RuleId::Nd04 => "3: accumulation order is fixed, never completion order",
            RuleId::Pn01 => "5: library code reports errors, it does not abort mid-campaign",
            RuleId::Un01 => "all: the whole workspace stays in safe Rust",
            RuleId::Ql01 | RuleId::Ql02 => "every exemption is self-documenting and live",
        }
    }

    /// Whether the rule applies to a file of the given kind. `artifact`
    /// is true when the file belongs to an artifact-producing crate
    /// (one whose output bytes CI pins: `core`, `qlearn`, `simkit`,
    /// `bench`).
    #[must_use]
    pub fn applies(self, kind: FileKind, artifact: bool) -> bool {
        match self {
            // Time, entropy and completion-order hazards matter
            // anywhere simulation code can run; tests and benches are
            // wall-clock by nature.
            RuleId::Nd01 | RuleId::Nd02 | RuleId::Nd04 => {
                matches!(kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
            }
            RuleId::Nd03 => artifact && kind == FileKind::Lib,
            RuleId::Pn01 => kind == FileKind::Lib,
            // `unsafe` is forbidden everywhere, tests included.
            RuleId::Un01 => true,
            // Marker hygiene is checked wherever markers are read —
            // the engine skips marker processing in test/bench files.
            RuleId::Ql01 | RuleId::Ql02 => {
                matches!(kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
            }
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(RuleId::from_code(rule.code()), Some(rule));
        }
        assert_eq!(RuleId::from_code("ND99"), None);
        assert_eq!(RuleId::from_code("nd01"), None, "codes are case-exact");
    }

    #[test]
    fn applicability_matrix() {
        assert!(RuleId::Pn01.applies(FileKind::Lib, false));
        assert!(!RuleId::Pn01.applies(FileKind::Bin, false));
        assert!(!RuleId::Pn01.applies(FileKind::Test, false));
        assert!(RuleId::Nd03.applies(FileKind::Lib, true));
        assert!(!RuleId::Nd03.applies(FileKind::Lib, false));
        assert!(!RuleId::Nd03.applies(FileKind::Bin, true));
        assert!(RuleId::Un01.applies(FileKind::Test, false));
        assert!(RuleId::Nd01.applies(FileKind::Bin, false));
        assert!(!RuleId::Nd01.applies(FileKind::Bench, false));
    }
}
