//! Workspace file discovery and classification.
//!
//! Files are walked in **sorted path order** and reported with
//! workspace-relative, forward-slash paths, so the findings list — and
//! therefore `lint.json` — is byte-identical across runs, machines and
//! environment variation. `vendor/` (offline dependency stand-ins),
//! `target/` and dot-directories are never entered.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::engine::{FileContext, FileKind};

/// Crates whose output bytes CI pins (fixtures, BENCH/fleet/campaign
/// artifacts): `HashMap`/`HashSet` iteration inside them is an ND03
/// hazard. Directory names under `crates/`.
pub const ARTIFACT_CRATES: [&str; 4] = ["bench", "core", "qlearn", "simkit"];

/// Directory names never entered during the walk.
const SKIP_DIRS: [&str; 2] = ["target", "vendor"];

/// Recursively collects every `.rs` file under `root`, skipping
/// vendored and generated trees, as sorted workspace-relative paths.
///
/// # Errors
///
/// Returns any I/O error from reading a directory.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Derives the linting context for one workspace-relative path.
#[must_use]
pub fn classify(rel_path: &str) -> FileContext {
    // `crates/<name>/<rest>` → member crate; anything else → facade.
    let (crate_dir, rest) = match rel_path.strip_prefix("crates/") {
        Some(tail) => match tail.split_once('/') {
            Some((name, rest)) => (name, rest),
            None => (tail, ""),
        },
        None => ("", rel_path),
    };
    let kind = if rest.starts_with("tests/") {
        FileKind::Test
    } else if rest.starts_with("benches/") {
        FileKind::Bench
    } else if rest.starts_with("examples/") {
        FileKind::Example
    } else if rest.starts_with("src/bin/") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    FileContext {
        kind,
        artifact: ARTIFACT_CRATES.contains(&crate_dir),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        let cases = [
            ("crates/qlearn/src/backend.rs", FileKind::Lib, true),
            (
                "crates/bench/src/bin/fig4_ppdw_trend.rs",
                FileKind::Bin,
                true,
            ),
            (
                "crates/bench/benches/qtable_backends.rs",
                FileKind::Bench,
                true,
            ),
            ("crates/mpsoc/tests/properties.rs", FileKind::Test, false),
            ("crates/governors/src/intqos.rs", FileKind::Lib, false),
            ("src/lib.rs", FileKind::Lib, false),
            ("src/bin/next_sim.rs", FileKind::Bin, false),
            ("tests/end_to_end.rs", FileKind::Test, false),
            ("examples/quickstart.rs", FileKind::Example, false),
        ];
        for (path, kind, artifact) in cases {
            let ctx = classify(path);
            assert_eq!(ctx.kind, kind, "{path}");
            assert_eq!(ctx.artifact, artifact, "{path}");
        }
    }
}
