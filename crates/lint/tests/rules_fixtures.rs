//! Per-rule fixture snippets: each fixture triggers its rule exactly
//! once, plus the marker-grammar and prose-immunity contracts.

use qlint::{lint_source, FileContext, FileKind, RuleId};

fn lib_ctx() -> FileContext {
    FileContext {
        kind: FileKind::Lib,
        artifact: true,
    }
}

/// Lints `src` as artifact-crate library code and returns the rules hit.
fn rules_of(src: &str) -> Vec<RuleId> {
    let (findings, _) = lint_source("fixture.rs", &lib_ctx(), src);
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn nd01_instant_now_fires_exactly_once() {
    let src = "fn f() -> std::time::Duration {\n    let t = std::time::Instant::now();\n    t.elapsed()\n}\n";
    assert_eq!(rules_of(src), vec![RuleId::Nd01]);
    let (findings, _) = lint_source("fixture.rs", &lib_ctx(), src);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn nd01_system_time_fires() {
    let src = "fn f() {\n    let _ = std::time::SystemTime::UNIX_EPOCH;\n}\n";
    assert_eq!(rules_of(src), vec![RuleId::Nd01]);
}

#[test]
fn nd01_bare_instant_import_is_inert() {
    // Importing the type is fine; only the `Instant::now` call path is
    // nondeterministic.
    let src = "use std::time::Instant;\nfn f(a: Instant, b: Instant) -> bool {\n    a < b\n}\n";
    assert_eq!(rules_of(src), vec![]);
}

#[test]
fn nd02_ambient_entropy_fires_exactly_once() {
    let src = "fn f() -> u64 {\n    let mut rng = rand::thread_rng();\n    rng.next()\n}\n";
    assert_eq!(rules_of(src), vec![RuleId::Nd02]);
}

#[test]
fn nd03_hash_map_fires_exactly_once_in_artifact_crates() {
    let src = "fn f(m: &std::collections::HashMap<u64, f64>) -> usize {\n    m.len()\n}\n";
    assert_eq!(rules_of(src), vec![RuleId::Nd03]);
}

#[test]
fn nd03_is_silent_outside_artifact_crates() {
    let ctx = FileContext {
        kind: FileKind::Lib,
        artifact: false,
    };
    let src = "fn f(m: &std::collections::HashMap<u64, f64>) -> usize {\n    m.len()\n}\n";
    let (findings, _) = lint_source("fixture.rs", &ctx, src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn nd04_channel_harvest_fires_exactly_once() {
    let src = "fn f() {\n    let (_tx, _rx) = std::sync::mpsc::channel::<u64>();\n}\n";
    assert_eq!(rules_of(src), vec![RuleId::Nd04]);
}

#[test]
fn pn01_unwrap_fires_exactly_once() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n";
    assert_eq!(rules_of(src), vec![RuleId::Pn01]);
}

#[test]
fn pn01_skips_unwrap_or_variants() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    x.unwrap_or(0).max(x.unwrap_or_else(|| 1))\n}\n";
    assert_eq!(rules_of(src), vec![]);
}

#[test]
fn pn01_is_silent_in_bins() {
    let ctx = FileContext {
        kind: FileKind::Bin,
        artifact: false,
    };
    let src = "fn main() {\n    std::env::args().next().unwrap();\n}\n";
    let (findings, _) = lint_source("fixture.rs", &ctx, src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn un01_unsafe_fires_exactly_once_even_in_tests() {
    let src = "fn f(p: *const u64) -> u64 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules_of(src), vec![RuleId::Un01]);
    // UN01 has no test-region exemption.
    let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x = 1u64;\n        let _ = unsafe { *(&x as *const u64) };\n    }\n}\n";
    assert_eq!(rules_of(test_src), vec![RuleId::Un01]);
}

#[test]
fn test_regions_are_exempt_from_nd_and_pn_rules() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::time::Instant::now();\n        Some(1).unwrap();\n    }\n}\n";
    assert_eq!(rules_of(src), vec![]);
}

#[test]
fn prose_never_false_positives() {
    // The hazard identifiers appear only in comments, doc comments,
    // and string literals — the lexer must keep them out of the rules.
    let src = concat!(
        "//! Discusses Instant::now, thread_rng and HashMap freely.\n",
        "/// Call .unwrap() — just kidding, this is prose. unsafe too.\n",
        "fn f() -> &'static str {\n",
        "    // mpsc, recv, SystemTime: still prose.\n",
        "    \"Instant::now() .unwrap() unsafe HashMap thread_rng\"\n",
        "}\n",
        "fn raw() -> &'static str {\n",
        "    r#\"even raw strings with \"Instant::now\" inside\"#\n",
        "}\n",
    );
    assert_eq!(rules_of(src), vec![]);
}

#[test]
fn lifetimes_do_not_break_the_lexer() {
    let src = "struct S<'a> {\n    x: &'a str,\n}\nfn f<'b>(s: &'b S<'b>) -> char {\n    let c = 'x';\n    let _ = s.x;\n    c\n}\n";
    assert_eq!(rules_of(src), vec![]);
}

// ---- marker grammar ----------------------------------------------------

#[test]
fn trailing_marker_suppresses_same_line() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    x.unwrap() // qlint::allow(PN01, reason = \"fixture\")\n}\n";
    let (findings, suppressed) = lint_source("fixture.rs", &lib_ctx(), src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn standalone_marker_suppresses_next_code_line() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    // qlint::allow(PN01, reason = \"fixture\")\n    x.unwrap()\n}\n";
    let (findings, suppressed) = lint_source("fixture.rs", &lib_ctx(), src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn marker_without_reason_is_rejected_as_ql01() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    // qlint::allow(PN01)\n    x.unwrap()\n}\n";
    let rules = rules_of(src);
    assert!(rules.contains(&RuleId::Ql01), "{rules:?}");
    assert!(
        rules.contains(&RuleId::Pn01),
        "a malformed marker must not suppress: {rules:?}"
    );
}

#[test]
fn marker_with_empty_reason_is_rejected_as_ql01() {
    let src =
        "fn f(x: Option<u64>) -> u64 {\n    x.unwrap() // qlint::allow(PN01, reason = \"\")\n}\n";
    let rules = rules_of(src);
    assert!(rules.contains(&RuleId::Ql01), "{rules:?}");
}

#[test]
fn marker_with_unknown_rule_is_rejected_as_ql01() {
    let src = "fn f() {} // qlint::allow(XX99, reason = \"no such rule\")\n";
    assert_eq!(rules_of(src), vec![RuleId::Ql01]);
}

#[test]
fn unused_marker_is_flagged_as_ql02() {
    let src = "// qlint::allow(ND01, reason = \"nothing here reads a clock\")\nfn f() {}\n";
    assert_eq!(rules_of(src), vec![RuleId::Ql02]);
}

#[test]
fn marker_for_the_wrong_rule_does_not_suppress() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    x.unwrap() // qlint::allow(ND01, reason = \"wrong rule\")\n}\n";
    let rules = rules_of(src);
    assert!(rules.contains(&RuleId::Pn01), "{rules:?}");
    assert!(
        rules.contains(&RuleId::Ql02),
        "a marker that suppresses nothing is stale: {rules:?}"
    );
}

#[test]
fn one_marker_covers_all_same_rule_findings_on_its_line() {
    let src = "fn f(x: Option<u64>, y: Option<u64>) -> u64 {\n    // qlint::allow(PN01, reason = \"both probes are guarded by the caller\")\n    x.unwrap() + y.unwrap()\n}\n";
    let (findings, suppressed) = lint_source("fixture.rs", &lib_ctx(), src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 2);
}

#[test]
fn markers_inside_doc_comments_are_inert() {
    // Doc prose showing marker syntax must not become a live marker
    // (or a QL02 stale-marker finding).
    let src = "/// Write `// qlint::allow(ND01, reason = \"...\")` to suppress.\nfn f() {}\n";
    assert_eq!(rules_of(src), vec![]);
}
