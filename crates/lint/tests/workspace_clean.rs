//! Workspace-level integration: the shipped tree lints clean, an
//! injected violation is caught with the right rule and position, and
//! the rendered artifacts are byte-identical across runs.

use std::fs;
use std::path::{Path, PathBuf};

use qlint::{lint_workspace, RuleId};

/// The workspace root this crate was built from.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn shipped_workspace_lints_clean() {
    let report = lint_workspace(&workspace_root()).expect("workspace walks");
    assert!(
        report.is_clean(),
        "the shipped tree must lint clean:\n{}",
        report.render_text()
    );
    assert!(
        report.files_scanned > 50,
        "the walk found only {} files — vendored/target skipping is too aggressive",
        report.files_scanned
    );
    assert!(
        report.suppressed > 0,
        "the audited tree carries qlint::allow markers; finding none means markers stopped parsing"
    );
}

#[test]
fn lint_artifacts_are_byte_identical_across_runs() {
    let root = workspace_root();
    let a = lint_workspace(&root).expect("first run");
    let b = lint_workspace(&root).expect("second run");
    assert_eq!(a, b, "reports must be structurally identical");
    assert_eq!(a.render_text(), b.render_text());
    assert_eq!(a.to_json().render(), b.to_json().render());
}

/// Builds a miniature workspace in the cargo tmpdir, lints it, and
/// tears it down.
fn lint_injected(rel_path: &str, source: &str) -> qlint::Report {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "qlint-inject-{}-{}",
        std::process::id(),
        rel_path.replace(['/', '.'], "_")
    ));
    let _ = fs::remove_dir_all(&base);
    let file = base.join(rel_path);
    fs::create_dir_all(file.parent().expect("fixture path has a parent")).expect("mkdir");
    fs::write(&file, source).expect("write fixture");
    let report = lint_workspace(&base).expect("fixture tree walks");
    fs::remove_dir_all(&base).expect("cleanup");
    report
}

#[test]
fn injected_wall_clock_read_is_caught_with_position() {
    let report = lint_injected(
        "crates/qlearn/src/bad.rs",
        "fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    assert_eq!(report.findings.len(), 1, "{}", report.render_text());
    let f = &report.findings[0];
    assert_eq!(f.rule, RuleId::Nd01);
    assert_eq!(f.file, "crates/qlearn/src/bad.rs");
    assert_eq!(f.line, 2);
}

#[test]
fn injected_hash_map_is_caught_only_in_artifact_crates() {
    let src = "pub fn f(m: &std::collections::HashMap<u64, u64>) -> usize {\n    m.len()\n}\n";
    let artifact = lint_injected("crates/simkit/src/bad.rs", src);
    assert_eq!(artifact.findings.len(), 1, "{}", artifact.render_text());
    assert_eq!(artifact.findings[0].rule, RuleId::Nd03);

    let non_artifact = lint_injected("crates/workload/src/bad.rs", src);
    assert!(
        non_artifact.is_clean(),
        "ND03 is scoped to artifact-producing crates:\n{}",
        non_artifact.render_text()
    );
}

#[test]
fn injected_violation_in_tests_dir_is_exempt() {
    let report = lint_injected(
        "crates/qlearn/tests/bad.rs",
        "#[test]\nfn t() {\n    let _ = std::time::Instant::now();\n}\n",
    );
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn vendor_and_target_trees_are_skipped() {
    let report = lint_injected(
        "vendor/rand/src/lib.rs",
        "pub fn f() { let _ = std::time::Instant::now(); }\n",
    );
    assert_eq!(report.files_scanned, 0);
    assert!(report.is_clean());
}
