//! Structure-of-arrays batch of SoCs stepped in lockstep.
//!
//! [`SocBatch`] simulates `width` devices that share one platform
//! *structure* (domains, OPP ladders, thermal network topology, power
//! models, throttle trips) while every per-device *state* — node
//! temperatures, frequencies, throttle clamps, utilisations, energy —
//! lives in contiguous arrays keyed `domain × lane` or `node × lane`.
//! The physics hot loops (thermal RC update, power model, throttle
//! transitions) run as tight lane-inner loops over those arrays with no
//! per-lane heap allocation and no `dyn` dispatch, so the compiler can
//! vectorise across devices.
//!
//! # Arena layout
//!
//! ```text
//! temps_c      [node0: l0 l1 … lW | node1: l0 l1 … lW | …]   (f64)
//! node_power   [node0: l0 l1 … lW | node1: l0 l1 … lW | …]   (f64)
//! domain_w     [dom0:  l0 l1 … lW | dom1:  l0 l1 … lW | …]   (f64)
//! clamp_level  [dom0:  l0 l1 … lW | dom1:  l0 l1 … lW | …]   (usize)
//! lvl_cur      [dom0:  l0 l1 … lW | dom1:  l0 l1 … lW | …]   (usize)
//! ambient_c    [l0 l1 … lW]                                   (f64)
//! base_w       [l0 l1 … lW]                                   (f64)
//! ```
//!
//! Each lane owns a disjoint column, so the inner loops are free of
//! cross-lane dependencies; structure-level constants (trip points,
//! capacitances, conductances, Hz ladders) are hoisted out of the lane
//! loops and shared by every device.
//!
//! # Byte-identity with the scalar path
//!
//! Batching is a pure interleaving: lane `l` of a batch performs exactly
//! the floating-point operation sequence [`crate::Soc::tick`] performs
//! for the same device, in the same order, so results are bit-identical
//! to running `width` independent [`crate::Soc`]s. The width-1
//! equivalence suite in this module and the cross-crate proptests pin
//! that contract.
//!
//! Lanes may differ in ambient temperature and platform base power (the
//! fleet's device bins); everything structural must match across lanes
//! or [`SocBatch::try_from_configs`] rejects the cohort.
//!
//! # Example
//!
//! Two idle devices tick in lockstep and match a scalar [`crate::Soc`]
//! bit for bit:
//!
//! ```
//! use mpsoc::perf::FrameDemand;
//! use mpsoc::soc::{Soc, SocConfig};
//! use mpsoc::SocBatch;
//!
//! let config = SocConfig::exynos9810();
//! let mut batch = SocBatch::replicate(&config, 2).unwrap();
//! let mut scalar = Soc::new(config);
//! let idle = FrameDemand::default();
//! for _ in 0..40 {
//!     batch.tick(0.025, &[idle, idle]);
//!     scalar.tick(0.025, &idle);
//! }
//! assert_eq!(batch.state(0), batch.state(1), "identical lanes stay identical");
//! assert_eq!(batch.state(0), scalar.state(), "batching is unobservable");
//! ```

use std::collections::VecDeque;

use crate::dvfs::DvfsController;
use crate::freq::{KiloHertz, Opp};
use crate::perf::{self, FrameDemand};
use crate::platform::{DomainId, PerDomain, Platform};
use crate::power::{DomainPowerModel, PowerBreakdown};
use crate::soc::{SocConfig, SocState, TickOutput, FPS_WINDOW_S};
use crate::thermal::{self, NodeId, ThermalConfig};
use crate::vsync::{VsyncOutput, VsyncPipeline};
use crate::{Error, Result};

/// A batch of `width` devices stepped in lockstep through the single
/// physics kernel shared with [`Soc`](crate::Soc).
#[derive(Debug, Clone)]
pub struct SocBatch {
    platform: Platform,
    width: usize,
    refresh_hz: f64,
    util_selection: bool,
    /// DVFS controller per lane: the governor actuation surface, exactly
    /// the object a [`crate::Soc`] exposes (policy caps and current
    /// levels are per-device state).
    dvfs: Vec<DvfsController>,
    /// VSync/triple-buffer pipeline per lane (render phase is
    /// per-device state).
    vsync: Vec<VsyncPipeline>,
    /// Frequency of every OPP in Hz, per domain — the shared ladder the
    /// lane-wise utilisation-tracking selection scans (precomputed once
    /// instead of converting kHz per probe, per lane, per tick).
    hz_ladder: Vec<Vec<f64>>,
    /// Frequency of every OPP in kHz, per domain (state materialisation).
    khz_ladder: Vec<Vec<KiloHertz>>,
    /// Full OPP descriptor of every level, per domain — shared across
    /// lanes (construction enforces structural equality with each
    /// lane's controller table).
    opp_ladder: Vec<Vec<Opp>>,
    // --- DVFS level mirror (SoA) ---
    /// Current frequency level per `domain × lane`: a write-through
    /// mirror of the per-lane controllers, so the per-tick selection,
    /// clamp enforcement and OPP materialisation read contiguous
    /// arrays and only touch a controller when a level actually
    /// changes.
    lvl_cur: Vec<usize>,
    /// Lower policy cap level per `domain × lane` (mirror).
    lvl_min: Vec<usize>,
    /// Upper policy cap level per `domain × lane` (mirror).
    lvl_max: Vec<usize>,
    /// Per-lane mirror of the controller's util-margin and boost
    /// threshold (refreshed together with the level mirror), so
    /// steady-state selection reads contiguous arrays instead of
    /// chasing into each lane's controller.
    margin_mirror: Vec<f64>,
    boost_mirror: Vec<f64>,
    /// Lanes whose controller was handed out via
    /// [`SocBatch::dvfs_mut`] since the last tick; their mirror
    /// columns are re-read from the controller when the next tick
    /// starts.
    dvfs_dirty: Vec<bool>,
    /// Lanes whose *controller* lags the mirror: the tick kernel
    /// writes levels to the mirror only (write-behind), and the
    /// controller is brought up to date when it is next handed out.
    /// Mutually exclusive with `dvfs_dirty` — a handout flushes before
    /// marking dirty.
    ctl_stale: Vec<bool>,
    // --- throttle (SoA) ---
    throttle_enabled: bool,
    hysteresis_c: f64,
    /// Trip temperature per domain (∞ where the config lists none).
    trip_c: PerDomain<f64>,
    top_level: PerDomain<usize>,
    /// Thermal clamp per `domain × lane`.
    clamp_level: Vec<usize>,
    // --- thermal (SoA) ---
    /// Shared network structure (its `ambient_c` field is unused; the
    /// per-lane `ambient_c` array below is authoritative).
    thermal_config: ThermalConfig,
    max_stable_dt_s: f64,
    /// Ambient temperature per lane, °C.
    ambient_c: Vec<f64>,
    /// Node temperature per `node × lane`, °C.
    temps_c: Vec<f64>,
    /// Forward-Euler scratch per `node × lane` (persistent, never
    /// reallocated in the tick path).
    flux: Vec<f64>,
    /// Injected power per `node × lane`, watts.
    node_power: Vec<f64>,
    // --- power ---
    /// Per-domain power models, shared across lanes.
    domain_models: PerDomain<DomainPowerModel>,
    /// Platform floor power per lane, watts (fleet bins scale it).
    base_w: Vec<f64>,
    /// Domain power per `domain × lane`, watts (scratch).
    domain_w: Vec<f64>,
    die_nodes: PerDomain<NodeId>,
    // --- per-lane rolling state ---
    /// Previous-tick utilisation per `domain × lane` (what the next
    /// tick's in-kernel selection tracks).
    last_utils: Vec<f64>,
    time_s: Vec<f64>,
    /// Lifetime energy per lane, joules (battery accounting).
    energy_j: Vec<f64>,
    /// Full per-lane output of the most recent tick.
    last_tick: Vec<TickOutput>,
    /// Frequency level per `domain × lane` as of the end of the last
    /// tick (a snapshot, so [`SocBatch::state`] reports pre-control
    /// frequencies exactly like the scalar path's cached state).
    level_snap: Vec<usize>,
    /// `maxfreq` cap level per `domain × lane` at the end of the last
    /// tick.
    cap_snap: Vec<usize>,
    // --- shared FPS window ---
    /// Tick lengths of the rolling window — one entry per tick, shared
    /// by every lane (lockstep means identical dt history).
    window_dt: VecDeque<f64>,
    /// Presented frames per window slot × lane, slot-major.
    window_frames: VecDeque<u32>,
    /// Window length as the scalar path computes it (sum minus popped
    /// fronts — kept verbatim for bit-identical division).
    window_total_dt_s: f64,
}

impl SocBatch {
    /// A batch of `width` identical devices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] exactly when
    /// [`crate::Soc::try_new`] would for `config`.
    pub fn replicate(config: &SocConfig, width: usize) -> Result<Self> {
        let configs = vec![config.clone(); width];
        SocBatch::try_from_configs(&configs)
    }

    /// A batch over per-lane configurations.
    ///
    /// Lanes may differ in thermal ambient temperature and platform
    /// base power; every structural parameter (platform domains, OPP
    /// ladders, thermal topology, refresh rate, throttle, util
    /// selection) must match across lanes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on an empty cohort, on any
    /// configuration [`crate::Soc::try_new`] would reject, or when the
    /// lanes diverge structurally.
    #[allow(clippy::too_many_lines)]
    pub fn try_from_configs(configs: &[SocConfig]) -> Result<Self> {
        let first = configs
            .first()
            .ok_or_else(|| Error::InvalidConfig("batch needs at least one lane".to_owned()))?;
        for (lane, cfg) in configs.iter().enumerate() {
            if !(cfg.refresh_hz > 0.0 && cfg.refresh_hz.is_finite()) {
                return Err(Error::InvalidConfig(
                    "refresh rate must be positive".to_owned(),
                ));
            }
            for d in cfg.platform.domains() {
                if d.thermal_node >= cfg.thermal.nodes.len() {
                    return Err(Error::InvalidConfig(format!(
                        "domain '{}' references thermal node {} outside the network",
                        d.name, d.thermal_node
                    )));
                }
            }
            let mismatch = |what: &str| {
                Err(Error::InvalidConfig(format!(
                    "lane {lane} diverges from lane 0 in {what}; batch lanes must share \
                     the platform structure"
                )))
            };
            if cfg.platform.name() != first.platform.name()
                || cfg.platform.domains() != first.platform.domains()
            {
                return mismatch("platform domains");
            }
            if cfg.thermal.nodes != first.thermal.nodes
                || cfg.thermal.edges != first.thermal.edges
                || cfg.thermal.board_node != first.thermal.board_node
                || cfg.thermal.skin_node != first.thermal.skin_node
            {
                return mismatch("thermal network structure");
            }
            if cfg.refresh_hz != first.refresh_hz {
                return mismatch("refresh rate");
            }
            if cfg.util_selection != first.util_selection {
                return mismatch("util selection");
            }
            if cfg.throttle != first.throttle {
                return mismatch("throttle configuration");
            }
        }
        first.thermal.validate()?;

        let width = configs.len();
        let platform = first.platform.clone();
        let n = platform.n_domains();
        let n_nodes = first.thermal.nodes.len();
        let sizes = platform.freq_levels();
        let hz_ladder: Vec<Vec<f64>> = platform
            .domains()
            .iter()
            .map(|d| d.table.iter().map(crate::freq::Opp::freq_hz).collect())
            .collect();
        let khz_ladder: Vec<Vec<KiloHertz>> = platform
            .domains()
            .iter()
            .map(|d| d.table.iter().map(|o| o.freq_khz).collect())
            .collect();
        let opp_ladder: Vec<Vec<Opp>> = platform
            .domains()
            .iter()
            .map(|d| d.table.iter().copied().collect())
            .collect();
        let top_level = PerDomain::from_fn(n, |i| sizes[i].saturating_sub(1));
        let trip_c = PerDomain::from_fn(n, |i| {
            first
                .throttle
                .trip_c
                .get(i)
                .copied()
                .unwrap_or(f64::INFINITY)
        });
        let die_nodes = PerDomain::from_fn(n, |i| platform.domains()[i].thermal_node);
        let domain_models = PerDomain::from_fn(n, |i| platform.domains()[i].power);
        let dvfs: Vec<DvfsController> = configs
            .iter()
            .map(|c| DvfsController::for_platform(&c.platform))
            .collect();
        let ambient_c: Vec<f64> = configs.iter().map(|c| c.thermal.ambient_c).collect();
        let base_w: Vec<f64> = configs.iter().map(|c| c.platform.base_power_w()).collect();
        let mut temps_c = vec![0.0; n_nodes * width];
        for node in 0..n_nodes {
            temps_c[node * width..(node + 1) * width].copy_from_slice(&ambient_c);
        }
        let zero_tick = TickOutput {
            dt_s: 0.0,
            fps: 0.0,
            vsync: VsyncOutput::default(),
            power: PowerBreakdown {
                domain_w: PerDomain::new(n),
                base_w: 0.0,
            },
            power_w: 0.0,
            util: PerDomain::new(n),
            opps: PerDomain::new(n),
        };
        let mut batch = SocBatch {
            width,
            refresh_hz: first.refresh_hz,
            util_selection: first.util_selection,
            dvfs,
            vsync: vec![VsyncPipeline::new(first.refresh_hz); width],
            hz_ladder,
            khz_ladder,
            opp_ladder,
            lvl_cur: vec![0; n * width],
            lvl_min: vec![0; n * width],
            lvl_max: vec![0; n * width],
            margin_mirror: vec![0.0; width],
            boost_mirror: vec![0.0; width],
            dvfs_dirty: vec![false; width],
            ctl_stale: vec![false; width],
            throttle_enabled: first.throttle.enabled,
            hysteresis_c: first.throttle.hysteresis_c,
            trip_c,
            top_level,
            clamp_level: vec![0; n * width],
            max_stable_dt_s: thermal::max_stable_dt(&first.thermal),
            thermal_config: first.thermal.clone(),
            ambient_c,
            temps_c,
            flux: vec![0.0; n_nodes * width],
            node_power: vec![0.0; n_nodes * width],
            domain_models,
            base_w,
            domain_w: vec![0.0; n * width],
            die_nodes,
            last_utils: vec![0.0; n * width],
            time_s: vec![0.0; width],
            energy_j: vec![0.0; width],
            last_tick: vec![zero_tick; width],
            level_snap: vec![0; n * width],
            cap_snap: vec![0; n * width],
            window_dt: VecDeque::new(),
            window_frames: VecDeque::new(),
            window_total_dt_s: 0.0,
            platform,
        };
        for d in 0..n {
            for l in 0..width {
                batch.clamp_level[d * width + l] = batch.top_level[d];
            }
        }
        for l in 0..width {
            batch.resync_lane_dvfs(l);
        }
        batch.snapshot_dvfs();
        Ok(batch)
    }

    /// Number of device lanes.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The shared platform descriptor.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// DVFS controller of one lane (read access). Takes `&mut self`
    /// because the tick kernel runs the controller write-behind (the
    /// handed-out controller is brought up to date with the level
    /// mirror first).
    pub fn dvfs(&mut self, lane: usize) -> &DvfsController {
        self.flush_lane_ctl(lane);
        &self.dvfs[lane]
    }

    /// DVFS controller of one lane — the governor's actuator, applied
    /// between ticks exactly like [`crate::Soc::dvfs_mut`]. The
    /// controller is brought up to date with the level mirror before it
    /// is handed out, and the lane is marked for a mirror re-read when
    /// the next tick starts.
    pub fn dvfs_mut(&mut self, lane: usize) -> &mut DvfsController {
        self.flush_lane_ctl(lane);
        self.dvfs_dirty[lane] = true;
        &mut self.dvfs[lane]
    }

    /// Write-behind flush: pushes the lane's mirror levels into its
    /// controller if the tick kernel advanced them since the last
    /// handout. Mirror levels are post-clamp values, so `force_level`
    /// reproduces the controller state the eager path would have.
    fn flush_lane_ctl(&mut self, lane: usize) {
        if !self.ctl_stale[lane] {
            return;
        }
        self.ctl_stale[lane] = false;
        let w = self.width;
        for d in 0..self.platform.n_domains() {
            let level = self.lvl_cur[d * w + lane];
            self.dvfs[lane]
                .domain_mut(DomainId::new(d))
                .force_level(level)
                // qlint::allow(PN01, reason = "the SoA mirror only holds levels previously accepted by this controller")
                .expect("mirror level within table");
        }
    }

    /// Re-reads one lane's controller into the SoA level/cap mirror
    /// (at construction, and whenever the lane's controller was
    /// actuated directly between ticks).
    fn resync_lane_dvfs(&mut self, lane: usize) {
        let w = self.width;
        for d in 0..self.platform.n_domains() {
            let dom = self.dvfs[lane].domain(DomainId::new(d));
            let (cur, min, max) = (
                dom.current_level(),
                dom.min_cap_level(),
                dom.max_cap_level(),
            );
            self.lvl_cur[d * w + lane] = cur;
            self.lvl_min[d * w + lane] = min;
            self.lvl_max[d * w + lane] = max;
        }
        self.margin_mirror[lane] = self.dvfs[lane].util_margin();
        self.boost_mirror[lane] = self.dvfs[lane].boost_threshold();
    }

    /// Simulated time of one lane, seconds.
    #[must_use]
    pub fn time_s(&self, lane: usize) -> f64 {
        self.time_s[lane]
    }

    /// Lifetime energy drawn by one lane, joules.
    #[must_use]
    pub fn energy_j(&self, lane: usize) -> f64 {
        self.energy_j[lane]
    }

    /// Full output of the most recent tick for one lane.
    #[must_use]
    pub fn tick_output(&self, lane: usize) -> &TickOutput {
        &self.last_tick[lane]
    }

    /// The governor-visible state of one lane after the most recent
    /// tick — bit-identical to [`crate::Soc::state`] on the scalar
    /// path. Materialised on demand from the arenas (DVFS-derived
    /// fields come from the end-of-tick snapshot, so control actuation
    /// between ticks does not leak into the observation, matching the
    /// scalar path's cached state).
    #[must_use]
    pub fn state(&self, lane: usize) -> SocState {
        let n = self.platform.n_domains();
        let w = self.width;
        let freq_level = PerDomain::from_fn(n, |d| self.level_snap[d * w + lane]);
        let max_cap_level = PerDomain::from_fn(n, |d| self.cap_snap[d * w + lane]);
        let freq_khz = PerDomain::from_fn(n, |d| self.khz_ladder[d][freq_level[d]]);
        let temp_domain_c = PerDomain::from_fn(n, |d| self.temps_c[self.die_nodes[d] * w + lane]);
        let skin = self.temps_c[self.thermal_config.skin_node * w + lane];
        let board = self.temps_c[self.thermal_config.board_node * w + lane];
        let die_max = self
            .die_nodes
            .iter()
            .map(|&node| self.temps_c[node * w + lane])
            .fold(f64::MIN, f64::max);
        SocState {
            time_s: self.time_s[lane],
            freq_khz,
            freq_level,
            max_cap_level,
            fps: self.windowed_fps(lane),
            power_w: self.last_tick[lane].power_w,
            temp_domain_c,
            temp_hot_c: temp_domain_c[self.platform.hot_domain().index()],
            temp_device_c: 0.45 * skin + 0.35 * board + 0.20 * die_max,
            temp_battery_c: board,
            util: PerDomain::from_fn(n, |d| self.last_utils[d * w + lane]),
        }
    }

    /// Rolling-window FPS of one lane — the scalar
    /// `update_fps_window` quotient, computed from the shared window.
    fn windowed_fps(&self, lane: usize) -> f64 {
        if self.window_total_dt_s <= 0.0 {
            return 0.0;
        }
        let frames: u32 = self
            .window_frames
            .iter()
            .skip(lane)
            .step_by(self.width)
            .sum();
        (f64::from(frames) / self.window_total_dt_s).min(self.refresh_hz)
    }

    /// Advances every lane by `dt_s` seconds; `demands[lane]` is the
    /// frame demand lane `lane` executes. Performs, per lane, exactly
    /// the pipeline of [`crate::Soc::tick`]: in-kernel frequency
    /// selection, throttle transition, frame execution + VSync, power
    /// integration at the pre-step die temperatures, thermal update.
    ///
    /// # Panics
    ///
    /// Panics unless `demands.len()` equals the batch width.
    #[allow(clippy::too_many_lines)]
    pub fn tick(&mut self, dt_s: f64, demands: &[FrameDemand]) {
        let w = self.width;
        let n = self.platform.n_domains();
        assert_eq!(demands.len(), w, "one FrameDemand per lane");

        // 0. Refresh the level mirror of any lane whose controller was
        //    actuated directly since the last tick.
        for l in 0..w {
            if self.dvfs_dirty[l] {
                self.dvfs_dirty[l] = false;
                self.resync_lane_dvfs(l);
            }
        }

        // 1. In-kernel utilisation-tracking selection —
        //    [`DvfsController::select_by_util`] per lane, restructured
        //    domain-outer over the SoA mirrors (each `domain × lane`
        //    choice is independent, so the transposed order picks the
        //    same levels, and therefore the same downstream bits).
        //    Writes land in the mirror only; stale controllers are
        //    caught up on handout (`flush_lane_ctl`).
        if self.util_selection {
            for (d, ladder) in self.hz_ladder.iter().enumerate() {
                let base = d * w;
                select_domain_lanes(
                    ladder,
                    &self.last_utils[base..base + w],
                    &self.margin_mirror,
                    &self.boost_mirror,
                    &mut self.lvl_cur[base..base + w],
                    &self.lvl_min[base..base + w],
                    &self.lvl_max[base..base + w],
                    &mut self.ctl_stale,
                );
            }
        }

        // 2. Throttle transitions on the pre-step die temperatures —
        //    the SoA loop over `domain × lane`.
        if self.throttle_enabled {
            for d in 0..n {
                let trip = self.trip_c[d];
                let top = self.top_level[d];
                let tbase = self.die_nodes[d] * w;
                let cbase = d * w;
                for l in 0..w {
                    self.clamp_level[cbase + l] = crate::throttle::clamp_transition(
                        self.clamp_level[cbase + l],
                        top,
                        trip,
                        self.hysteresis_c,
                        self.temps_c[tbase + l],
                    );
                }
            }
        }

        // 3.–4. Per-lane control surface: clamp enforcement against the
        //    level mirror (write-behind, like selection), execution
        //    planning from the shared OPP ladder, VSync.
        for (l, demand) in demands.iter().enumerate() {
            for d in 0..n {
                let clamp = if self.throttle_enabled {
                    self.clamp_level[d * w + l]
                } else {
                    self.top_level[d]
                };
                if self.lvl_cur[d * w + l] > clamp {
                    self.lvl_cur[d * w + l] = clamp;
                    self.ctl_stale[l] = true;
                }
            }
            let opps = PerDomain::from_fn(n, |d| self.opp_ladder[d][self.lvl_cur[d * w + l]]);
            let plan = perf::plan(demand, &opps, &self.platform);
            let vout = self.vsync[l].tick(dt_s, plan.frame_period_s);
            let fps = vout.fps(dt_s);
            let produced_rate = plan.render_rate_hz().min(self.refresh_hz);
            let util = PerDomain::from_fn(n, |i| plan.utilization(DomainId::new(i), produced_rate));
            for d in 0..n {
                self.last_utils[d * w + l] = util[d];
            }
            let out = &mut self.last_tick[l];
            out.dt_s = dt_s;
            out.fps = fps;
            out.vsync = vout;
            out.util = util;
            out.opps = opps;
        }

        // 5. Power at the pre-step die temperatures — SoA over
        //    `domain × lane`, shared models, no dispatch. Operating
        //    points and utilisations come straight from the arenas
        //    (`lvl_cur` is final for this tick after the clamp stage,
        //    and `last_utils` was just refreshed), so the loop reads
        //    contiguous lanes instead of striding through the per-lane
        //    tick outputs.
        for d in 0..n {
            let model = self.domain_models[d];
            let ladder = &self.opp_ladder[d];
            let tbase = self.die_nodes[d] * w;
            let dbase = d * w;
            for l in 0..w {
                self.domain_w[dbase + l] = model.total_w(
                    ladder[self.lvl_cur[dbase + l]],
                    self.last_utils[dbase + l],
                    self.temps_c[tbase + l],
                );
            }
        }

        // 6. Node power injection (domain heat onto die nodes, floor
        //    power onto the board), then the shared thermal kernel.
        self.node_power.fill(0.0);
        for d in 0..n {
            let npbase = self.die_nodes[d] * w;
            let dbase = d * w;
            for l in 0..w {
                self.node_power[npbase + l] += self.domain_w[dbase + l];
            }
        }
        let bbase = self.thermal_config.board_node * w;
        for l in 0..w {
            self.node_power[bbase + l] += self.base_w[l];
        }
        thermal::step_lanes(
            &self.thermal_config,
            self.max_stable_dt_s,
            w,
            &mut self.temps_c,
            &self.node_power,
            &self.ambient_c,
            &mut self.flux,
            dt_s,
        );

        // 7. Per-lane accounting: totals in the scalar summation order.
        for l in 0..w {
            let mut total_w = 0.0;
            for d in 0..n {
                total_w += self.domain_w[d * w + l];
            }
            total_w += self.base_w[l];
            let out = &mut self.last_tick[l];
            out.power = PowerBreakdown {
                domain_w: PerDomain::from_fn(n, |d| self.domain_w[d * w + l]),
                base_w: self.base_w[l],
            };
            out.power_w = total_w;
            self.time_s[l] += dt_s.max(0.0);
            if dt_s > 0.0 {
                self.energy_j[l] += total_w * dt_s;
            }
        }
        self.snapshot_dvfs();

        // 8. Shared FPS window: one dt history for the whole batch
        //    (lockstep), per-lane presented counts per slot.
        if dt_s > 0.0 {
            self.window_dt.push_back(dt_s);
            for l in 0..w {
                self.window_frames
                    .push_back(self.last_tick[l].vsync.presented);
            }
        }
        let mut total_dt: f64 = self.window_dt.iter().sum();
        while let Some(&front_dt) = self.window_dt.front() {
            if total_dt - front_dt >= FPS_WINDOW_S {
                self.window_dt.pop_front();
                for _ in 0..w {
                    self.window_frames.pop_front();
                }
                total_dt -= front_dt;
            } else {
                break;
            }
        }
        self.window_total_dt_s = total_dt;
    }

    /// Records the end-of-tick frequency levels and caps (what
    /// [`SocBatch::state`] reports until the next tick). The mirror is
    /// in sync with every controller here — dirty lanes are re-read at
    /// tick start and in-tick writes go through both — so this is a
    /// pair of straight copies.
    fn snapshot_dvfs(&mut self) {
        self.level_snap.copy_from_slice(&self.lvl_cur);
        self.cap_snap.copy_from_slice(&self.lvl_max);
    }

    /// Compacts the batch to the lanes with `keep[lane] == true`,
    /// preserving every kept lane's state (training fleets drop lanes
    /// as their agents converge).
    ///
    /// # Panics
    ///
    /// Panics unless `keep.len()` equals the batch width.
    pub fn retain_lanes(&mut self, keep: &[bool]) {
        fn retain_vec<T>(v: &mut Vec<T>, keep: &[bool]) {
            let mut it = keep.iter();
            // qlint::allow(PN01, reason = "the assert below guarantees one keep flag per lane")
            v.retain(|_| *it.next().expect("keep flag per element"));
        }

        assert_eq!(keep.len(), self.width, "one keep flag per lane");
        let kept: Vec<usize> = (0..self.width).filter(|&l| keep[l]).collect();
        if kept.len() == self.width {
            return;
        }
        let old_w = self.width;
        let new_w = kept.len();
        let n = self.platform.n_domains();
        let n_nodes = self.thermal_config.nodes.len();

        retain_vec(&mut self.dvfs, keep);
        retain_vec(&mut self.vsync, keep);
        retain_vec(&mut self.ambient_c, keep);
        retain_vec(&mut self.base_w, keep);
        retain_vec(&mut self.time_s, keep);
        retain_vec(&mut self.energy_j, keep);
        retain_vec(&mut self.last_tick, keep);
        retain_vec(&mut self.dvfs_dirty, keep);
        retain_vec(&mut self.ctl_stale, keep);
        retain_vec(&mut self.margin_mirror, keep);
        retain_vec(&mut self.boost_mirror, keep);

        let compact = |arr: &mut Vec<f64>, rows: usize| {
            for row in 0..rows {
                for (new_l, &old_l) in kept.iter().enumerate() {
                    arr[row * new_w + new_l] = arr[row * old_w + old_l];
                }
            }
            arr.truncate(rows * new_w);
        };
        compact(&mut self.temps_c, n_nodes);
        let compact_usize = |arr: &mut Vec<usize>, rows: usize| {
            for row in 0..rows {
                for (new_l, &old_l) in kept.iter().enumerate() {
                    arr[row * new_w + new_l] = arr[row * old_w + old_l];
                }
            }
            arr.truncate(rows * new_w);
        };
        compact_usize(&mut self.clamp_level, n);
        compact_usize(&mut self.level_snap, n);
        compact_usize(&mut self.cap_snap, n);
        compact_usize(&mut self.lvl_cur, n);
        compact_usize(&mut self.lvl_min, n);
        compact_usize(&mut self.lvl_max, n);
        compact(&mut self.last_utils, n);
        self.flux.truncate(n_nodes * new_w);
        self.node_power.truncate(n_nodes * new_w);
        self.domain_w.truncate(n * new_w);

        let slots = self.window_dt.len();
        let old_frames: Vec<u32> = self.window_frames.iter().copied().collect();
        self.window_frames.clear();
        for slot in 0..slots {
            for &old_l in &kept {
                self.window_frames
                    .push_back(old_frames[slot * old_w + old_l]);
            }
        }
        self.width = new_w;
    }
}

/// One domain's round of utilisation-tracking selection across all
/// lanes — [`DvfsController::select_by_util`] with the kHz→Hz ladder
/// conversion hoisted out of the per-tick path and current levels /
/// policy caps read from the batch's SoA mirror rows (the chosen
/// levels, and therefore every downstream bit, are identical; each
/// `domain × lane` choice is independent, so the domain-outer order is
/// unobservable). Level changes land in the mirror only — the lane is
/// flagged stale and its controller caught up lazily on handout
/// ([`SocBatch::flush_lane_ctl`]); the scalar path's `set_level(level)`
/// stores `level.clamp(min, max)`, i.e. exactly the mirrored `chosen`.
#[allow(clippy::too_many_arguments)]
fn select_domain_lanes(
    ladder: &[f64],
    last_utils: &[f64],
    margin: &[f64],
    boost_threshold: &[f64],
    lvl_cur: &mut [usize],
    lvl_min: &[usize],
    lvl_max: &[usize],
    ctl_stale: &mut [bool],
) {
    let top = ladder.len() - 1;
    // Zipped iteration over the six lane rows: one length check per
    // row up front instead of a bounds check per lane access.
    let lanes = lvl_cur
        .iter_mut()
        .zip(last_utils)
        .zip(margin)
        .zip(boost_threshold)
        .zip(lvl_min)
        .zip(lvl_max)
        .zip(ctl_stale);
    for ((((((cur, &raw_util), &margin), &boost), &lo), &hi), stale) in lanes {
        let util = raw_util.clamp(0.0, 1.0);
        let cur_level = *cur;
        let level = if util >= boost {
            top
        } else {
            let target_hz = margin * util * ladder[cur_level];
            // First ladder index at or above the target. The ladder is
            // strictly ascending, so that index equals the number of
            // entries below the target — counted branchlessly, which
            // vectorises, instead of the scalar path's early-exit scan
            // (when no entry qualifies the count is the length, and
            // the `min` reproduces the scan's last-level fallback).
            let below = ladder.iter().map(|&h| usize::from(h < target_hz)).sum();
            let want = usize::min(below, top);
            if want < cur_level {
                cur_level - 1
            } else {
                want
            }
        };
        let chosen = level.clamp(lo, hi);
        if chosen != cur_level {
            *cur = chosen;
            *stale = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::Soc;
    use crate::throttle::ThrottleConfig;

    /// Deterministic demand schedule mixing idle, UI and game phases.
    fn demand_at(tick: usize, lane: usize) -> FrameDemand {
        let phase = (tick / 40 + lane) % 4;
        match phase {
            0 => FrameDemand::default(),
            1 => FrameDemand::new(3.0e6, 1.5e6, 4.0e6).with_background(0.05e9, 0.05e9, 0.0),
            2 => FrameDemand::new(22.0e6, 6.0e6, 30.0e6).with_background(0.3e9, 0.1e9, 0.0),
            _ => FrameDemand::new(0.0, 0.0, 0.0).with_background(1.2e9, 0.6e9, 0.0),
        }
    }

    fn states_equal(a: &SocState, b: &SocState) -> bool {
        a == b
    }

    /// Runs `ticks` steps through both paths and asserts bit-identical
    /// per-lane states every step.
    fn assert_equivalent(configs: &[SocConfig], ticks: usize) {
        let mut socs: Vec<Soc> = configs.iter().map(|c| Soc::new(c.clone())).collect();
        let mut batch = SocBatch::try_from_configs(configs).expect("valid batch");
        assert_eq!(batch.width(), configs.len());
        let mut demands = vec![FrameDemand::default(); configs.len()];
        for t in 0..ticks {
            for (l, d) in demands.iter_mut().enumerate() {
                *d = demand_at(t, l);
            }
            batch.tick(0.025, &demands);
            for (l, soc) in socs.iter_mut().enumerate() {
                let out = soc.tick(0.025, &demands[l]);
                let bout = batch.tick_output(l);
                assert_eq!(
                    out.fps.to_bits(),
                    bout.fps.to_bits(),
                    "tick {t} lane {l} fps"
                );
                assert_eq!(
                    out.power_w.to_bits(),
                    bout.power_w.to_bits(),
                    "tick {t} lane {l} power"
                );
                assert_eq!(out.vsync, bout.vsync, "tick {t} lane {l} vsync");
                assert_eq!(out.opps, bout.opps, "tick {t} lane {l} opps");
                assert!(
                    states_equal(&soc.state(), &batch.state(l)),
                    "tick {t} lane {l} state drifted:\n scalar {:?}\n batch  {:?}",
                    soc.state(),
                    batch.state(l)
                );
            }
        }
    }

    #[test]
    fn width_one_matches_soc_bit_for_bit() {
        assert_equivalent(&[SocConfig::exynos9810()], 600);
    }

    #[test]
    fn width_four_9820_matches_soc_bit_for_bit() {
        assert_equivalent(&vec![SocConfig::exynos9820(); 4], 400);
    }

    #[test]
    fn heterogeneous_ambient_and_base_power_lanes_match_scalars() {
        // The fleet's device bins: per-lane ambient and base power.
        let bins = [(21.0, 1.0), (27.0, 1.0), (21.0, 1.15), (15.0, 0.9)];
        let configs: Vec<SocConfig> = bins
            .iter()
            .map(|&(ambient, scale)| {
                let mut cfg = SocConfig::exynos9810().with_ambient(ambient);
                cfg.platform.scale_base_power(scale);
                cfg
            })
            .collect();
        assert_equivalent(&configs, 400);
    }

    #[test]
    fn initial_state_matches_scalar() {
        let soc = Soc::new(SocConfig::exynos9810());
        let batch = SocBatch::replicate(&SocConfig::exynos9810(), 3).unwrap();
        for l in 0..3 {
            assert!(states_equal(&soc.state(), &batch.state(l)));
        }
    }

    #[test]
    fn throttling_lanes_match_scalar() {
        let mut cfg = SocConfig::exynos9810();
        cfg.throttle = ThrottleConfig {
            enabled: true,
            trip_c: vec![40.0, 40.0, 40.0],
            hysteresis_c: 3.0,
        };
        let mut soc = Soc::new(cfg.clone());
        let mut batch = SocBatch::replicate(&cfg, 2).unwrap();
        let demand = FrameDemand::new(22.0e6, 6.0e6, 30.0e6).with_background(0.3e9, 0.1e9, 0.0);
        let demands = [demand, demand];
        // Pin every domain to its top OPP on both paths so the clamp
        // must engage.
        for id in soc.platform().ids().collect::<Vec<_>>() {
            let top = soc.dvfs().domain(id).table().max().freq_khz;
            soc.dvfs_mut().pin_freq(id, top).unwrap();
            for l in 0..2 {
                batch.dvfs_mut(l).pin_freq(id, top).unwrap();
            }
        }
        for _ in 0..8_000 {
            soc.tick(0.025, &demand);
            batch.tick(0.025, &demands);
        }
        assert!(soc.throttler().is_throttling());
        for l in 0..2 {
            assert!(states_equal(&soc.state(), &batch.state(l)));
        }
    }

    #[test]
    fn governor_style_cap_actuation_stays_identical() {
        // Emulate a cap-twiddling governor: every 4 ticks, move the big
        // cluster's maxfreq cap in a deterministic pattern.
        let cfg = SocConfig::exynos9810();
        let mut soc = Soc::new(cfg.clone());
        let mut batch = SocBatch::replicate(&cfg, 1).unwrap();
        let big = DomainId::new(0);
        let table_len = soc.dvfs().domain(big).table().len();
        for t in 0..800usize {
            let demand = demand_at(t, 0);
            batch.tick(0.025, &[demand]);
            soc.tick(0.025, &demand);
            if t % 4 == 3 {
                let level = (t / 4) % table_len;
                let khz = soc.dvfs().domain(big).table().opp(level).unwrap().freq_khz;
                soc.dvfs_mut().set_max_freq(big, khz).unwrap();
                batch.dvfs_mut(0).set_max_freq(big, khz).unwrap();
            }
            assert!(states_equal(&soc.state(), &batch.state(0)), "tick {t}");
        }
    }

    #[test]
    fn retain_lanes_preserves_kept_state() {
        let cfg = SocConfig::exynos9810();
        let mut batch = SocBatch::replicate(&cfg, 4).unwrap();
        let mut socs: Vec<Soc> = (0..4).map(|_| Soc::new(cfg.clone())).collect();
        let mut demands = vec![FrameDemand::default(); 4];
        for t in 0..200 {
            for (l, d) in demands.iter_mut().enumerate() {
                *d = demand_at(t, l);
            }
            batch.tick(0.025, &demands);
            for (l, soc) in socs.iter_mut().enumerate() {
                soc.tick(0.025, &demands[l]);
            }
        }
        batch.retain_lanes(&[true, false, false, true]);
        assert_eq!(batch.width(), 2);
        let kept = [0usize, 3];
        let mut demands = vec![FrameDemand::default(); 2];
        for t in 200..400 {
            for (slot, &lane) in kept.iter().enumerate() {
                demands[slot] = demand_at(t, lane);
            }
            batch.tick(0.025, &demands);
            for (slot, &lane) in kept.iter().enumerate() {
                socs[lane].tick(0.025, &demands[slot]);
                assert!(
                    states_equal(&socs[lane].state(), &batch.state(slot)),
                    "tick {t} kept lane {lane}"
                );
            }
        }
    }

    #[test]
    fn energy_accumulates_power_over_time() {
        let mut batch = SocBatch::replicate(&SocConfig::exynos9810(), 1).unwrap();
        let demand = FrameDemand::new(8.0e6, 3.0e6, 10.0e6);
        let mut manual = 0.0;
        for _ in 0..400 {
            batch.tick(0.025, &[demand]);
            manual += batch.tick_output(0).power_w * 0.025;
        }
        assert!((batch.energy_j(0) - manual).abs() < 1e-9);
        assert!(batch.energy_j(0) > 0.0);
        assert!((batch.time_s(0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn structural_mismatch_rejected() {
        let base = SocConfig::exynos9810();
        let other_platform = SocConfig::exynos9820();
        assert!(SocBatch::try_from_configs(&[base.clone(), other_platform]).is_err());

        let mut other_refresh = SocConfig::exynos9810();
        other_refresh.refresh_hz = 90.0;
        assert!(SocBatch::try_from_configs(&[base.clone(), other_refresh]).is_err());

        let mut other_throttle = SocConfig::exynos9810();
        other_throttle.throttle = ThrottleConfig::disabled();
        assert!(SocBatch::try_from_configs(&[base.clone(), other_throttle]).is_err());

        // Ambient and base-power divergence is allowed.
        let mut binned = SocConfig::exynos9810().with_ambient(27.0);
        binned.platform.scale_base_power(1.15);
        assert!(SocBatch::try_from_configs(&[base, binned]).is_ok());

        assert!(SocBatch::try_from_configs(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "one FrameDemand per lane")]
    fn wrong_demand_width_panics() {
        let mut batch = SocBatch::replicate(&SocConfig::exynos9810(), 2).unwrap();
        batch.tick(0.025, &[FrameDemand::default()]);
    }
}
