//! Domain-wise DVFS control.
//!
//! The controller owns one [`FreqDomain`] per platform DVFS domain and
//! exposes the two interfaces the paper distinguishes:
//!
//! 1. the *policy caps* (`minfreq`/`maxfreq`) that an application-layer
//!    agent such as Next writes — the hardware then "is free to operate
//!    between the minimum allowed frequency and the set maxfreq" (§IV-A),
//! 2. the kernel's utilisation-tracking frequency selection (the
//!    schedutil policy) that picks the operating point *within* those
//!    caps each scheduling period.

use crate::freq::{FreqDomain, KiloHertz, Opp, OppTable};
use crate::platform::{DomainId, PerDomain, Platform, MAX_DOMAINS};
use crate::Result;

/// Default schedutil-style headroom: the kernel targets
/// `next_f = 1.25 · f_cur · util`.
pub const DEFAULT_UTIL_MARGIN: f64 = 1.25;

/// Utilisation at which the stock policy boosts straight to the top of
/// the allowed range. Android's schedutil couples with touch/iowait
/// boosting and top-app util clamps that slam the frequency to the
/// policy maximum whenever a domain stays busy — the "operating
/// frequency remains relatively very high yet generating less FPS"
/// behaviour the paper documents in Fig. 1. The default sits below the
/// `1/margin = 0.8` tracking equilibrium (which ladder quantisation
/// lands anywhere in ≈[0.73, 0.80]), so any domain that stays busy is
/// boosted while genuinely light load is left alone.
pub const DEFAULT_BOOST_THRESHOLD: f64 = 0.72;

/// DVFS state and policy for every domain of a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsController {
    domains: Vec<FreqDomain>,
    util_margin: f64,
    boost_threshold: f64,
}

impl DvfsController {
    /// Creates a controller from the per-domain OPP tables, in platform
    /// order.
    ///
    /// # Panics
    ///
    /// Panics on an empty table list or more than [`MAX_DOMAINS`]
    /// tables.
    #[must_use]
    pub fn new(tables: Vec<OppTable>) -> Self {
        assert!(!tables.is_empty(), "controller needs at least one domain");
        assert!(
            tables.len() <= MAX_DOMAINS,
            "controller supports at most {MAX_DOMAINS} domains"
        );
        DvfsController {
            domains: tables.into_iter().map(FreqDomain::new).collect(),
            util_margin: DEFAULT_UTIL_MARGIN,
            boost_threshold: DEFAULT_BOOST_THRESHOLD,
        }
    }

    /// Controller over a platform's declared domain ladders.
    #[must_use]
    pub fn for_platform(platform: &Platform) -> Self {
        DvfsController::new(platform.domains().iter().map(|d| d.table.clone()).collect())
    }

    /// Controller with the Exynos 9810 ladders.
    #[must_use]
    pub fn exynos9810() -> Self {
        DvfsController::for_platform(&Platform::exynos9810())
    }

    /// Number of DVFS domains.
    #[must_use]
    pub fn n_domains(&self) -> usize {
        self.domains.len()
    }

    /// All domain ids in platform order.
    pub fn ids(&self) -> impl Iterator<Item = DomainId> + '_ {
        (0..self.domains.len()).map(DomainId::new)
    }

    /// The frequency domain of one DVFS domain.
    #[must_use]
    pub fn domain(&self, id: DomainId) -> &FreqDomain {
        &self.domains[id.index()]
    }

    /// Mutable access to one DVFS domain.
    pub fn domain_mut(&mut self, id: DomainId) -> &mut FreqDomain {
        &mut self.domains[id.index()]
    }

    /// Current operating points of all domains, in platform order.
    #[must_use]
    pub fn current_opps(&self) -> PerDomain<Opp> {
        PerDomain::from_fn(self.domains.len(), |i| self.domains[i].current())
    }

    /// Current frequency of one domain in kHz.
    #[must_use]
    pub fn current_khz(&self, id: DomainId) -> KiloHertz {
        self.domain(id).current().freq_khz
    }

    /// Sets the `maxfreq` cap of one domain (the Next agent's actuator).
    ///
    /// # Errors
    ///
    /// Propagates [`FreqDomain::set_max_freq`] errors.
    pub fn set_max_freq(&mut self, id: DomainId, freq_khz: KiloHertz) -> Result<()> {
        self.domain_mut(id).set_max_freq(freq_khz)
    }

    /// Sets the `minfreq` cap of one domain.
    ///
    /// # Errors
    ///
    /// Propagates [`FreqDomain::set_min_freq`] errors.
    pub fn set_min_freq(&mut self, id: DomainId, freq_khz: KiloHertz) -> Result<()> {
        self.domain_mut(id).set_min_freq(freq_khz)
    }

    /// Pins a domain to one exact OPP by collapsing both caps onto it
    /// (what a direct-frequency governor such as Int. QoS PM does).
    ///
    /// # Errors
    ///
    /// Returns an error when `freq_khz` is not an OPP of the domain.
    pub fn pin_freq(&mut self, id: DomainId, freq_khz: KiloHertz) -> Result<()> {
        let dom = self.domain_mut(id);
        // Order min/max updates so no intermediate state is inverted.
        if freq_khz >= dom.min_cap().freq_khz {
            dom.set_max_freq(freq_khz)?;
            dom.set_min_freq(freq_khz)?;
        } else {
            dom.set_min_freq(freq_khz)?;
            dom.set_max_freq(freq_khz)?;
        }
        Ok(())
    }

    /// Restores full frequency ranges on every domain.
    pub fn reset_caps(&mut self) {
        for d in &mut self.domains {
            d.reset_caps();
        }
    }

    /// The schedutil headroom multiplier used by
    /// [`DvfsController::select_by_util`].
    #[must_use]
    pub fn util_margin(&self) -> f64 {
        self.util_margin
    }

    /// Overrides the schedutil headroom multiplier.
    pub fn set_util_margin(&mut self, margin: f64) {
        self.util_margin = margin.max(1.0);
    }

    /// Boost threshold of the stock policy (see
    /// [`DEFAULT_BOOST_THRESHOLD`]). Values ≥ 1 disable boosting.
    #[must_use]
    pub fn boost_threshold(&self) -> f64 {
        self.boost_threshold
    }

    /// Overrides the boost threshold (≥ 1 disables boosting).
    pub fn set_boost_threshold(&mut self, threshold: f64) {
        self.boost_threshold = threshold.max(0.0);
    }

    /// Runs one round of utilisation-tracking frequency selection, the
    /// in-kernel policy that operates *within* the caps:
    ///
    /// * a domain whose utilisation reaches the boost threshold is
    ///   slammed to the top of its allowed range (Android touch/iowait
    ///   boosting — the over-provisioning the paper exploits),
    /// * otherwise the target is `margin · util · f_cur`; ramp-up picks
    ///   the slowest OPP at or above the target, while ramp-down is rate
    ///   limited to one OPP per invocation (the stock policy holds
    ///   frequency after bursts),
    /// * everything is clamped to the policy caps.
    ///
    /// `utils` is in platform order and clamped to `[0, 1]`; missing
    /// entries read 0.
    pub fn select_by_util(&mut self, utils: &[f64]) {
        let margin = self.util_margin;
        let boost_threshold = self.boost_threshold;
        for (i, dom) in self.domains.iter_mut().enumerate() {
            let util = utils.get(i).copied().unwrap_or(0.0).clamp(0.0, 1.0);
            let boost = util >= boost_threshold;
            let cur_level = dom.current_level();
            let level = if boost {
                dom.table().len() - 1
            } else {
                let cur_hz = dom.current().freq_hz();
                let target_hz = margin * util * cur_hz;
                let want = ceil_level_hz(dom.table(), target_hz);
                if want < cur_level {
                    cur_level - 1
                } else {
                    want
                }
            };
            // qlint::allow(PN01, reason = "level was derived from this domain's own table bounds above")
            dom.set_level(level).expect("level from table is valid");
        }
    }
}

/// Lowest level whose frequency is at least `target_hz`; the top level
/// when every OPP is below the target.
fn ceil_level_hz(table: &OppTable, target_hz: f64) -> usize {
    table
        .iter()
        .position(|o| o.freq_hz() >= target_hz)
        .unwrap_or(table.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big() -> DomainId {
        DomainId::new(0)
    }
    fn little() -> DomainId {
        DomainId::new(1)
    }
    fn gpu() -> DomainId {
        DomainId::new(2)
    }

    #[test]
    fn controller_starts_at_min_levels() {
        let ctl = DvfsController::exynos9810();
        assert_eq!(ctl.n_domains(), 3);
        assert_eq!(ctl.current_khz(big()), 650_000);
        assert_eq!(ctl.current_khz(little()), 455_000);
        assert_eq!(ctl.current_khz(gpu()), 260_000);
    }

    #[test]
    fn four_domain_controller_from_platform() {
        let ctl = DvfsController::for_platform(&Platform::exynos9820());
        assert_eq!(ctl.n_domains(), 4);
        assert_eq!(ctl.domain(DomainId::new(1)).name(), "mid");
        assert_eq!(ctl.current_opps().len(), 4);
    }

    #[test]
    fn util_selection_ramps_up_under_load() {
        let mut ctl = DvfsController::exynos9810();
        // Saturated big cluster: repeated selection climbs the ladder to
        // the top.
        for _ in 0..40 {
            ctl.select_by_util(&[1.0, 0.0, 0.0]);
        }
        assert_eq!(ctl.current_khz(big()), 2_704_000);
        assert_eq!(
            ctl.current_khz(little()),
            455_000,
            "idle domain stays at floor"
        );
    }

    #[test]
    fn util_selection_ramps_down_when_idle() {
        let mut ctl = DvfsController::exynos9810();
        for _ in 0..40 {
            ctl.select_by_util(&[1.0, 1.0, 1.0]);
        }
        for _ in 0..60 {
            ctl.select_by_util(&[0.05, 0.05, 0.05]);
        }
        assert_eq!(ctl.current_khz(big()), 650_000);
        assert_eq!(ctl.current_khz(gpu()), 260_000);
    }

    #[test]
    fn util_selection_respects_max_cap() {
        let mut ctl = DvfsController::exynos9810();
        ctl.set_max_freq(big(), 1_170_000).unwrap();
        for _ in 0..40 {
            ctl.select_by_util(&[1.0, 1.0, 1.0]);
        }
        assert_eq!(ctl.current_khz(big()), 1_170_000);
    }

    #[test]
    fn util_selection_respects_min_cap() {
        let mut ctl = DvfsController::exynos9810();
        ctl.set_min_freq(gpu(), 455_000).unwrap();
        for _ in 0..40 {
            ctl.select_by_util(&[0.0, 0.0, 0.0]);
        }
        assert_eq!(ctl.current_khz(gpu()), 455_000);
    }

    #[test]
    fn pin_freq_collapses_caps_in_both_directions() {
        let mut ctl = DvfsController::exynos9810();
        ctl.pin_freq(big(), 2_314_000).unwrap();
        assert_eq!(ctl.current_khz(big()), 2_314_000);
        // Pin downwards from a high pin.
        ctl.pin_freq(big(), 858_000).unwrap();
        assert_eq!(ctl.current_khz(big()), 858_000);
        for _ in 0..10 {
            ctl.select_by_util(&[1.0, 1.0, 1.0]);
        }
        assert_eq!(
            ctl.current_khz(big()),
            858_000,
            "pinned freq immune to util policy"
        );
    }

    #[test]
    fn reset_caps_unpins() {
        let mut ctl = DvfsController::exynos9810();
        ctl.pin_freq(big(), 858_000).unwrap();
        ctl.reset_caps();
        for _ in 0..40 {
            ctl.select_by_util(&[1.0, 0.0, 0.0]);
        }
        assert_eq!(ctl.current_khz(big()), 2_704_000);
    }

    #[test]
    fn margin_floor_is_one() {
        let mut ctl = DvfsController::exynos9810();
        ctl.set_util_margin(0.2);
        assert_eq!(ctl.util_margin(), 1.0);
    }

    #[test]
    fn short_util_slice_reads_zero_for_missing_domains() {
        let mut ctl = DvfsController::exynos9810();
        for _ in 0..40 {
            ctl.select_by_util(&[1.0]);
        }
        assert_eq!(ctl.current_khz(big()), 2_704_000);
        assert_eq!(ctl.current_khz(gpu()), 260_000);
    }

    #[test]
    fn ceil_level_hz_boundaries() {
        let table = OppTable::exynos9810_gpu();
        assert_eq!(ceil_level_hz(&table, 0.0), 0);
        assert_eq!(ceil_level_hz(&table, 260.0e6), 0);
        assert_eq!(ceil_level_hz(&table, 260.1e6), 1);
        assert_eq!(ceil_level_hz(&table, 1e12), table.len() - 1);
    }
}
