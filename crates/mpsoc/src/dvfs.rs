//! Cluster-wise DVFS control.
//!
//! The controller owns one [`FreqDomain`] per cluster and exposes the two
//! interfaces the paper distinguishes:
//!
//! 1. the *policy caps* (`minfreq`/`maxfreq`) that an application-layer
//!    agent such as Next writes — the hardware then "is free to operate
//!    between the minimum allowed frequency and the set maxfreq" (§IV-A),
//! 2. the kernel's utilisation-tracking frequency selection (the
//!    schedutil policy) that picks the operating point *within* those
//!    caps each scheduling period.

use crate::freq::{ClusterId, FreqDomain, KiloHertz, Opp, OppTable};
use crate::Result;

/// Default schedutil-style headroom: the kernel targets
/// `next_f = 1.25 · f_cur · util`.
pub const DEFAULT_UTIL_MARGIN: f64 = 1.25;

/// Utilisation at which the stock policy boosts straight to the top of
/// the allowed range. Android's schedutil couples with touch/iowait
/// boosting and top-app util clamps that slam the frequency to the
/// policy maximum whenever a cluster stays busy — the "operating
/// frequency remains relatively very high yet generating less FPS"
/// behaviour the paper documents in Fig. 1. The default sits below the
/// `1/margin = 0.8` tracking equilibrium (which ladder quantisation
/// lands anywhere in ≈[0.73, 0.80]), so any cluster that stays busy is
/// boosted while genuinely light load is left alone.
pub const DEFAULT_BOOST_THRESHOLD: f64 = 0.72;

/// DVFS state and policy for all three clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsController {
    domains: [FreqDomain; 3],
    util_margin: f64,
    boost_threshold: f64,
}

impl DvfsController {
    /// Creates a controller from the three per-cluster OPP tables.
    ///
    /// # Panics
    ///
    /// Panics if the tables do not cover exactly the three clusters.
    #[must_use]
    pub fn new(tables: [OppTable; 3]) -> Self {
        let mut slots: [Option<FreqDomain>; 3] = [None, None, None];
        for t in tables {
            let idx = t.cluster().index();
            assert!(
                slots[idx].is_none(),
                "duplicate OPP table for {}",
                t.cluster()
            );
            slots[idx] = Some(FreqDomain::new(t));
        }
        DvfsController {
            domains: slots.map(|s| s.expect("table for every cluster")),
            util_margin: DEFAULT_UTIL_MARGIN,
            boost_threshold: DEFAULT_BOOST_THRESHOLD,
        }
    }

    /// Controller with the Exynos 9810 ladders.
    #[must_use]
    pub fn exynos9810() -> Self {
        DvfsController::new([
            OppTable::exynos9810_big(),
            OppTable::exynos9810_little(),
            OppTable::exynos9810_gpu(),
        ])
    }

    /// The frequency domain of one cluster.
    #[must_use]
    pub fn domain(&self, id: ClusterId) -> &FreqDomain {
        &self.domains[id.index()]
    }

    /// Mutable access to one cluster's frequency domain.
    pub fn domain_mut(&mut self, id: ClusterId) -> &mut FreqDomain {
        &mut self.domains[id.index()]
    }

    /// Current operating points of all clusters, indexed by
    /// [`ClusterId::index`].
    #[must_use]
    pub fn current_opps(&self) -> [Opp; 3] {
        [
            self.domains[0].current(),
            self.domains[1].current(),
            self.domains[2].current(),
        ]
    }

    /// Current frequency of one cluster in kHz.
    #[must_use]
    pub fn current_khz(&self, id: ClusterId) -> KiloHertz {
        self.domain(id).current().freq_khz
    }

    /// Sets the `maxfreq` cap of one cluster (the Next agent's actuator).
    ///
    /// # Errors
    ///
    /// Propagates [`FreqDomain::set_max_freq`] errors.
    pub fn set_max_freq(&mut self, id: ClusterId, freq_khz: KiloHertz) -> Result<()> {
        self.domain_mut(id).set_max_freq(freq_khz)
    }

    /// Sets the `minfreq` cap of one cluster.
    ///
    /// # Errors
    ///
    /// Propagates [`FreqDomain::set_min_freq`] errors.
    pub fn set_min_freq(&mut self, id: ClusterId, freq_khz: KiloHertz) -> Result<()> {
        self.domain_mut(id).set_min_freq(freq_khz)
    }

    /// Pins a cluster to one exact OPP by collapsing both caps onto it
    /// (what a direct-frequency governor such as Int. QoS PM does).
    ///
    /// # Errors
    ///
    /// Returns an error when `freq_khz` is not an OPP of the cluster.
    pub fn pin_freq(&mut self, id: ClusterId, freq_khz: KiloHertz) -> Result<()> {
        let dom = self.domain_mut(id);
        // Order min/max updates so no intermediate state is inverted.
        if freq_khz >= dom.min_cap().freq_khz {
            dom.set_max_freq(freq_khz)?;
            dom.set_min_freq(freq_khz)?;
        } else {
            dom.set_min_freq(freq_khz)?;
            dom.set_max_freq(freq_khz)?;
        }
        Ok(())
    }

    /// Restores full frequency ranges on every cluster.
    pub fn reset_caps(&mut self) {
        for d in &mut self.domains {
            d.reset_caps();
        }
    }

    /// The schedutil headroom multiplier used by
    /// [`DvfsController::select_by_util`].
    #[must_use]
    pub fn util_margin(&self) -> f64 {
        self.util_margin
    }

    /// Overrides the schedutil headroom multiplier.
    pub fn set_util_margin(&mut self, margin: f64) {
        self.util_margin = margin.max(1.0);
    }

    /// Boost threshold of the stock policy (see
    /// [`DEFAULT_BOOST_THRESHOLD`]). Values ≥ 1 disable boosting.
    #[must_use]
    pub fn boost_threshold(&self) -> f64 {
        self.boost_threshold
    }

    /// Overrides the boost threshold (≥ 1 disables boosting).
    pub fn set_boost_threshold(&mut self, threshold: f64) {
        self.boost_threshold = threshold.max(0.0);
    }

    /// Runs one round of utilisation-tracking frequency selection, the
    /// in-kernel policy that operates *within* the caps:
    ///
    /// * a cluster whose utilisation reaches the boost threshold is
    ///   slammed to the top of its allowed range (Android touch/iowait
    ///   boosting — the over-provisioning the paper exploits),
    /// * otherwise the target is `margin · util · f_cur`; ramp-up picks
    ///   the slowest OPP at or above the target, while ramp-down is rate
    ///   limited to one OPP per invocation (the stock policy holds
    ///   frequency after bursts),
    /// * everything is clamped to the policy caps.
    ///
    /// `utils` is indexed by [`ClusterId::index`] and clamped to
    /// `[0, 1]`.
    pub fn select_by_util(&mut self, utils: [f64; 3]) {
        for id in ClusterId::ALL {
            let i = id.index();
            let util = utils[i].clamp(0.0, 1.0);
            let boost = util >= self.boost_threshold;
            let dom = &mut self.domains[i];
            let cur_level = dom.current_level();
            let level = if boost {
                dom.table().len() - 1
            } else {
                let cur_hz = dom.current().freq_hz();
                let target_hz = self.util_margin * util * cur_hz;
                let want = ceil_level_hz(dom.table(), target_hz);
                if want < cur_level {
                    cur_level - 1
                } else {
                    want
                }
            };
            dom.set_level(level).expect("level from table is valid");
        }
    }
}

/// Lowest level whose frequency is at least `target_hz`; the top level
/// when every OPP is below the target.
fn ceil_level_hz(table: &OppTable, target_hz: f64) -> usize {
    table
        .iter()
        .position(|o| o.freq_hz() >= target_hz)
        .unwrap_or(table.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_starts_at_min_levels() {
        let ctl = DvfsController::exynos9810();
        assert_eq!(ctl.current_khz(ClusterId::Big), 650_000);
        assert_eq!(ctl.current_khz(ClusterId::Little), 455_000);
        assert_eq!(ctl.current_khz(ClusterId::Gpu), 260_000);
    }

    #[test]
    fn util_selection_ramps_up_under_load() {
        let mut ctl = DvfsController::exynos9810();
        // Saturated big cluster: repeated selection climbs the ladder to
        // the top.
        for _ in 0..40 {
            ctl.select_by_util([1.0, 0.0, 0.0]);
        }
        assert_eq!(ctl.current_khz(ClusterId::Big), 2_704_000);
        assert_eq!(
            ctl.current_khz(ClusterId::Little),
            455_000,
            "idle cluster stays at floor"
        );
    }

    #[test]
    fn util_selection_ramps_down_when_idle() {
        let mut ctl = DvfsController::exynos9810();
        for _ in 0..40 {
            ctl.select_by_util([1.0, 1.0, 1.0]);
        }
        for _ in 0..60 {
            ctl.select_by_util([0.05, 0.05, 0.05]);
        }
        assert_eq!(ctl.current_khz(ClusterId::Big), 650_000);
        assert_eq!(ctl.current_khz(ClusterId::Gpu), 260_000);
    }

    #[test]
    fn util_selection_respects_max_cap() {
        let mut ctl = DvfsController::exynos9810();
        ctl.set_max_freq(ClusterId::Big, 1_170_000).unwrap();
        for _ in 0..40 {
            ctl.select_by_util([1.0, 1.0, 1.0]);
        }
        assert_eq!(ctl.current_khz(ClusterId::Big), 1_170_000);
    }

    #[test]
    fn util_selection_respects_min_cap() {
        let mut ctl = DvfsController::exynos9810();
        ctl.set_min_freq(ClusterId::Gpu, 455_000).unwrap();
        for _ in 0..40 {
            ctl.select_by_util([0.0, 0.0, 0.0]);
        }
        assert_eq!(ctl.current_khz(ClusterId::Gpu), 455_000);
    }

    #[test]
    fn pin_freq_collapses_caps_in_both_directions() {
        let mut ctl = DvfsController::exynos9810();
        ctl.pin_freq(ClusterId::Big, 2_314_000).unwrap();
        assert_eq!(ctl.current_khz(ClusterId::Big), 2_314_000);
        // Pin downwards from a high pin.
        ctl.pin_freq(ClusterId::Big, 858_000).unwrap();
        assert_eq!(ctl.current_khz(ClusterId::Big), 858_000);
        for _ in 0..10 {
            ctl.select_by_util([1.0, 1.0, 1.0]);
        }
        assert_eq!(
            ctl.current_khz(ClusterId::Big),
            858_000,
            "pinned freq immune to util policy"
        );
    }

    #[test]
    fn reset_caps_unpins() {
        let mut ctl = DvfsController::exynos9810();
        ctl.pin_freq(ClusterId::Big, 858_000).unwrap();
        ctl.reset_caps();
        for _ in 0..40 {
            ctl.select_by_util([1.0, 0.0, 0.0]);
        }
        assert_eq!(ctl.current_khz(ClusterId::Big), 2_704_000);
    }

    #[test]
    fn margin_floor_is_one() {
        let mut ctl = DvfsController::exynos9810();
        ctl.set_util_margin(0.2);
        assert_eq!(ctl.util_margin(), 1.0);
    }

    #[test]
    fn ceil_level_hz_boundaries() {
        let table = OppTable::exynos9810_gpu();
        assert_eq!(ceil_level_hz(&table, 0.0), 0);
        assert_eq!(ceil_level_hz(&table, 260.0e6), 0);
        assert_eq!(ceil_level_hz(&table, 260.1e6), 1);
        assert_eq!(ceil_level_hz(&table, 1e12), table.len() - 1);
    }
}
