use std::fmt;

use crate::freq::{ClusterId, KiloHertz};

/// Error type for all fallible operations in the `mpsoc` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A frequency that is not an entry of the cluster's OPP table was
    /// requested.
    UnknownFrequency {
        /// Cluster the request targeted.
        cluster: ClusterId,
        /// The frequency that was requested, in kHz.
        freq_khz: KiloHertz,
    },
    /// A frequency-level index outside the OPP table was requested.
    LevelOutOfRange {
        /// Cluster the request targeted.
        cluster: ClusterId,
        /// The requested level index.
        level: usize,
        /// Number of levels in the table.
        len: usize,
    },
    /// `minfreq` would exceed `maxfreq` (or vice versa) after the
    /// requested change.
    InvertedFreqRange {
        /// Cluster the request targeted.
        cluster: ClusterId,
        /// Requested minimum frequency in kHz.
        min_khz: KiloHertz,
        /// Requested maximum frequency in kHz.
        max_khz: KiloHertz,
    },
    /// A configuration value failed validation.
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownFrequency { cluster, freq_khz } => {
                write!(
                    f,
                    "frequency {freq_khz} kHz is not an OPP of cluster {cluster}"
                )
            }
            Error::LevelOutOfRange {
                cluster,
                level,
                len,
            } => {
                write!(
                    f,
                    "level {level} out of range for cluster {cluster} ({len} levels)"
                )
            }
            Error::InvertedFreqRange {
                cluster,
                min_khz,
                max_khz,
            } => {
                write!(
                    f,
                    "inverted frequency range for cluster {cluster}: min {min_khz} kHz > max {max_khz} kHz"
                )
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cluster_and_value() {
        let err = Error::UnknownFrequency {
            cluster: ClusterId::Big,
            freq_khz: 123,
        };
        let msg = err.to_string();
        assert!(msg.contains("123"));
        assert!(msg.contains("big"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
