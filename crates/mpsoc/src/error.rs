use std::fmt;

use crate::freq::KiloHertz;

/// Error type for all fallible operations in the `mpsoc` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A frequency that is not an entry of the domain's OPP table was
    /// requested.
    UnknownFrequency {
        /// Name of the DVFS domain the request targeted.
        domain: String,
        /// The frequency that was requested, in kHz.
        freq_khz: KiloHertz,
    },
    /// A frequency-level index outside the OPP table was requested.
    LevelOutOfRange {
        /// Name of the DVFS domain the request targeted.
        domain: String,
        /// The requested level index.
        level: usize,
        /// Number of levels in the table.
        len: usize,
    },
    /// `minfreq` would exceed `maxfreq` (or vice versa) after the
    /// requested change.
    InvertedFreqRange {
        /// Name of the DVFS domain the request targeted.
        domain: String,
        /// Requested minimum frequency in kHz.
        min_khz: KiloHertz,
        /// Requested maximum frequency in kHz.
        max_khz: KiloHertz,
    },
    /// A configuration value failed validation.
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownFrequency { domain, freq_khz } => {
                write!(
                    f,
                    "frequency {freq_khz} kHz is not an OPP of domain {domain}"
                )
            }
            Error::LevelOutOfRange { domain, level, len } => {
                write!(
                    f,
                    "level {level} out of range for domain {domain} ({len} levels)"
                )
            }
            Error::InvertedFreqRange {
                domain,
                min_khz,
                max_khz,
            } => {
                write!(
                    f,
                    "inverted frequency range for domain {domain}: min {min_khz} kHz > max {max_khz} kHz"
                )
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_domain_and_value() {
        let err = Error::UnknownFrequency {
            domain: "big".to_owned(),
            freq_khz: 123,
        };
        let msg = err.to_string();
        assert!(msg.contains("123"));
        assert!(msg.contains("big"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
