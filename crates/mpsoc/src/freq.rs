//! Operating-performance-point (OPP) tables and frequency-domain state.
//!
//! Each DVFS domain of a platform exposes one frequency ladder. The
//! Exynos 9810 ladders below are the exact ones listed in §III-A of the
//! paper:
//!
//! * big (Mongoose 3 × 4): 18 levels, 650–2704 MHz,
//! * LITTLE (Cortex-A55 × 4): 10 levels, 455–1794 MHz,
//! * GPU (Mali-G72 MP18): 6 levels, 260–572 MHz;
//!
//! the `exynos9820_*` ladders describe the Galaxy-S10-class tri-cluster
//! preset (see [`crate::platform::Platform::exynos9820`]).

use crate::{Error, Result};

/// Frequency in kilohertz, the unit Linux cpufreq sysfs uses.
pub type KiloHertz = u32;

/// One operating performance point: a frequency and the supply voltage
/// the rail needs at that frequency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Opp {
    /// Clock frequency in kHz.
    pub freq_khz: KiloHertz,
    /// Supply voltage in volts.
    pub volt_v: f64,
}

impl Opp {
    /// Creates an OPP.
    #[must_use]
    pub fn new(freq_khz: KiloHertz, volt_v: f64) -> Self {
        Opp { freq_khz, volt_v }
    }

    /// Frequency in Hz as a float, convenient for cycle-budget math.
    #[must_use]
    pub fn freq_hz(&self) -> f64 {
        f64::from(self.freq_khz) * 1e3
    }
}

/// An ordered table of OPPs for one DVFS domain (ascending by
/// frequency), labelled with the domain's name for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct OppTable {
    name: String,
    opps: Vec<Opp>,
}

impl OppTable {
    /// Builds a table from `(freq_khz, volt_v)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the table is empty, not
    /// strictly ascending in frequency, or has a non-positive voltage.
    pub fn new(name: &str, opps: Vec<Opp>) -> Result<Self> {
        if opps.is_empty() {
            return Err(Error::InvalidConfig(format!(
                "empty OPP table for domain {name}"
            )));
        }
        for pair in opps.windows(2) {
            if pair[1].freq_khz <= pair[0].freq_khz {
                return Err(Error::InvalidConfig(format!(
                    "OPP table for {name} not strictly ascending at {} kHz",
                    pair[1].freq_khz
                )));
            }
        }
        if opps.iter().any(|o| o.volt_v <= 0.0) {
            return Err(Error::InvalidConfig(format!(
                "non-positive voltage in {name} table"
            )));
        }
        Ok(OppTable {
            name: name.to_owned(),
            opps,
        })
    }

    /// Synthesises a table from a frequency ladder (in MHz, any order)
    /// and a linear V-f curve between `v_min` (slowest OPP) and `v_max`
    /// (fastest OPP).
    ///
    /// The paper lists frequencies but not voltages; commercial mobile
    /// SoCs use close-to-linear V-f curves across the usable range, so a
    /// linear interpolation preserves the convexity of `P(f) ∝ V²f` that
    /// the DVFS trade-off depends on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on an empty ladder or
    /// non-positive/inverted voltage bounds.
    pub fn from_mhz_ladder(name: &str, mhz: &[u32], v_min: f64, v_max: f64) -> Result<Self> {
        if mhz.is_empty() {
            return Err(Error::InvalidConfig(format!("empty ladder for {name}")));
        }
        if v_min <= 0.0 || v_max < v_min {
            return Err(Error::InvalidConfig(format!(
                "invalid voltage bounds [{v_min}, {v_max}] for {name}"
            )));
        }
        let mut sorted: Vec<u32> = mhz.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let lo = f64::from(sorted[0]);
        // qlint::allow(PN01, reason = "the emptiness check above already returned an error")
        let hi = f64::from(*sorted.last().expect("non-empty"));
        let span = (hi - lo).max(1.0);
        let opps = sorted
            .iter()
            .map(|&m| {
                let t = (f64::from(m) - lo) / span;
                Opp::new(m * 1000, v_min + t * (v_max - v_min))
            })
            .collect();
        OppTable::new(name, opps)
    }

    /// The name of the domain this table belongs to.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of frequency levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.opps.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.opps.is_empty()
    }

    /// The OPP at `level` (0 = slowest).
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] if `level >= len()`.
    pub fn opp(&self, level: usize) -> Result<Opp> {
        self.opps.get(level).copied().ok_or(Error::LevelOutOfRange {
            domain: self.name.clone(),
            level,
            len: self.opps.len(),
        })
    }

    /// Index of the exact frequency `freq_khz`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownFrequency`] if the frequency is not an
    /// entry of the table.
    pub fn level_of(&self, freq_khz: KiloHertz) -> Result<usize> {
        self.opps
            .iter()
            .position(|o| o.freq_khz == freq_khz)
            .ok_or(Error::UnknownFrequency {
                domain: self.name.clone(),
                freq_khz,
            })
    }

    /// Highest level whose frequency does not exceed `freq_khz`; level 0
    /// if every entry exceeds it.
    #[must_use]
    pub fn floor_level(&self, freq_khz: KiloHertz) -> usize {
        self.opps
            .iter()
            .rposition(|o| o.freq_khz <= freq_khz)
            .unwrap_or(0)
    }

    /// Slowest OPP.
    #[must_use]
    pub fn min(&self) -> Opp {
        self.opps[0]
    }

    /// Fastest OPP.
    #[must_use]
    pub fn max(&self) -> Opp {
        // qlint::allow(PN01, reason = "construction rejects empty ladders")
        *self.opps.last().expect("table is non-empty")
    }

    /// Iterator over the OPPs, ascending by frequency.
    pub fn iter(&self) -> impl Iterator<Item = &Opp> + '_ {
        self.opps.iter()
    }

    /// The paper's 18-level big-cluster (Mongoose 3) ladder.
    #[must_use]
    pub fn exynos9810_big() -> Self {
        const MHZ: [u32; 18] = [
            650, 741, 858, 962, 1066, 1170, 1261, 1469, 1586, 1690, 1794, 1924, 2002, 2106, 2314,
            2496, 2652, 2704,
        ];
        // qlint::allow(PN01, reason = "compiled-in ladder literal, exercised by the preset tests")
        OppTable::from_mhz_ladder("big", &MHZ, 0.568, 1.092).expect("static ladder valid")
    }

    /// The paper's 10-level LITTLE-cluster (Cortex-A55) ladder.
    #[must_use]
    pub fn exynos9810_little() -> Self {
        const MHZ: [u32; 10] = [455, 598, 715, 832, 949, 1053, 1248, 1456, 1690, 1794];
        // qlint::allow(PN01, reason = "compiled-in ladder literal, exercised by the preset tests")
        OppTable::from_mhz_ladder("little", &MHZ, 0.531, 0.988).expect("static ladder valid")
    }

    /// The paper's 6-level GPU (Mali-G72 MP18) ladder.
    #[must_use]
    pub fn exynos9810_gpu() -> Self {
        const MHZ: [u32; 6] = [260, 299, 338, 455, 546, 572];
        // qlint::allow(PN01, reason = "compiled-in ladder literal, exercised by the preset tests")
        OppTable::from_mhz_ladder("gpu", &MHZ, 0.581, 0.862).expect("static ladder valid")
    }

    /// The 9820-class 16-level big-cluster (2× Exynos M4) ladder.
    #[must_use]
    pub fn exynos9820_big() -> Self {
        const MHZ: [u32; 16] = [
            520, 650, 754, 858, 962, 1066, 1170, 1352, 1560, 1664, 1820, 1976, 2106, 2314, 2496,
            2730,
        ];
        // qlint::allow(PN01, reason = "compiled-in ladder literal, exercised by the preset tests")
        OppTable::from_mhz_ladder("big", &MHZ, 0.558, 1.100).expect("static ladder valid")
    }

    /// The 9820-class 12-level middle-cluster (2× Cortex-A75) ladder.
    #[must_use]
    pub fn exynos9820_mid() -> Self {
        const MHZ: [u32; 12] = [
            520, 650, 754, 858, 1066, 1170, 1352, 1560, 1742, 1950, 2158, 2310,
        ];
        // qlint::allow(PN01, reason = "compiled-in ladder literal, exercised by the preset tests")
        OppTable::from_mhz_ladder("mid", &MHZ, 0.540, 1.020).expect("static ladder valid")
    }

    /// The 9820-class 9-level LITTLE-cluster (4× Cortex-A55) ladder.
    #[must_use]
    pub fn exynos9820_little() -> Self {
        const MHZ: [u32; 9] = [442, 598, 754, 910, 1053, 1248, 1456, 1690, 1950];
        // qlint::allow(PN01, reason = "compiled-in ladder literal, exercised by the preset tests")
        OppTable::from_mhz_ladder("little", &MHZ, 0.525, 0.975).expect("static ladder valid")
    }

    /// The 9820-class 9-level GPU (Mali-G76 MP12) ladder.
    #[must_use]
    pub fn exynos9820_gpu() -> Self {
        const MHZ: [u32; 9] = [260, 325, 377, 433, 481, 545, 598, 650, 702];
        // qlint::allow(PN01, reason = "compiled-in ladder literal, exercised by the preset tests")
        OppTable::from_mhz_ladder("gpu", &MHZ, 0.575, 0.880).expect("static ladder valid")
    }
}

/// Mutable frequency-domain state of one DVFS domain: its OPP table
/// plus the governor-visible `minfreq`/`maxfreq` caps and the current
/// level.
///
/// The current level always lies within `[min_level, max_level]`; setting
/// a tighter cap clamps the current level immediately, mirroring how the
/// kernel's cpufreq core re-evaluates the policy when limits change.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqDomain {
    table: OppTable,
    min_level: usize,
    max_level: usize,
    cur_level: usize,
}

impl FreqDomain {
    /// Creates a domain with the full OPP range available and the current
    /// frequency at the slowest level.
    #[must_use]
    pub fn new(table: OppTable) -> Self {
        let max_level = table.len() - 1;
        FreqDomain {
            table,
            min_level: 0,
            max_level,
            cur_level: 0,
        }
    }

    /// The name of the domain this ladder drives.
    #[must_use]
    pub fn name(&self) -> &str {
        self.table.name()
    }

    /// The underlying OPP table.
    #[must_use]
    pub fn table(&self) -> &OppTable {
        &self.table
    }

    /// Current OPP.
    #[must_use]
    pub fn current(&self) -> Opp {
        // qlint::allow(PN01, reason = "cur_level is only ever set through range-checked setters")
        self.table.opp(self.cur_level).expect("cur_level in range")
    }

    /// Current level index (0 = slowest).
    #[must_use]
    pub fn current_level(&self) -> usize {
        self.cur_level
    }

    /// Lower policy cap as an OPP.
    #[must_use]
    pub fn min_cap(&self) -> Opp {
        // qlint::allow(PN01, reason = "min_level is only ever set through range-checked setters")
        self.table.opp(self.min_level).expect("min_level in range")
    }

    /// Upper policy cap as an OPP.
    #[must_use]
    pub fn max_cap(&self) -> Opp {
        // qlint::allow(PN01, reason = "max_level is only ever set through range-checked setters")
        self.table.opp(self.max_level).expect("max_level in range")
    }

    /// Upper policy cap level index.
    #[must_use]
    pub fn max_cap_level(&self) -> usize {
        self.max_level
    }

    /// Lower policy cap level index.
    #[must_use]
    pub fn min_cap_level(&self) -> usize {
        self.min_level
    }

    /// Sets the current level, clamping into the policy range.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] if `level` is not a table
    /// index (clamping applies only to the policy range, not the table).
    pub fn set_level(&mut self, level: usize) -> Result<()> {
        if level >= self.table.len() {
            return Err(Error::LevelOutOfRange {
                domain: self.name().to_owned(),
                level,
                len: self.table.len(),
            });
        }
        self.cur_level = level.clamp(self.min_level, self.max_level);
        Ok(())
    }

    /// Hardware override: sets the current level ignoring the policy
    /// caps (used by the thermal throttler, which outranks software
    /// policy exactly as the kernel thermal framework outranks
    /// userspace governors).
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] if `level` is not a table
    /// index.
    pub fn force_level(&mut self, level: usize) -> Result<()> {
        if level >= self.table.len() {
            return Err(Error::LevelOutOfRange {
                domain: self.name().to_owned(),
                level,
                len: self.table.len(),
            });
        }
        self.cur_level = level;
        Ok(())
    }

    /// Sets the `maxfreq` policy cap to the exact OPP `freq_khz`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownFrequency`] for a non-OPP frequency and
    /// [`Error::InvertedFreqRange`] if the cap would fall below
    /// `minfreq`.
    pub fn set_max_freq(&mut self, freq_khz: KiloHertz) -> Result<()> {
        let level = self.table.level_of(freq_khz)?;
        if level < self.min_level {
            return Err(Error::InvertedFreqRange {
                domain: self.name().to_owned(),
                min_khz: self.min_cap().freq_khz,
                max_khz: freq_khz,
            });
        }
        self.max_level = level;
        self.cur_level = self.cur_level.min(self.max_level);
        Ok(())
    }

    /// Sets the `minfreq` policy cap to the exact OPP `freq_khz`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownFrequency`] for a non-OPP frequency and
    /// [`Error::InvertedFreqRange`] if the cap would rise above
    /// `maxfreq`.
    pub fn set_min_freq(&mut self, freq_khz: KiloHertz) -> Result<()> {
        let level = self.table.level_of(freq_khz)?;
        if level > self.max_level {
            return Err(Error::InvertedFreqRange {
                domain: self.name().to_owned(),
                min_khz: freq_khz,
                max_khz: self.max_cap().freq_khz,
            });
        }
        self.min_level = level;
        self.cur_level = self.cur_level.max(self.min_level);
        Ok(())
    }

    /// Moves the `maxfreq` cap one ladder step up, saturating at the top.
    /// Returns the new cap.
    pub fn step_max_up(&mut self) -> Opp {
        self.max_level = (self.max_level + 1).min(self.table.len() - 1);
        self.max_cap()
    }

    /// Moves the `maxfreq` cap one ladder step down, saturating at the
    /// `minfreq` cap. Returns the new cap. The current level is clamped.
    pub fn step_max_down(&mut self) -> Opp {
        self.max_level = self.max_level.saturating_sub(1).max(self.min_level);
        self.cur_level = self.cur_level.min(self.max_level);
        self.max_cap()
    }

    /// Resets both caps to the full table range.
    pub fn reset_caps(&mut self) {
        self.min_level = 0;
        self.max_level = self.table.len() - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladders_have_exact_sizes_and_ranges() {
        let big = OppTable::exynos9810_big();
        assert_eq!(big.len(), 18);
        assert_eq!(big.min().freq_khz, 650_000);
        assert_eq!(big.max().freq_khz, 2_704_000);

        let little = OppTable::exynos9810_little();
        assert_eq!(little.len(), 10);
        assert_eq!(little.min().freq_khz, 455_000);
        assert_eq!(little.max().freq_khz, 1_794_000);

        let gpu = OppTable::exynos9810_gpu();
        assert_eq!(gpu.len(), 6);
        assert_eq!(gpu.min().freq_khz, 260_000);
        assert_eq!(gpu.max().freq_khz, 572_000);
    }

    #[test]
    fn exynos9820_ladders_have_expected_shapes() {
        let big = OppTable::exynos9820_big();
        assert_eq!(big.len(), 16);
        assert_eq!(big.max().freq_khz, 2_730_000);
        let mid = OppTable::exynos9820_mid();
        assert_eq!(mid.len(), 12);
        assert_eq!(mid.max().freq_khz, 2_310_000);
        let little = OppTable::exynos9820_little();
        assert_eq!(little.len(), 9);
        assert_eq!(little.max().freq_khz, 1_950_000);
        let gpu = OppTable::exynos9820_gpu();
        assert_eq!(gpu.len(), 9);
        assert_eq!(gpu.max().freq_khz, 702_000);
    }

    #[test]
    fn voltages_rise_with_frequency() {
        for table in [
            OppTable::exynos9810_big(),
            OppTable::exynos9810_little(),
            OppTable::exynos9810_gpu(),
            OppTable::exynos9820_big(),
            OppTable::exynos9820_mid(),
            OppTable::exynos9820_little(),
            OppTable::exynos9820_gpu(),
        ] {
            let volts: Vec<f64> = table.iter().map(|o| o.volt_v).collect();
            for pair in volts.windows(2) {
                assert!(
                    pair[1] > pair[0],
                    "voltage must rise with frequency in {table:?}"
                );
            }
        }
    }

    #[test]
    fn level_of_finds_each_entry() {
        let table = OppTable::exynos9810_big();
        for (idx, opp) in table.iter().enumerate() {
            assert_eq!(table.level_of(opp.freq_khz).unwrap(), idx);
        }
        assert!(matches!(
            table.level_of(1),
            Err(Error::UnknownFrequency { .. })
        ));
    }

    #[test]
    fn floor_level_rounds_down() {
        let table = OppTable::exynos9810_gpu();
        assert_eq!(table.floor_level(260_000), 0);
        assert_eq!(table.floor_level(300_000), 1); // 299 MHz
        assert_eq!(table.floor_level(999_999_999), table.len() - 1);
        assert_eq!(table.floor_level(1), 0);
    }

    #[test]
    fn empty_and_unsorted_tables_rejected() {
        assert!(OppTable::new("big", vec![]).is_err());
        let unsorted = vec![Opp::new(2_000_000, 1.0), Opp::new(1_000_000, 0.8)];
        assert!(OppTable::new("big", unsorted).is_err());
        let dup = vec![Opp::new(1_000_000, 0.8), Opp::new(1_000_000, 0.9)];
        assert!(OppTable::new("big", dup).is_err());
    }

    #[test]
    fn domain_caps_clamp_current_level() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_big());
        dom.set_level(17).unwrap();
        assert_eq!(dom.current().freq_khz, 2_704_000);
        dom.set_max_freq(1_794_000).unwrap();
        assert_eq!(
            dom.current().freq_khz,
            1_794_000,
            "current must clamp to new cap"
        );
        dom.set_level(17).unwrap();
        assert_eq!(
            dom.current().freq_khz,
            1_794_000,
            "requests above cap clamp"
        );
    }

    #[test]
    fn domain_min_cap_raises_current() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_little());
        assert_eq!(dom.current().freq_khz, 455_000);
        dom.set_min_freq(949_000).unwrap();
        assert_eq!(dom.current().freq_khz, 949_000);
    }

    #[test]
    fn inverted_ranges_rejected() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_little());
        dom.set_max_freq(949_000).unwrap();
        assert!(matches!(
            dom.set_min_freq(1_794_000),
            Err(Error::InvertedFreqRange { .. })
        ));
        dom.set_min_freq(949_000).unwrap();
        assert!(matches!(
            dom.set_max_freq(455_000),
            Err(Error::InvertedFreqRange { .. })
        ));
    }

    #[test]
    fn step_max_saturates() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_gpu());
        for _ in 0..20 {
            dom.step_max_down();
        }
        assert_eq!(dom.max_cap().freq_khz, 260_000);
        for _ in 0..20 {
            dom.step_max_up();
        }
        assert_eq!(dom.max_cap().freq_khz, 572_000);
    }

    #[test]
    fn step_max_down_respects_min_cap() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_gpu());
        dom.set_min_freq(338_000).unwrap();
        for _ in 0..10 {
            dom.step_max_down();
        }
        assert_eq!(dom.max_cap().freq_khz, 338_000);
    }

    #[test]
    fn reset_caps_restores_full_range() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_big());
        dom.set_max_freq(962_000).unwrap();
        dom.set_min_freq(858_000).unwrap();
        dom.reset_caps();
        assert_eq!(dom.min_cap().freq_khz, 650_000);
        assert_eq!(dom.max_cap().freq_khz, 2_704_000);
    }

    #[test]
    fn tables_carry_domain_names() {
        assert_eq!(OppTable::exynos9810_big().name(), "big");
        assert_eq!(OppTable::exynos9820_mid().name(), "mid");
        assert_eq!(FreqDomain::new(OppTable::exynos9810_gpu()).name(), "gpu");
    }
}
