//! Operating-performance-point (OPP) tables and frequency-domain state.
//!
//! The Exynos 9810 exposes cluster-wise DVFS only: one frequency per
//! cluster, chosen from a fixed ladder. The ladders below are the exact
//! ones listed in §III-A of the paper:
//!
//! * big (Mongoose 3 × 4): 18 levels, 650–2704 MHz,
//! * LITTLE (Cortex-A55 × 4): 10 levels, 455–1794 MHz,
//! * GPU (Mali-G72 MP18): 6 levels, 260–572 MHz.

use std::fmt;

use crate::{Error, Result};

/// Frequency in kilohertz, the unit Linux cpufreq sysfs uses.
pub type KiloHertz = u32;

/// Identifies one of the three PE clusters of the Exynos 9810.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClusterId {
    /// The 4× Mongoose 3 big CPU cluster.
    Big,
    /// The 4× Cortex-A55 LITTLE CPU cluster.
    Little,
    /// The Mali-G72 MP18 GPU.
    Gpu,
}

impl ClusterId {
    /// All clusters in a fixed, deterministic order.
    pub const ALL: [ClusterId; 3] = [ClusterId::Big, ClusterId::Little, ClusterId::Gpu];

    /// Stable index of the cluster within [`ClusterId::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ClusterId::Big => 0,
            ClusterId::Little => 1,
            ClusterId::Gpu => 2,
        }
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ClusterId::Big => "big",
            ClusterId::Little => "little",
            ClusterId::Gpu => "gpu",
        };
        f.write_str(name)
    }
}

/// One operating performance point: a frequency and the supply voltage
/// the rail needs at that frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Opp {
    /// Clock frequency in kHz.
    pub freq_khz: KiloHertz,
    /// Supply voltage in volts.
    pub volt_v: f64,
}

impl Opp {
    /// Creates an OPP.
    #[must_use]
    pub fn new(freq_khz: KiloHertz, volt_v: f64) -> Self {
        Opp { freq_khz, volt_v }
    }

    /// Frequency in Hz as a float, convenient for cycle-budget math.
    #[must_use]
    pub fn freq_hz(&self) -> f64 {
        f64::from(self.freq_khz) * 1e3
    }
}

/// An ordered table of OPPs for one cluster (ascending by frequency).
#[derive(Debug, Clone, PartialEq)]
pub struct OppTable {
    cluster: ClusterId,
    opps: Vec<Opp>,
}

impl OppTable {
    /// Builds a table from `(freq_khz, volt_v)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the table is empty, not
    /// strictly ascending in frequency, or has a non-positive voltage.
    pub fn new(cluster: ClusterId, opps: Vec<Opp>) -> Result<Self> {
        if opps.is_empty() {
            return Err(Error::InvalidConfig(format!(
                "empty OPP table for cluster {cluster}"
            )));
        }
        for pair in opps.windows(2) {
            if pair[1].freq_khz <= pair[0].freq_khz {
                return Err(Error::InvalidConfig(format!(
                    "OPP table for {cluster} not strictly ascending at {} kHz",
                    pair[1].freq_khz
                )));
            }
        }
        if opps.iter().any(|o| o.volt_v <= 0.0) {
            return Err(Error::InvalidConfig(format!(
                "non-positive voltage in {cluster} table"
            )));
        }
        Ok(OppTable { cluster, opps })
    }

    /// Synthesises a table from a frequency ladder (in MHz, any order)
    /// and a linear V-f curve between `v_min` (slowest OPP) and `v_max`
    /// (fastest OPP).
    ///
    /// The paper lists frequencies but not voltages; commercial mobile
    /// SoCs use close-to-linear V-f curves across the usable range, so a
    /// linear interpolation preserves the convexity of `P(f) ∝ V²f` that
    /// the DVFS trade-off depends on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on an empty ladder or
    /// non-positive/inverted voltage bounds.
    pub fn from_mhz_ladder(
        cluster: ClusterId,
        mhz: &[u32],
        v_min: f64,
        v_max: f64,
    ) -> Result<Self> {
        if mhz.is_empty() {
            return Err(Error::InvalidConfig(format!("empty ladder for {cluster}")));
        }
        if v_min <= 0.0 || v_max < v_min {
            return Err(Error::InvalidConfig(format!(
                "invalid voltage bounds [{v_min}, {v_max}] for {cluster}"
            )));
        }
        let mut sorted: Vec<u32> = mhz.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let lo = f64::from(sorted[0]);
        let hi = f64::from(*sorted.last().expect("non-empty"));
        let span = (hi - lo).max(1.0);
        let opps = sorted
            .iter()
            .map(|&m| {
                let t = (f64::from(m) - lo) / span;
                Opp::new(m * 1000, v_min + t * (v_max - v_min))
            })
            .collect();
        OppTable::new(cluster, opps)
    }

    /// The cluster this table belongs to.
    #[must_use]
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// Number of frequency levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.opps.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.opps.is_empty()
    }

    /// The OPP at `level` (0 = slowest).
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] if `level >= len()`.
    pub fn opp(&self, level: usize) -> Result<Opp> {
        self.opps.get(level).copied().ok_or(Error::LevelOutOfRange {
            cluster: self.cluster,
            level,
            len: self.opps.len(),
        })
    }

    /// Index of the exact frequency `freq_khz`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownFrequency`] if the frequency is not an
    /// entry of the table.
    pub fn level_of(&self, freq_khz: KiloHertz) -> Result<usize> {
        self.opps
            .iter()
            .position(|o| o.freq_khz == freq_khz)
            .ok_or(Error::UnknownFrequency {
                cluster: self.cluster,
                freq_khz,
            })
    }

    /// Highest level whose frequency does not exceed `freq_khz`; level 0
    /// if every entry exceeds it.
    #[must_use]
    pub fn floor_level(&self, freq_khz: KiloHertz) -> usize {
        self.opps
            .iter()
            .rposition(|o| o.freq_khz <= freq_khz)
            .unwrap_or(0)
    }

    /// Slowest OPP.
    #[must_use]
    pub fn min(&self) -> Opp {
        self.opps[0]
    }

    /// Fastest OPP.
    #[must_use]
    pub fn max(&self) -> Opp {
        *self.opps.last().expect("table is non-empty")
    }

    /// Iterator over the OPPs, ascending by frequency.
    pub fn iter(&self) -> impl Iterator<Item = &Opp> + '_ {
        self.opps.iter()
    }

    /// The paper's 18-level big-cluster (Mongoose 3) ladder.
    #[must_use]
    pub fn exynos9810_big() -> Self {
        const MHZ: [u32; 18] = [
            650, 741, 858, 962, 1066, 1170, 1261, 1469, 1586, 1690, 1794, 1924, 2002, 2106, 2314,
            2496, 2652, 2704,
        ];
        OppTable::from_mhz_ladder(ClusterId::Big, &MHZ, 0.568, 1.092).expect("static ladder valid")
    }

    /// The paper's 10-level LITTLE-cluster (Cortex-A55) ladder.
    #[must_use]
    pub fn exynos9810_little() -> Self {
        const MHZ: [u32; 10] = [455, 598, 715, 832, 949, 1053, 1248, 1456, 1690, 1794];
        OppTable::from_mhz_ladder(ClusterId::Little, &MHZ, 0.531, 0.988)
            .expect("static ladder valid")
    }

    /// The paper's 6-level GPU (Mali-G72 MP18) ladder.
    #[must_use]
    pub fn exynos9810_gpu() -> Self {
        const MHZ: [u32; 6] = [260, 299, 338, 455, 546, 572];
        OppTable::from_mhz_ladder(ClusterId::Gpu, &MHZ, 0.581, 0.862).expect("static ladder valid")
    }
}

/// Mutable frequency-domain state of one cluster: its OPP table plus the
/// governor-visible `minfreq`/`maxfreq` caps and the current level.
///
/// The current level always lies within `[min_level, max_level]`; setting
/// a tighter cap clamps the current level immediately, mirroring how the
/// kernel's cpufreq core re-evaluates the policy when limits change.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqDomain {
    table: OppTable,
    min_level: usize,
    max_level: usize,
    cur_level: usize,
}

impl FreqDomain {
    /// Creates a domain with the full OPP range available and the current
    /// frequency at the slowest level.
    #[must_use]
    pub fn new(table: OppTable) -> Self {
        let max_level = table.len() - 1;
        FreqDomain {
            table,
            min_level: 0,
            max_level,
            cur_level: 0,
        }
    }

    /// The cluster this domain drives.
    #[must_use]
    pub fn cluster(&self) -> ClusterId {
        self.table.cluster()
    }

    /// The underlying OPP table.
    #[must_use]
    pub fn table(&self) -> &OppTable {
        &self.table
    }

    /// Current OPP.
    #[must_use]
    pub fn current(&self) -> Opp {
        self.table.opp(self.cur_level).expect("cur_level in range")
    }

    /// Current level index (0 = slowest).
    #[must_use]
    pub fn current_level(&self) -> usize {
        self.cur_level
    }

    /// Lower policy cap as an OPP.
    #[must_use]
    pub fn min_cap(&self) -> Opp {
        self.table.opp(self.min_level).expect("min_level in range")
    }

    /// Upper policy cap as an OPP.
    #[must_use]
    pub fn max_cap(&self) -> Opp {
        self.table.opp(self.max_level).expect("max_level in range")
    }

    /// Upper policy cap level index.
    #[must_use]
    pub fn max_cap_level(&self) -> usize {
        self.max_level
    }

    /// Lower policy cap level index.
    #[must_use]
    pub fn min_cap_level(&self) -> usize {
        self.min_level
    }

    /// Sets the current level, clamping into the policy range.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] if `level` is not a table
    /// index (clamping applies only to the policy range, not the table).
    pub fn set_level(&mut self, level: usize) -> Result<()> {
        if level >= self.table.len() {
            return Err(Error::LevelOutOfRange {
                cluster: self.cluster(),
                level,
                len: self.table.len(),
            });
        }
        self.cur_level = level.clamp(self.min_level, self.max_level);
        Ok(())
    }

    /// Hardware override: sets the current level ignoring the policy
    /// caps (used by the thermal throttler, which outranks software
    /// policy exactly as the kernel thermal framework outranks
    /// userspace governors).
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] if `level` is not a table
    /// index.
    pub fn force_level(&mut self, level: usize) -> Result<()> {
        if level >= self.table.len() {
            return Err(Error::LevelOutOfRange {
                cluster: self.cluster(),
                level,
                len: self.table.len(),
            });
        }
        self.cur_level = level;
        Ok(())
    }

    /// Sets the `maxfreq` policy cap to the exact OPP `freq_khz`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownFrequency`] for a non-OPP frequency and
    /// [`Error::InvertedFreqRange`] if the cap would fall below
    /// `minfreq`.
    pub fn set_max_freq(&mut self, freq_khz: KiloHertz) -> Result<()> {
        let level = self.table.level_of(freq_khz)?;
        if level < self.min_level {
            return Err(Error::InvertedFreqRange {
                cluster: self.cluster(),
                min_khz: self.min_cap().freq_khz,
                max_khz: freq_khz,
            });
        }
        self.max_level = level;
        self.cur_level = self.cur_level.min(self.max_level);
        Ok(())
    }

    /// Sets the `minfreq` policy cap to the exact OPP `freq_khz`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownFrequency`] for a non-OPP frequency and
    /// [`Error::InvertedFreqRange`] if the cap would rise above
    /// `maxfreq`.
    pub fn set_min_freq(&mut self, freq_khz: KiloHertz) -> Result<()> {
        let level = self.table.level_of(freq_khz)?;
        if level > self.max_level {
            return Err(Error::InvertedFreqRange {
                cluster: self.cluster(),
                min_khz: freq_khz,
                max_khz: self.max_cap().freq_khz,
            });
        }
        self.min_level = level;
        self.cur_level = self.cur_level.max(self.min_level);
        Ok(())
    }

    /// Moves the `maxfreq` cap one ladder step up, saturating at the top.
    /// Returns the new cap.
    pub fn step_max_up(&mut self) -> Opp {
        self.max_level = (self.max_level + 1).min(self.table.len() - 1);
        self.max_cap()
    }

    /// Moves the `maxfreq` cap one ladder step down, saturating at the
    /// `minfreq` cap. Returns the new cap. The current level is clamped.
    pub fn step_max_down(&mut self) -> Opp {
        self.max_level = self.max_level.saturating_sub(1).max(self.min_level);
        self.cur_level = self.cur_level.min(self.max_level);
        self.max_cap()
    }

    /// Resets both caps to the full table range.
    pub fn reset_caps(&mut self) {
        self.min_level = 0;
        self.max_level = self.table.len() - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladders_have_exact_sizes_and_ranges() {
        let big = OppTable::exynos9810_big();
        assert_eq!(big.len(), 18);
        assert_eq!(big.min().freq_khz, 650_000);
        assert_eq!(big.max().freq_khz, 2_704_000);

        let little = OppTable::exynos9810_little();
        assert_eq!(little.len(), 10);
        assert_eq!(little.min().freq_khz, 455_000);
        assert_eq!(little.max().freq_khz, 1_794_000);

        let gpu = OppTable::exynos9810_gpu();
        assert_eq!(gpu.len(), 6);
        assert_eq!(gpu.min().freq_khz, 260_000);
        assert_eq!(gpu.max().freq_khz, 572_000);
    }

    #[test]
    fn voltages_rise_with_frequency() {
        for table in [
            OppTable::exynos9810_big(),
            OppTable::exynos9810_little(),
            OppTable::exynos9810_gpu(),
        ] {
            let volts: Vec<f64> = table.iter().map(|o| o.volt_v).collect();
            for pair in volts.windows(2) {
                assert!(
                    pair[1] > pair[0],
                    "voltage must rise with frequency in {table:?}"
                );
            }
        }
    }

    #[test]
    fn level_of_finds_each_entry() {
        let table = OppTable::exynos9810_big();
        for (idx, opp) in table.iter().enumerate() {
            assert_eq!(table.level_of(opp.freq_khz).unwrap(), idx);
        }
        assert!(matches!(
            table.level_of(1),
            Err(Error::UnknownFrequency { .. })
        ));
    }

    #[test]
    fn floor_level_rounds_down() {
        let table = OppTable::exynos9810_gpu();
        assert_eq!(table.floor_level(260_000), 0);
        assert_eq!(table.floor_level(300_000), 1); // 299 MHz
        assert_eq!(table.floor_level(999_999_999), table.len() - 1);
        assert_eq!(table.floor_level(1), 0);
    }

    #[test]
    fn empty_and_unsorted_tables_rejected() {
        assert!(OppTable::new(ClusterId::Big, vec![]).is_err());
        let unsorted = vec![Opp::new(2_000_000, 1.0), Opp::new(1_000_000, 0.8)];
        assert!(OppTable::new(ClusterId::Big, unsorted).is_err());
        let dup = vec![Opp::new(1_000_000, 0.8), Opp::new(1_000_000, 0.9)];
        assert!(OppTable::new(ClusterId::Big, dup).is_err());
    }

    #[test]
    fn domain_caps_clamp_current_level() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_big());
        dom.set_level(17).unwrap();
        assert_eq!(dom.current().freq_khz, 2_704_000);
        dom.set_max_freq(1_794_000).unwrap();
        assert_eq!(
            dom.current().freq_khz,
            1_794_000,
            "current must clamp to new cap"
        );
        dom.set_level(17).unwrap();
        assert_eq!(
            dom.current().freq_khz,
            1_794_000,
            "requests above cap clamp"
        );
    }

    #[test]
    fn domain_min_cap_raises_current() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_little());
        assert_eq!(dom.current().freq_khz, 455_000);
        dom.set_min_freq(949_000).unwrap();
        assert_eq!(dom.current().freq_khz, 949_000);
    }

    #[test]
    fn inverted_ranges_rejected() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_little());
        dom.set_max_freq(949_000).unwrap();
        assert!(matches!(
            dom.set_min_freq(1_794_000),
            Err(Error::InvertedFreqRange { .. })
        ));
        dom.set_min_freq(949_000).unwrap();
        assert!(matches!(
            dom.set_max_freq(455_000),
            Err(Error::InvertedFreqRange { .. })
        ));
    }

    #[test]
    fn step_max_saturates() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_gpu());
        for _ in 0..20 {
            dom.step_max_down();
        }
        assert_eq!(dom.max_cap().freq_khz, 260_000);
        for _ in 0..20 {
            dom.step_max_up();
        }
        assert_eq!(dom.max_cap().freq_khz, 572_000);
    }

    #[test]
    fn step_max_down_respects_min_cap() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_gpu());
        dom.set_min_freq(338_000).unwrap();
        for _ in 0..10 {
            dom.step_max_down();
        }
        assert_eq!(dom.max_cap().freq_khz, 338_000);
    }

    #[test]
    fn reset_caps_restores_full_range() {
        let mut dom = FreqDomain::new(OppTable::exynos9810_big());
        dom.set_max_freq(962_000).unwrap();
        dom.set_min_freq(858_000).unwrap();
        dom.reset_caps();
        assert_eq!(dom.min_cap().freq_khz, 650_000);
        assert_eq!(dom.max_cap().freq_khz, 2_704_000);
    }

    #[test]
    fn cluster_display_and_index() {
        assert_eq!(ClusterId::Big.to_string(), "big");
        assert_eq!(ClusterId::Little.to_string(), "little");
        assert_eq!(ClusterId::Gpu.to_string(), "gpu");
        for (i, c) in ClusterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
