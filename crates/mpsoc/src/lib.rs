//! Simulated CPU-GPU mobile MPSoC platforms, modelled after the Samsung
//! Exynos 9810 used by the DATE 2020 paper *"User Interaction Aware
//! Reinforcement Learning for Power and Thermal Efficiency of CPU-GPU
//! Mobile MPSoCs"* (Dey et al.) — generalised to any number of DVFS
//! domains through [`platform::Platform`] descriptors.
//!
//! The crate provides everything a DVFS governor can observe and actuate
//! on the real device:
//!
//! * [`platform`] — the platform descriptor: an ordered registry of
//!   named DVFS domains (OPP ladder, power model, thermal coupling,
//!   `cpu`/`gpu` role, workload-channel mapping) plus the two shipped
//!   presets (Exynos 9810, `m = 3`; Exynos-9820-class, `m = 4`),
//! * [`freq`] — per-domain operating-performance-point (OPP) tables
//!   with the paper's exact frequency ladders,
//! * [`power`] — dynamic `C·V²·f` plus temperature-dependent leakage
//!   power,
//! * [`thermal`] — a lumped RC thermal network with per-die, board and
//!   skin nodes and the phone's sensor layout (hot-spot sensor plus a
//!   "virtual" whole-device sensor),
//! * [`perf`] — a cycle-budget frame execution model over three
//!   platform-independent workload channels,
//! * [`vsync`] — 60 Hz VSync with triple buffering and frame-drop
//!   semantics,
//! * [`dvfs`] — domain-wise DVFS control (`minfreq`/`maxfreq` caps, as a
//!   governor in the Android application layer would set them),
//! * [`soc`] — the assembled system-on-chip with a `tick(dt)` simulation
//!   step,
//! * [`batch`] — a structure-of-arrays batch of SoCs stepped in
//!   lockstep through the same physics kernel (bit-identical to the
//!   scalar path, lane loops vectorizable).
//!
//! # Example
//!
//! ```
//! use mpsoc::{DomainId, Soc, SocConfig, perf::FrameDemand};
//!
//! let mut soc = Soc::new(SocConfig::exynos9810());
//! // Cap the big cluster at 1794 MHz the way the Next agent would.
//! let big = soc.platform().domain_named("big").unwrap();
//! soc.dvfs_mut().set_max_freq(big, 1_794_000)?;
//! // Run 100 ms of a moderate workload.
//! let demand = FrameDemand::new(4.0e6, 2.0e6, 8.0e6);
//! let out = soc.tick(0.1, &demand);
//! assert!(out.power_w > 0.0);
//! assert_eq!(big, DomainId::new(0));
//! # Ok::<(), mpsoc::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dvfs;
pub mod freq;
pub mod perf;
pub mod platform;
pub mod power;
pub mod soc;
pub mod thermal;
pub mod throttle;
pub mod vsync;

mod error;

pub use batch::SocBatch;
pub use dvfs::DvfsController;
pub use error::Error;
pub use freq::{FreqDomain, KiloHertz, Opp, OppTable};
pub use perf::{Channel, FrameDemand};
pub use platform::{DomainId, DomainRole, DomainSpec, PerDomain, Platform, MAX_DOMAINS};
pub use soc::{Soc, SocConfig, SocState, TickOutput};
pub use thermal::{ThermalNetwork, DEFAULT_AMBIENT_C};
pub use throttle::{ThrottleConfig, Throttler};
pub use vsync::VsyncPipeline;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
