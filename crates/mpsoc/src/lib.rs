//! Simulated CPU-GPU mobile MPSoC platform modelled on the Samsung
//! Exynos 9810 used by the DATE 2020 paper *"User Interaction Aware
//! Reinforcement Learning for Power and Thermal Efficiency of CPU-GPU
//! Mobile MPSoCs"* (Dey et al.).
//!
//! The crate provides everything a DVFS governor can observe and actuate
//! on the real device:
//!
//! * [`freq`] — per-cluster operating-performance-point (OPP) tables with
//!   the paper's exact frequency ladders (18 big, 10 LITTLE, 6 GPU
//!   levels),
//! * [`power`] — dynamic `C·V²·f` plus temperature-dependent leakage
//!   power,
//! * [`thermal`] — a lumped RC thermal network with big/LITTLE/GPU/board/
//!   skin nodes and the Note 9's sensor layout (big-cluster sensor plus a
//!   "virtual" whole-device sensor),
//! * [`perf`] — a cycle-budget frame execution model,
//! * [`vsync`] — 60 Hz VSync with triple buffering and frame-drop
//!   semantics,
//! * [`dvfs`] — cluster-wise DVFS control (`minfreq`/`maxfreq` caps, as a
//!   governor in the Android application layer would set them),
//! * [`soc`] — the assembled system-on-chip with a `tick(dt)` simulation
//!   step.
//!
//! # Example
//!
//! ```
//! use mpsoc::{Soc, SocConfig, ClusterId, perf::FrameDemand};
//!
//! let mut soc = Soc::new(SocConfig::exynos9810());
//! // Cap the big cluster at 1794 MHz the way the Next agent would.
//! soc.dvfs_mut().set_max_freq(ClusterId::Big, 1_794_000)?;
//! // Run 100 ms of a moderate workload.
//! let demand = FrameDemand::new(4.0e6, 2.0e6, 8.0e6);
//! let out = soc.tick(0.1, &demand);
//! assert!(out.power_w > 0.0);
//! # Ok::<(), mpsoc::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dvfs;
pub mod freq;
pub mod perf;
pub mod power;
pub mod soc;
pub mod thermal;
pub mod throttle;
pub mod vsync;

mod error;

pub use dvfs::DvfsController;
pub use error::Error;
pub use freq::{ClusterId, FreqDomain, KiloHertz, Opp, OppTable};
pub use perf::FrameDemand;
pub use soc::{Soc, SocConfig, SocState, TickOutput};
pub use thermal::{SensorId, ThermalNetwork};
pub use throttle::{ThrottleConfig, Throttler};
pub use vsync::VsyncPipeline;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
