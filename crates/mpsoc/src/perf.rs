//! Cycle-budget frame execution model.
//!
//! Every UI/game frame costs a number of *effective cycles* on each
//! cluster (IPC and core-level parallelism are folded into the cycle
//! count, which is how trace-driven mobile performance models are usually
//! calibrated). On top of the per-frame cost, an application demands
//! *background* cycles per second — audio decode, network, game AI —
//! that consume capacity without producing frames. This is what makes
//! the paper's Spotify observation possible: FPS near zero while the
//! CPUs are busy and clocked high (§I, Fig. 1).
//!
//! Rendering is pipelined in the usual Android way: the CPU (big then
//! LITTLE stage) prepares frame *N+1* while the GPU draws frame *N*, so
//! the steady-state frame period is
//! `max(t_big + t_little, t_gpu)`.

use crate::freq::{ClusterId, Opp};

/// Work demanded by the running application over a simulation interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameDemand {
    /// Effective cycles each frame costs per cluster
    /// (indexed by [`ClusterId::index`]).
    pub frame_cycles: [f64; 3],
    /// Background (non-frame) cycles per second per cluster.
    pub background_hz: [f64; 3],
    /// Native content pacing in frames per second (0 = unpaced). Video
    /// players present at the content's native rate (24/30 FPS)
    /// regardless of how fast the hardware could render.
    pub pacing_hz: f64,
}

impl FrameDemand {
    /// Demand with per-frame costs only (no background work).
    #[must_use]
    pub fn new(big_cycles: f64, little_cycles: f64, gpu_cycles: f64) -> Self {
        FrameDemand {
            frame_cycles: [big_cycles, little_cycles, gpu_cycles],
            background_hz: [0.0; 3],
            pacing_hz: 0.0,
        }
    }

    /// Adds background cycles per second on each cluster.
    #[must_use]
    pub fn with_background(mut self, big_hz: f64, little_hz: f64, gpu_hz: f64) -> Self {
        self.background_hz = [big_hz, little_hz, gpu_hz];
        self
    }

    /// Caps frame production at the content's native rate (video).
    #[must_use]
    pub fn with_pacing(mut self, pacing_hz: f64) -> Self {
        self.pacing_hz = pacing_hz.max(0.0);
        self
    }

    /// True when the demand produces no frames (all per-frame costs are
    /// zero); the display then repeats the front buffer and measured FPS
    /// drops to zero.
    #[must_use]
    pub fn is_frameless(&self) -> bool {
        self.frame_cycles.iter().all(|&c| c <= 0.0)
    }

    /// Per-frame cycles of one cluster.
    #[must_use]
    pub fn frame_cycles_of(&self, id: ClusterId) -> f64 {
        self.frame_cycles[id.index()]
    }

    /// Background cycles per second of one cluster.
    #[must_use]
    pub fn background_hz_of(&self, id: ClusterId) -> f64 {
        self.background_hz[id.index()]
    }

    /// Scales every per-frame and background cost by `k` (≥ 0); the
    /// pacing rate is a content property and does not scale.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        let k = k.max(0.0);
        FrameDemand {
            frame_cycles: self.frame_cycles.map(|c| c * k),
            background_hz: self.background_hz.map(|c| c * k),
            pacing_hz: self.pacing_hz,
        }
    }
}

/// Result of evaluating a demand against a set of operating points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionPlan {
    /// Steady-state frame period in seconds; `None` when the demand is
    /// frameless or some cluster is saturated by background work.
    pub frame_period_s: Option<f64>,
    /// Time each cluster spends on one frame, in seconds
    /// (0 for clusters with no per-frame cost).
    pub stage_time_s: [f64; 3],
    /// Fraction of each cluster's capacity eaten by background work
    /// (clamped to `[0, 1]`).
    pub background_util: [f64; 3],
    /// Capacity fraction one produced frame per second costs on each
    /// cluster (`frame_cycles / f`).
    pub frame_util_per_fps: [f64; 3],
}

impl ExecutionPlan {
    /// Unbounded renderer frame rate implied by the period (frames/s);
    /// 0 when no frames can be produced.
    #[must_use]
    pub fn render_rate_hz(&self) -> f64 {
        match self.frame_period_s {
            Some(p) if p > 0.0 => 1.0 / p,
            _ => 0.0,
        }
    }

    /// Total utilisation of cluster `id` when frames are actually being
    /// produced at `fps` per second: the background share plus the
    /// capacity the frame work consumes.
    #[must_use]
    pub fn utilization(&self, id: ClusterId, fps: f64) -> f64 {
        let i = id.index();
        (self.background_util[i] + fps.max(0.0) * self.frame_util_per_fps[i]).clamp(0.0, 1.0)
    }
}

/// Evaluates how `demand` executes at the given per-cluster operating
/// points.
#[must_use]
pub fn plan(demand: &FrameDemand, opps: [Opp; 3]) -> ExecutionPlan {
    let mut stage_time_s = [0.0f64; 3];
    let mut background_util = [0.0f64; 3];
    let mut frame_util_per_fps = [0.0f64; 3];
    let mut saturated = false;
    for id in ClusterId::ALL {
        let i = id.index();
        let f = opps[i].freq_hz();
        let bg = demand.background_hz[i].max(0.0);
        background_util[i] = if f > 0.0 { (bg / f).min(1.0) } else { 1.0 };
        let headroom_hz = (f - bg).max(0.0);
        let cycles = demand.frame_cycles[i].max(0.0);
        if f > 0.0 {
            frame_util_per_fps[i] = cycles / f;
        }
        if cycles > 0.0 {
            if headroom_hz <= 0.0 {
                saturated = true;
            } else {
                stage_time_s[i] = cycles / headroom_hz;
            }
        }
    }
    let frame_period_s = if demand.is_frameless() || saturated {
        None
    } else {
        let cpu = stage_time_s[ClusterId::Big.index()] + stage_time_s[ClusterId::Little.index()];
        let gpu = stage_time_s[ClusterId::Gpu.index()];
        let mut period = cpu.max(gpu).max(1e-9);
        if demand.pacing_hz > 0.0 {
            period = period.max(1.0 / demand.pacing_hz);
        }
        Some(period)
    };
    ExecutionPlan {
        frame_period_s,
        stage_time_s,
        background_util,
        frame_util_per_fps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::OppTable;

    fn opps_max() -> [Opp; 3] {
        [
            OppTable::exynos9810_big().max(),
            OppTable::exynos9810_little().max(),
            OppTable::exynos9810_gpu().max(),
        ]
    }

    fn opps_min() -> [Opp; 3] {
        [
            OppTable::exynos9810_big().min(),
            OppTable::exynos9810_little().min(),
            OppTable::exynos9810_gpu().min(),
        ]
    }

    #[test]
    fn light_frames_render_fast() {
        // 2 M big cycles + 1 M LITTLE + 3 M GPU at max clocks → well
        // above 60 fps renderer rate.
        let demand = FrameDemand::new(2.0e6, 1.0e6, 3.0e6);
        let p = plan(&demand, opps_max());
        assert!(p.render_rate_hz() > 60.0, "rate {}", p.render_rate_hz());
    }

    #[test]
    fn heavy_frames_render_slow_at_min_clocks() {
        let demand = FrameDemand::new(20.0e6, 5.0e6, 9.0e6);
        let fast = plan(&demand, opps_max()).render_rate_hz();
        let slow = plan(&demand, opps_min()).render_rate_hz();
        assert!(fast > slow * 2.0, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn frameless_demand_has_no_period() {
        let demand = FrameDemand::new(0.0, 0.0, 0.0).with_background(1.0e9, 0.2e9, 0.0);
        let p = plan(&demand, opps_max());
        assert_eq!(p.frame_period_s, None);
        assert_eq!(p.render_rate_hz(), 0.0);
        assert!(p.background_util[0] > 0.3);
    }

    #[test]
    fn background_saturation_blocks_frames() {
        // Background demand above the little cluster's capacity at min
        // clock: frames cannot complete.
        let little_min_hz = OppTable::exynos9810_little().min().freq_hz();
        let demand =
            FrameDemand::new(1.0e6, 1.0e6, 1.0e6).with_background(0.0, little_min_hz * 2.0, 0.0);
        let p = plan(&demand, opps_min());
        assert_eq!(p.frame_period_s, None);
        assert_eq!(p.background_util[1], 1.0);
    }

    #[test]
    fn pipeline_period_is_max_of_cpu_and_gpu() {
        let opps = opps_max();
        // GPU-bound: huge GPU cost.
        let gpu_bound = FrameDemand::new(1.0e6, 0.5e6, 50.0e6);
        let p = plan(&gpu_bound, opps);
        let expect = 50.0e6 / opps[2].freq_hz();
        assert!((p.frame_period_s.unwrap() - expect).abs() / expect < 1e-9);

        // CPU-bound: big + LITTLE dominate.
        let cpu_bound = FrameDemand::new(40.0e6, 10.0e6, 1.0e6);
        let p = plan(&cpu_bound, opps);
        let expect = 40.0e6 / opps[0].freq_hz() + 10.0e6 / opps[1].freq_hz();
        assert!((p.frame_period_s.unwrap() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn utilization_combines_background_and_frames() {
        let opps = opps_max();
        let demand = FrameDemand::new(2.0e6, 0.0, 0.0).with_background(0.5e9, 0.0, 0.0);
        let p = plan(&demand, opps);
        let u = p.utilization(ClusterId::Big, 60.0);
        let expect = 0.5e9 / opps[0].freq_hz() + 60.0 * 2.0e6 / opps[0].freq_hz();
        assert!((u - expect).abs() < 1e-12);
        assert!(p.utilization(ClusterId::Gpu, 60.0) < 1e-12);
    }

    #[test]
    fn utilization_clamped_to_one() {
        let opps = opps_min();
        let demand = FrameDemand::new(1.0e9, 1.0e9, 1.0e9);
        let p = plan(&demand, opps);
        for id in ClusterId::ALL {
            assert!(p.utilization(id, 60.0) <= 1.0);
        }
    }

    #[test]
    fn scaled_demand_scales_linearly() {
        let base = FrameDemand::new(4.0e6, 2.0e6, 8.0e6).with_background(1.0e8, 0.0, 0.0);
        let double = base.scaled(2.0);
        assert_eq!(double.frame_cycles[0], 8.0e6);
        assert_eq!(double.background_hz[0], 2.0e8);
        let neg = base.scaled(-5.0);
        assert!(neg.is_frameless());
    }
}
