//! Cycle-budget frame execution model.
//!
//! Every UI/game frame costs a number of *effective cycles* on each
//! workload channel (IPC and core-level parallelism are folded into the
//! cycle count, which is how trace-driven mobile performance models are
//! usually calibrated). On top of the per-frame cost, an application
//! demands *background* cycles per second — audio decode, network, game
//! AI — that consume capacity without producing frames. This is what
//! makes the paper's Spotify observation possible: FPS near zero while
//! the CPUs are busy and clocked high (§I, Fig. 1).
//!
//! Demands are expressed in three **channels** — heavy CPU work, light
//! CPU work, GPU work — so application models stay platform-independent;
//! the [`Platform`] declares which DVFS domain executes which share of
//! each channel. On the Exynos 9810 the mapping is one-to-one (big,
//! LITTLE, GPU); the 9820-class preset splits the heavy-CPU channel
//! between its big and middle clusters.
//!
//! Rendering is pipelined in the usual Android way: the CPU stages
//! prepare frame *N+1* while the GPU draws frame *N*, so the
//! steady-state frame period is `max(Σ t_cpu, Σ t_gpu)`.

use crate::freq::Opp;
use crate::platform::{DomainId, DomainRole, PerDomain, Platform};

/// One of the three workload channels an application's demand is
/// calibrated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// The heavy CPU work stream (render threads, game logic). Lands on
    /// big/prime — and, where present, middle — clusters.
    BigCpu,
    /// The light CPU work stream (helper threads, audio, I/O).
    LittleCpu,
    /// The GPU work stream (draw calls, composition).
    Gpu,
}

impl Channel {
    /// All channels in index order.
    pub const ALL: [Channel; 3] = [Channel::BigCpu, Channel::LittleCpu, Channel::Gpu];

    /// Stable index of the channel within [`Channel::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Channel::BigCpu => 0,
            Channel::LittleCpu => 1,
            Channel::Gpu => 2,
        }
    }
}

/// Work demanded by the running application over a simulation interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameDemand {
    /// Effective cycles each frame costs per channel
    /// (indexed by [`Channel::index`]).
    pub frame_cycles: [f64; 3],
    /// Background (non-frame) cycles per second per channel.
    pub background_hz: [f64; 3],
    /// Native content pacing in frames per second (0 = unpaced). Video
    /// players present at the content's native rate (24/30 FPS)
    /// regardless of how fast the hardware could render.
    pub pacing_hz: f64,
}

impl FrameDemand {
    /// Demand with per-frame costs only (no background work).
    #[must_use]
    pub fn new(big_cycles: f64, little_cycles: f64, gpu_cycles: f64) -> Self {
        FrameDemand {
            frame_cycles: [big_cycles, little_cycles, gpu_cycles],
            background_hz: [0.0; 3],
            pacing_hz: 0.0,
        }
    }

    /// Adds background cycles per second on each channel.
    #[must_use]
    pub fn with_background(mut self, big_hz: f64, little_hz: f64, gpu_hz: f64) -> Self {
        self.background_hz = [big_hz, little_hz, gpu_hz];
        self
    }

    /// Caps frame production at the content's native rate (video).
    #[must_use]
    pub fn with_pacing(mut self, pacing_hz: f64) -> Self {
        self.pacing_hz = pacing_hz.max(0.0);
        self
    }

    /// True when the demand produces no frames (all per-frame costs are
    /// zero); the display then repeats the front buffer and measured FPS
    /// drops to zero.
    #[must_use]
    pub fn is_frameless(&self) -> bool {
        self.frame_cycles.iter().all(|&c| c <= 0.0)
    }

    /// Per-frame cycles of one channel.
    #[must_use]
    pub fn frame_cycles_of(&self, channel: Channel) -> f64 {
        self.frame_cycles[channel.index()]
    }

    /// Background cycles per second of one channel.
    #[must_use]
    pub fn background_hz_of(&self, channel: Channel) -> f64 {
        self.background_hz[channel.index()]
    }

    /// Scales every per-frame and background cost by `k` (≥ 0); the
    /// pacing rate is a content property and does not scale.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        let k = k.max(0.0);
        FrameDemand {
            frame_cycles: self.frame_cycles.map(|c| c * k),
            background_hz: self.background_hz.map(|c| c * k),
            pacing_hz: self.pacing_hz,
        }
    }
}

/// Result of evaluating a demand against a set of operating points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionPlan {
    /// Steady-state frame period in seconds; `None` when the demand is
    /// frameless or some domain is saturated by background work.
    pub frame_period_s: Option<f64>,
    /// Time each domain spends on one frame, in seconds
    /// (0 for domains with no per-frame cost).
    pub stage_time_s: PerDomain<f64>,
    /// Fraction of each domain's capacity eaten by background work
    /// (clamped to `[0, 1]`).
    pub background_util: PerDomain<f64>,
    /// Capacity fraction one produced frame per second costs on each
    /// domain (`frame_cycles / f`).
    pub frame_util_per_fps: PerDomain<f64>,
}

impl ExecutionPlan {
    /// Unbounded renderer frame rate implied by the period (frames/s);
    /// 0 when no frames can be produced.
    #[must_use]
    pub fn render_rate_hz(&self) -> f64 {
        match self.frame_period_s {
            Some(p) if p > 0.0 => 1.0 / p,
            _ => 0.0,
        }
    }

    /// Total utilisation of domain `id` when frames are actually being
    /// produced at `fps` per second: the background share plus the
    /// capacity the frame work consumes.
    #[must_use]
    pub fn utilization(&self, id: DomainId, fps: f64) -> f64 {
        let i = id.index();
        (self.background_util[i] + fps.max(0.0) * self.frame_util_per_fps[i]).clamp(0.0, 1.0)
    }
}

/// Evaluates how `demand` executes at the given per-domain operating
/// points (`opps` in platform order) on `platform`.
///
/// Each domain executes its declared share of its workload channel; the
/// pipeline period is the longer of the serialised CPU stages and the
/// serialised GPU stages.
///
/// # Panics
///
/// Panics if `opps` is shorter than the platform's domain count.
#[must_use]
pub fn plan(demand: &FrameDemand, opps: &[Opp], platform: &Platform) -> ExecutionPlan {
    let n = platform.n_domains();
    let mut stage_time_s = PerDomain::new(n);
    let mut background_util = PerDomain::new(n);
    let mut frame_util_per_fps = PerDomain::new(n);
    let mut saturated = false;
    // The serialised per-role stage sums accumulate in the same single
    // pass (identical values in identical domain order, so the result
    // is bit-for-bit what a separate summation loop would produce).
    let mut cpu = 0.0f64;
    let mut gpu = 0.0f64;
    for (i, spec) in platform.domains().iter().enumerate() {
        let f = opps[i].freq_hz();
        let share = spec.channel_share;
        let bg = (demand.background_hz[spec.channel.index()] * share).max(0.0);
        // Zero numerators skip their division: `0.0 / f` is exactly
        // `+0.0` for every `f > 0`, so the branch is unobservable and
        // idle channels (most of a typical demand) avoid the divider.
        background_util[i] = if f > 0.0 {
            if bg > 0.0 {
                (bg / f).min(1.0)
            } else {
                0.0
            }
        } else {
            1.0
        };
        let headroom_hz = (f - bg).max(0.0);
        let cycles = (demand.frame_cycles[spec.channel.index()] * share).max(0.0);
        if f > 0.0 && cycles > 0.0 {
            frame_util_per_fps[i] = cycles / f;
        }
        if cycles > 0.0 {
            if headroom_hz <= 0.0 {
                saturated = true;
            } else {
                stage_time_s[i] = cycles / headroom_hz;
            }
        }
        match spec.role {
            DomainRole::Cpu => cpu += stage_time_s[i],
            DomainRole::Gpu => gpu += stage_time_s[i],
        }
    }
    let frame_period_s = if demand.is_frameless() || saturated {
        None
    } else {
        let mut period = cpu.max(gpu).max(1e-9);
        if demand.pacing_hz > 0.0 {
            period = period.max(1.0 / demand.pacing_hz);
        }
        Some(period)
    };
    ExecutionPlan {
        frame_period_s,
        stage_time_s,
        background_util,
        frame_util_per_fps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::OppTable;

    fn p9810() -> Platform {
        Platform::exynos9810()
    }

    fn opps_max() -> Vec<Opp> {
        p9810().domains().iter().map(|d| d.table.max()).collect()
    }

    fn opps_min() -> Vec<Opp> {
        p9810().domains().iter().map(|d| d.table.min()).collect()
    }

    #[test]
    fn light_frames_render_fast() {
        // 2 M big cycles + 1 M LITTLE + 3 M GPU at max clocks → well
        // above 60 fps renderer rate.
        let demand = FrameDemand::new(2.0e6, 1.0e6, 3.0e6);
        let p = plan(&demand, &opps_max(), &p9810());
        assert!(p.render_rate_hz() > 60.0, "rate {}", p.render_rate_hz());
    }

    #[test]
    fn heavy_frames_render_slow_at_min_clocks() {
        let demand = FrameDemand::new(20.0e6, 5.0e6, 9.0e6);
        let fast = plan(&demand, &opps_max(), &p9810()).render_rate_hz();
        let slow = plan(&demand, &opps_min(), &p9810()).render_rate_hz();
        assert!(fast > slow * 2.0, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn frameless_demand_has_no_period() {
        let demand = FrameDemand::new(0.0, 0.0, 0.0).with_background(1.0e9, 0.2e9, 0.0);
        let p = plan(&demand, &opps_max(), &p9810());
        assert_eq!(p.frame_period_s, None);
        assert_eq!(p.render_rate_hz(), 0.0);
        assert!(p.background_util[0] > 0.3);
    }

    #[test]
    fn background_saturation_blocks_frames() {
        // Background demand above the little cluster's capacity at min
        // clock: frames cannot complete.
        let little_min_hz = OppTable::exynos9810_little().min().freq_hz();
        let demand =
            FrameDemand::new(1.0e6, 1.0e6, 1.0e6).with_background(0.0, little_min_hz * 2.0, 0.0);
        let p = plan(&demand, &opps_min(), &p9810());
        assert_eq!(p.frame_period_s, None);
        assert_eq!(p.background_util[1], 1.0);
    }

    #[test]
    fn pipeline_period_is_max_of_cpu_and_gpu() {
        let opps = opps_max();
        // GPU-bound: huge GPU cost.
        let gpu_bound = FrameDemand::new(1.0e6, 0.5e6, 50.0e6);
        let p = plan(&gpu_bound, &opps, &p9810());
        let expect = 50.0e6 / opps[2].freq_hz();
        assert!((p.frame_period_s.unwrap() - expect).abs() / expect < 1e-9);

        // CPU-bound: big + LITTLE dominate.
        let cpu_bound = FrameDemand::new(40.0e6, 10.0e6, 1.0e6);
        let p = plan(&cpu_bound, &opps, &p9810());
        let expect = 40.0e6 / opps[0].freq_hz() + 10.0e6 / opps[1].freq_hz();
        assert!((p.frame_period_s.unwrap() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn channel_shares_split_work_across_domains() {
        // On the 9820 preset the heavy-CPU channel splits 0.65/0.35
        // between big and mid; the CPU pipeline time is the sum of the
        // partial stages.
        let platform = Platform::exynos9820();
        let opps: Vec<Opp> = platform.domains().iter().map(|d| d.table.max()).collect();
        let demand = FrameDemand::new(40.0e6, 10.0e6, 1.0e6);
        let p = plan(&demand, &opps, &platform);
        let expect = 40.0e6 * 0.65 / opps[0].freq_hz()
            + 40.0e6 * 0.35 / opps[1].freq_hz()
            + 10.0e6 / opps[2].freq_hz();
        assert!((p.frame_period_s.unwrap() - expect).abs() / expect < 1e-9);
        assert!(p.stage_time_s[1] > 0.0, "mid cluster carries its share");
    }

    #[test]
    fn utilization_combines_background_and_frames() {
        let opps = opps_max();
        let demand = FrameDemand::new(2.0e6, 0.0, 0.0).with_background(0.5e9, 0.0, 0.0);
        let p = plan(&demand, &opps, &p9810());
        let u = p.utilization(DomainId::new(0), 60.0);
        let expect = 0.5e9 / opps[0].freq_hz() + 60.0 * 2.0e6 / opps[0].freq_hz();
        assert!((u - expect).abs() < 1e-12);
        assert!(p.utilization(DomainId::new(2), 60.0) < 1e-12);
    }

    #[test]
    fn utilization_clamped_to_one() {
        let opps = opps_min();
        let demand = FrameDemand::new(1.0e9, 1.0e9, 1.0e9);
        let p = plan(&demand, &opps, &p9810());
        for id in p9810().ids() {
            assert!(p.utilization(id, 60.0) <= 1.0);
        }
    }

    #[test]
    fn scaled_demand_scales_linearly() {
        let base = FrameDemand::new(4.0e6, 2.0e6, 8.0e6).with_background(1.0e8, 0.0, 0.0);
        let double = base.scaled(2.0);
        assert_eq!(double.frame_cycles[0], 8.0e6);
        assert_eq!(double.background_hz[0], 2.0e8);
        let neg = base.scaled(-5.0);
        assert!(neg.is_frameless());
    }

    #[test]
    fn channel_indices_are_stable() {
        for (i, c) in Channel::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
