//! Platform descriptors: the ordered list of DVFS domains a SoC
//! exposes, with their OPP tables, power models, thermal coupling and
//! role tags.
//!
//! The paper formulates Next for "`m` PE clusters with cluster-wise
//! DVFS" (§IV-B) and evaluates it on the Exynos 9810 (`m = 3`). A
//! [`Platform`] makes `m` a runtime property: every layer above —
//! execution planning, power, thermal, throttling, the RL action and
//! state spaces — derives its shape from the platform's domain list
//! instead of a hard-coded big/LITTLE/GPU triple. Two presets ship:
//!
//! * [`Platform::exynos9810`] — the paper's Galaxy Note 9 platform
//!   (big + LITTLE + GPU, `m = 3`, 9 actions),
//! * [`Platform::exynos9820`] — a Galaxy-S10-class tri-cluster CPU +
//!   GPU platform (big + mid + LITTLE + GPU, `m = 4`, 12 actions).

use std::fmt;
use std::ops::{Deref, DerefMut, Index, IndexMut};

use crate::freq::OppTable;
use crate::perf::Channel;
use crate::power::DomainPowerModel;
use crate::thermal::NodeId;
use crate::{Error, Result};

/// Upper bound on the number of DVFS domains a platform may declare.
///
/// Per-domain state travels in fixed-capacity [`PerDomain`] carriers so
/// the 25 ms simulation hot path stays allocation-free whatever `m` is;
/// eight covers every mobile SoC topology in sight (the paper's
/// platform uses three, the 9820-class preset four).
pub const MAX_DOMAINS: usize = 8;

/// Identifies one DVFS domain by its position in the platform's
/// ordered domain list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(u8);

impl DomainId {
    /// Creates an id from a domain index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_DOMAINS`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index < MAX_DOMAINS, "domain index {index} out of range");
        DomainId(index as u8)
    }

    /// The domain's position in the platform's domain list.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain {}", self.0)
    }
}

/// What kind of processing element a domain drives — the role tag the
/// frame pipeline uses to assemble its stages (CPU stages serialise,
/// the GPU stage overlaps them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainRole {
    /// A CPU cluster.
    Cpu,
    /// A GPU.
    Gpu,
}

/// One DVFS domain of a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSpec {
    /// Human-readable domain name (`"big"`, `"mid"`, `"little"`,
    /// `"gpu"`, …). Unique within a platform.
    pub name: String,
    /// Role tag (see [`DomainRole`]).
    pub role: DomainRole,
    /// Which workload channel loads this domain (see [`Channel`]).
    pub channel: Channel,
    /// Fraction of the channel's cycles this domain executes. Shares of
    /// one channel typically sum to 1 across the platform's domains.
    pub channel_share: f64,
    /// The domain's OPP ladder.
    pub table: OppTable,
    /// The domain's power model.
    pub power: DomainPowerModel,
    /// Thermal node carrying this domain's dissipated power (an index
    /// into the platform's thermal network).
    pub thermal_node: NodeId,
    /// Thermal-throttle trip temperature of this domain's die sensor,
    /// °C.
    pub trip_c: f64,
}

/// An ordered registry of the DVFS domains a SoC exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: String,
    domains: Vec<DomainSpec>,
    /// Constant platform power floor (display, DRAM, rails), watts.
    base_power_w: f64,
    /// The domain whose die sensor is the paper's `Temperature_big`
    /// observation — the designated hot spot.
    hot_domain: DomainId,
}

impl Platform {
    /// Builds a platform from its domain list.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the domain list is empty or
    /// exceeds [`MAX_DOMAINS`], a name repeats, a channel share is not
    /// positive and finite, the base power is negative, or `hot_domain`
    /// is out of range.
    pub fn new(
        name: &str,
        domains: Vec<DomainSpec>,
        base_power_w: f64,
        hot_domain: DomainId,
    ) -> Result<Self> {
        if domains.is_empty() {
            return Err(Error::InvalidConfig(format!(
                "platform '{name}' has no DVFS domains"
            )));
        }
        if domains.len() > MAX_DOMAINS {
            return Err(Error::InvalidConfig(format!(
                "platform '{name}' declares {} domains, max is {MAX_DOMAINS}",
                domains.len()
            )));
        }
        for (i, d) in domains.iter().enumerate() {
            if domains[..i].iter().any(|o| o.name == d.name) {
                return Err(Error::InvalidConfig(format!(
                    "platform '{name}' repeats domain name '{}'",
                    d.name
                )));
            }
            if !(d.channel_share > 0.0 && d.channel_share.is_finite()) {
                return Err(Error::InvalidConfig(format!(
                    "domain '{}' has non-positive channel share",
                    d.name
                )));
            }
        }
        if !(base_power_w >= 0.0 && base_power_w.is_finite()) {
            return Err(Error::InvalidConfig(format!(
                "platform '{name}' has invalid base power {base_power_w}"
            )));
        }
        if hot_domain.index() >= domains.len() {
            return Err(Error::InvalidConfig(format!(
                "hot domain {hot_domain} out of range for platform '{name}'"
            )));
        }
        Ok(Platform {
            name: name.to_owned(),
            domains,
            base_power_w,
            hot_domain,
        })
    }

    /// The platform's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of DVFS domains (`m`).
    #[must_use]
    pub fn n_domains(&self) -> usize {
        self.domains.len()
    }

    /// The ordered domain list.
    #[must_use]
    pub fn domains(&self) -> &[DomainSpec] {
        &self.domains
    }

    /// One domain's spec.
    #[must_use]
    pub fn domain(&self, id: DomainId) -> &DomainSpec {
        &self.domains[id.index()]
    }

    /// All domain ids in platform order.
    pub fn ids(&self) -> impl Iterator<Item = DomainId> + '_ {
        (0..self.domains.len()).map(DomainId::new)
    }

    /// Looks a domain up by name.
    #[must_use]
    pub fn domain_named(&self, name: &str) -> Option<DomainId> {
        self.domains
            .iter()
            .position(|d| d.name == name)
            .map(DomainId::new)
    }

    /// The designated hot-spot domain (the paper's `Temperature_big`
    /// sensor).
    #[must_use]
    pub fn hot_domain(&self) -> DomainId {
        self.hot_domain
    }

    /// Constant platform power floor, watts.
    #[must_use]
    pub fn base_power_w(&self) -> f64 {
        self.base_power_w
    }

    /// Scales the platform power floor (fleet silicon/power binning).
    pub fn scale_base_power(&mut self, k: f64) {
        self.base_power_w *= k.max(0.0);
    }

    /// OPP-ladder length of every domain, in platform order.
    #[must_use]
    pub fn freq_levels(&self) -> Vec<usize> {
        self.domains.iter().map(|d| d.table.len()).collect()
    }

    /// Size of the cluster-wise DVFS action space: `3m` (up / down /
    /// hold per domain, §IV-B).
    #[must_use]
    pub fn action_count(&self) -> usize {
        3 * self.domains.len()
    }

    /// Sum of every domain's top cap level — the normaliser of the
    /// agent's cap-headroom reward shaping.
    #[must_use]
    pub fn cap_level_sum(&self) -> usize {
        self.domains.iter().map(|d| d.table.len() - 1).sum()
    }

    /// Names of the shipped platform presets.
    #[must_use]
    pub fn preset_names() -> &'static [&'static str] {
        &["exynos9810", "exynos9820"]
    }

    /// Looks a shipped preset up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Platform> {
        match name {
            "exynos9810" => Some(Platform::exynos9810()),
            "exynos9820" => Some(Platform::exynos9820()),
            _ => None,
        }
    }

    /// The paper's Galaxy Note 9 platform: Exynos 9810 with big
    /// (4× Mongoose 3), LITTLE (4× A55) and GPU (Mali-G72 MP18) domains
    /// — `m = 3`, 9 actions, 0.9 W platform floor.
    ///
    /// Thermal nodes follow [`crate::thermal::ThermalConfig::exynos9810`]
    /// (domains on nodes 0–2, board 3, skin 4).
    #[must_use]
    pub fn exynos9810() -> Platform {
        let domains = vec![
            DomainSpec {
                name: "big".to_owned(),
                role: DomainRole::Cpu,
                channel: Channel::BigCpu,
                channel_share: 1.0,
                table: OppTable::exynos9810_big(),
                power: DomainPowerModel::exynos9810_big(),
                thermal_node: 0,
                trip_c: 75.0,
            },
            DomainSpec {
                name: "little".to_owned(),
                role: DomainRole::Cpu,
                channel: Channel::LittleCpu,
                channel_share: 1.0,
                table: OppTable::exynos9810_little(),
                power: DomainPowerModel::exynos9810_little(),
                thermal_node: 1,
                trip_c: 75.0,
            },
            DomainSpec {
                name: "gpu".to_owned(),
                role: DomainRole::Gpu,
                channel: Channel::Gpu,
                channel_share: 1.0,
                table: OppTable::exynos9810_gpu(),
                power: DomainPowerModel::exynos9810_gpu(),
                thermal_node: 2,
                trip_c: 71.0,
            },
        ];
        // qlint::allow(PN01, reason = "compiled-in preset, exercised by the platform tests")
        Platform::new("exynos9810", domains, 0.9, DomainId::new(0)).expect("preset valid")
    }

    /// A Galaxy-S10-class tri-cluster-CPU + GPU platform in the Exynos
    /// 9820 mould: big (2× M4), mid (2× A75), LITTLE (4× A55) and GPU
    /// (Mali-G76 MP12) — `m = 4`, 12 actions.
    ///
    /// The big-CPU workload channel is split between the big and mid
    /// clusters (the way heavy render threads land on the prime cores
    /// while helper threads spill onto the middle cluster), so the
    /// existing application models drive the four-domain platform
    /// without recalibration. Thermal nodes follow
    /// [`crate::thermal::ThermalConfig::exynos9820`] (domains on nodes
    /// 0–3, board 4, skin 5).
    #[must_use]
    pub fn exynos9820() -> Platform {
        let domains = vec![
            DomainSpec {
                name: "big".to_owned(),
                role: DomainRole::Cpu,
                channel: Channel::BigCpu,
                channel_share: 0.65,
                table: OppTable::exynos9820_big(),
                power: DomainPowerModel::exynos9820_big(),
                thermal_node: 0,
                trip_c: 75.0,
            },
            DomainSpec {
                name: "mid".to_owned(),
                role: DomainRole::Cpu,
                channel: Channel::BigCpu,
                channel_share: 0.35,
                table: OppTable::exynos9820_mid(),
                power: DomainPowerModel::exynos9820_mid(),
                thermal_node: 1,
                trip_c: 75.0,
            },
            DomainSpec {
                name: "little".to_owned(),
                role: DomainRole::Cpu,
                channel: Channel::LittleCpu,
                channel_share: 1.0,
                table: OppTable::exynos9820_little(),
                power: DomainPowerModel::exynos9820_little(),
                thermal_node: 2,
                trip_c: 75.0,
            },
            DomainSpec {
                name: "gpu".to_owned(),
                role: DomainRole::Gpu,
                channel: Channel::Gpu,
                channel_share: 1.0,
                table: OppTable::exynos9820_gpu(),
                power: DomainPowerModel::exynos9820_gpu(),
                thermal_node: 3,
                trip_c: 71.0,
            },
        ];
        // qlint::allow(PN01, reason = "compiled-in preset, exercised by the platform tests")
        Platform::new("exynos9820", domains, 0.9, DomainId::new(0)).expect("preset valid")
    }
}

/// Fixed-capacity per-domain value carrier: one `T` per platform
/// domain, stored inline so per-tick state stays `Copy` and
/// allocation-free for any `m ≤ MAX_DOMAINS`.
///
/// Dereferences to a slice of the live prefix, so indexing, iteration
/// and all slice methods work directly.
#[derive(Clone, Copy)]
pub struct PerDomain<T> {
    buf: [T; MAX_DOMAINS],
    len: u8,
}

impl<T: Copy + Default> PerDomain<T> {
    /// A carrier of `len` default values.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_DOMAINS`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        assert!(len <= MAX_DOMAINS, "domain count {len} exceeds capacity");
        PerDomain {
            buf: [T::default(); MAX_DOMAINS],
            len: len as u8,
        }
    }

    /// A carrier holding a copy of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items.len() > MAX_DOMAINS`.
    #[must_use]
    pub fn from_slice(items: &[T]) -> Self {
        let mut out = PerDomain::new(items.len());
        out.buf[..items.len()].copy_from_slice(items);
        out
    }

    /// A carrier of `len` values produced by `f(index)`.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_DOMAINS`.
    #[must_use]
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        let mut out = PerDomain::new(len);
        for i in 0..len {
            out.buf[i] = f(i);
        }
        out
    }

    /// Resets every live entry to `value`.
    pub fn fill_with(&mut self, value: T) {
        self.buf[..usize::from(self.len)].fill(value);
    }
}

impl<T> Deref for PerDomain<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.buf[..usize::from(self.len)]
    }
}

impl<T> DerefMut for PerDomain<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf[..usize::from(self.len)]
    }
}

impl<T, I: std::slice::SliceIndex<[T]>> Index<I> for PerDomain<T> {
    type Output = I::Output;

    fn index(&self, i: I) -> &I::Output {
        &(**self)[i]
    }
}

impl<T, I: std::slice::SliceIndex<[T]>> IndexMut<I> for PerDomain<T> {
    fn index_mut(&mut self, i: I) -> &mut I::Output {
        &mut (**self)[i]
    }
}

impl<T: fmt::Debug> fmt::Debug for PerDomain<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for PerDomain<T> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<T: Eq> Eq for PerDomain<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_domain_is_a_prefix_slice() {
        let mut p: PerDomain<u32> = PerDomain::from_slice(&[5, 6, 7]);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], 5);
        assert_eq!(p[DomainId::new(2).index()], 7);
        p[1] = 60;
        assert_eq!(&p[..], &[5, 60, 7]);
        assert_eq!(p.iter().sum::<u32>(), 72);
        let q: PerDomain<u32> = PerDomain::from_fn(3, |i| [5, 60, 7][i]);
        assert_eq!(p, q);
        assert_ne!(p, PerDomain::from_slice(&[5, 60]));
    }

    #[test]
    fn per_domain_equality_ignores_spare_capacity() {
        let mut a: PerDomain<u32> = PerDomain::new(2);
        let mut b: PerDomain<u32> = PerDomain::new(4);
        b[2] = 99;
        b[3] = 98;
        let b2 = PerDomain::from_slice(&b[..2]);
        a[0] = 1;
        let mut c: PerDomain<u32> = PerDomain::new(2);
        c[0] = 1;
        assert_eq!(a, c);
        assert_eq!(b2.len(), 2);
        assert_eq!(&b2[..], &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn per_domain_overflow_panics() {
        let _: PerDomain<u8> = PerDomain::new(MAX_DOMAINS + 1);
    }

    #[test]
    fn preset_platforms_have_expected_shapes() {
        let p = Platform::exynos9810();
        assert_eq!(p.n_domains(), 3);
        assert_eq!(p.action_count(), 9);
        assert_eq!(p.freq_levels(), vec![18, 10, 6]);
        assert_eq!(p.cap_level_sum(), 31);
        assert_eq!(p.hot_domain().index(), 0);
        assert_eq!(p.domain_named("gpu"), Some(DomainId::new(2)));
        assert_eq!(p.domain_named("mid"), None);

        let q = Platform::exynos9820();
        assert_eq!(q.n_domains(), 4);
        assert_eq!(q.action_count(), 12);
        assert_eq!(q.domain_named("mid"), Some(DomainId::new(1)));
        let shares: f64 = q
            .domains()
            .iter()
            .filter(|d| d.channel == Channel::BigCpu)
            .map(|d| d.channel_share)
            .sum();
        assert!((shares - 1.0).abs() < 1e-12, "big channel shares sum to 1");
    }

    #[test]
    fn presets_resolve_by_name() {
        for &name in Platform::preset_names() {
            let p = Platform::by_name(name).expect("preset resolves");
            assert_eq!(p.name(), name);
        }
        assert!(Platform::by_name("snapdragon855").is_none());
    }

    #[test]
    fn invalid_platforms_rejected() {
        let base = Platform::exynos9810();
        let err = Platform::new("empty", vec![], 0.9, DomainId::new(0));
        assert!(err.is_err());

        let mut dup = base.domains().to_vec();
        dup[1].name = "big".to_owned();
        assert!(Platform::new("dup", dup, 0.9, DomainId::new(0)).is_err());

        let mut bad_share = base.domains().to_vec();
        bad_share[0].channel_share = 0.0;
        assert!(Platform::new("share", bad_share, 0.9, DomainId::new(0)).is_err());

        assert!(Platform::new("hot", base.domains().to_vec(), 0.9, DomainId::new(5)).is_err());
        assert!(
            Platform::new("base", base.domains().to_vec(), f64::NAN, DomainId::new(0)).is_err()
        );
    }
}
