//! Power model: switching (dynamic) power plus temperature-dependent
//! leakage, per cluster, with a constant platform floor for the rails the
//! governor cannot influence (display, memory, modem).
//!
//! Dynamic power follows the standard CMOS model `P = C_eff · V² · f ·
//! u`, where `u ∈ [0, 1]` is the cluster utilisation over the interval.
//! Leakage grows linearly with die temperature around the ambient
//! reference, which captures the positive power-temperature feedback that
//! makes peak-temperature reduction valuable (§I, §III-B of the paper).

use crate::freq::{ClusterId, Opp};

/// Power model parameters for one PE cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPowerModel {
    cluster: ClusterId,
    /// Effective switched capacitance in farads.
    ceff_f: f64,
    /// Leakage at the reference temperature, per volt (W/V).
    leak_w_per_v: f64,
    /// Fractional leakage increase per °C above the reference.
    leak_temp_coeff: f64,
    /// Reference temperature for the leakage linearisation, °C.
    leak_ref_c: f64,
}

impl ClusterPowerModel {
    /// Creates a model from raw coefficients.
    #[must_use]
    pub fn new(
        cluster: ClusterId,
        ceff_f: f64,
        leak_w_per_v: f64,
        leak_temp_coeff: f64,
        leak_ref_c: f64,
    ) -> Self {
        ClusterPowerModel {
            cluster,
            ceff_f,
            leak_w_per_v,
            leak_temp_coeff,
            leak_ref_c,
        }
    }

    /// The cluster this model describes.
    #[must_use]
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// Switching power at operating point `opp` and utilisation `util`
    /// (clamped to `[0, 1]`), in watts.
    #[must_use]
    pub fn dynamic_w(&self, opp: Opp, util: f64) -> f64 {
        let util = util.clamp(0.0, 1.0);
        self.ceff_f * opp.volt_v * opp.volt_v * opp.freq_hz() * util
    }

    /// Leakage power at operating point `opp` and die temperature
    /// `temp_c`, in watts. Never negative.
    #[must_use]
    pub fn leakage_w(&self, opp: Opp, temp_c: f64) -> f64 {
        let scale = 1.0 + self.leak_temp_coeff * (temp_c - self.leak_ref_c);
        (self.leak_w_per_v * opp.volt_v * scale).max(0.0)
    }

    /// Total cluster power (dynamic + leakage), in watts.
    #[must_use]
    pub fn total_w(&self, opp: Opp, util: f64, temp_c: f64) -> f64 {
        self.dynamic_w(opp, util) + self.leakage_w(opp, temp_c)
    }

    /// Calibration used for the Exynos 9810 big cluster (4× Mongoose 3).
    ///
    /// Chosen so that the fully-loaded cluster at 2704 MHz draws ≈6.5 W
    /// and ≈0.45 W of leakage at 45 °C, in line with published Exynos
    /// 9810 measurements.
    #[must_use]
    pub fn exynos9810_big() -> Self {
        ClusterPowerModel::new(ClusterId::Big, 2.0e-9, 0.28, 0.012, 25.0)
    }

    /// Calibration used for the Exynos 9810 LITTLE cluster (4× A55).
    #[must_use]
    pub fn exynos9810_little() -> Self {
        ClusterPowerModel::new(ClusterId::Little, 4.6e-10, 0.06, 0.010, 25.0)
    }

    /// Calibration used for the Mali-G72 MP18 GPU.
    #[must_use]
    pub fn exynos9810_gpu() -> Self {
        ClusterPowerModel::new(ClusterId::Gpu, 1.05e-8, 0.20, 0.011, 25.0)
    }
}

/// Whole-platform power model: the three cluster models plus a constant
/// platform floor (display at fixed brightness, DRAM refresh, rails).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    clusters: [ClusterPowerModel; 3],
    base_w: f64,
}

/// Per-cluster and total power for one simulation interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Power of each cluster, indexed by [`ClusterId::index`], in watts.
    pub cluster_w: [f64; 3],
    /// Constant platform floor, in watts.
    pub base_w: f64,
}

impl PowerBreakdown {
    /// Sum of all components, in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.cluster_w.iter().sum::<f64>() + self.base_w
    }

    /// Power of one cluster, in watts.
    #[must_use]
    pub fn cluster(&self, id: ClusterId) -> f64 {
        self.cluster_w[id.index()]
    }
}

impl PowerModel {
    /// Builds a model from three cluster models (any order) and a
    /// platform floor in watts.
    ///
    /// # Panics
    ///
    /// Panics if the three models do not cover exactly the three
    /// clusters.
    #[must_use]
    pub fn new(models: [ClusterPowerModel; 3], base_w: f64) -> Self {
        let mut slots: [Option<ClusterPowerModel>; 3] = [None, None, None];
        for m in models {
            let idx = m.cluster().index();
            assert!(
                slots[idx].is_none(),
                "duplicate model for cluster {}",
                m.cluster()
            );
            slots[idx] = Some(m);
        }
        let clusters = slots.map(|s| s.expect("model for every cluster"));
        PowerModel { clusters, base_w }
    }

    /// The calibrated Exynos 9810 model with a 0.9 W platform floor.
    #[must_use]
    pub fn exynos9810() -> Self {
        PowerModel::new(
            [
                ClusterPowerModel::exynos9810_big(),
                ClusterPowerModel::exynos9810_little(),
                ClusterPowerModel::exynos9810_gpu(),
            ],
            0.9,
        )
    }

    /// Model for one cluster.
    #[must_use]
    pub fn cluster(&self, id: ClusterId) -> &ClusterPowerModel {
        &self.clusters[id.index()]
    }

    /// Platform floor in watts.
    #[must_use]
    pub fn base_w(&self) -> f64 {
        self.base_w
    }

    /// Evaluates the full breakdown given per-cluster operating points,
    /// utilisations and die temperatures (indexed by
    /// [`ClusterId::index`]).
    #[must_use]
    pub fn evaluate(&self, opps: [Opp; 3], utils: [f64; 3], temps_c: [f64; 3]) -> PowerBreakdown {
        let mut cluster_w = [0.0f64; 3];
        for id in ClusterId::ALL {
            let i = id.index();
            cluster_w[i] = self.clusters[i].total_w(opps[i], utils[i], temps_c[i]);
        }
        PowerBreakdown {
            cluster_w,
            base_w: self.base_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::OppTable;

    fn max_opp(table: &OppTable) -> Opp {
        table.max()
    }

    #[test]
    fn big_cluster_peak_power_in_plausible_range() {
        let model = ClusterPowerModel::exynos9810_big();
        let opp = max_opp(&OppTable::exynos9810_big());
        let p = model.total_w(opp, 1.0, 45.0);
        assert!((4.0..9.0).contains(&p), "big peak power {p} W implausible");
    }

    #[test]
    fn little_cluster_much_cheaper_than_big() {
        let big = ClusterPowerModel::exynos9810_big();
        let little = ClusterPowerModel::exynos9810_little();
        let pb = big.total_w(max_opp(&OppTable::exynos9810_big()), 1.0, 40.0);
        let pl = little.total_w(max_opp(&OppTable::exynos9810_little()), 1.0, 40.0);
        assert!(
            pl < pb / 4.0,
            "LITTLE ({pl} W) should be far cheaper than big ({pb} W)"
        );
    }

    #[test]
    fn dynamic_power_monotonic_in_frequency() {
        let model = ClusterPowerModel::exynos9810_big();
        let table = OppTable::exynos9810_big();
        let powers: Vec<f64> = table.iter().map(|&o| model.dynamic_w(o, 1.0)).collect();
        for pair in powers.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn dynamic_power_superlinear_in_frequency() {
        // P ∝ V²f with V rising in f ⇒ doubling f more than doubles P.
        let model = ClusterPowerModel::exynos9810_big();
        let table = OppTable::exynos9810_big();
        let lo = table.min();
        let hi = table.max();
        let ratio_f = hi.freq_hz() / lo.freq_hz();
        let ratio_p = model.dynamic_w(hi, 1.0) / model.dynamic_w(lo, 1.0);
        assert!(
            ratio_p > ratio_f * 1.5,
            "power ratio {ratio_p} vs freq ratio {ratio_f}"
        );
    }

    #[test]
    fn util_clamps() {
        let model = ClusterPowerModel::exynos9810_gpu();
        let opp = max_opp(&OppTable::exynos9810_gpu());
        assert_eq!(model.dynamic_w(opp, 2.0), model.dynamic_w(opp, 1.0));
        assert_eq!(model.dynamic_w(opp, -1.0), 0.0);
    }

    #[test]
    fn leakage_grows_with_temperature_and_never_negative() {
        let model = ClusterPowerModel::exynos9810_big();
        let opp = max_opp(&OppTable::exynos9810_big());
        let cold = model.leakage_w(opp, 0.0);
        let warm = model.leakage_w(opp, 40.0);
        let hot = model.leakage_w(opp, 90.0);
        assert!(cold < warm && warm < hot);
        assert!(model.leakage_w(opp, -500.0) >= 0.0);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let model = PowerModel::exynos9810();
        let opps = [
            OppTable::exynos9810_big().max(),
            OppTable::exynos9810_little().max(),
            OppTable::exynos9810_gpu().max(),
        ];
        let b = model.evaluate(opps, [1.0, 1.0, 1.0], [50.0, 45.0, 48.0]);
        let manual: f64 = b.cluster_w.iter().sum::<f64>() + b.base_w;
        assert!((b.total_w() - manual).abs() < 1e-12);
        assert!(b.total_w() > model.base_w());
        assert_eq!(b.base_w, 0.9);
    }

    #[test]
    fn full_platform_peak_power_matches_paper_scale() {
        // Fig. 3 shows schedutil peaks well above 10 W on heavy load.
        let model = PowerModel::exynos9810();
        let opps = [
            OppTable::exynos9810_big().max(),
            OppTable::exynos9810_little().max(),
            OppTable::exynos9810_gpu().max(),
        ];
        let b = model.evaluate(opps, [1.0, 1.0, 1.0], [70.0, 60.0, 65.0]);
        assert!(
            (9.0..18.0).contains(&b.total_w()),
            "platform peak {} W outside the paper's observed scale",
            b.total_w()
        );
    }

    #[test]
    #[should_panic(expected = "duplicate model")]
    fn duplicate_cluster_models_panic() {
        let _ = PowerModel::new(
            [
                ClusterPowerModel::exynos9810_big(),
                ClusterPowerModel::exynos9810_big(),
                ClusterPowerModel::exynos9810_gpu(),
            ],
            0.9,
        );
    }
}
