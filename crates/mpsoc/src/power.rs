//! Power model: switching (dynamic) power plus temperature-dependent
//! leakage, per DVFS domain, with a constant platform floor for the
//! rails the governor cannot influence (display, memory, modem).
//!
//! Dynamic power follows the standard CMOS model `P = C_eff · V² · f ·
//! u`, where `u ∈ [0, 1]` is the domain utilisation over the interval.
//! Leakage grows linearly with die temperature around the ambient
//! reference, which captures the positive power-temperature feedback that
//! makes peak-temperature reduction valuable (§I, §III-B of the paper).

use crate::freq::Opp;
use crate::platform::{DomainId, PerDomain, Platform};

/// Power model parameters for one DVFS domain. The domain's identity is
/// positional: models live in platform order inside a [`PowerModel`].
/// The `Default` model is all-zero (no dynamic or leakage power).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DomainPowerModel {
    /// Effective switched capacitance in farads.
    ceff_f: f64,
    /// Leakage at the reference temperature, per volt (W/V).
    leak_w_per_v: f64,
    /// Fractional leakage increase per °C above the reference.
    leak_temp_coeff: f64,
    /// Reference temperature for the leakage linearisation, °C.
    leak_ref_c: f64,
}

impl DomainPowerModel {
    /// Creates a model from raw coefficients.
    #[must_use]
    pub fn new(ceff_f: f64, leak_w_per_v: f64, leak_temp_coeff: f64, leak_ref_c: f64) -> Self {
        DomainPowerModel {
            ceff_f,
            leak_w_per_v,
            leak_temp_coeff,
            leak_ref_c,
        }
    }

    /// Switching power at operating point `opp` and utilisation `util`
    /// (clamped to `[0, 1]`), in watts.
    #[must_use]
    pub fn dynamic_w(&self, opp: Opp, util: f64) -> f64 {
        let util = util.clamp(0.0, 1.0);
        self.ceff_f * opp.volt_v * opp.volt_v * opp.freq_hz() * util
    }

    /// Leakage power at operating point `opp` and die temperature
    /// `temp_c`, in watts. Never negative.
    #[must_use]
    pub fn leakage_w(&self, opp: Opp, temp_c: f64) -> f64 {
        let scale = 1.0 + self.leak_temp_coeff * (temp_c - self.leak_ref_c);
        (self.leak_w_per_v * opp.volt_v * scale).max(0.0)
    }

    /// Total domain power (dynamic + leakage), in watts.
    #[must_use]
    pub fn total_w(&self, opp: Opp, util: f64, temp_c: f64) -> f64 {
        self.dynamic_w(opp, util) + self.leakage_w(opp, temp_c)
    }

    /// Calibration used for the Exynos 9810 big cluster (4× Mongoose 3).
    ///
    /// Chosen so that the fully-loaded cluster at 2704 MHz draws ≈6.5 W
    /// and ≈0.45 W of leakage at 45 °C, in line with published Exynos
    /// 9810 measurements.
    #[must_use]
    pub fn exynos9810_big() -> Self {
        DomainPowerModel::new(2.0e-9, 0.28, 0.012, 25.0)
    }

    /// Calibration used for the Exynos 9810 LITTLE cluster (4× A55).
    #[must_use]
    pub fn exynos9810_little() -> Self {
        DomainPowerModel::new(4.6e-10, 0.06, 0.010, 25.0)
    }

    /// Calibration used for the Mali-G72 MP18 GPU.
    #[must_use]
    pub fn exynos9810_gpu() -> Self {
        DomainPowerModel::new(1.05e-8, 0.20, 0.011, 25.0)
    }

    /// 9820-class big cluster (2× M4): two wide cores on a newer node —
    /// lower capacitance than the 9810's four Mongoose cores at a
    /// similar peak frequency.
    #[must_use]
    pub fn exynos9820_big() -> Self {
        DomainPowerModel::new(1.45e-9, 0.24, 0.012, 25.0)
    }

    /// 9820-class middle cluster (2× A75).
    #[must_use]
    pub fn exynos9820_mid() -> Self {
        DomainPowerModel::new(7.2e-10, 0.10, 0.011, 25.0)
    }

    /// 9820-class LITTLE cluster (4× A55).
    #[must_use]
    pub fn exynos9820_little() -> Self {
        DomainPowerModel::new(4.2e-10, 0.055, 0.010, 25.0)
    }

    /// 9820-class GPU (Mali-G76 MP12).
    #[must_use]
    pub fn exynos9820_gpu() -> Self {
        DomainPowerModel::new(8.6e-9, 0.18, 0.011, 25.0)
    }
}

/// Whole-platform power model: one [`DomainPowerModel`] per DVFS domain
/// (in platform order) plus a constant platform floor (display at fixed
/// brightness, DRAM refresh, rails).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    domains: Vec<DomainPowerModel>,
    base_w: f64,
}

/// Per-domain and total power for one simulation interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Power of each domain, in platform order, watts.
    pub domain_w: PerDomain<f64>,
    /// Constant platform floor, in watts.
    pub base_w: f64,
}

impl PowerBreakdown {
    /// Sum of all components, in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.domain_w.iter().sum::<f64>() + self.base_w
    }

    /// Power of one domain, in watts.
    #[must_use]
    pub fn domain(&self, id: DomainId) -> f64 {
        self.domain_w[id.index()]
    }
}

impl PowerModel {
    /// Builds a model from per-domain models (platform order) and a
    /// platform floor in watts.
    ///
    /// # Panics
    ///
    /// Panics on an empty model list.
    #[must_use]
    pub fn new(domains: Vec<DomainPowerModel>, base_w: f64) -> Self {
        assert!(!domains.is_empty(), "power model needs at least one domain");
        PowerModel { domains, base_w }
    }

    /// The power model a platform descriptor declares (per-domain
    /// models in platform order, platform base power).
    #[must_use]
    pub fn for_platform(platform: &Platform) -> Self {
        PowerModel::new(
            platform.domains().iter().map(|d| d.power).collect(),
            platform.base_power_w(),
        )
    }

    /// The calibrated Exynos 9810 model with a 0.9 W platform floor.
    #[must_use]
    pub fn exynos9810() -> Self {
        PowerModel::for_platform(&Platform::exynos9810())
    }

    /// Number of domain models.
    #[must_use]
    pub fn n_domains(&self) -> usize {
        self.domains.len()
    }

    /// Model for one domain.
    #[must_use]
    pub fn domain(&self, id: DomainId) -> &DomainPowerModel {
        &self.domains[id.index()]
    }

    /// Platform floor in watts.
    #[must_use]
    pub fn base_w(&self) -> f64 {
        self.base_w
    }

    /// Evaluates the full breakdown given per-domain operating points,
    /// utilisations and die temperatures (platform order).
    ///
    /// # Panics
    ///
    /// Panics if the slices are shorter than the domain count.
    #[must_use]
    pub fn evaluate(&self, opps: &[Opp], utils: &[f64], temps_c: &[f64]) -> PowerBreakdown {
        let n = self.domains.len();
        let domain_w = PerDomain::from_fn(n, |i| {
            self.domains[i].total_w(opps[i], utils[i], temps_c[i])
        });
        PowerBreakdown {
            domain_w,
            base_w: self.base_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::OppTable;

    fn max_opp(table: &OppTable) -> Opp {
        table.max()
    }

    #[test]
    fn big_cluster_peak_power_in_plausible_range() {
        let model = DomainPowerModel::exynos9810_big();
        let opp = max_opp(&OppTable::exynos9810_big());
        let p = model.total_w(opp, 1.0, 45.0);
        assert!((4.0..9.0).contains(&p), "big peak power {p} W implausible");
    }

    #[test]
    fn little_cluster_much_cheaper_than_big() {
        let big = DomainPowerModel::exynos9810_big();
        let little = DomainPowerModel::exynos9810_little();
        let pb = big.total_w(max_opp(&OppTable::exynos9810_big()), 1.0, 40.0);
        let pl = little.total_w(max_opp(&OppTable::exynos9810_little()), 1.0, 40.0);
        assert!(
            pl < pb / 4.0,
            "LITTLE ({pl} W) should be far cheaper than big ({pb} W)"
        );
    }

    #[test]
    fn dynamic_power_monotonic_in_frequency() {
        let model = DomainPowerModel::exynos9810_big();
        let table = OppTable::exynos9810_big();
        let powers: Vec<f64> = table.iter().map(|&o| model.dynamic_w(o, 1.0)).collect();
        for pair in powers.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn dynamic_power_superlinear_in_frequency() {
        // P ∝ V²f with V rising in f ⇒ doubling f more than doubles P.
        let model = DomainPowerModel::exynos9810_big();
        let table = OppTable::exynos9810_big();
        let lo = table.min();
        let hi = table.max();
        let ratio_f = hi.freq_hz() / lo.freq_hz();
        let ratio_p = model.dynamic_w(hi, 1.0) / model.dynamic_w(lo, 1.0);
        assert!(
            ratio_p > ratio_f * 1.5,
            "power ratio {ratio_p} vs freq ratio {ratio_f}"
        );
    }

    #[test]
    fn util_clamps() {
        let model = DomainPowerModel::exynos9810_gpu();
        let opp = max_opp(&OppTable::exynos9810_gpu());
        assert_eq!(model.dynamic_w(opp, 2.0), model.dynamic_w(opp, 1.0));
        assert_eq!(model.dynamic_w(opp, -1.0), 0.0);
    }

    #[test]
    fn leakage_grows_with_temperature_and_never_negative() {
        let model = DomainPowerModel::exynos9810_big();
        let opp = max_opp(&OppTable::exynos9810_big());
        let cold = model.leakage_w(opp, 0.0);
        let warm = model.leakage_w(opp, 40.0);
        let hot = model.leakage_w(opp, 90.0);
        assert!(cold < warm && warm < hot);
        assert!(model.leakage_w(opp, -500.0) >= 0.0);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let model = PowerModel::exynos9810();
        let opps = [
            OppTable::exynos9810_big().max(),
            OppTable::exynos9810_little().max(),
            OppTable::exynos9810_gpu().max(),
        ];
        let b = model.evaluate(&opps, &[1.0, 1.0, 1.0], &[50.0, 45.0, 48.0]);
        let manual: f64 = b.domain_w.iter().sum::<f64>() + b.base_w;
        assert!((b.total_w() - manual).abs() < 1e-12);
        assert!(b.total_w() > model.base_w());
        assert_eq!(b.base_w, 0.9);
        assert_eq!(b.domain(DomainId::new(0)), b.domain_w[0]);
    }

    #[test]
    fn full_platform_peak_power_matches_paper_scale() {
        // Fig. 3 shows schedutil peaks well above 10 W on heavy load.
        let model = PowerModel::exynos9810();
        let opps = [
            OppTable::exynos9810_big().max(),
            OppTable::exynos9810_little().max(),
            OppTable::exynos9810_gpu().max(),
        ];
        let b = model.evaluate(&opps, &[1.0, 1.0, 1.0], &[70.0, 60.0, 65.0]);
        assert!(
            (9.0..18.0).contains(&b.total_w()),
            "platform peak {} W outside the paper's observed scale",
            b.total_w()
        );
    }

    #[test]
    fn exynos9820_peak_power_plausible_for_a_flagship() {
        let platform = Platform::exynos9820();
        let model = PowerModel::for_platform(&platform);
        let opps: Vec<Opp> = platform.domains().iter().map(|d| d.table.max()).collect();
        let utils = vec![1.0; platform.n_domains()];
        let temps = vec![65.0; platform.n_domains()];
        let b = model.evaluate(&opps, &utils, &temps);
        assert!(
            (8.0..18.0).contains(&b.total_w()),
            "9820 peak {} W implausible",
            b.total_w()
        );
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn empty_model_list_panics() {
        let _ = PowerModel::new(vec![], 0.9);
    }
}
