//! The assembled system-on-chip: DVFS + execution + VSync + power +
//! thermal, advanced in lockstep by [`Soc::tick`].
//!
//! One tick simulates `dt` seconds of the platform running a given
//! [`FrameDemand`]: the kernel's utilisation-tracking policy picks
//! frequencies within the policy caps, the frame pipeline renders and
//! presents frames through VSync, the power model integrates the
//! resulting utilisation, and the thermal network absorbs the dissipated
//! heat. The output mirrors exactly what the paper's agent can observe
//! on the real device: frequencies, FPS, power and sensor temperatures.

use crate::dvfs::DvfsController;
use crate::freq::{ClusterId, KiloHertz, Opp, OppTable};
use crate::perf::{self, FrameDemand};
use crate::power::{PowerBreakdown, PowerModel};
use crate::thermal::{SensorId, ThermalConfig, ThermalNetwork};
use crate::throttle::{ThrottleConfig, Throttler};
use crate::vsync::{VsyncOutput, VsyncPipeline};
use crate::{Error, Result};

/// Configuration of a simulated SoC platform.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// Per-cluster OPP tables.
    pub tables: [OppTable; 3],
    /// Power model.
    pub power: PowerModel,
    /// Thermal network description.
    pub thermal: ThermalConfig,
    /// Display refresh rate in Hz.
    pub refresh_hz: f64,
    /// Whether the in-kernel utilisation-tracking frequency selection
    /// runs every tick (disable to drive levels fully externally).
    pub util_selection: bool,
    /// Hardware thermal throttling configuration.
    pub throttle: ThrottleConfig,
}

impl SocConfig {
    /// The Galaxy Note 9 configuration used throughout the paper:
    /// Exynos 9810 ladders, calibrated power/thermal models, 60 Hz
    /// display, 21 °C ambient, util-tracking enabled.
    #[must_use]
    pub fn exynos9810() -> Self {
        SocConfig {
            tables: [
                OppTable::exynos9810_big(),
                OppTable::exynos9810_little(),
                OppTable::exynos9810_gpu(),
            ],
            power: PowerModel::exynos9810(),
            thermal: ThermalConfig::exynos9810(21.0),
            refresh_hz: 60.0,
            util_selection: true,
            throttle: ThrottleConfig::exynos9810(),
        }
    }

    /// Same platform at a different ambient temperature.
    #[must_use]
    pub fn exynos9810_at_ambient(ambient_c: f64) -> Self {
        let mut cfg = SocConfig::exynos9810();
        cfg.thermal.ambient_c = ambient_c;
        cfg
    }
}

/// Everything a governor can observe after a tick — the paper's state
/// vector (§IV-B): per-cluster frequencies, current FPS, power, and the
/// big-cluster and device temperatures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocState {
    /// Simulated wall-clock time in seconds.
    pub time_s: f64,
    /// Current frequency per cluster in kHz, by [`ClusterId::index`].
    pub freq_khz: [KiloHertz; 3],
    /// Current OPP level per cluster.
    pub freq_level: [usize; 3],
    /// Current `maxfreq` cap level per cluster.
    pub max_cap_level: [usize; 3],
    /// Presented frames per second over the rolling FPS window
    /// (≈0.5 s) — the rate frame-rate instrumentation reports.
    pub fps: f64,
    /// Total platform power over the last tick, in watts.
    pub power_w: f64,
    /// Big-cluster sensor temperature, °C.
    pub temp_big_c: f64,
    /// LITTLE-cluster sensor temperature, °C.
    pub temp_little_c: f64,
    /// GPU sensor temperature, °C.
    pub temp_gpu_c: f64,
    /// Virtual device sensor temperature, °C.
    pub temp_device_c: f64,
    /// Battery/board sensor temperature, °C.
    pub temp_battery_c: f64,
    /// Per-cluster utilisation over the last tick.
    pub util: [f64; 3],
}

impl SocState {
    /// Frequency of one cluster in kHz.
    #[must_use]
    pub fn freq_of(&self, id: ClusterId) -> KiloHertz {
        self.freq_khz[id.index()]
    }
}

/// Detailed result of one [`Soc::tick`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickOutput {
    /// Interval length in seconds.
    pub dt_s: f64,
    /// Presented frames per second over the interval.
    pub fps: f64,
    /// Raw VSync accounting.
    pub vsync: VsyncOutput,
    /// Power breakdown over the interval.
    pub power: PowerBreakdown,
    /// Total power in watts (convenience for `power.total_w()`).
    pub power_w: f64,
    /// Per-cluster utilisation.
    pub util: [f64; 3],
    /// Operating points used during the interval.
    pub opps: [Opp; 3],
}

/// Length of the rolling window behind [`SocState::fps`], seconds.
/// Instantaneous per-tick rates quantise to multiples of the tick/VSync
/// ratio (e.g. 40/80 FPS at 25 ms ticks); half a second of history is
/// what Android's frame-rate instrumentation effectively reports.
const FPS_WINDOW_S: f64 = 0.5;

/// The simulated SoC platform.
#[derive(Debug, Clone)]
pub struct Soc {
    dvfs: DvfsController,
    power: PowerModel,
    thermal: ThermalNetwork,
    vsync: VsyncPipeline,
    util_selection: bool,
    throttler: Throttler,
    last_utils: [f64; 3],
    time_s: f64,
    last_state: SocState,
    /// Rolling (dt, presented) history for the FPS window.
    fps_history: std::collections::VecDeque<(f64, u32)>,
}

impl Soc {
    /// Builds the platform from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the thermal configuration is invalid (the presets never
    /// are); use [`Soc::try_new`] to handle that case.
    #[must_use]
    pub fn new(config: SocConfig) -> Self {
        Soc::try_new(config).expect("invalid SocConfig")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the thermal network or
    /// refresh rate is invalid.
    pub fn try_new(config: SocConfig) -> Result<Self> {
        if !(config.refresh_hz > 0.0 && config.refresh_hz.is_finite()) {
            return Err(Error::InvalidConfig(
                "refresh rate must be positive".to_owned(),
            ));
        }
        // Size the throttler from each cluster's ladder.
        let mut sizes = [0usize; 3];
        for t in &config.tables {
            sizes[t.cluster().index()] = t.len();
        }
        let throttler = Throttler::new(config.throttle, sizes);
        let dvfs = DvfsController::new(config.tables);
        let thermal = ThermalNetwork::new(config.thermal)?;
        let vsync = VsyncPipeline::new(config.refresh_hz);
        let mut soc = Soc {
            dvfs,
            power: config.power,
            thermal,
            vsync,
            util_selection: config.util_selection,
            throttler,
            last_utils: [0.0; 3],
            time_s: 0.0,
            last_state: SocState {
                time_s: 0.0,
                freq_khz: [0; 3],
                freq_level: [0; 3],
                max_cap_level: [0; 3],
                fps: 0.0,
                power_w: 0.0,
                temp_big_c: 0.0,
                temp_little_c: 0.0,
                temp_gpu_c: 0.0,
                temp_device_c: 0.0,
                temp_battery_c: 0.0,
                util: [0.0; 3],
            },
            fps_history: std::collections::VecDeque::new(),
        };
        soc.refresh_state(0.0, 0.0);
        Ok(soc)
    }

    /// DVFS controller (read access).
    #[must_use]
    pub fn dvfs(&self) -> &DvfsController {
        &self.dvfs
    }

    /// DVFS controller (the governor's actuator).
    pub fn dvfs_mut(&mut self) -> &mut DvfsController {
        &mut self.dvfs
    }

    /// Thermal network (read access).
    #[must_use]
    pub fn thermal(&self) -> &ThermalNetwork {
        &self.thermal
    }

    /// Mutable thermal network (e.g. to change ambient temperature).
    pub fn thermal_mut(&mut self) -> &mut ThermalNetwork {
        &mut self.thermal
    }

    /// Hardware thermal throttler (read access).
    #[must_use]
    pub fn throttler(&self) -> &Throttler {
        &self.throttler
    }

    /// Simulated time in seconds.
    #[must_use]
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The governor-visible state after the most recent tick.
    #[must_use]
    pub fn state(&self) -> SocState {
        self.last_state
    }

    /// Enables or disables the in-kernel util-tracking selection.
    pub fn set_util_selection(&mut self, enabled: bool) {
        self.util_selection = enabled;
    }

    /// Advances the platform by `dt_s` seconds of `demand`.
    ///
    /// Steps, in order: kernel frequency selection (if enabled) based on
    /// the previous interval's utilisation, frame execution + VSync,
    /// power integration at the resulting utilisation, thermal update.
    pub fn tick(&mut self, dt_s: f64, demand: &FrameDemand) -> TickOutput {
        if self.util_selection {
            self.dvfs.select_by_util(self.last_utils);
        }
        // Hardware thermal throttling overrides every software policy:
        // clamp the effective level per cluster.
        let clamps = self.throttler.update([
            self.thermal.sensor_c(SensorId::BigCluster),
            self.thermal.sensor_c(SensorId::LittleCluster),
            self.thermal.sensor_c(SensorId::Gpu),
        ]);
        for id in ClusterId::ALL {
            let i = id.index();
            let dom = self.dvfs.domain_mut(id);
            if dom.current_level() > clamps[i] {
                // The hardware clamp outranks the software policy range.
                dom.force_level(clamps[i])
                    .expect("clamp level within table");
            }
        }
        let opps = self.dvfs.current_opps();
        let plan = perf::plan(demand, opps);
        let vout = self.vsync.tick(dt_s, plan.frame_period_s);
        let fps = vout.fps(dt_s);
        // The renderer runs at its natural rate until the display caps
        // it at the refresh rate; that achieved production rate — not
        // the presented FPS — is what loads the clusters.
        let produced_rate = plan.render_rate_hz().min(self.vsync.refresh_hz());
        let mut utils = [0.0f64; 3];
        for id in ClusterId::ALL {
            utils[id.index()] = plan.utilization(id, produced_rate);
        }
        let die_temps = [
            self.thermal.sensor_c(SensorId::BigCluster),
            self.thermal.sensor_c(SensorId::LittleCluster),
            self.thermal.sensor_c(SensorId::Gpu),
        ];
        let breakdown = self.power.evaluate(opps, utils, die_temps);
        let mut node_power = [0.0f64; crate::thermal::node::COUNT];
        for id in ClusterId::ALL {
            node_power[ThermalNetwork::cluster_node(id)] = breakdown.cluster(id);
        }
        node_power[ThermalNetwork::base_power_node()] += breakdown.base_w;
        self.thermal.step(&node_power, dt_s);

        self.last_utils = utils;
        self.time_s += dt_s.max(0.0);
        let windowed_fps = self.update_fps_window(dt_s, vout.presented);
        self.refresh_state(windowed_fps, breakdown.total_w());
        self.last_state.util = utils;

        TickOutput {
            dt_s,
            fps,
            vsync: vout,
            power: breakdown,
            power_w: breakdown.total_w(),
            util: utils,
            opps,
        }
    }

    /// Resets thermal state, VSync phase and time (frequencies and caps
    /// are preserved).
    pub fn reset(&mut self) {
        self.thermal.reset();
        self.throttler.reset();
        self.vsync = VsyncPipeline::new(self.vsync.refresh_hz());
        self.last_utils = [0.0; 3];
        self.time_s = 0.0;
        self.fps_history.clear();
        self.refresh_state(0.0, 0.0);
    }

    /// Pushes one tick into the rolling FPS window and returns the
    /// windowed rate — what [`SocState::fps`] reports.
    fn update_fps_window(&mut self, dt_s: f64, presented: u32) -> f64 {
        if dt_s > 0.0 {
            self.fps_history.push_back((dt_s, presented));
        }
        let mut total_dt: f64 = self.fps_history.iter().map(|(d, _)| d).sum();
        while let Some(&(front_dt, _)) = self.fps_history.front() {
            if total_dt - front_dt >= FPS_WINDOW_S {
                self.fps_history.pop_front();
                total_dt -= front_dt;
            } else {
                break;
            }
        }
        if total_dt <= 0.0 {
            return 0.0;
        }
        let frames: u32 = self.fps_history.iter().map(|(_, p)| p).sum();
        // VSync boundaries need not align with the window edge, so the
        // raw quotient can exceed the refresh rate by a fraction of a
        // frame; clamp to the physical maximum.
        (f64::from(frames) / total_dt).min(self.vsync.refresh_hz())
    }

    fn refresh_state(&mut self, fps: f64, power_w: f64) {
        let mut freq_khz = [0u32; 3];
        let mut freq_level = [0usize; 3];
        let mut max_cap_level = [0usize; 3];
        for id in ClusterId::ALL {
            let d = self.dvfs.domain(id);
            freq_khz[id.index()] = d.current().freq_khz;
            freq_level[id.index()] = d.current_level();
            max_cap_level[id.index()] = d.max_cap_level();
        }
        self.last_state = SocState {
            time_s: self.time_s,
            freq_khz,
            freq_level,
            max_cap_level,
            fps,
            power_w,
            temp_big_c: self.thermal.sensor_c(SensorId::BigCluster),
            temp_little_c: self.thermal.sensor_c(SensorId::LittleCluster),
            temp_gpu_c: self.thermal.sensor_c(SensorId::Gpu),
            temp_device_c: self.thermal.sensor_c(SensorId::Device),
            temp_battery_c: self.thermal.sensor_c(SensorId::Battery),
            util: self.last_utils,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light_ui() -> FrameDemand {
        FrameDemand::new(3.0e6, 1.5e6, 4.0e6).with_background(0.05e9, 0.05e9, 0.0)
    }

    fn heavy_game() -> FrameDemand {
        FrameDemand::new(22.0e6, 6.0e6, 30.0e6).with_background(0.3e9, 0.1e9, 0.0)
    }

    fn run(soc: &mut Soc, demand: &FrameDemand, seconds: f64) -> (f64, f64) {
        let mut fps_sum = 0.0;
        let mut pow_sum = 0.0;
        let ticks = (seconds / 0.025) as usize;
        for _ in 0..ticks {
            let o = soc.tick(0.025, demand);
            fps_sum += o.fps;
            pow_sum += o.power_w;
        }
        (fps_sum / ticks as f64, pow_sum / ticks as f64)
    }

    #[test]
    fn light_ui_reaches_60fps_under_util_tracking() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let (fps, power) = run(&mut soc, &light_ui(), 10.0);
        assert!(fps > 50.0, "avg fps {fps}");
        assert!(power > 0.9, "power {power} must exceed the platform floor");
    }

    #[test]
    fn heavy_game_draws_more_power_and_heat_than_light_ui() {
        let mut a = Soc::new(SocConfig::exynos9810());
        let mut b = Soc::new(SocConfig::exynos9810());
        let (_, p_light) = run(&mut a, &light_ui(), 30.0);
        let (_, p_heavy) = run(&mut b, &heavy_game(), 30.0);
        assert!(
            p_heavy > p_light * 1.5,
            "heavy {p_heavy} W vs light {p_light} W"
        );
        assert!(b.state().temp_big_c > a.state().temp_big_c);
    }

    #[test]
    fn frameless_audio_keeps_cpu_busy_with_zero_fps() {
        // The paper's Spotify observation: FPS ≈ 0, frequency and power
        // stay high.
        let mut soc = Soc::new(SocConfig::exynos9810());
        let audio = FrameDemand::new(0.0, 0.0, 0.0).with_background(1.2e9, 0.6e9, 0.0);
        let (fps, power) = run(&mut soc, &audio, 10.0);
        assert_eq!(fps, 0.0);
        assert!(power > 1.5, "background work must burn power: {power} W");
        assert!(
            soc.state().freq_of(ClusterId::Big) > 650_000,
            "util tracking must raise freq"
        );
    }

    #[test]
    fn maxfreq_cap_reduces_power_on_heavy_load() {
        let mut free = Soc::new(SocConfig::exynos9810());
        let mut capped = Soc::new(SocConfig::exynos9810());
        capped
            .dvfs_mut()
            .set_max_freq(ClusterId::Big, 1_170_000)
            .unwrap();
        capped
            .dvfs_mut()
            .set_max_freq(ClusterId::Gpu, 338_000)
            .unwrap();
        let (fps_free, p_free) = run(&mut free, &heavy_game(), 20.0);
        let (fps_capped, p_capped) = run(&mut capped, &heavy_game(), 20.0);
        assert!(
            p_capped < p_free,
            "cap must save power: {p_capped} vs {p_free}"
        );
        assert!(
            fps_capped < fps_free,
            "cap trades FPS: {fps_capped} vs {fps_free}"
        );
    }

    #[test]
    fn state_reflects_sensors_and_freqs() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        run(&mut soc, &heavy_game(), 5.0);
        let s = soc.state();
        assert!(s.temp_big_c > 21.0);
        assert!(s.temp_device_c > 21.0);
        assert!(
            s.temp_big_c >= s.temp_device_c,
            "hot spot above blended device sensor"
        );
        assert!(s.power_w > 1.0);
        assert_eq!(s.freq_khz[0], soc.dvfs().current_khz(ClusterId::Big));
        assert!(s.time_s > 4.9);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        run(&mut soc, &heavy_game(), 5.0);
        soc.reset();
        assert_eq!(soc.time_s(), 0.0);
        assert!((soc.state().temp_big_c - 21.0).abs() < 1e-9);
        assert_eq!(soc.state().fps, 0.0);
    }

    #[test]
    fn disabled_util_selection_keeps_levels() {
        let mut cfg = SocConfig::exynos9810();
        cfg.util_selection = false;
        let mut soc = Soc::new(cfg);
        let before = soc.dvfs().current_khz(ClusterId::Big);
        run(&mut soc, &heavy_game(), 2.0);
        assert_eq!(soc.dvfs().current_khz(ClusterId::Big), before);
    }

    #[test]
    fn invalid_refresh_rejected() {
        let mut cfg = SocConfig::exynos9810();
        cfg.refresh_hz = 0.0;
        assert!(Soc::try_new(cfg).is_err());
    }

    #[test]
    fn thermal_throttle_caps_sustained_heat() {
        // A low trip point plus a performance-pinned heavy load: the
        // clamp must engage and hold the die near the trip.
        let mut cfg = SocConfig::exynos9810();
        cfg.throttle = crate::throttle::ThrottleConfig {
            enabled: true,
            trip_c: [40.0, 40.0, 40.0],
            hysteresis_c: 3.0,
        };
        let mut soc = Soc::new(cfg);
        for id in ClusterId::ALL {
            let top = soc.dvfs().domain(id).table().max().freq_khz;
            soc.dvfs_mut().pin_freq(id, top).unwrap();
        }
        let demand = heavy_game();
        for _ in 0..(600.0 / 0.025) as usize {
            soc.tick(0.025, &demand);
        }
        assert!(soc.throttler().is_throttling(), "clamp should be engaged");
        assert!(
            soc.state().temp_big_c < 48.0,
            "throttle must bound the die temperature: {:.1} C",
            soc.state().temp_big_c
        );
        // An unthrottled twin runs hotter.
        let mut cfg = SocConfig::exynos9810();
        cfg.throttle = crate::throttle::ThrottleConfig::disabled();
        let mut hot = Soc::new(cfg);
        for id in ClusterId::ALL {
            let top = hot.dvfs().domain(id).table().max().freq_khz;
            hot.dvfs_mut().pin_freq(id, top).unwrap();
        }
        for _ in 0..(600.0 / 0.025) as usize {
            hot.tick(0.025, &demand);
        }
        assert!(hot.state().temp_big_c > soc.state().temp_big_c + 3.0);
    }

    #[test]
    fn fps_never_exceeds_refresh_rate() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let tiny = FrameDemand::new(1.0e4, 1.0e4, 1.0e4);
        let (fps, _) = run(&mut soc, &tiny, 5.0);
        assert!(fps <= 60.0 + 1e-9, "fps {fps}");
    }
}
