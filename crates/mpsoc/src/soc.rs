//! The assembled system-on-chip: DVFS + execution + VSync + power +
//! thermal, advanced in lockstep by [`Soc::tick`].
//!
//! One tick simulates `dt` seconds of the platform running a given
//! [`FrameDemand`]: the kernel's utilisation-tracking policy picks
//! frequencies within the policy caps, the frame pipeline renders and
//! presents frames through VSync, the power model integrates the
//! resulting utilisation, and the thermal network absorbs the dissipated
//! heat. The output mirrors exactly what the paper's agent can observe
//! on the real device: frequencies, FPS, power and sensor temperatures.
//!
//! Which — and how many — DVFS domains exist is entirely a property of
//! the [`Platform`] descriptor in the [`SocConfig`]; nothing in this
//! module assumes the paper's big/LITTLE/GPU triple.

use crate::dvfs::DvfsController;
use crate::freq::KiloHertz;
use crate::perf::{self, FrameDemand};
use crate::platform::{DomainId, PerDomain, Platform};
use crate::power::{PowerBreakdown, PowerModel};
use crate::thermal::{NodeId, ThermalConfig, ThermalNetwork, DEFAULT_AMBIENT_C};
use crate::throttle::{ThrottleConfig, Throttler};
use crate::vsync::{VsyncOutput, VsyncPipeline};
use crate::{Error, Result};

/// Configuration of a simulated SoC platform.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// The platform descriptor: ordered DVFS domains with their OPP
    /// ladders, power models and thermal coupling.
    pub platform: Platform,
    /// Thermal network description.
    pub thermal: ThermalConfig,
    /// Display refresh rate in Hz.
    pub refresh_hz: f64,
    /// Whether the in-kernel utilisation-tracking frequency selection
    /// runs every tick (disable to drive levels fully externally).
    pub util_selection: bool,
    /// Hardware thermal throttling configuration.
    pub throttle: ThrottleConfig,
}

impl SocConfig {
    /// The Galaxy Note 9 configuration used throughout the paper:
    /// Exynos 9810 ladders, calibrated power/thermal models, 60 Hz
    /// display, [`DEFAULT_AMBIENT_C`] ambient, util-tracking enabled.
    #[must_use]
    pub fn exynos9810() -> Self {
        SocConfig {
            platform: Platform::exynos9810(),
            thermal: ThermalConfig::exynos9810(DEFAULT_AMBIENT_C),
            refresh_hz: 60.0,
            util_selection: true,
            throttle: ThrottleConfig::exynos9810(),
        }
    }

    /// The Galaxy-S10-class tri-cluster-CPU + GPU configuration
    /// (`m = 4`, see [`Platform::exynos9820`]).
    #[must_use]
    pub fn exynos9820() -> Self {
        let platform = Platform::exynos9820();
        let throttle = ThrottleConfig::for_platform(&platform);
        SocConfig {
            platform,
            thermal: ThermalConfig::exynos9820(DEFAULT_AMBIENT_C),
            refresh_hz: 60.0,
            util_selection: true,
            throttle,
        }
    }

    /// Looks a shipped platform preset up by name (see
    /// [`Platform::preset_names`]).
    #[must_use]
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "exynos9810" => Some(SocConfig::exynos9810()),
            "exynos9820" => Some(SocConfig::exynos9820()),
            _ => None,
        }
    }

    /// The same device at a different ambient temperature (the
    /// thermostat of §V).
    #[must_use]
    pub fn with_ambient(mut self, ambient_c: f64) -> Self {
        self.thermal.ambient_c = ambient_c;
        self
    }

    /// The stock Exynos 9810 at a different ambient temperature.
    #[must_use]
    pub fn exynos9810_at_ambient(ambient_c: f64) -> Self {
        SocConfig::exynos9810().with_ambient(ambient_c)
    }
}

/// Everything a governor can observe after a tick — the paper's state
/// vector (§IV-B): per-domain frequencies, current FPS, power, and the
/// hot-spot and device temperatures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocState {
    /// Simulated wall-clock time in seconds.
    pub time_s: f64,
    /// Current frequency per domain in kHz, in platform order.
    pub freq_khz: PerDomain<KiloHertz>,
    /// Current OPP level per domain.
    pub freq_level: PerDomain<usize>,
    /// Current `maxfreq` cap level per domain.
    pub max_cap_level: PerDomain<usize>,
    /// Presented frames per second over the rolling FPS window
    /// (≈0.5 s) — the rate frame-rate instrumentation reports.
    pub fps: f64,
    /// Total platform power over the last tick, in watts.
    pub power_w: f64,
    /// Die sensor temperature of every domain, °C, in platform order.
    pub temp_domain_c: PerDomain<f64>,
    /// Temperature of the platform's designated hot-spot domain, °C —
    /// the paper's `Temperature_big` observation (the big cluster on
    /// both shipped presets).
    pub temp_hot_c: f64,
    /// Virtual device sensor temperature, °C.
    pub temp_device_c: f64,
    /// Battery/board sensor temperature, °C.
    pub temp_battery_c: f64,
    /// Per-domain utilisation over the last tick.
    pub util: PerDomain<f64>,
}

impl SocState {
    /// Frequency of one domain in kHz.
    #[must_use]
    pub fn freq_of(&self, id: DomainId) -> KiloHertz {
        self.freq_khz[id.index()]
    }

    /// Number of DVFS domains observed.
    #[must_use]
    pub fn n_domains(&self) -> usize {
        self.freq_khz.len()
    }
}

/// Detailed result of one [`Soc::tick`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickOutput {
    /// Interval length in seconds.
    pub dt_s: f64,
    /// Presented frames per second over the interval.
    pub fps: f64,
    /// Raw VSync accounting.
    pub vsync: VsyncOutput,
    /// Power breakdown over the interval.
    pub power: PowerBreakdown,
    /// Total power in watts (convenience for `power.total_w()`).
    pub power_w: f64,
    /// Per-domain utilisation.
    pub util: PerDomain<f64>,
    /// Operating points used during the interval, in platform order.
    pub opps: PerDomain<crate::freq::Opp>,
}

/// Length of the rolling window behind [`SocState::fps`], seconds.
/// Instantaneous per-tick rates quantise to multiples of the tick/VSync
/// ratio (e.g. 40/80 FPS at 25 ms ticks); half a second of history is
/// what Android's frame-rate instrumentation effectively reports.
pub(crate) const FPS_WINDOW_S: f64 = 0.5;

/// The simulated SoC platform.
#[derive(Debug, Clone)]
pub struct Soc {
    platform: Platform,
    dvfs: DvfsController,
    power: PowerModel,
    thermal: ThermalNetwork,
    vsync: VsyncPipeline,
    util_selection: bool,
    throttler: Throttler,
    /// Thermal node of every domain, in platform order (cached).
    die_nodes: PerDomain<NodeId>,
    last_utils: PerDomain<f64>,
    time_s: f64,
    last_state: SocState,
    /// Reused per-tick node-power buffer (one slot per thermal node).
    node_power: Vec<f64>,
    /// Rolling (dt, presented) history for the FPS window.
    fps_history: std::collections::VecDeque<(f64, u32)>,
}

impl Soc {
    /// Builds the platform from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (the presets never are);
    /// use [`Soc::try_new`] to handle that case.
    #[must_use]
    pub fn new(config: SocConfig) -> Self {
        // qlint::allow(PN01, reason = "documented panicking constructor; fallible callers use Soc::try_new")
        Soc::try_new(config).expect("invalid SocConfig")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the thermal network or
    /// refresh rate is invalid, or a domain references a thermal node
    /// outside the network.
    pub fn try_new(config: SocConfig) -> Result<Self> {
        if !(config.refresh_hz > 0.0 && config.refresh_hz.is_finite()) {
            return Err(Error::InvalidConfig(
                "refresh rate must be positive".to_owned(),
            ));
        }
        let platform = config.platform;
        for d in platform.domains() {
            if d.thermal_node >= config.thermal.nodes.len() {
                return Err(Error::InvalidConfig(format!(
                    "domain '{}' references thermal node {} outside the network",
                    d.name, d.thermal_node
                )));
            }
        }
        let n = platform.n_domains();
        let sizes = platform.freq_levels();
        let throttler = Throttler::new(config.throttle, &sizes);
        let dvfs = DvfsController::for_platform(&platform);
        let power = PowerModel::for_platform(&platform);
        let thermal = ThermalNetwork::new(config.thermal)?;
        let vsync = VsyncPipeline::new(config.refresh_hz);
        let die_nodes = PerDomain::from_fn(n, |i| platform.domains()[i].thermal_node);
        let node_power = vec![0.0; thermal.n_nodes()];
        let mut soc = Soc {
            platform,
            dvfs,
            power,
            thermal,
            vsync,
            util_selection: config.util_selection,
            throttler,
            die_nodes,
            last_utils: PerDomain::new(n),
            time_s: 0.0,
            last_state: SocState {
                time_s: 0.0,
                freq_khz: PerDomain::new(n),
                freq_level: PerDomain::new(n),
                max_cap_level: PerDomain::new(n),
                fps: 0.0,
                power_w: 0.0,
                temp_domain_c: PerDomain::new(n),
                temp_hot_c: 0.0,
                temp_device_c: 0.0,
                temp_battery_c: 0.0,
                util: PerDomain::new(n),
            },
            node_power,
            fps_history: std::collections::VecDeque::new(),
        };
        soc.refresh_state(0.0, 0.0);
        Ok(soc)
    }

    /// The platform descriptor this device runs.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// DVFS controller (read access).
    #[must_use]
    pub fn dvfs(&self) -> &DvfsController {
        &self.dvfs
    }

    /// DVFS controller (the governor's actuator).
    pub fn dvfs_mut(&mut self) -> &mut DvfsController {
        &mut self.dvfs
    }

    /// Thermal network (read access).
    #[must_use]
    pub fn thermal(&self) -> &ThermalNetwork {
        &self.thermal
    }

    /// Mutable thermal network (e.g. to change ambient temperature).
    pub fn thermal_mut(&mut self) -> &mut ThermalNetwork {
        &mut self.thermal
    }

    /// Hardware thermal throttler (read access).
    #[must_use]
    pub fn throttler(&self) -> &Throttler {
        &self.throttler
    }

    /// Simulated time in seconds.
    #[must_use]
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The governor-visible state after the most recent tick.
    #[must_use]
    pub fn state(&self) -> SocState {
        self.last_state
    }

    /// Enables or disables the in-kernel util-tracking selection.
    pub fn set_util_selection(&mut self, enabled: bool) {
        self.util_selection = enabled;
    }

    /// Die sensor temperatures per domain, in platform order.
    fn die_temps(&self) -> PerDomain<f64> {
        PerDomain::from_fn(self.die_nodes.len(), |i| {
            self.thermal.node_temp_c(self.die_nodes[i])
        })
    }

    /// Advances the platform by `dt_s` seconds of `demand`.
    ///
    /// Steps, in order: kernel frequency selection (if enabled) based on
    /// the previous interval's utilisation, frame execution + VSync,
    /// power integration at the resulting utilisation, thermal update.
    pub fn tick(&mut self, dt_s: f64, demand: &FrameDemand) -> TickOutput {
        let n = self.platform.n_domains();
        if self.util_selection {
            self.dvfs.select_by_util(&self.last_utils);
        }
        // Hardware thermal throttling overrides every software policy:
        // clamp the effective level per domain.
        let die_temps = self.die_temps();
        let clamps = self.throttler.update(&die_temps);
        for id in self.platform.ids() {
            let i = id.index();
            let dom = self.dvfs.domain_mut(id);
            if dom.current_level() > clamps[i] {
                // The hardware clamp outranks the software policy range.
                dom.force_level(clamps[i])
                    // qlint::allow(PN01, reason = "thermal clamps are computed from this domain's own ladder length")
                    .expect("clamp level within table");
            }
        }
        let opps = self.dvfs.current_opps();
        let plan = perf::plan(demand, &opps, &self.platform);
        let vout = self.vsync.tick(dt_s, plan.frame_period_s);
        let fps = vout.fps(dt_s);
        // The renderer runs at its natural rate until the display caps
        // it at the refresh rate; that achieved production rate — not
        // the presented FPS — is what loads the domains.
        let produced_rate = plan.render_rate_hz().min(self.vsync.refresh_hz());
        let utils = PerDomain::from_fn(n, |i| plan.utilization(DomainId::new(i), produced_rate));
        let breakdown = self.power.evaluate(&opps, &utils, &die_temps);
        self.node_power.fill(0.0);
        for i in 0..n {
            self.node_power[self.die_nodes[i]] += breakdown.domain_w[i];
        }
        self.node_power[self.thermal.base_power_node()] += breakdown.base_w;
        self.thermal.step(&self.node_power, dt_s);

        self.last_utils = utils;
        self.time_s += dt_s.max(0.0);
        let windowed_fps = self.update_fps_window(dt_s, vout.presented);
        self.refresh_state(windowed_fps, breakdown.total_w());
        self.last_state.util = utils;

        TickOutput {
            dt_s,
            fps,
            vsync: vout,
            power: breakdown,
            power_w: breakdown.total_w(),
            util: utils,
            opps,
        }
    }

    /// Resets thermal state, VSync phase and time (frequencies and caps
    /// are preserved).
    pub fn reset(&mut self) {
        self.thermal.reset();
        self.throttler.reset();
        self.vsync = VsyncPipeline::new(self.vsync.refresh_hz());
        self.last_utils = PerDomain::new(self.platform.n_domains());
        self.time_s = 0.0;
        self.fps_history.clear();
        self.refresh_state(0.0, 0.0);
    }

    /// Pushes one tick into the rolling FPS window and returns the
    /// windowed rate — what [`SocState::fps`] reports.
    fn update_fps_window(&mut self, dt_s: f64, presented: u32) -> f64 {
        if dt_s > 0.0 {
            self.fps_history.push_back((dt_s, presented));
        }
        let mut total_dt: f64 = self.fps_history.iter().map(|(d, _)| d).sum();
        while let Some(&(front_dt, _)) = self.fps_history.front() {
            if total_dt - front_dt >= FPS_WINDOW_S {
                self.fps_history.pop_front();
                total_dt -= front_dt;
            } else {
                break;
            }
        }
        if total_dt <= 0.0 {
            return 0.0;
        }
        let frames: u32 = self.fps_history.iter().map(|(_, p)| p).sum();
        // VSync boundaries need not align with the window edge, so the
        // raw quotient can exceed the refresh rate by a fraction of a
        // frame; clamp to the physical maximum.
        (f64::from(frames) / total_dt).min(self.vsync.refresh_hz())
    }

    fn refresh_state(&mut self, fps: f64, power_w: f64) {
        let n = self.platform.n_domains();
        let freq_khz =
            PerDomain::from_fn(n, |i| self.dvfs.domain(DomainId::new(i)).current().freq_khz);
        let freq_level =
            PerDomain::from_fn(n, |i| self.dvfs.domain(DomainId::new(i)).current_level());
        let max_cap_level =
            PerDomain::from_fn(n, |i| self.dvfs.domain(DomainId::new(i)).max_cap_level());
        let temp_domain_c = self.die_temps();
        self.last_state = SocState {
            time_s: self.time_s,
            freq_khz,
            freq_level,
            max_cap_level,
            fps,
            power_w,
            temp_domain_c,
            temp_hot_c: temp_domain_c[self.platform.hot_domain().index()],
            temp_device_c: self.thermal.device_sensor_c(&self.die_nodes),
            temp_battery_c: self.thermal.board_c(),
            util: self.last_utils,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big() -> DomainId {
        DomainId::new(0)
    }
    fn gpu() -> DomainId {
        DomainId::new(2)
    }

    fn light_ui() -> FrameDemand {
        FrameDemand::new(3.0e6, 1.5e6, 4.0e6).with_background(0.05e9, 0.05e9, 0.0)
    }

    fn heavy_game() -> FrameDemand {
        FrameDemand::new(22.0e6, 6.0e6, 30.0e6).with_background(0.3e9, 0.1e9, 0.0)
    }

    fn run(soc: &mut Soc, demand: &FrameDemand, seconds: f64) -> (f64, f64) {
        let mut fps_sum = 0.0;
        let mut pow_sum = 0.0;
        let ticks = (seconds / 0.025) as usize;
        for _ in 0..ticks {
            let o = soc.tick(0.025, demand);
            fps_sum += o.fps;
            pow_sum += o.power_w;
        }
        (fps_sum / ticks as f64, pow_sum / ticks as f64)
    }

    #[test]
    fn light_ui_reaches_60fps_under_util_tracking() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let (fps, power) = run(&mut soc, &light_ui(), 10.0);
        assert!(fps > 50.0, "avg fps {fps}");
        assert!(power > 0.9, "power {power} must exceed the platform floor");
    }

    #[test]
    fn heavy_game_draws_more_power_and_heat_than_light_ui() {
        let mut a = Soc::new(SocConfig::exynos9810());
        let mut b = Soc::new(SocConfig::exynos9810());
        let (_, p_light) = run(&mut a, &light_ui(), 30.0);
        let (_, p_heavy) = run(&mut b, &heavy_game(), 30.0);
        assert!(
            p_heavy > p_light * 1.5,
            "heavy {p_heavy} W vs light {p_light} W"
        );
        assert!(b.state().temp_hot_c > a.state().temp_hot_c);
    }

    #[test]
    fn frameless_audio_keeps_cpu_busy_with_zero_fps() {
        // The paper's Spotify observation: FPS ≈ 0, frequency and power
        // stay high.
        let mut soc = Soc::new(SocConfig::exynos9810());
        let audio = FrameDemand::new(0.0, 0.0, 0.0).with_background(1.2e9, 0.6e9, 0.0);
        let (fps, power) = run(&mut soc, &audio, 10.0);
        assert_eq!(fps, 0.0);
        assert!(power > 1.5, "background work must burn power: {power} W");
        assert!(
            soc.state().freq_of(big()) > 650_000,
            "util tracking must raise freq"
        );
    }

    #[test]
    fn maxfreq_cap_reduces_power_on_heavy_load() {
        let mut free = Soc::new(SocConfig::exynos9810());
        let mut capped = Soc::new(SocConfig::exynos9810());
        capped.dvfs_mut().set_max_freq(big(), 1_170_000).unwrap();
        capped.dvfs_mut().set_max_freq(gpu(), 338_000).unwrap();
        let (fps_free, p_free) = run(&mut free, &heavy_game(), 20.0);
        let (fps_capped, p_capped) = run(&mut capped, &heavy_game(), 20.0);
        assert!(
            p_capped < p_free,
            "cap must save power: {p_capped} vs {p_free}"
        );
        assert!(
            fps_capped < fps_free,
            "cap trades FPS: {fps_capped} vs {fps_free}"
        );
    }

    #[test]
    fn state_reflects_sensors_and_freqs() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        run(&mut soc, &heavy_game(), 5.0);
        let s = soc.state();
        assert!(s.temp_hot_c > 21.0);
        assert!(s.temp_device_c > 21.0);
        assert!(
            s.temp_hot_c >= s.temp_device_c,
            "hot spot above blended device sensor"
        );
        assert!(s.power_w > 1.0);
        assert_eq!(s.freq_khz[0], soc.dvfs().current_khz(big()));
        assert_eq!(s.temp_hot_c, s.temp_domain_c[0]);
        assert!(s.time_s > 4.9);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        run(&mut soc, &heavy_game(), 5.0);
        soc.reset();
        assert_eq!(soc.time_s(), 0.0);
        assert!((soc.state().temp_hot_c - 21.0).abs() < 1e-9);
        assert_eq!(soc.state().fps, 0.0);
    }

    #[test]
    fn disabled_util_selection_keeps_levels() {
        let mut cfg = SocConfig::exynos9810();
        cfg.util_selection = false;
        let mut soc = Soc::new(cfg);
        let before = soc.dvfs().current_khz(big());
        run(&mut soc, &heavy_game(), 2.0);
        assert_eq!(soc.dvfs().current_khz(big()), before);
    }

    #[test]
    fn invalid_refresh_rejected() {
        let mut cfg = SocConfig::exynos9810();
        cfg.refresh_hz = 0.0;
        assert!(Soc::try_new(cfg).is_err());
    }

    #[test]
    fn dangling_thermal_node_rejected() {
        let mut cfg = SocConfig::exynos9820();
        // The 9810 thermal network has only 5 nodes; the 9820 platform
        // maps its GPU to node 3 and board to 4, but its domains expect
        // nodes the smaller network does provide — so cross the configs
        // the other way round to produce a dangling reference.
        cfg.thermal = ThermalConfig {
            nodes: cfg.thermal.nodes[..3].to_vec(),
            edges: vec![],
            ambient_c: 21.0,
            board_node: 0,
            skin_node: 1,
        };
        cfg.thermal.nodes[0].to_ambient_w_per_k = 0.1;
        assert!(Soc::try_new(cfg).is_err());
    }

    #[test]
    fn exynos9820_runs_end_to_end() {
        let mut soc = Soc::new(SocConfig::exynos9820());
        assert_eq!(soc.platform().n_domains(), 4);
        let (fps, power) = run(&mut soc, &light_ui(), 10.0);
        assert!(fps > 50.0, "avg fps {fps}");
        assert!(power > 0.9, "power {power}");
        let s = soc.state();
        assert_eq!(s.n_domains(), 4);
        assert!(s.temp_hot_c > 21.0);
        assert!(s.temp_device_c > 21.0);
        assert!(s.temp_domain_c.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn with_ambient_shifts_the_whole_device() {
        let mut warm = Soc::new(SocConfig::exynos9810().with_ambient(35.0));
        let mut cool = Soc::new(SocConfig::exynos9810());
        run(&mut warm, &light_ui(), 5.0);
        run(&mut cool, &light_ui(), 5.0);
        assert!(warm.state().temp_hot_c > cool.state().temp_hot_c + 10.0);
    }

    #[test]
    fn preset_lookup_matches_constructors() {
        assert!(SocConfig::preset("exynos9810").is_some());
        assert_eq!(
            SocConfig::preset("exynos9820")
                .unwrap()
                .platform
                .n_domains(),
            4
        );
        assert!(SocConfig::preset("tegra").is_none());
    }

    #[test]
    fn thermal_throttle_caps_sustained_heat() {
        // A low trip point plus a performance-pinned heavy load: the
        // clamp must engage and hold the die near the trip.
        let mut cfg = SocConfig::exynos9810();
        cfg.throttle = crate::throttle::ThrottleConfig {
            enabled: true,
            trip_c: vec![40.0, 40.0, 40.0],
            hysteresis_c: 3.0,
        };
        let mut soc = Soc::new(cfg);
        for id in [big(), DomainId::new(1), gpu()] {
            let top = soc.dvfs().domain(id).table().max().freq_khz;
            soc.dvfs_mut().pin_freq(id, top).unwrap();
        }
        let demand = heavy_game();
        for _ in 0..(600.0 / 0.025) as usize {
            soc.tick(0.025, &demand);
        }
        assert!(soc.throttler().is_throttling(), "clamp should be engaged");
        assert!(
            soc.state().temp_hot_c < 48.0,
            "throttle must bound the die temperature: {:.1} C",
            soc.state().temp_hot_c
        );
        // An unthrottled twin runs hotter.
        let mut cfg = SocConfig::exynos9810();
        cfg.throttle = crate::throttle::ThrottleConfig::disabled();
        let mut hot = Soc::new(cfg);
        for id in [big(), DomainId::new(1), gpu()] {
            let top = hot.dvfs().domain(id).table().max().freq_khz;
            hot.dvfs_mut().pin_freq(id, top).unwrap();
        }
        for _ in 0..(600.0 / 0.025) as usize {
            hot.tick(0.025, &demand);
        }
        assert!(hot.state().temp_hot_c > soc.state().temp_hot_c + 3.0);
    }

    #[test]
    fn fps_never_exceeds_refresh_rate() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let tiny = FrameDemand::new(1.0e4, 1.0e4, 1.0e4);
        let (fps, _) = run(&mut soc, &tiny, 5.0);
        assert!(fps <= 60.0 + 1e-9, "fps {fps}");
    }
}
