//! Lumped RC (compact) thermal network of the phone.
//!
//! Thermal nodes model the handset: one node per PE-cluster die region,
//! plus the board (PCB + battery mass) and the skin (back glass +
//! frame), coupled by thermal conductances and each with a heat
//! capacity. Heat escapes only through the skin-to-ambient conductance,
//! so sustained power raises every node — the thermal inertia the
//! paper's peak-temperature experiments (Figs. 3 and 8) rely on.
//!
//! The network is integrated with forward Euler using automatic
//! sub-stepping chosen from the smallest node time constant, so `step`
//! is unconditionally stable for any caller-supplied `dt`.
//!
//! Sensor layout follows §III-A: per-die sensors (which node carries
//! which DVFS domain is declared by the [`crate::platform::Platform`]),
//! a battery sensor on the board node, and a "virtual sensor" for the
//! overall device, computed from board and skin temperatures with a
//! documented surrogate of the manufacturer's proprietary formula.

use crate::{Error, Result};

/// Index of a thermal node in the network.
pub type NodeId = usize;

/// The ambient temperature of the paper's experiments: a
/// thermostat-controlled 21 °C room (§V). Every preset and default in
/// the workspace derives its ambient from this single constant.
pub const DEFAULT_AMBIENT_C: f64 = 21.0;

/// Configuration of one thermal node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Human-readable node name (for diagnostics).
    pub name: String,
    /// Heat capacity in J/K. Must be positive.
    pub capacitance_j_per_k: f64,
    /// Conductance from this node directly to ambient, in W/K
    /// (0 for internal nodes).
    pub to_ambient_w_per_k: f64,
}

/// A conductive link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeConfig {
    /// First node.
    pub a: NodeId,
    /// Second node.
    pub b: NodeId,
    /// Conductance in W/K. Must be positive.
    pub conductance_w_per_k: f64,
}

/// Immutable description of a thermal network.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalConfig {
    /// Thermal nodes.
    pub nodes: Vec<NodeConfig>,
    /// Conductive links.
    pub edges: Vec<EdgeConfig>,
    /// Ambient temperature in °C.
    pub ambient_c: f64,
    /// Node representing the board/battery mass (the battery sensor,
    /// and the sink for the constant platform-floor power).
    pub board_node: NodeId,
    /// Node representing the device skin.
    pub skin_node: NodeId,
}

/// Node indices of the Exynos 9810 preset network.
pub mod node {
    use super::NodeId;
    /// Big CPU cluster die region.
    pub const BIG: NodeId = 0;
    /// LITTLE CPU cluster die region.
    pub const LITTLE: NodeId = 1;
    /// GPU die region.
    pub const GPU: NodeId = 2;
    /// Board + battery mass.
    pub const BOARD: NodeId = 3;
    /// Device skin (back glass + frame).
    pub const SKIN: NodeId = 4;
    /// Number of nodes in the preset.
    pub const COUNT: usize = 5;
}

impl ThermalConfig {
    /// The calibrated five-node Note 9 network at the given ambient
    /// temperature (the paper's experiments use a thermostat-controlled
    /// 21 °C room — see [`DEFAULT_AMBIENT_C`]).
    #[must_use]
    pub fn exynos9810(ambient_c: f64) -> Self {
        let nodes = vec![
            NodeConfig {
                name: "big".to_owned(),
                capacitance_j_per_k: 3.0,
                to_ambient_w_per_k: 0.0,
            },
            NodeConfig {
                name: "little".to_owned(),
                capacitance_j_per_k: 2.5,
                to_ambient_w_per_k: 0.0,
            },
            NodeConfig {
                name: "gpu".to_owned(),
                capacitance_j_per_k: 3.5,
                to_ambient_w_per_k: 0.0,
            },
            NodeConfig {
                name: "board".to_owned(),
                capacitance_j_per_k: 35.0,
                to_ambient_w_per_k: 0.0,
            },
            NodeConfig {
                name: "skin".to_owned(),
                capacitance_j_per_k: 55.0,
                to_ambient_w_per_k: 0.42,
            },
        ];
        let edges = vec![
            EdgeConfig {
                a: node::BIG,
                b: node::BOARD,
                conductance_w_per_k: 0.20,
            },
            EdgeConfig {
                a: node::LITTLE,
                b: node::BOARD,
                conductance_w_per_k: 0.35,
            },
            EdgeConfig {
                a: node::GPU,
                b: node::BOARD,
                conductance_w_per_k: 0.25,
            },
            EdgeConfig {
                a: node::BIG,
                b: node::LITTLE,
                conductance_w_per_k: 0.15,
            },
            EdgeConfig {
                a: node::BIG,
                b: node::GPU,
                conductance_w_per_k: 0.12,
            },
            EdgeConfig {
                a: node::LITTLE,
                b: node::GPU,
                conductance_w_per_k: 0.10,
            },
            EdgeConfig {
                a: node::BOARD,
                b: node::SKIN,
                conductance_w_per_k: 0.60,
            },
        ];
        ThermalConfig {
            nodes,
            edges,
            ambient_c,
            board_node: node::BOARD,
            skin_node: node::SKIN,
        }
    }

    /// A six-node network for the 9820-class preset: four die regions
    /// (big, mid, LITTLE, GPU on nodes 0–3) plus board (4) and skin (5),
    /// with a vapour-chamber-class spread (the S10 generation couples
    /// the die regions to the board slightly better than the Note 9).
    #[must_use]
    pub fn exynos9820(ambient_c: f64) -> Self {
        const BOARD: NodeId = 4;
        const SKIN: NodeId = 5;
        let die = |name: &str, cap: f64| NodeConfig {
            name: name.to_owned(),
            capacitance_j_per_k: cap,
            to_ambient_w_per_k: 0.0,
        };
        let nodes = vec![
            die("big", 2.6),
            die("mid", 2.4),
            die("little", 2.5),
            die("gpu", 3.4),
            NodeConfig {
                name: "board".to_owned(),
                capacitance_j_per_k: 36.0,
                to_ambient_w_per_k: 0.0,
            },
            NodeConfig {
                name: "skin".to_owned(),
                capacitance_j_per_k: 56.0,
                to_ambient_w_per_k: 0.45,
            },
        ];
        let mut edges = vec![
            EdgeConfig {
                a: 0,
                b: BOARD,
                conductance_w_per_k: 0.24,
            },
            EdgeConfig {
                a: 1,
                b: BOARD,
                conductance_w_per_k: 0.30,
            },
            EdgeConfig {
                a: 2,
                b: BOARD,
                conductance_w_per_k: 0.36,
            },
            EdgeConfig {
                a: 3,
                b: BOARD,
                conductance_w_per_k: 0.28,
            },
            EdgeConfig {
                a: BOARD,
                b: SKIN,
                conductance_w_per_k: 0.64,
            },
        ];
        // Die-to-die spreading on the shared silicon.
        for (a, b, g) in [(0, 1, 0.16), (1, 2, 0.14), (0, 3, 0.12), (2, 3, 0.10)] {
            edges.push(EdgeConfig {
                a,
                b,
                conductance_w_per_k: g,
            });
        }
        ThermalConfig {
            nodes,
            edges,
            ambient_c,
            board_node: BOARD,
            skin_node: SKIN,
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(Error::InvalidConfig(
                "thermal network has no nodes".to_owned(),
            ));
        }
        for n in &self.nodes {
            if n.capacitance_j_per_k <= 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "node '{}' has non-positive capacitance",
                    n.name
                )));
            }
            if n.to_ambient_w_per_k < 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "node '{}' has negative ambient conductance",
                    n.name
                )));
            }
        }
        let total_ambient: f64 = self.nodes.iter().map(|n| n.to_ambient_w_per_k).sum();
        if total_ambient <= 0.0 {
            return Err(Error::InvalidConfig(
                "no path to ambient: temperatures would grow without bound".to_owned(),
            ));
        }
        for e in &self.edges {
            if e.a >= self.nodes.len() || e.b >= self.nodes.len() || e.a == e.b {
                return Err(Error::InvalidConfig(format!(
                    "edge {}-{} references invalid nodes",
                    e.a, e.b
                )));
            }
            if e.conductance_w_per_k <= 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "edge {}-{} has non-positive conductance",
                    e.a, e.b
                )));
            }
        }
        if self.board_node >= self.nodes.len() || self.skin_node >= self.nodes.len() {
            return Err(Error::InvalidConfig(
                "board/skin node out of range".to_owned(),
            ));
        }
        Ok(())
    }
}

/// Largest forward-Euler step that keeps every node of `config` stable,
/// in seconds. Stability requires `dt < C_i / ΣG_i` for every node; this
/// returns half of the tightest bound.
pub(crate) fn max_stable_dt(config: &ThermalConfig) -> f64 {
    let mut max_stable_dt_s = f64::INFINITY;
    for (i, n) in config.nodes.iter().enumerate() {
        let mut g_sum = n.to_ambient_w_per_k;
        for e in &config.edges {
            if e.a == i || e.b == i {
                g_sum += e.conductance_w_per_k;
            }
        }
        if g_sum > 0.0 {
            max_stable_dt_s = max_stable_dt_s.min(0.5 * n.capacitance_j_per_k / g_sum);
        }
    }
    max_stable_dt_s
}

/// The width-parameterised forward-Euler kernel: advances `width` lanes
/// sharing one network *structure* (nodes/edges) by `dt_s` seconds.
///
/// `temps_c`, `power_w` and the `flux` scratch are node-major,
/// lane-contiguous arrays indexed `node * width + lane`; `ambient_c` has
/// one entry per lane (ambient may differ across lanes — fleet bins).
/// Power entries beyond the array are treated as zero, matching the
/// scalar contract.
///
/// Every lane performs exactly the floating-point operation sequence of
/// the width-1 path, in the same order — batching is a pure interleaving
/// across lanes and is bit-invisible in the results. This is the single
/// physics implementation behind both [`ThermalNetwork::step`] (width 1)
/// and [`crate::batch::SocBatch`] (width N).
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_lanes(
    config: &ThermalConfig,
    max_stable_dt_s: f64,
    width: usize,
    temps_c: &mut [f64],
    power_w: &[f64],
    ambient_c: &[f64],
    flux: &mut [f64],
    dt_s: f64,
) {
    if dt_s <= 0.0 {
        return;
    }
    let steps = (dt_s / max_stable_dt_s).ceil().max(1.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let steps_usize = if steps.is_finite() { steps as usize } else { 1 };
    let h = dt_s / steps;
    for _ in 0..steps_usize {
        flux.fill(0.0);
        for (i, node) in config.nodes.iter().enumerate() {
            let base = i * width;
            for (lane, &lane_ambient) in ambient_c.iter().enumerate().take(width) {
                let f = &mut flux[base + lane];
                *f += power_w.get(base + lane).copied().unwrap_or(0.0);
                *f -= node.to_ambient_w_per_k * (temps_c[base + lane] - lane_ambient);
            }
        }
        for e in &config.edges {
            let (a, b) = (e.a * width, e.b * width);
            for lane in 0..width {
                let q = e.conductance_w_per_k * (temps_c[a + lane] - temps_c[b + lane]);
                flux[a + lane] -= q;
                flux[b + lane] += q;
            }
        }
        for (i, node) in config.nodes.iter().enumerate() {
            let base = i * width;
            for lane in 0..width {
                temps_c[base + lane] += h * flux[base + lane] / node.capacitance_j_per_k;
            }
        }
    }
}

/// The integrable thermal network.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalNetwork {
    config: ThermalConfig,
    temps_c: Vec<f64>,
    /// Largest forward-Euler step that keeps every node stable, seconds.
    max_stable_dt_s: f64,
}

impl ThermalNetwork {
    /// Builds a network with every node starting at ambient.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is
    /// inconsistent (no nodes, negative parameters, dangling edges, or no
    /// path to ambient).
    pub fn new(config: ThermalConfig) -> Result<Self> {
        config.validate()?;
        let temps_c = vec![config.ambient_c; config.nodes.len()];
        let max_stable_dt_s = max_stable_dt(&config);
        Ok(ThermalNetwork {
            config,
            temps_c,
            max_stable_dt_s,
        })
    }

    /// The preset Note 9 network (see [`ThermalConfig::exynos9810`]).
    #[must_use]
    pub fn exynos9810(ambient_c: f64) -> Self {
        // qlint::allow(PN01, reason = "compiled-in preset, exercised by the thermal tests")
        ThermalNetwork::new(ThermalConfig::exynos9810(ambient_c)).expect("preset config valid")
    }

    /// Ambient temperature in °C.
    #[must_use]
    pub fn ambient_c(&self) -> f64 {
        self.config.ambient_c
    }

    /// Changes the ambient temperature (the thermostat of §V).
    pub fn set_ambient_c(&mut self, ambient_c: f64) {
        self.config.ambient_c = ambient_c;
    }

    /// Number of thermal nodes.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.config.nodes.len()
    }

    /// Temperature of node `id` in °C.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this network.
    #[must_use]
    pub fn node_temp_c(&self, id: NodeId) -> f64 {
        self.temps_c[id]
    }

    /// All node temperatures, ordered by node id.
    #[must_use]
    pub fn temps_c(&self) -> &[f64] {
        &self.temps_c
    }

    /// Advances the network by `dt_s` seconds with `power_w[i]` watts
    /// injected into node `i`. Powers beyond the node count are ignored;
    /// missing entries are treated as zero.
    ///
    /// Sub-steps internally, so any `dt_s ≥ 0` is stable. This is the
    /// width-1 view over `step_lanes`, the shared batched kernel.
    pub fn step(&mut self, power_w: &[f64], dt_s: f64) {
        if dt_s <= 0.0 {
            return;
        }
        let mut flux = vec![0.0f64; self.config.nodes.len()];
        let ambient = [self.config.ambient_c];
        step_lanes(
            &self.config,
            self.max_stable_dt_s,
            1,
            &mut self.temps_c,
            power_w,
            &ambient,
            &mut flux,
            dt_s,
        );
    }

    /// Board/battery sensor reading, °C.
    #[must_use]
    pub fn board_c(&self) -> f64 {
        self.temps_c[self.config.board_node]
    }

    /// Skin temperature, °C.
    #[must_use]
    pub fn skin_c(&self) -> f64 {
        self.temps_c[self.config.skin_node]
    }

    /// Node receiving the constant platform-floor power (the board).
    #[must_use]
    pub fn base_power_node(&self) -> NodeId {
        self.config.board_node
    }

    /// The virtual whole-device sensor over the given die nodes (the
    /// platform's domain thermal nodes).
    ///
    /// A surrogate for the manufacturer's proprietary virtual sensor: a
    /// weighted blend of skin, board and the hottest die node
    /// (`0.45·skin + 0.35·board + 0.20·max(die)`), which tracks "how hot
    /// the device feels plus how hot the silicon runs" just like vendor
    /// skin-temperature estimators.
    ///
    /// # Panics
    ///
    /// Panics if `die_nodes` is empty or references an invalid node.
    #[must_use]
    pub fn device_sensor_c(&self, die_nodes: &[NodeId]) -> f64 {
        assert!(!die_nodes.is_empty(), "device sensor needs die nodes");
        let die_max = die_nodes
            .iter()
            .map(|&n| self.temps_c[n])
            .fold(f64::MIN, f64::max);
        0.45 * self.skin_c() + 0.35 * self.board_c() + 0.20 * die_max
    }

    /// Resets every node to ambient.
    pub fn reset(&mut self) {
        for t in &mut self.temps_c {
            *t = self.config.ambient_c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIE: [NodeId; 3] = [node::BIG, node::LITTLE, node::GPU];

    fn powers(big: f64, little: f64, gpu: f64, board: f64) -> [f64; 5] {
        [big, little, gpu, board, 0.0]
    }

    #[test]
    fn starts_at_ambient() {
        let net = ThermalNetwork::exynos9810(21.0);
        for &t in net.temps_c() {
            assert!((t - 21.0).abs() < 1e-12);
        }
        assert!((net.device_sensor_c(&DIE) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn heating_raises_big_above_board_above_skin() {
        let mut net = ThermalNetwork::exynos9810(21.0);
        net.step(&powers(5.0, 0.4, 2.0, 0.9), 120.0);
        let big = net.node_temp_c(node::BIG);
        let board = net.node_temp_c(node::BOARD);
        let skin = net.node_temp_c(node::SKIN);
        assert!(big > board, "big {big} should exceed board {board}");
        assert!(board > skin, "board {board} should exceed skin {skin}");
        assert!(skin > 21.0);
        assert_eq!(net.board_c(), board);
        assert_eq!(net.skin_c(), skin);
    }

    #[test]
    fn cooling_returns_to_ambient() {
        let mut net = ThermalNetwork::exynos9810(21.0);
        net.step(&powers(6.0, 0.5, 4.0, 0.9), 300.0);
        assert!(net.node_temp_c(node::BIG) > 30.0);
        net.step(&[0.0; 5], 5_000.0);
        for &t in net.temps_c() {
            assert!(
                (t - 21.0).abs() < 0.5,
                "node stuck at {t} °C after cooldown"
            );
        }
    }

    #[test]
    fn steady_state_heavy_load_matches_paper_scale() {
        // Sustained gaming power: big cluster peak temps in the paper sit
        // in the 50–75 °C band at 21 °C ambient.
        let mut net = ThermalNetwork::exynos9810(21.0);
        net.step(&powers(5.5, 0.5, 4.0, 0.9), 1_800.0);
        let big = net.node_temp_c(node::BIG);
        assert!(
            (45.0..90.0).contains(&big),
            "steady big temp {big} °C out of band"
        );
    }

    #[test]
    fn exynos9820_network_is_valid_and_behaves() {
        let mut net =
            ThermalNetwork::new(ThermalConfig::exynos9820(21.0)).expect("9820 preset valid");
        assert_eq!(net.n_nodes(), 6);
        net.step(&[4.0, 1.5, 0.5, 3.0, 0.9, 0.0], 1_200.0);
        let die = [0, 1, 2, 3];
        let dev = net.device_sensor_c(&die);
        assert!(net.node_temp_c(0) > net.board_c());
        assert!(net.board_c() > net.skin_c());
        assert!(dev > net.skin_c() * 0.99 && dev < net.node_temp_c(0));
    }

    #[test]
    fn step_is_stable_for_large_dt() {
        let mut net = ThermalNetwork::exynos9810(21.0);
        net.step(&powers(6.5, 0.8, 4.5, 0.9), 10_000.0);
        for &t in net.temps_c() {
            assert!(t.is_finite());
            assert!((21.0..200.0).contains(&t), "temperature diverged: {t}");
        }
    }

    #[test]
    fn zero_or_negative_dt_is_noop() {
        let mut net = ThermalNetwork::exynos9810(21.0);
        let before = net.temps_c().to_vec();
        net.step(&powers(5.0, 1.0, 2.0, 1.0), 0.0);
        net.step(&powers(5.0, 1.0, 2.0, 1.0), -3.0);
        assert_eq!(net.temps_c(), &before[..]);
    }

    #[test]
    fn device_sensor_between_skin_and_die() {
        let mut net = ThermalNetwork::exynos9810(21.0);
        net.step(&powers(6.0, 0.5, 3.0, 0.9), 600.0);
        let dev = net.device_sensor_c(&DIE);
        let skin = net.node_temp_c(node::SKIN);
        let big = net.node_temp_c(node::BIG);
        assert!(
            dev > skin * 0.99,
            "device sensor should not read below skin"
        );
        assert!(dev < big, "device sensor should read below the hot spot");
    }

    #[test]
    fn ambient_change_shifts_equilibrium() {
        let mut cold = ThermalNetwork::exynos9810(10.0);
        let mut warm = ThermalNetwork::exynos9810(35.0);
        let p = powers(3.0, 0.5, 1.0, 0.9);
        cold.step(&p, 2_000.0);
        warm.step(&p, 2_000.0);
        assert!(warm.node_temp_c(node::BIG) > cold.node_temp_c(node::BIG) + 20.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = ThermalConfig::exynos9810(21.0);
        cfg.nodes[0].capacitance_j_per_k = -1.0;
        assert!(ThermalNetwork::new(cfg).is_err());

        let mut cfg = ThermalConfig::exynos9810(21.0);
        cfg.edges[0].a = 99;
        assert!(ThermalNetwork::new(cfg).is_err());

        let mut cfg = ThermalConfig::exynos9810(21.0);
        for n in &mut cfg.nodes {
            n.to_ambient_w_per_k = 0.0;
        }
        assert!(
            ThermalNetwork::new(cfg).is_err(),
            "no ambient path must be rejected"
        );

        let mut cfg = ThermalConfig::exynos9810(21.0);
        cfg.board_node = 17;
        assert!(
            ThermalNetwork::new(cfg).is_err(),
            "dangling board node must be rejected"
        );

        let empty = ThermalConfig {
            nodes: vec![],
            edges: vec![],
            ambient_c: 21.0,
            board_node: 0,
            skin_node: 0,
        };
        assert!(ThermalNetwork::new(empty).is_err());
    }

    #[test]
    fn reset_restores_ambient() {
        let mut net = ThermalNetwork::exynos9810(21.0);
        net.step(&powers(6.0, 1.0, 4.0, 1.0), 500.0);
        net.reset();
        for &t in net.temps_c() {
            assert!((t - 21.0).abs() < 1e-12);
        }
    }

    #[test]
    fn energy_conservation_adiabatic() {
        // With no path to ambient the injected energy must equal the
        // stored energy Σ C·ΔT; verify directly on a custom network with
        // tiny ambient conductance.
        let cfg = ThermalConfig {
            nodes: vec![
                NodeConfig {
                    name: "a".into(),
                    capacitance_j_per_k: 10.0,
                    to_ambient_w_per_k: 1e-9,
                },
                NodeConfig {
                    name: "b".into(),
                    capacitance_j_per_k: 20.0,
                    to_ambient_w_per_k: 0.0,
                },
            ],
            edges: vec![EdgeConfig {
                a: 0,
                b: 1,
                conductance_w_per_k: 0.5,
            }],
            ambient_c: 20.0,
            board_node: 1,
            skin_node: 1,
        };
        let mut net = ThermalNetwork::new(cfg).unwrap();
        let p = 2.0; // W into node a
        let dt = 50.0;
        net.step(&[p, 0.0], dt);
        let stored = 10.0 * (net.node_temp_c(0) - 20.0) + 20.0 * (net.node_temp_c(1) - 20.0);
        let injected = p * dt;
        assert!(
            (stored - injected).abs() / injected < 1e-3,
            "stored {stored} J vs injected {injected} J"
        );
    }
}
