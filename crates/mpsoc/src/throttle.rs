//! Hardware thermal throttling (the IPA/thermal-governor layer).
//!
//! Real Exynos devices clamp cluster frequencies when die sensors cross
//! trip points, independently of (and *below*) any software policy. The
//! throttler steps a per-cluster thermal clamp down one OPP per control
//! interval while the sensor is above the trip temperature and relaxes
//! it one OPP per interval once the sensor falls below
//! `trip − hysteresis`.
//!
//! The clamp composes with the DVFS policy caps: the effective level is
//! `min(policy level, thermal clamp)`. Software governors (including
//! Next) never see or control the clamp — exactly like on the phone,
//! where the kernel thermal framework overrides userspace.

use crate::freq::ClusterId;

/// Configuration of the thermal throttler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleConfig {
    /// Whether throttling is active.
    pub enabled: bool,
    /// Trip temperature per cluster sensor, °C
    /// (indexed by [`ClusterId::index`]).
    pub trip_c: [f64; 3],
    /// Hysteresis below the trip before the clamp relaxes, °C.
    pub hysteresis_c: f64,
}

impl ThrottleConfig {
    /// The Exynos 9810 defaults: 75 °C trips on the CPU clusters and
    /// 71 °C on the GPU, 5 °C hysteresis.
    #[must_use]
    pub fn exynos9810() -> Self {
        ThrottleConfig {
            enabled: true,
            trip_c: [75.0, 75.0, 71.0],
            hysteresis_c: 5.0,
        }
    }

    /// Throttling disabled (useful for controlled experiments).
    #[must_use]
    pub fn disabled() -> Self {
        ThrottleConfig {
            enabled: false,
            trip_c: [f64::INFINITY; 3],
            hysteresis_c: 0.0,
        }
    }
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig::exynos9810()
    }
}

/// Stateful per-cluster thermal clamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Throttler {
    config: ThrottleConfig,
    /// Current clamp as a maximum OPP level per cluster.
    clamp_level: [usize; 3],
    /// Top level per cluster (unclamped position).
    top_level: [usize; 3],
}

impl Throttler {
    /// Creates a throttler for ladders with the given sizes.
    #[must_use]
    pub fn new(config: ThrottleConfig, table_sizes: [usize; 3]) -> Self {
        let top_level = table_sizes.map(|n| n.saturating_sub(1));
        Throttler {
            config,
            clamp_level: top_level,
            top_level,
        }
    }

    /// The throttler's configuration.
    #[must_use]
    pub fn config(&self) -> &ThrottleConfig {
        &self.config
    }

    /// Current clamp level of one cluster (top level = unclamped).
    #[must_use]
    pub fn clamp_level(&self, id: ClusterId) -> usize {
        self.clamp_level[id.index()]
    }

    /// Whether any cluster is currently clamped below its top level.
    #[must_use]
    pub fn is_throttling(&self) -> bool {
        self.config.enabled && self.clamp_level != self.top_level
    }

    /// Advances the throttle state one control interval with the
    /// current die temperatures (°C, by [`ClusterId::index`]) and
    /// returns the clamp levels.
    pub fn update(&mut self, die_temps_c: [f64; 3]) -> [usize; 3] {
        if !self.config.enabled {
            return self.top_level;
        }
        for (i, &temp) in die_temps_c.iter().enumerate() {
            if temp > self.config.trip_c[i] {
                self.clamp_level[i] = self.clamp_level[i].saturating_sub(1);
            } else if temp < self.config.trip_c[i] - self.config.hysteresis_c {
                self.clamp_level[i] = (self.clamp_level[i] + 1).min(self.top_level[i]);
            }
        }
        self.clamp_level
    }

    /// Resets all clamps to unthrottled.
    pub fn reset(&mut self) {
        self.clamp_level = self.top_level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn throttler() -> Throttler {
        Throttler::new(ThrottleConfig::exynos9810(), [18, 10, 6])
    }

    #[test]
    fn starts_unclamped() {
        let t = throttler();
        assert!(!t.is_throttling());
        assert_eq!(t.clamp_level(ClusterId::Big), 17);
        assert_eq!(t.clamp_level(ClusterId::Gpu), 5);
    }

    #[test]
    fn hot_sensor_steps_clamp_down() {
        let mut t = throttler();
        t.update([80.0, 30.0, 30.0]);
        assert_eq!(t.clamp_level(ClusterId::Big), 16);
        assert_eq!(
            t.clamp_level(ClusterId::Little),
            9,
            "cool clusters untouched"
        );
        assert!(t.is_throttling());
        for _ in 0..40 {
            t.update([80.0, 30.0, 30.0]);
        }
        assert_eq!(
            t.clamp_level(ClusterId::Big),
            0,
            "clamp saturates at the floor"
        );
    }

    #[test]
    fn hysteresis_gates_recovery() {
        let mut t = throttler();
        for _ in 0..3 {
            t.update([80.0, 30.0, 30.0]);
        }
        assert_eq!(t.clamp_level(ClusterId::Big), 14);
        // Inside the hysteresis band: hold.
        t.update([72.0, 30.0, 30.0]);
        assert_eq!(t.clamp_level(ClusterId::Big), 14);
        // Below trip − hysteresis: relax one per interval.
        t.update([69.0, 30.0, 30.0]);
        assert_eq!(t.clamp_level(ClusterId::Big), 15);
        for _ in 0..10 {
            t.update([60.0, 30.0, 30.0]);
        }
        assert!(!t.is_throttling());
    }

    #[test]
    fn disabled_config_never_clamps() {
        let mut t = Throttler::new(ThrottleConfig::disabled(), [18, 10, 6]);
        for _ in 0..10 {
            t.update([500.0, 500.0, 500.0]);
        }
        assert!(!t.is_throttling());
        assert_eq!(t.clamp_level(ClusterId::Big), 17);
    }

    #[test]
    fn gpu_trips_earlier_than_cpu() {
        let mut t = throttler();
        t.update([73.0, 73.0, 73.0]);
        assert_eq!(t.clamp_level(ClusterId::Big), 17, "73 C below CPU trip");
        assert_eq!(t.clamp_level(ClusterId::Gpu), 4, "73 C above GPU trip");
    }

    #[test]
    fn reset_unclamps() {
        let mut t = throttler();
        t.update([90.0, 90.0, 90.0]);
        assert!(t.is_throttling());
        t.reset();
        assert!(!t.is_throttling());
    }
}
