//! Hardware thermal throttling (the IPA/thermal-governor layer).
//!
//! Real Exynos devices clamp domain frequencies when die sensors cross
//! trip points, independently of (and *below*) any software policy. The
//! throttler steps a per-domain thermal clamp down one OPP per control
//! interval while the sensor is above the trip temperature and relaxes
//! it one OPP per interval once the sensor falls below
//! `trip − hysteresis`.
//!
//! The clamp composes with the DVFS policy caps: the effective level is
//! `min(policy level, thermal clamp)`. Software governors (including
//! Next) never see or control the clamp — exactly like on the phone,
//! where the kernel thermal framework overrides userspace.

use crate::platform::{DomainId, PerDomain, Platform};

/// Configuration of the thermal throttler.
#[derive(Debug, Clone, PartialEq)]
pub struct ThrottleConfig {
    /// Whether throttling is active.
    pub enabled: bool,
    /// Trip temperature per domain sensor, °C, in platform order.
    /// Domains beyond the list never trip.
    pub trip_c: Vec<f64>,
    /// Hysteresis below the trip before the clamp relaxes, °C.
    pub hysteresis_c: f64,
}

impl ThrottleConfig {
    /// Trip points declared by a platform descriptor (5 °C hysteresis,
    /// the Exynos thermal-framework default).
    #[must_use]
    pub fn for_platform(platform: &Platform) -> Self {
        ThrottleConfig {
            enabled: true,
            trip_c: platform.domains().iter().map(|d| d.trip_c).collect(),
            hysteresis_c: 5.0,
        }
    }

    /// The Exynos 9810 defaults: 75 °C trips on the CPU clusters and
    /// 71 °C on the GPU, 5 °C hysteresis.
    #[must_use]
    pub fn exynos9810() -> Self {
        ThrottleConfig {
            enabled: true,
            trip_c: vec![75.0, 75.0, 71.0],
            hysteresis_c: 5.0,
        }
    }

    /// Throttling disabled (useful for controlled experiments).
    #[must_use]
    pub fn disabled() -> Self {
        ThrottleConfig {
            enabled: false,
            trip_c: Vec::new(),
            hysteresis_c: 0.0,
        }
    }
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig::exynos9810()
    }
}

/// One control-interval clamp transition for a single domain: step down
/// one OPP above `trip_c`, relax one OPP below `trip_c − hysteresis_c`
/// (never past `top`), hold inside the hysteresis band.
///
/// The single transition rule behind both [`Throttler::update`]
/// (width 1) and the batched kernel's per-lane throttle loop.
pub(crate) fn clamp_transition(
    clamp: usize,
    top: usize,
    trip_c: f64,
    hysteresis_c: f64,
    temp_c: f64,
) -> usize {
    if temp_c > trip_c {
        clamp.saturating_sub(1)
    } else if temp_c < trip_c - hysteresis_c {
        (clamp + 1).min(top)
    } else {
        clamp
    }
}

/// Stateful per-domain thermal clamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Throttler {
    config: ThrottleConfig,
    /// Current clamp as a maximum OPP level per domain.
    clamp_level: PerDomain<usize>,
    /// Top level per domain (unclamped position).
    top_level: PerDomain<usize>,
}

impl Throttler {
    /// Creates a throttler for ladders with the given sizes (platform
    /// order).
    #[must_use]
    pub fn new(config: ThrottleConfig, table_sizes: &[usize]) -> Self {
        let top_level = PerDomain::from_fn(table_sizes.len(), |i| table_sizes[i].saturating_sub(1));
        Throttler {
            config,
            clamp_level: top_level,
            top_level,
        }
    }

    /// The throttler's configuration.
    #[must_use]
    pub fn config(&self) -> &ThrottleConfig {
        &self.config
    }

    /// Current clamp level of one domain (top level = unclamped).
    #[must_use]
    pub fn clamp_level(&self, id: DomainId) -> usize {
        self.clamp_level[id.index()]
    }

    /// Whether any domain is currently clamped below its top level.
    #[must_use]
    pub fn is_throttling(&self) -> bool {
        self.config.enabled && self.clamp_level != self.top_level
    }

    /// Advances the throttle state one control interval with the
    /// current die temperatures (°C, platform order) and returns the
    /// clamp levels.
    pub fn update(&mut self, die_temps_c: &[f64]) -> PerDomain<usize> {
        if !self.config.enabled {
            return self.top_level;
        }
        for (i, &temp) in die_temps_c.iter().enumerate().take(self.clamp_level.len()) {
            let trip = self.config.trip_c.get(i).copied().unwrap_or(f64::INFINITY);
            self.clamp_level[i] = clamp_transition(
                self.clamp_level[i],
                self.top_level[i],
                trip,
                self.config.hysteresis_c,
                temp,
            );
        }
        self.clamp_level
    }

    /// Resets all clamps to unthrottled.
    pub fn reset(&mut self) {
        self.clamp_level = self.top_level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big() -> DomainId {
        DomainId::new(0)
    }
    fn little() -> DomainId {
        DomainId::new(1)
    }
    fn gpu() -> DomainId {
        DomainId::new(2)
    }

    fn throttler() -> Throttler {
        Throttler::new(ThrottleConfig::exynos9810(), &[18, 10, 6])
    }

    #[test]
    fn starts_unclamped() {
        let t = throttler();
        assert!(!t.is_throttling());
        assert_eq!(t.clamp_level(big()), 17);
        assert_eq!(t.clamp_level(gpu()), 5);
    }

    #[test]
    fn hot_sensor_steps_clamp_down() {
        let mut t = throttler();
        t.update(&[80.0, 30.0, 30.0]);
        assert_eq!(t.clamp_level(big()), 16);
        assert_eq!(t.clamp_level(little()), 9, "cool domains untouched");
        assert!(t.is_throttling());
        for _ in 0..40 {
            t.update(&[80.0, 30.0, 30.0]);
        }
        assert_eq!(t.clamp_level(big()), 0, "clamp saturates at the floor");
    }

    #[test]
    fn hysteresis_gates_recovery() {
        let mut t = throttler();
        for _ in 0..3 {
            t.update(&[80.0, 30.0, 30.0]);
        }
        assert_eq!(t.clamp_level(big()), 14);
        // Inside the hysteresis band: hold.
        t.update(&[72.0, 30.0, 30.0]);
        assert_eq!(t.clamp_level(big()), 14);
        // Below trip − hysteresis: relax one per interval.
        t.update(&[69.0, 30.0, 30.0]);
        assert_eq!(t.clamp_level(big()), 15);
        for _ in 0..10 {
            t.update(&[60.0, 30.0, 30.0]);
        }
        assert!(!t.is_throttling());
    }

    #[test]
    fn disabled_config_never_clamps() {
        let mut t = Throttler::new(ThrottleConfig::disabled(), &[18, 10, 6]);
        for _ in 0..10 {
            t.update(&[500.0, 500.0, 500.0]);
        }
        assert!(!t.is_throttling());
        assert_eq!(t.clamp_level(big()), 17);
    }

    #[test]
    fn gpu_trips_earlier_than_cpu() {
        let mut t = throttler();
        t.update(&[73.0, 73.0, 73.0]);
        assert_eq!(t.clamp_level(big()), 17, "73 C below CPU trip");
        assert_eq!(t.clamp_level(gpu()), 4, "73 C above GPU trip");
    }

    #[test]
    fn four_domain_platform_throttles_every_domain() {
        let platform = Platform::exynos9820();
        let sizes = platform.freq_levels();
        let mut t = Throttler::new(ThrottleConfig::for_platform(&platform), &sizes);
        t.update(&[90.0, 90.0, 90.0, 90.0]);
        for (i, &len) in sizes.iter().enumerate() {
            assert_eq!(t.clamp_level(DomainId::new(i)), len - 2, "domain {i}");
        }
        assert!(t.is_throttling());
    }

    #[test]
    fn reset_unclamps() {
        let mut t = throttler();
        t.update(&[90.0, 90.0, 90.0]);
        assert!(t.is_throttling());
        t.reset();
        assert!(!t.is_throttling());
    }
}
