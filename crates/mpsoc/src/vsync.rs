//! VSync and triple buffering, following §I of the paper.
//!
//! The display refreshes at 60 Hz, so a VSync fires every 16.67 ms. The
//! renderer draws into two back buffers; on each VSync, a finished back
//! buffer (if any) becomes the front buffer and counts as a *presented*
//! frame. If no new frame is ready, the display repeats the front buffer
//! and the interval counts as a *dropped* (repeated) VSync — the lag or
//! stutter the paper identifies as the QoS loss.
//!
//! The pipeline applies renderer back-pressure: with both back buffers
//! full the renderer stalls, so production can never run more than two
//! frames ahead of the display.

/// Number of back buffers in the Android-style swap chain.
pub const BACK_BUFFERS: u32 = 2;

/// Outcome of advancing the pipeline over an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VsyncOutput {
    /// VSync boundaries that fired during the interval.
    pub vsyncs: u32,
    /// VSyncs at which a new frame was presented.
    pub presented: u32,
    /// VSyncs at which the previous frame was repeated.
    pub repeated: u32,
}

impl VsyncOutput {
    /// Presented frames per second over a window of `dt_s` seconds.
    #[must_use]
    pub fn fps(&self, dt_s: f64) -> f64 {
        if dt_s <= 0.0 {
            0.0
        } else {
            f64::from(self.presented) / dt_s
        }
    }
}

/// Stateful VSync + triple-buffering pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct VsyncPipeline {
    refresh_hz: f64,
    /// Seconds until the next VSync boundary.
    to_next_vsync_s: f64,
    /// Fractional progress (0..1) of the frame currently being rendered.
    render_progress: f64,
    /// Finished frames waiting in back buffers.
    queued: u32,
}

impl VsyncPipeline {
    /// Creates a pipeline at the given refresh rate (60 Hz on most
    /// commercial devices, §I).
    ///
    /// # Panics
    ///
    /// Panics if `refresh_hz` is not positive and finite.
    #[must_use]
    pub fn new(refresh_hz: f64) -> Self {
        assert!(
            refresh_hz > 0.0 && refresh_hz.is_finite(),
            "refresh rate must be positive"
        );
        VsyncPipeline {
            refresh_hz,
            to_next_vsync_s: 1.0 / refresh_hz,
            render_progress: 0.0,
            queued: 0,
        }
    }

    /// The display refresh rate in Hz.
    #[must_use]
    pub fn refresh_hz(&self) -> f64 {
        self.refresh_hz
    }

    /// Frames currently queued in back buffers.
    #[must_use]
    pub fn queued(&self) -> u32 {
        self.queued
    }

    /// Advances the pipeline by `dt_s` seconds while the renderer
    /// produces frames with period `frame_period_s` (use `None` when the
    /// application produces no frames, e.g. music playing with a static
    /// screen).
    pub fn tick(&mut self, dt_s: f64, frame_period_s: Option<f64>) -> VsyncOutput {
        let mut out = VsyncOutput::default();
        if dt_s <= 0.0 {
            return out;
        }
        let vsync_period = 1.0 / self.refresh_hz;
        let mut remaining = dt_s;
        while remaining > 0.0 {
            let slice = remaining.min(self.to_next_vsync_s);
            self.render(slice, frame_period_s);
            self.to_next_vsync_s -= slice;
            remaining -= slice;
            if self.to_next_vsync_s <= 1e-12 {
                // VSync boundary.
                out.vsyncs += 1;
                if self.queued > 0 {
                    self.queued -= 1;
                    out.presented += 1;
                } else {
                    out.repeated += 1;
                }
                self.to_next_vsync_s = vsync_period;
            }
        }
        out
    }

    /// Renders for `dt_s` seconds, filling back buffers subject to
    /// back-pressure.
    fn render(&mut self, dt_s: f64, frame_period_s: Option<f64>) {
        let Some(period) = frame_period_s else {
            return;
        };
        if period <= 0.0 {
            // Instantaneous rendering: fill the queue.
            self.queued = BACK_BUFFERS;
            self.render_progress = 0.0;
            return;
        }
        let mut budget = dt_s / period; // frames' worth of work
        while budget > 0.0 && self.queued < BACK_BUFFERS {
            let need = 1.0 - self.render_progress;
            if budget >= need {
                budget -= need;
                self.render_progress = 0.0;
                self.queued += 1;
            } else {
                self.render_progress += budget;
                budget = 0.0;
            }
        }
        // Any leftover budget is lost to the stall (back-pressure).
    }

    /// Discards queued frames and render progress (e.g. app switch).
    pub fn flush(&mut self) {
        self.queued = 0;
        self.render_progress = 0.0;
    }
}

impl Default for VsyncPipeline {
    fn default() -> Self {
        VsyncPipeline::new(60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_renderer_hits_refresh_rate() {
        let mut pipe = VsyncPipeline::new(60.0);
        // 5 ms frames: renderer far faster than the display.
        let out = pipe.tick(1.0, Some(0.005));
        assert_eq!(out.vsyncs, 60);
        // First VSync may present or repeat depending on phase; allow 1.
        assert!(out.presented >= 59, "presented {}", out.presented);
    }

    #[test]
    fn renderer_at_half_rate_presents_half() {
        let mut pipe = VsyncPipeline::new(60.0);
        // 33.3 ms frames → 30 fps.
        let out = pipe.tick(2.0, Some(1.0 / 30.0));
        let fps = out.fps(2.0);
        assert!((fps - 30.0).abs() <= 1.0, "fps {fps}");
        assert_eq!(out.presented + out.repeated, out.vsyncs);
    }

    #[test]
    fn frameless_app_presents_nothing() {
        let mut pipe = VsyncPipeline::new(60.0);
        let out = pipe.tick(1.0, None);
        assert_eq!(out.presented, 0);
        assert_eq!(out.repeated, out.vsyncs);
        assert_eq!(out.fps(1.0), 0.0);
    }

    #[test]
    fn backpressure_limits_queue() {
        let mut pipe = VsyncPipeline::new(60.0);
        pipe.tick(0.01, Some(1e-6));
        assert!(pipe.queued() <= BACK_BUFFERS);
    }

    #[test]
    fn zero_period_means_instant_frames() {
        let mut pipe = VsyncPipeline::new(60.0);
        let out = pipe.tick(0.5, Some(0.0));
        assert!(out.presented >= out.vsyncs - 1);
    }

    #[test]
    fn phase_preserved_across_ticks() {
        // Many small ticks must equal one large tick in total VSyncs.
        let mut a = VsyncPipeline::new(60.0);
        let mut b = VsyncPipeline::new(60.0);
        let mut total = VsyncOutput::default();
        for _ in 0..100 {
            let o = a.tick(0.01, Some(0.02));
            total.vsyncs += o.vsyncs;
            total.presented += o.presented;
            total.repeated += o.repeated;
        }
        let whole = b.tick(1.0, Some(0.02));
        assert_eq!(total.vsyncs, whole.vsyncs);
        // Frame production is deterministic, so presented counts match.
        assert_eq!(total.presented, whole.presented);
    }

    #[test]
    fn fps_never_exceeds_refresh() {
        let mut pipe = VsyncPipeline::new(60.0);
        let out = pipe.tick(10.0, Some(0.0001));
        assert!(out.fps(10.0) <= 60.0 + 1e-9);
    }

    #[test]
    fn flush_clears_queue() {
        let mut pipe = VsyncPipeline::new(60.0);
        pipe.tick(0.05, Some(0.001));
        pipe.flush();
        assert_eq!(pipe.queued(), 0);
        let out = pipe.tick(1.0 / 60.0, None);
        assert_eq!(out.presented, 0);
    }

    #[test]
    fn negative_dt_is_noop() {
        let mut pipe = VsyncPipeline::new(60.0);
        let out = pipe.tick(-1.0, Some(0.01));
        assert_eq!(out, VsyncOutput::default());
    }

    #[test]
    #[should_panic(expected = "refresh rate")]
    fn zero_refresh_rejected() {
        let _ = VsyncPipeline::new(0.0);
    }

    #[test]
    fn ninety_hz_display_supported() {
        // The paper notes some devices refresh at 90/120 Hz.
        let mut pipe = VsyncPipeline::new(90.0);
        let out = pipe.tick(1.0, Some(0.001));
        assert!(out.vsyncs == 90);
        assert!(out.fps(1.0) > 85.0);
    }
}
