//! Property-based tests of the platform substrates.

use proptest::prelude::*;

use mpsoc::freq::OppTable;
use mpsoc::perf::{self, FrameDemand};
use mpsoc::platform::{DomainId, Platform};
use mpsoc::power::PowerModel;
use mpsoc::thermal::ThermalNetwork;
use mpsoc::vsync::VsyncPipeline;
use mpsoc::{Soc, SocConfig};

proptest! {
    /// The thermal network never cools below ambient and never
    /// diverges, for any non-negative heat injection and step size.
    #[test]
    fn thermal_stays_above_ambient_and_finite(
        p_big in 0.0..8.0f64,
        p_little in 0.0..2.0f64,
        p_gpu in 0.0..6.0f64,
        p_board in 0.0..2.0f64,
        dt in 0.001..50.0f64,
        steps in 1usize..60,
    ) {
        let mut net = ThermalNetwork::exynos9810(21.0);
        for _ in 0..steps {
            net.step(&[p_big, p_little, p_gpu, p_board, 0.0], dt);
        }
        for &t in net.temps_c() {
            prop_assert!(t.is_finite());
            prop_assert!(t >= 21.0 - 1e-9, "node below ambient: {t}");
            prop_assert!(t < 500.0, "node diverged: {t}");
        }
    }

    /// Monotonicity: strictly more heat never yields a cooler hot spot.
    #[test]
    fn thermal_monotone_in_power(p in 0.0..6.0f64, extra in 0.1..4.0f64) {
        let mut a = ThermalNetwork::exynos9810(21.0);
        let mut b = ThermalNetwork::exynos9810(21.0);
        a.step(&[p, 0.3, 0.5, 0.9, 0.0], 300.0);
        b.step(&[p + extra, 0.3, 0.5, 0.9, 0.0], 300.0);
        prop_assert!(b.node_temp_c(0) > a.node_temp_c(0));
    }

    /// VSync accounting always balances and never exceeds the refresh
    /// rate, for any frame period and tick slicing.
    #[test]
    fn vsync_accounting_balances(
        period_ms in 1.0..200.0f64,
        tick_ms in 1.0..100.0f64,
        ticks in 1usize..200,
    ) {
        let mut pipe = VsyncPipeline::new(60.0);
        let mut presented = 0u64;
        let mut vsyncs = 0u64;
        for _ in 0..ticks {
            let out = pipe.tick(tick_ms / 1e3, Some(period_ms / 1e3));
            prop_assert_eq!(out.presented + out.repeated, out.vsyncs);
            presented += u64::from(out.presented);
            vsyncs += u64::from(out.vsyncs);
        }
        prop_assert!(presented <= vsyncs);
        let duration = tick_ms / 1e3 * ticks as f64;
        // Queue depth can only smooth, not create, frames.
        prop_assert!(presented as f64 <= duration * 60.0 + 3.0);
    }

    /// The execution plan is well-formed for arbitrary demands.
    #[test]
    fn execution_plan_well_formed(
        big in 0.0..1e8f64,
        little in 0.0..1e8f64,
        gpu in 0.0..1e8f64,
        bg_big in 0.0..4e9f64,
        bg_little in 0.0..2e9f64,
        level_big in 0usize..18,
        level_little in 0usize..10,
        level_gpu in 0usize..6,
        fps in 0.0..60.0f64,
    ) {
        let demand = FrameDemand::new(big, little, gpu).with_background(bg_big, bg_little, 0.0);
        let opps = [
            OppTable::exynos9810_big().opp(level_big).unwrap(),
            OppTable::exynos9810_little().opp(level_little).unwrap(),
            OppTable::exynos9810_gpu().opp(level_gpu).unwrap(),
        ];
        let platform = Platform::exynos9810();
        let plan = perf::plan(&demand, &opps, &platform);
        if let Some(p) = plan.frame_period_s {
            prop_assert!(p > 0.0 && p.is_finite());
        }
        for id in platform.ids() {
            let u = plan.utilization(id, fps);
            prop_assert!((0.0..=1.0).contains(&u), "util out of range: {u}");
        }
    }

    /// Power evaluation is finite, non-negative and monotone in util.
    #[test]
    fn power_model_sane(
        level_big in 0usize..18,
        level_little in 0usize..10,
        level_gpu in 0usize..6,
        u in 0.0..1.0f64,
        t in -20.0..120.0f64,
    ) {
        let model = PowerModel::exynos9810();
        let opps = [
            OppTable::exynos9810_big().opp(level_big).unwrap(),
            OppTable::exynos9810_little().opp(level_little).unwrap(),
            OppTable::exynos9810_gpu().opp(level_gpu).unwrap(),
        ];
        let lo = model.evaluate(&opps, &[u * 0.5; 3], &[t; 3]);
        let hi = model.evaluate(&opps, &[u; 3], &[t; 3]);
        prop_assert!(lo.total_w().is_finite() && lo.total_w() >= 0.0);
        prop_assert!(hi.total_w() >= lo.total_w() - 1e-12);
    }

    /// Cap navigation never leaves the table and caps stay ordered,
    /// under arbitrary sequences of cap movements.
    #[test]
    fn dvfs_caps_always_consistent(moves in proptest::collection::vec(0u8..6, 1..200)) {
        let mut soc = Soc::new(SocConfig::exynos9810());
        for m in moves {
            let id = DomainId::new(usize::from(m % 3));
            if m < 3 {
                soc.dvfs_mut().domain_mut(id).step_max_down();
            } else {
                soc.dvfs_mut().domain_mut(id).step_max_up();
            }
            let dom = soc.dvfs().domain(id);
            prop_assert!(dom.min_cap().freq_khz <= dom.max_cap().freq_khz);
            prop_assert!(dom.table().level_of(dom.current().freq_khz).is_ok());
        }
    }

    /// A full SoC tick never produces non-physical observables, for any
    /// demand mix and tick length.
    #[test]
    fn soc_tick_outputs_physical(
        big in 0.0..5e7f64,
        gpu in 0.0..5e7f64,
        bg in 0.0..3e9f64,
        dt in 0.005..0.5f64,
        ticks in 1usize..100,
    ) {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let demand = FrameDemand::new(big, big / 3.0, gpu).with_background(bg, bg / 2.0, 0.0);
        for _ in 0..ticks {
            let out = soc.tick(dt, &demand);
            prop_assert!(out.power_w.is_finite() && out.power_w > 0.0);
            prop_assert!(out.fps >= 0.0);
            let s = soc.state();
            prop_assert!(s.fps <= 60.0 + 1e-6, "windowed fps {}", s.fps);
            prop_assert!(s.temp_hot_c >= 21.0 - 1e-9 && s.temp_hot_c < 200.0);
        }
    }
}
