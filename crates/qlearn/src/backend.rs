//! Q-table storage backends behind the [`QStore`] abstraction.
//!
//! The table's hot path — argmax over a state's actions, then one value
//! update — runs every control period of every simulated session, so the
//! storage layout matters:
//!
//! * [`HashStore`] keeps one heap-allocated entry per state in a
//!   `HashMap`. It serves open-ended key spaces (federated merging of
//!   tables from devices with different encoders) and is the format the
//!   seed repo shipped.
//! * [`DenseStore`] keeps the values and visit counts of **all** actions
//!   of a state contiguously in two arena `Vec`s, reached through a
//!   single probe of a fast-hashed row index. An argmax touches one
//!   index slot plus one contiguous row — no per-action probing, no
//!   pointer chasing through per-state allocations — which is what makes
//!   the learn/act loop cache-friendly.
//!
//! Both backends expose rows through the same [`QStore`] trait, so
//! [`crate::qtable::QTable`] implements lookup, update, argmax and the
//! text codec exactly once; property tests assert the two backends are
//! observationally identical under arbitrary update sequences.

// qlint::allow(ND03, reason = "hot-path backends; every artifact path reads keys via sorted state_keys()")
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Callback receiving `(state, values, visits)` for one table row.
pub type RowVisitor<'a> = dyn FnMut(StateKey, &[f64], &[u64]) + 'a;

/// An encoded discrete state.
///
/// The Next agent packs its discretised observation tuple into this key
/// via `next_core::StateSpace`, which produces *compact* keys
/// (`0..size`); the backends accept any `u64`.
pub type StateKey = u64;

/// SplitMix64-style finaliser used to hash [`StateKey`]s.
///
/// `std`'s default SipHash is a keyed hash hardened against collision
/// flooding — pointless for simulation-internal integer keys and several
/// times slower per probe. This hasher is a single multiply/xor-shift
/// chain with full avalanche, so sequential state keys (the common case
/// after dense re-indexing) spread uniformly across buckets.
#[derive(Debug, Default, Clone)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (not used for u64 keys): fold bytes in.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(self.0);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

/// `BuildHasher` for [`KeyHasher`]-backed maps.
pub type KeyHashBuilder = BuildHasherDefault<KeyHasher>;

/// Storage backend of a Q-table: rows of per-action values and visit
/// counts, keyed by [`StateKey`].
///
/// A state is *touched* once [`QStore::row_mut`] has been called for it,
/// even if every visit count is still zero (e.g. a decoded all-zero
/// line) — the two backends must agree on this so `contains`/`len` are
/// backend-independent.
///
/// Fresh rows are filled with the table's default Q-value (`fill`), so
/// the **value row alone answers every read**: `Q(s, a)` is
/// `values[a]` whether or not the pair was visited, and argmax is a
/// branch-free scan of the value slice that never loads the visit row.
/// That invariant is what makes the hot path cheap; the visit row only
/// serves visit-count queries, adaptive learning rates and federated
/// weighting.
pub trait QStore: fmt::Debug + Clone + PartialEq {
    /// Creates an empty store whose rows hold `n_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero.
    #[must_use]
    fn with_actions(n_actions: usize) -> Self;

    /// Human-readable backend name (reported in perf artifacts).
    fn backend_name() -> &'static str;

    /// Number of actions per row.
    fn n_actions(&self) -> usize;

    /// Number of touched states.
    fn len(&self) -> usize;

    /// Whether no state has been touched.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The contiguous `(values, visits)` row of `state`, if touched.
    fn row(&self, state: StateKey) -> Option<(&[f64], &[u64])>;

    /// Mutable row of `state`; on first touch the value row is created
    /// holding `fill` (the table's default Q-value) and the visit row
    /// zeroed.
    fn row_mut(&mut self, state: StateKey, fill: f64) -> (&mut [f64], &mut [u64]);

    /// Whether `state` has been touched.
    fn contains(&self, state: StateKey) -> bool;

    /// All touched state keys, sorted ascending.
    fn state_keys(&self) -> Vec<StateKey>;

    /// Calls `f` once per touched row, in unspecified order.
    fn for_each_row(&self, f: &mut RowVisitor<'_>);

    /// Calls `f` once per touched row with mutable access, in
    /// unspecified order.
    fn for_each_row_mut(&mut self, f: &mut RowVisitorMut<'_>);

    /// Folds `other` into `self` as **visit-weighted sums**: for every
    /// row of `other`, `values[a] += q[a]·n[a]` and `visits[a] += n[a]`
    /// (rows absent from `self` start at zero).
    ///
    /// This is the streaming kernel behind
    /// [`crate::federated::MergeAccumulator`]: `self` temporarily holds
    /// Σ(q·n)/Σn numerators and denominators, *not* Q-values, and is
    /// normalised only when the accumulator finishes. One fold touches
    /// each input row exactly once, so merging T tables costs
    /// O(rows·T) with memory bounded by the union of visited states —
    /// no all-keys materialisation, no sort.
    ///
    /// The default implementation walks `other` row by row through the
    /// index; backends may override it with a faster layout-aware path
    /// (see [`DenseStore`]'s arena zip).
    fn fold_weighted(&mut self, other: &Self) {
        debug_assert_eq!(self.n_actions(), other.n_actions());
        other.for_each_row(&mut |state, values, visits| {
            let (v, n) = self.row_mut(state, 0.0);
            for a in 0..v.len() {
                v[a] += values[a] * visits[a] as f64;
                n[a] += visits[a];
            }
        });
    }

    /// Creates an empty store laid out for a **bounded** key space of
    /// `n_states` states. Backends with a space-aware index (the dense
    /// slot table) override this; the default ignores the hint.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero.
    #[must_use]
    fn with_space(n_actions: usize, _n_states: u64) -> Self {
        Self::with_actions(n_actions)
    }

    /// Whether every key of a space of `n_states` states can be stored
    /// without re-indexing. Always true unless the backend declared a
    /// smaller bounded space (the dense direct slot table).
    fn covers_space(&self, _n_states: u64) -> bool {
        true
    }

    /// Resident heap bytes attributable to **this** store's rows — the
    /// campaign memory-accounting number. Computed from row counts
    /// only (never from container capacities), so it is deterministic
    /// across allocators, platforms, and insertion histories. Shared
    /// storage (an overlay's `Arc` base) is excluded by the backend
    /// that shares it.
    fn resident_bytes(&self) -> usize {
        // Per touched row: one f64 + one u64 per action, plus the key.
        self.len() * (self.n_actions() * 16 + 8)
    }
}

/// Callback receiving mutable `(state, values, visits)` for one row.
pub type RowVisitorMut<'a> = dyn FnMut(StateKey, &mut [f64], &mut [u64]) + 'a;

/// One per-state entry of the hash backend.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    values: Vec<f64>,
    visits: Vec<u64>,
}

/// The hash-map backend: one heap entry per state.
///
/// Keeps working for arbitrary, sparse, open-ended key spaces — the
/// federated merger unions tables whose states need not come from the
/// same dense state-space descriptor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HashStore {
    n_actions: usize,
    // qlint::allow(ND03, reason = "iterated only by for_each_row (documented unspecified order, per-key independent folds) and sorted state_keys()")
    entries: HashMap<StateKey, Entry>,
}

impl QStore for HashStore {
    fn with_actions(n_actions: usize) -> Self {
        assert!(n_actions > 0, "action set must be non-empty");
        HashStore {
            n_actions,
            // qlint::allow(ND03, reason = "constructor for the field annotated above")
            entries: HashMap::new(),
        }
    }

    fn backend_name() -> &'static str {
        "hash"
    }

    fn n_actions(&self) -> usize {
        self.n_actions
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn row(&self, state: StateKey) -> Option<(&[f64], &[u64])> {
        self.entries
            .get(&state)
            .map(|e| (e.values.as_slice(), e.visits.as_slice()))
    }

    fn row_mut(&mut self, state: StateKey, fill: f64) -> (&mut [f64], &mut [u64]) {
        let n = self.n_actions;
        let e = self.entries.entry(state).or_insert_with(|| Entry {
            values: vec![fill; n],
            visits: vec![0; n],
        });
        (&mut e.values, &mut e.visits)
    }

    fn contains(&self, state: StateKey) -> bool {
        self.entries.contains_key(&state)
    }

    fn state_keys(&self) -> Vec<StateKey> {
        let mut keys: Vec<_> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    fn for_each_row(&self, f: &mut RowVisitor<'_>) {
        for (&k, e) in &self.entries {
            f(k, &e.values, &e.visits);
        }
    }

    fn for_each_row_mut(&mut self, f: &mut RowVisitorMut<'_>) {
        for (&k, e) in &mut self.entries {
            f(k, &mut e.values, &mut e.visits);
        }
    }
}

/// Key → row-number index of the dense backend.
///
/// With a bounded, compact key space (what `StateSpace` produces) the
/// index is a **direct slot table**: `slots[key]` holds the row number
/// and a probe is one predictable load from a small array that lives in
/// cache — no hashing at all. Open-ended key spaces fall back to a
/// fast-hashed map.
#[derive(Debug, Clone, PartialEq)]
enum RowIndex {
    /// Fast-hashed map for unbounded keys.
    // qlint::allow(ND03, reason = "probe-only index (key -> row number); never iterated, rows live in the arena Vecs")
    Map(HashMap<StateKey, u32, KeyHashBuilder>),
    /// Direct slot table for keys `< slots.len()`; `u32::MAX` = empty.
    Direct(Vec<u32>),
}

/// Sentinel marking an empty direct-index slot.
const EMPTY_SLOT: u32 = u32::MAX;

impl RowIndex {
    #[inline]
    fn get(&self, state: StateKey) -> Option<u32> {
        match self {
            RowIndex::Map(map) => map.get(&state).copied(),
            RowIndex::Direct(slots) => {
                let slot = *slots.get(usize::try_from(state).ok()?)?;
                (slot != EMPTY_SLOT).then_some(slot)
            }
        }
    }

    fn insert(&mut self, state: StateKey, row: u32) {
        match self {
            RowIndex::Map(map) => {
                map.insert(state, row);
            }
            RowIndex::Direct(slots) => {
                let i = usize::try_from(state).unwrap_or(usize::MAX);
                assert!(
                    i < slots.len(),
                    "state {state} outside the declared direct-index capacity {}",
                    slots.len()
                );
                slots[i] = row;
            }
        }
    }
}

/// The dense-indexed backend: all rows live contiguously in two arena
/// `Vec`s, reached through a row index.
///
/// * one probe per table operation (the old layout probed once *per
///   action* during argmax) — and with the direct slot-table index
///   ([`DenseStore::with_space`]) the probe is a single array load,
///   not a hash,
/// * a state's action values are one contiguous slice (branch-free
///   argmax scan) instead of per-state heap allocations,
/// * growing never moves other rows' data relative to each other, so a
///   training session's working set stays hot.
#[derive(Debug, Clone)]
pub struct DenseStore {
    n_actions: usize,
    /// `state -> row number` (row `i` spans `i*n_actions..(i+1)*n_actions`).
    index: RowIndex,
    /// `row number -> state`, for iteration without walking the index.
    keys: Vec<StateKey>,
    values: Vec<f64>,
    visits: Vec<u64>,
}

impl Default for DenseStore {
    fn default() -> Self {
        DenseStore {
            n_actions: 0,
            // qlint::allow(ND03, reason = "probe-only row index, never iterated")
            index: RowIndex::Map(HashMap::default()),
            keys: Vec::new(),
            values: Vec::new(),
            visits: Vec::new(),
        }
    }
}

impl DenseStore {
    /// Largest declared state-space size that gets a direct slot-table
    /// index (16M states = 64 MB of `u32` slots). Bigger spaces use the
    /// fast-hashed map, which costs memory proportional to *visited*
    /// states only.
    pub const DIRECT_INDEX_LIMIT: u64 = 1 << 24;

    /// Empty store for a **bounded** key space of `n_states` states
    /// (every key must stay `< n_states`, which `StateSpace` encodings
    /// guarantee). Spaces up to [`DenseStore::DIRECT_INDEX_LIMIT`] get
    /// the direct slot-table index — a table probe becomes one array
    /// load; bigger spaces silently use the hashed index.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero.
    #[must_use]
    pub fn with_space(n_actions: usize, n_states: u64) -> Self {
        assert!(n_actions > 0, "action set must be non-empty");
        let index = if n_states <= Self::DIRECT_INDEX_LIMIT {
            #[allow(clippy::cast_possible_truncation)]
            RowIndex::Direct(vec![EMPTY_SLOT; n_states as usize])
        } else {
            // qlint::allow(ND03, reason = "probe-only row index, never iterated")
            RowIndex::Map(HashMap::default())
        };
        DenseStore {
            n_actions,
            index,
            keys: Vec::new(),
            values: Vec::new(),
            visits: Vec::new(),
        }
    }

    /// Empty store with arena capacity pre-reserved for `rows` states —
    /// use when the caller knows the expected working-set size.
    #[must_use]
    pub fn with_row_capacity(n_actions: usize, rows: usize) -> Self {
        let mut s = <DenseStore as QStore>::with_actions(n_actions);
        if let RowIndex::Map(map) = &mut s.index {
            map.reserve(rows);
        }
        s.keys.reserve(rows);
        s.values.reserve(rows * n_actions);
        s.visits.reserve(rows * n_actions);
        s
    }

    /// Whether the index is the direct slot table (vs the hashed map).
    #[must_use]
    pub fn is_direct_indexed(&self) -> bool {
        matches!(self.index, RowIndex::Direct(_))
    }

    /// Whether every key of a space of `n_states` states can be stored:
    /// always true for the hashed index, bounded by the slot-table
    /// length for the direct index.
    #[must_use]
    pub fn covers_space(&self, n_states: u64) -> bool {
        match &self.index {
            RowIndex::Map(_) => true,
            RowIndex::Direct(slots) => slots.len() as u64 >= n_states,
        }
    }

    fn span(&self, row: u32) -> std::ops::Range<usize> {
        let start = row as usize * self.n_actions;
        start..start + self.n_actions
    }

    /// Whether the index can store `state` without panicking (the
    /// direct slot table is bounded by its declared capacity).
    fn index_accepts(&self, state: StateKey) -> bool {
        match &self.index {
            RowIndex::Map(_) => true,
            RowIndex::Direct(slots) => usize::try_from(state).is_ok_and(|i| i < slots.len()),
        }
    }

    /// Replaces a capacity-bounded direct index with an equivalent
    /// hashed map, so keys beyond the declared space can be folded in
    /// (federated merging unions tables from arbitrary encoders).
    fn demote_index_to_map(&mut self) {
        if let RowIndex::Direct(_) = self.index {
            // qlint::allow(ND03, reason = "probe-only row index, never iterated")
            let mut map: HashMap<StateKey, u32, KeyHashBuilder> = HashMap::default();
            map.reserve(self.keys.len());
            for (row, &k) in self.keys.iter().enumerate() {
                // qlint::allow(PN01, reason = "row_mut already rejects tables beyond u32 rows, so every existing row number fits")
                map.insert(k, u32::try_from(row).expect("row count fits u32"));
            }
            self.index = RowIndex::Map(map);
        }
    }
}

impl QStore for DenseStore {
    fn with_actions(n_actions: usize) -> Self {
        assert!(n_actions > 0, "action set must be non-empty");
        DenseStore {
            n_actions,
            // qlint::allow(ND03, reason = "probe-only row index, never iterated")
            index: RowIndex::Map(HashMap::default()),
            keys: Vec::new(),
            values: Vec::new(),
            visits: Vec::new(),
        }
    }

    fn backend_name() -> &'static str {
        "dense"
    }

    fn n_actions(&self) -> usize {
        self.n_actions
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn row(&self, state: StateKey) -> Option<(&[f64], &[u64])> {
        let row = self.index.get(state)?;
        let span = self.span(row);
        Some((&self.values[span.clone()], &self.visits[span]))
    }

    fn row_mut(&mut self, state: StateKey, fill: f64) -> (&mut [f64], &mut [u64]) {
        let row = if let Some(r) = self.index.get(state) {
            r
        } else {
            // qlint::allow(PN01, reason = "4 billion touched rows exceeds any state space here; a capacity panic beats silent row aliasing")
            let r = u32::try_from(self.keys.len()).expect("dense table exceeds u32 rows");
            self.index.insert(state, r);
            self.keys.push(state);
            self.values.resize(self.values.len() + self.n_actions, fill);
            self.visits.resize(self.visits.len() + self.n_actions, 0);
            r
        };
        let span = self.span(row);
        (&mut self.values[span.clone()], &mut self.visits[span])
    }

    fn contains(&self, state: StateKey) -> bool {
        self.index.get(state).is_some()
    }

    fn state_keys(&self) -> Vec<StateKey> {
        let mut keys = self.keys.clone();
        keys.sort_unstable();
        keys
    }

    fn for_each_row(&self, f: &mut RowVisitor<'_>) {
        for (i, &k) in self.keys.iter().enumerate() {
            let span = {
                let start = i * self.n_actions;
                start..start + self.n_actions
            };
            f(k, &self.values[span.clone()], &self.visits[span]);
        }
    }

    fn for_each_row_mut(&mut self, f: &mut RowVisitorMut<'_>) {
        let rows = self
            .values
            .chunks_exact_mut(self.n_actions)
            .zip(self.visits.chunks_exact_mut(self.n_actions));
        for (&k, (values, visits)) in self.keys.iter().zip(rows) {
            f(k, values, visits);
        }
    }

    fn with_space(n_actions: usize, n_states: u64) -> Self {
        DenseStore::with_space(n_actions, n_states)
    }

    fn covers_space(&self, n_states: u64) -> bool {
        DenseStore::covers_space(self, n_states)
    }

    fn resident_bytes(&self) -> usize {
        let index = match &self.index {
            // Direct slot tables are sized by the declared space.
            RowIndex::Direct(slots) => slots.len() * 4,
            // Hashed index: count entries, not capacity (determinism).
            RowIndex::Map(_) => self.keys.len() * 12,
        };
        self.values.len() * 8 + self.visits.len() * 8 + self.keys.len() * 8 + index
    }

    /// Dense fast path: when the two arenas share the exact row layout
    /// (same keys in the same row order — e.g. an accumulator seeded
    /// from a sibling table, or fully-populated tables built over the
    /// same `StateSpace` walk), the fold is a straight zip of the four
    /// arena `Vec`s: no index probes, no key decoding, just one
    /// contiguous multiply-add pass. An empty accumulator bulk-adopts
    /// the first input's layout wholesale. Only genuinely divergent
    /// layouts pay the per-row index path — and even that is one
    /// slot-table load per row for space-declared tables.
    fn fold_weighted(&mut self, other: &Self) {
        debug_assert_eq!(self.n_actions, other.n_actions);
        if self.keys.is_empty() {
            // First fold: adopt the input's layout and weight in place.
            self.index = other.index.clone();
            self.keys.clone_from(&other.keys);
            self.visits.clone_from(&other.visits);
            self.values = other
                .values
                .iter()
                .zip(&other.visits)
                .map(|(&q, &n)| q * n as f64)
                .collect();
            return;
        }
        if self.keys == other.keys {
            // Identical layout: zip the arenas directly.
            let rows = self.values.iter_mut().zip(self.visits.iter_mut());
            let others = other.values.iter().zip(&other.visits);
            for ((v, n), (&q, &m)) in rows.zip(others) {
                *v += q * m as f64;
                *n += m;
            }
            return;
        }
        // Divergent layouts: per-row probe of this store's index. A key
        // beyond a direct index's declared capacity demotes the index
        // to the hashed map once (unions may exceed any one space).
        for (i, &k) in other.keys.iter().enumerate() {
            let span = i * self.n_actions..(i + 1) * self.n_actions;
            if !self.index_accepts(k) {
                self.demote_index_to_map();
            }
            let (v, n) = self.row_mut(k, 0.0);
            let (ov, on) = (&other.values[span.clone()], &other.visits[span]);
            for a in 0..v.len() {
                v[a] += ov[a] * on[a] as f64;
                n[a] += on[a];
            }
        }
    }
}

/// Row-insertion order is an implementation detail of the arena, so
/// equality compares *contents*: same action count, same touched states,
/// same rows.
impl PartialEq for DenseStore {
    fn eq(&self, other: &Self) -> bool {
        if self.n_actions != other.n_actions || self.keys.len() != other.keys.len() {
            return false;
        }
        self.keys.iter().enumerate().all(|(i, &k)| {
            let span = i * self.n_actions..(i + 1) * self.n_actions;
            other.row(k).is_some_and(|(ov, on)| {
                self.values[span.clone()] == *ov && self.visits[span.clone()] == *on
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill<S: QStore>(pairs: &[(StateKey, usize, f64)]) -> S {
        let mut s = S::with_actions(3);
        for &(k, a, v) in pairs {
            let (values, visits) = s.row_mut(k, 0.0);
            values[a] = v;
            visits[a] += 1;
        }
        s
    }

    #[test]
    fn dense_rows_are_contiguous_and_isolated() {
        let s: DenseStore = fill(&[(10, 0, 1.0), (7, 2, -2.0), (10, 1, 3.0)]);
        assert_eq!(s.len(), 2);
        let (v10, n10) = s.row(10).unwrap();
        assert_eq!(v10, &[1.0, 3.0, 0.0]);
        assert_eq!(n10, &[1, 1, 0]);
        let (v7, n7) = s.row(7).unwrap();
        assert_eq!(v7, &[0.0, 0.0, -2.0]);
        assert_eq!(n7, &[0, 0, 1]);
        assert!(s.row(11).is_none());
    }

    #[test]
    fn dense_equality_ignores_insertion_order() {
        let a: DenseStore = fill(&[(1, 0, 1.0), (2, 1, 2.0)]);
        let b: DenseStore = fill(&[(2, 1, 2.0), (1, 0, 1.0)]);
        assert_eq!(a, b);
        let c: DenseStore = fill(&[(2, 1, 2.5), (1, 0, 1.0)]);
        assert_ne!(a, c);
    }

    #[test]
    fn backends_agree_on_touched_state_bookkeeping() {
        let ops = [(5u64, 1usize, 0.5f64), (9, 0, -1.0), (5, 2, 2.0)];
        let h: HashStore = fill(&ops);
        let d: DenseStore = fill(&ops);
        assert_eq!(h.len(), d.len());
        assert_eq!(h.state_keys(), d.state_keys());
        for k in h.state_keys() {
            assert_eq!(h.row(k), d.row(k));
        }
        assert!(h.contains(5) && d.contains(5));
        assert!(!h.contains(6) && !d.contains(6));
    }

    #[test]
    fn key_hasher_spreads_sequential_keys() {
        use std::hash::Hasher as _;
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..1_000 {
            let mut h = KeyHasher::default();
            h.write_u64(k);
            // Low 10 bits decide the bucket in a 1024-slot table.
            seen.insert(h.finish() & 0x3ff);
        }
        assert!(seen.len() > 600, "only {} distinct buckets", seen.len());
    }

    #[test]
    fn direct_index_matches_map_index() {
        let ops = [
            (5u64, 1usize, 0.5f64),
            (999, 0, -1.0),
            (5, 2, 2.0),
            (0, 0, 7.0),
        ];
        let mapped: DenseStore = fill(&ops);
        let mut direct = DenseStore::with_space(3, 1_000);
        assert!(direct.is_direct_indexed());
        assert!(!mapped.is_direct_indexed());
        for &(k, a, v) in &ops {
            let (values, visits) = direct.row_mut(k, 0.0);
            values[a] = v;
            visits[a] += 1;
        }
        assert_eq!(direct, mapped, "index layout must not be observable");
        assert_eq!(direct.state_keys(), mapped.state_keys());
        assert!(direct.row(1).is_none());
        assert!(
            direct.row(5_000).is_none(),
            "out-of-space probe reads as absent"
        );
    }

    #[test]
    fn oversized_space_falls_back_to_map() {
        let s = DenseStore::with_space(9, DenseStore::DIRECT_INDEX_LIMIT + 1);
        assert!(!s.is_direct_indexed());
    }

    #[test]
    #[should_panic(expected = "outside the declared direct-index capacity")]
    fn direct_index_rejects_out_of_space_writes() {
        let mut s = DenseStore::with_space(3, 10);
        let _ = s.row_mut(10, 0.0);
    }

    #[test]
    fn with_row_capacity_behaves_like_empty() {
        let mut s = DenseStore::with_row_capacity(3, 100);
        assert!(s.is_empty());
        let (v, n) = s.row_mut(42, 0.0);
        v[1] = 1.5;
        n[1] = 1;
        assert_eq!(s.row(42).unwrap().0[1], 1.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_actions_rejected() {
        let _ = DenseStore::with_actions(0);
    }
}
