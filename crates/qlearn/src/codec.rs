//! Compact binary Q-table and delta codec (`NXQT`).
//!
//! JSON cannot carry fleet-scale table state: a populated paper-space
//! table is ~600k cells, and a self-describing JSON cell record costs
//! ~60 bytes where the binary form costs ~11. Campaign checkpoints and
//! the uplink-cost model (bytes a device actually sends per federated
//! round) both need an exact, dependency-free encoding — exact meaning
//! *bit*-exact: values travel as raw IEEE-754 bits, so a decoded table
//! re-encodes to identical bytes and a resumed campaign reproduces an
//! uninterrupted run byte for byte.
//!
//! # Wire format (version 1, all integers little-endian)
//!
//! ```text
//! magic      4 bytes  "NXQT"
//! version    u16      1
//! kind       u8       1 = full table, 2 = delta
//! n_actions  u16      > 0
//! default_q  f64      raw bits; must be finite
//! row_count  varint
//! rows, sorted by ascending state key:
//!   state gap   varint   first row: the key itself; later rows:
//!                        key - previous key (>= 1, keys strictly ascend)
//!   cell mask   varint   bit a set iff visits[a] > 0; bits >= n_actions
//!                        must be clear
//!   per set bit, ascending action index:
//!     value     f64      raw bits; must be finite
//!     visits    varint   > 0 by construction of the mask
//! ```
//!
//! Unvisited cells are never encoded: the table invariant (enforced at
//! every write path) is that a cell with zero visits physically holds
//! the table default, so eliding it is lossless. Rows whose cells are
//! *all* unvisited still appear (empty mask) — row existence is
//! observable through `contains`/`len`.
//!
//! A **delta** (`kind = 2`) uses the identical row format but carries
//! only rows that changed: applying it to the base table replaces those
//! rows wholesale. [`delta_between`] computes the minimal such delta
//! (bitwise row comparison, so even a `-0.0` vs `0.0` flip is caught)
//! and [`apply_delta`] reconstructs the exact new table — the federated
//! uplink in `simkit::campaign` sends these bytes instead of a fixed
//! per-round constant.
//!
//! Varints are unsigned LEB128 (7 bits per byte, low group first),
//! capped at 10 bytes. Decoding validates magic, version, kind, action
//! count, mask width, key ordering, value finiteness and exact input
//! length, in the style of `docs/TRACE_FORMAT.md`.

use std::fmt;

use crate::backend::{QStore, StateKey};
use crate::qtable::QTable;

/// Wire magic: "NXQT".
pub const MAGIC: [u8; 4] = *b"NXQT";
/// Current wire version.
pub const VERSION: u16 = 1;

const KIND_FULL: u8 = 1;
pub(crate) const KIND_DELTA: u8 = 2;

/// Error returned by the binary codec entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input does not start with the `NXQT` magic.
    BadMagic,
    /// The wire version is not one this build understands.
    BadVersion(u16),
    /// The kind byte is neither full-table nor delta.
    BadKind(u8),
    /// A full-table entry point got a delta, or vice versa.
    WrongKind {
        /// Kind the caller required.
        expected: u8,
        /// Kind the input carried.
        got: u8,
    },
    /// The input ended before the declared content.
    Truncated,
    /// Valid content followed by unconsumed bytes.
    TrailingBytes,
    /// A varint ran past 10 bytes (cannot fit a u64).
    BadVarint,
    /// The header declares zero actions.
    ZeroActions,
    /// The default-q bits decode to NaN or an infinity.
    NonFiniteDefault,
    /// A cell value's bits decode to NaN or an infinity.
    NonFiniteValue,
    /// Row keys are not strictly ascending.
    NonAscendingState,
    /// A cell mask has bits set at or above `n_actions`.
    BadMask,
    /// A state-key gap overflowed the u64 key space.
    KeyOverflow,
    /// Delta and base disagree on action count or default value.
    DeltaMismatch {
        /// Which header field disagrees.
        field: &'static str,
    },
    /// `delta_between` saw a base row absent from the new table; the
    /// delta format expresses row replacement, not removal.
    RowRemoved(StateKey),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad magic (expected NXQT)"),
            CodecError::BadVersion(v) => write!(f, "unsupported NXQT version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown NXQT kind {k}"),
            CodecError::WrongKind { expected, got } => {
                write!(f, "expected NXQT kind {expected}, got {got}")
            }
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after table"),
            CodecError::BadVarint => write!(f, "varint exceeds 10 bytes"),
            CodecError::ZeroActions => write!(f, "action count must be non-zero"),
            CodecError::NonFiniteDefault => write!(f, "non-finite default q"),
            CodecError::NonFiniteValue => write!(f, "non-finite q-value"),
            CodecError::NonAscendingState => write!(f, "state keys must strictly ascend"),
            CodecError::BadMask => write!(f, "cell mask wider than the action count"),
            CodecError::KeyOverflow => write!(f, "state key gap overflows u64"),
            CodecError::DeltaMismatch { field } => {
                write!(f, "delta does not match base table: {field} differs")
            }
            CodecError::RowRemoved(state) => write!(
                f,
                "state {state} exists in the base but not the new table; \
                 deltas cannot express row removal"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let group = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(group);
            return;
        }
        out.push(group | 0x80);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        let b = self.take(8)?;
        let mut bits = [0u8; 8];
        bits.copy_from_slice(b);
        Ok(f64::from_bits(u64::from_le_bytes(bits)))
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        for i in 0..10 {
            let byte = self.u8()?;
            let group = u64::from(byte & 0x7f);
            // The 10th byte may only carry the top bit of a u64.
            if i == 9 && group > 1 {
                return Err(CodecError::BadVarint);
            }
            value |= group << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CodecError::BadVarint)
    }

    fn done(&self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

/// One decoded row: full value/visit slices, ready for `insert_raw`.
struct Row {
    state: StateKey,
    values: Vec<f64>,
    visits: Vec<u64>,
}

pub(crate) fn encode_header(out: &mut Vec<u8>, kind: u8, n_actions: usize, default_q: f64) {
    out.extend_from_slice(&MAGIC);
    put_u16(out, VERSION);
    out.push(kind);
    put_u16(
        out,
        // qlint::allow(PN01, reason = "the paper's action set has 9 entries; a u16 overflow is a caller bug the codec must not mask")
        u16::try_from(n_actions).expect("action counts are small"),
    );
    put_f64(out, default_q);
}

pub(crate) fn encode_row(
    out: &mut Vec<u8>,
    prev: Option<StateKey>,
    state: StateKey,
    values: &[f64],
    visits: &[u64],
) {
    let gap = match prev {
        None => state,
        Some(p) => state - p,
    };
    put_varint(out, gap);
    let mut mask = 0u64;
    for (a, &n) in visits.iter().enumerate() {
        if n > 0 {
            mask |= 1 << a;
        }
    }
    put_varint(out, mask);
    for (a, (&v, &n)) in values.iter().zip(visits.iter()).enumerate() {
        debug_assert!(a < 64);
        if n > 0 {
            put_f64(out, v);
            put_varint(out, n);
        }
    }
}

/// Encodes a full table (kind 1). The row order is the sorted key
/// order, so the bytes are independent of insertion order and backend.
#[must_use]
pub fn encode_table<S: QStore>(table: &QTable<S>) -> Vec<u8> {
    let keys = table.state_keys();
    let mut out = Vec::with_capacity(32 + keys.len() * (3 + table.n_actions() * 10));
    encode_header(&mut out, KIND_FULL, table.n_actions(), table.default_q());
    put_varint(&mut out, keys.len() as u64);
    let mut prev = None;
    for k in keys {
        // qlint::allow(PN01, reason = "k comes from state_keys() of the same table, so the row exists")
        let (values, visits) = table.entry_raw(k).expect("listed key has a row");
        encode_row(&mut out, prev, k, values, visits);
        prev = Some(k);
    }
    out
}

fn decode_body(bytes: &[u8], want_kind: u8) -> Result<(usize, f64, Vec<Row>), CodecError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let kind = r.u8()?;
    if kind != KIND_FULL && kind != KIND_DELTA {
        return Err(CodecError::BadKind(kind));
    }
    if kind != want_kind {
        return Err(CodecError::WrongKind {
            expected: want_kind,
            got: kind,
        });
    }
    let n_actions = r.u16()? as usize;
    if n_actions == 0 {
        return Err(CodecError::ZeroActions);
    }
    let default_q = r.f64()?;
    if !default_q.is_finite() {
        return Err(CodecError::NonFiniteDefault);
    }
    let row_count = r.varint()?;
    let mut rows = Vec::with_capacity(usize::try_from(row_count).unwrap_or(0).min(1 << 20));
    let mut prev: Option<StateKey> = None;
    for _ in 0..row_count {
        let gap = r.varint()?;
        let state = match prev {
            None => gap,
            Some(p) => {
                if gap == 0 {
                    return Err(CodecError::NonAscendingState);
                }
                p.checked_add(gap).ok_or(CodecError::KeyOverflow)?
            }
        };
        let mask = r.varint()?;
        if n_actions < 64 && mask >> n_actions != 0 {
            return Err(CodecError::BadMask);
        }
        let mut values = vec![default_q; n_actions];
        let mut visits = vec![0u64; n_actions];
        for a in 0..n_actions {
            if mask & (1 << a) != 0 {
                let v = r.f64()?;
                if !v.is_finite() {
                    return Err(CodecError::NonFiniteValue);
                }
                values[a] = v;
                visits[a] = r.varint()?;
            }
        }
        rows.push(Row {
            state,
            values,
            visits,
        });
        prev = Some(state);
    }
    r.done()?;
    Ok((n_actions, default_q, rows))
}

/// Decodes a full table (kind 1) into backend `S`.
///
/// # Errors
///
/// Returns [`CodecError`] on any malformed input: wrong magic, version
/// or kind, truncation, trailing bytes, non-finite values, out-of-range
/// masks or non-ascending keys.
pub fn decode_table<S: QStore>(bytes: &[u8]) -> Result<QTable<S>, CodecError> {
    let (n_actions, default_q, rows) = decode_body(bytes, KIND_FULL)?;
    let mut table: QTable<S> = QTable::empty(n_actions, default_q);
    for row in rows {
        table.insert_raw(row.state, &row.values, &row.visits);
    }
    Ok(table)
}

pub(crate) fn row_differs(base: Option<(&[f64], &[u64])>, values: &[f64], visits: &[u64]) -> bool {
    match base {
        None => true,
        Some((bv, bn)) => {
            // Bitwise comparison: byte-identity of the re-encoded
            // table is the contract, and f64 `==` would miss a
            // -0.0/0.0 flip.
            bn != visits
                || bv
                    .iter()
                    .zip(values.iter())
                    .any(|(a, b)| a.to_bits() != b.to_bits())
        }
    }
}

/// Encodes the delta (kind 2) that transforms `base` into `new`: the
/// rows of `new` that are missing from `base` or differ from it bitwise
/// (values compared by raw bits, visits exactly). Applying the result
/// with [`apply_delta`] reproduces `new` exactly.
///
/// The returned byte length is the campaign's per-device uplink cost —
/// a device that learned little sends little.
///
/// # Errors
///
/// Returns [`CodecError::DeltaMismatch`] when the tables disagree on
/// action count or default value, and [`CodecError::RowRemoved`] when
/// `base` holds a row `new` lacks (deltas cannot express removal; the
/// federated warm start never shrinks a table).
pub fn delta_between<S: QStore>(base: &QTable<S>, new: &QTable<S>) -> Result<Vec<u8>, CodecError> {
    if base.n_actions() != new.n_actions() {
        return Err(CodecError::DeltaMismatch { field: "n_actions" });
    }
    if base.default_q().to_bits() != new.default_q().to_bits() {
        return Err(CodecError::DeltaMismatch { field: "default_q" });
    }
    for k in base.state_keys() {
        if !new.contains(k) {
            return Err(CodecError::RowRemoved(k));
        }
    }
    let mut changed: Vec<StateKey> = Vec::new();
    for k in new.state_keys() {
        // qlint::allow(PN01, reason = "k comes from state_keys() of the same table, so the row exists")
        let (values, visits) = new.entry_raw(k).expect("listed key has a row");
        if row_differs(base.entry_raw(k), values, visits) {
            changed.push(k);
        }
    }
    let mut out = Vec::with_capacity(32 + changed.len() * (3 + new.n_actions() * 10));
    encode_header(&mut out, KIND_DELTA, new.n_actions(), new.default_q());
    put_varint(&mut out, changed.len() as u64);
    let mut prev = None;
    for k in changed {
        // qlint::allow(PN01, reason = "changed only holds keys just probed successfully above")
        let (values, visits) = new.entry_raw(k).expect("changed key has a row");
        encode_row(&mut out, prev, k, values, visits);
        prev = Some(k);
    }
    Ok(out)
}

/// Applies an encoded delta (kind 2) to `base`, replacing every carried
/// row wholesale, and returns the reconstructed table.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed delta bytes, and
/// [`CodecError::DeltaMismatch`] when the delta header's action count
/// or default value (compared bitwise) disagrees with `base`.
pub fn apply_delta<S: QStore>(base: &QTable<S>, delta: &[u8]) -> Result<QTable<S>, CodecError> {
    let (n_actions, default_q, rows) = decode_body(delta, KIND_DELTA)?;
    if n_actions != base.n_actions() {
        return Err(CodecError::DeltaMismatch { field: "n_actions" });
    }
    if default_q.to_bits() != base.default_q().to_bits() {
        return Err(CodecError::DeltaMismatch { field: "default_q" });
    }
    let mut out = base.clone();
    for row in rows {
        out.insert_raw(row.state, &row.values, &row.visits);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DenseStore, HashStore};
    use crate::qtable::DenseQTable;
    use proptest::prelude::*;

    fn sample_table() -> DenseQTable {
        let mut t = DenseQTable::dense_with_default_q(9, 25.0);
        for s in [0u64, 3, 17, 622_079] {
            for a in 0..9usize {
                if !(s as usize + a).is_multiple_of(3) {
                    t.set(s, a, ((s as f64) + 1.0).recip() * (a as f64 - 4.0));
                }
            }
        }
        t
    }

    #[test]
    fn full_table_roundtrips_bitwise() {
        let t = sample_table();
        let bytes = encode_table(&t);
        let back: DenseQTable = decode_table(&bytes).expect("own encoding decodes");
        assert_eq!(back, t);
        assert_eq!(encode_table(&back), bytes, "encode∘decode is a fixpoint");
    }

    #[test]
    fn backends_encode_identically() {
        let d = sample_table();
        let h: QTable<HashStore> = d.to_backend();
        assert_eq!(encode_table(&d), encode_table(&h));
        let hd: DenseQTable = decode_table::<HashStore>(&encode_table(&d))
            .expect("hash decodes")
            .to_backend();
        assert_eq!(hd, d);
    }

    #[test]
    fn empty_and_all_unvisited_rows_survive() {
        let empty = DenseQTable::dense(4);
        let bytes = encode_table(&empty);
        let back: DenseQTable = decode_table(&bytes).expect("empty decodes");
        assert!(back.is_empty());

        // A row that exists but has zero visits everywhere (decodable
        // from the text format) must keep existing across the trip.
        let t: QTable<HashStore> =
            QTable::decode("qtable v2 2 0e0\n7 0e0 0e0 | 0 0\n").expect("text decodes");
        assert!(t.contains(7));
        let back: QTable<HashStore> = decode_table(&encode_table(&t)).expect("decodes");
        assert!(back.contains(7), "empty-mask row preserved");
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_bad_magic_version_kind_and_truncation() {
        let bytes = encode_table(&sample_table());

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            decode_table::<DenseStore>(&bad).unwrap_err(),
            CodecError::BadMagic
        );

        let mut bad = bytes.clone();
        bad[4] = 99;
        assert_eq!(
            decode_table::<DenseStore>(&bad).unwrap_err(),
            CodecError::BadVersion(99)
        );

        let mut bad = bytes.clone();
        bad[6] = 7;
        assert_eq!(
            decode_table::<DenseStore>(&bad).unwrap_err(),
            CodecError::BadKind(7)
        );

        // Every proper prefix is rejected (truncation anywhere).
        for cut in 0..bytes.len() {
            assert!(
                decode_table::<DenseStore>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }

        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            decode_table::<DenseStore>(&long).unwrap_err(),
            CodecError::TrailingBytes
        );
    }

    #[test]
    fn full_entry_point_rejects_deltas_and_vice_versa() {
        let t = sample_table();
        let delta = delta_between(&DenseQTable::dense_with_default_q(9, 25.0), &t)
            .expect("delta from empty base");
        assert_eq!(
            decode_table::<DenseStore>(&delta).unwrap_err(),
            CodecError::WrongKind {
                expected: 1,
                got: 2
            }
        );
        let full = encode_table(&t);
        assert_eq!(
            apply_delta(&t, &full).unwrap_err(),
            CodecError::WrongKind {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn delta_apply_equals_full_table() {
        let base = sample_table();
        let mut new = base.clone();
        new.set(3, 1, -0.125); // changed row
        new.set(1_000_000, 0, 2.5); // brand-new row
        let delta = delta_between(&base, &new).expect("delta encodes");
        let reconstructed = apply_delta(&base, &delta).expect("delta applies");
        assert_eq!(reconstructed, new);
        assert_eq!(
            encode_table(&reconstructed),
            encode_table(&new),
            "reconstruction is byte-identical"
        );
        // The delta carries only the touched rows, so it is much
        // smaller than the full table.
        assert!(
            delta.len() < encode_table(&new).len() / 2,
            "delta {} bytes vs full {}",
            delta.len(),
            encode_table(&new).len()
        );
    }

    #[test]
    fn identical_tables_produce_an_empty_delta() {
        let t = sample_table();
        let delta = delta_between(&t, &t).expect("self-delta");
        let rows_after_header = decode_body(&delta, KIND_DELTA).expect("decodes").2;
        assert!(rows_after_header.is_empty());
        assert_eq!(apply_delta(&t, &delta).expect("applies"), t);
    }

    #[test]
    fn delta_mismatches_are_typed_errors() {
        let base = DenseQTable::dense(3);
        let other = DenseQTable::dense(4);
        assert_eq!(
            delta_between(&base, &other).unwrap_err(),
            CodecError::DeltaMismatch { field: "n_actions" }
        );
        let optimistic = DenseQTable::dense_with_default_q(3, 25.0);
        assert_eq!(
            delta_between(&base, &optimistic).unwrap_err(),
            CodecError::DeltaMismatch { field: "default_q" }
        );
        let mut shrunk = DenseQTable::dense(3);
        shrunk.set(5, 0, 1.0);
        assert_eq!(
            delta_between(&shrunk, &base).unwrap_err(),
            CodecError::RowRemoved(5)
        );
        // Applying a mismatched delta is rejected too.
        let delta = delta_between(&base, &base).expect("empty delta");
        assert_eq!(
            apply_delta(&other, &delta).unwrap_err(),
            CodecError::DeltaMismatch { field: "n_actions" }
        );
    }

    #[test]
    fn minus_zero_flip_is_a_detected_change() {
        let mut base = DenseQTable::dense(2);
        base.set(1, 0, 0.0);
        let mut new = DenseQTable::dense(2);
        new.set(1, 0, -0.0);
        let delta = delta_between(&base, &new).expect("delta encodes");
        let rows = decode_body(&delta, KIND_DELTA).expect("decodes").2;
        assert_eq!(rows.len(), 1, "bitwise comparison catches -0.0");
        assert_eq!(
            encode_table(&apply_delta(&base, &delta).unwrap()),
            encode_table(&new)
        );
    }

    proptest! {
        #[test]
        fn roundtrip_random_tables(
            cells in proptest::collection::vec(
                (0u64..100_000, 0usize..9, -1.0e3f64..1.0e3), 0..60),
            default_q in -10.0f64..30.0,
        ) {
            let mut t = DenseQTable::dense_with_default_q(9, default_q);
            for (s, a, v) in cells {
                t.set(s, a, v);
            }
            let bytes = encode_table(&t);
            let back: DenseQTable = decode_table(&bytes).expect("decodes");
            prop_assert_eq!(&back, &t);
            prop_assert_eq!(encode_table(&back), bytes);
        }

        #[test]
        fn random_deltas_reconstruct_exactly(
            base_cells in proptest::collection::vec(
                (0u64..5_000, 0usize..4, -1.0e2f64..1.0e2), 0..40),
            extra_cells in proptest::collection::vec(
                (0u64..10_000, 0usize..4, -1.0e2f64..1.0e2), 0..40),
        ) {
            let mut base = DenseQTable::dense(4);
            for (s, a, v) in base_cells {
                base.set(s, a, v);
            }
            let mut new = base.clone();
            for (s, a, v) in extra_cells {
                new.set(s, a, v);
            }
            let delta = delta_between(&base, &new).expect("delta encodes");
            let back = apply_delta(&base, &delta).expect("delta applies");
            prop_assert_eq!(&back, &new);
            prop_assert_eq!(encode_table(&back), encode_table(&new));
        }

        #[test]
        fn corrupted_bytes_never_panic(
            flip_at in 0usize..200,
            flip_to in 0u16..256,
        ) {
            let mut bytes = encode_table(&sample_table());
            if flip_at < bytes.len() {
                #[allow(clippy::cast_possible_truncation)]
                {
                    bytes[flip_at] = flip_to as u8;
                }
            }
            // Must return Ok or a typed error — never panic.
            let _ = decode_table::<DenseStore>(&bytes);
        }
    }
}
