//! Uniform quantisers for continuous observations.
//!
//! The paper quantises the frame rate "for improved training time"
//! (§IV-B, Fig. 6): fewer FPS bins mean fewer states and faster
//! convergence, at the cost of target resolution. 30 bins over the 0–60
//! range gave the best trade-off on the Note 9. Power and temperature
//! observations are quantised the same way before being packed into the
//! Q-table state key.

/// A uniform quantiser over `[lo, hi]` with a fixed number of bins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    lo: f64,
    hi: f64,
    bins: usize,
}

impl Quantizer {
    /// Creates a quantiser.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "range must be non-empty");
        Quantizer { lo, hi, bins }
    }

    /// The paper's FPS quantiser: `bins` levels over 0–60 FPS (Fig. 6
    /// sweeps 1..60; 30 is the recommended setting).
    #[must_use]
    pub fn fps(bins: usize) -> Self {
        Quantizer::new(0.0, 60.0, bins)
    }

    /// Power quantiser: 4 levels over 0–16 W (the platform's observed
    /// range; 4 W resolution keeps the state space tractable on-device
    /// and stops boost-induced power flapping from fragmenting states).
    #[must_use]
    pub fn power() -> Self {
        Quantizer::new(0.0, 16.0, 4)
    }

    /// Temperature quantiser: 6 levels over 20–95 °C (12.5 °C bins —
    /// thermal state changes slowly, so coarse bins suffice).
    #[must_use]
    pub fn temperature() -> Self {
        Quantizer::new(20.0, 95.0, 6)
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Lower bound of the input range.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the input range.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bin index of `x`, clamped into `[0, bins)`. NaN maps to bin 0.
    #[must_use]
    pub fn index(&self, x: f64) -> usize {
        // NaN and anything at or below the lower bound map to bin 0.
        if x.is_nan() || x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return self.bins - 1;
        }
        let t = (x - self.lo) / (self.hi - self.lo);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = (t * self.bins as f64) as usize;
        idx.min(self.bins - 1)
    }

    /// Centre value of bin `idx` (clamped to the last bin).
    #[must_use]
    pub fn center(&self, idx: usize) -> f64 {
        let idx = idx.min(self.bins - 1);
        let width = (self.hi - self.lo) / self.bins as f64;
        self.lo + (idx as f64 + 0.5) * width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fps_quantizer_30_bins() {
        let q = Quantizer::fps(30);
        assert_eq!(q.bins(), 30);
        assert_eq!(q.index(0.0), 0);
        assert_eq!(q.index(-5.0), 0);
        assert_eq!(q.index(60.0), 29);
        assert_eq!(q.index(100.0), 29);
        assert_eq!(q.index(30.0), 15);
        assert_eq!(q.index(1.9), 0);
        assert_eq!(q.index(2.1), 1);
    }

    #[test]
    fn single_bin_maps_everything_to_zero() {
        let q = Quantizer::fps(1);
        for x in [-1.0, 0.0, 30.0, 60.0, 1e9] {
            assert_eq!(q.index(x), 0);
        }
    }

    #[test]
    fn centers_are_inside_bins() {
        let q = Quantizer::new(10.0, 20.0, 5);
        for i in 0..5 {
            let c = q.center(i);
            assert_eq!(q.index(c), i, "center of bin {i} quantises back to it");
        }
        assert_eq!(q.center(99), q.center(4), "center clamps");
    }

    #[test]
    fn nan_maps_to_zero() {
        let q = Quantizer::fps(30);
        assert_eq!(q.index(f64::NAN), 0);
    }

    #[test]
    fn index_monotonic() {
        let q = Quantizer::new(0.0, 100.0, 13);
        let mut last = 0;
        for i in 0..=1_000 {
            let idx = q.index(f64::from(i) * 0.1);
            assert!(idx >= last);
            last = idx;
        }
        assert_eq!(last, 12);
    }

    #[test]
    fn preset_ranges() {
        assert_eq!(Quantizer::power().bins(), 4);
        assert_eq!(Quantizer::temperature().index(20.0), 0);
        assert_eq!(Quantizer::temperature().index(200.0), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Quantizer::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let _ = Quantizer::new(1.0, 1.0, 4);
    }
}
