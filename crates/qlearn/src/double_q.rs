//! Double Q-learning (van Hasselt, NeurIPS 2010).
//!
//! Standard Q-learning's `max` operator systematically over-estimates
//! action values under reward noise — a real concern here, where the
//! PPDW reward inherits the jitter of frame costs and the FPS window.
//! Double Q-learning keeps two tables and, on each update, uses one
//! table's argmax evaluated by the *other* table's estimate:
//!
//! ```text
//! with prob ½:  Q_A(s,a) += α·(r + γ·Q_B(s', argmax_a' Q_A(s',·)) − Q_A(s,a))
//! otherwise  :  Q_B(s,a) += α·(r + γ·Q_A(s', argmax_a' Q_B(s',·)) − Q_B(s,a))
//! ```
//!
//! Action selection uses the sum `Q_A + Q_B`. The Next agent exposes
//! this as `NextConfig::double_q`, ablated in the bench harness.

use rand::Rng;

use crate::backend::{DenseStore, HashStore, QStore};
use crate::qtable::{QTable, StateKey};

/// A pair of Q-tables updated with the double-Q rule (hash-backed by
/// default; `DoubleQ<DenseStore>` runs both tables on the dense
/// hot-path backend).
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleQ<S: QStore = HashStore> {
    a: QTable<S>,
    b: QTable<S>,
    gamma: f64,
}

impl DoubleQ<HashStore> {
    /// Creates a hash-backed double-Q learner for `n_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ gamma < 1` and `n_actions > 0`.
    #[must_use]
    pub fn new(n_actions: usize, gamma: f64) -> Self {
        assert!((0.0..1.0).contains(&gamma), "gamma out of range");
        DoubleQ {
            a: QTable::new(n_actions),
            b: QTable::new(n_actions),
            gamma,
        }
    }
}

impl DoubleQ<DenseStore> {
    /// Creates a dense-backed double-Q learner for `n_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ gamma < 1` and `n_actions > 0`.
    #[must_use]
    pub fn dense(n_actions: usize, gamma: f64) -> Self {
        assert!((0.0..1.0).contains(&gamma), "gamma out of range");
        DoubleQ {
            a: QTable::dense(n_actions),
            b: QTable::dense(n_actions),
            gamma,
        }
    }
}

impl<S: QStore> DoubleQ<S> {
    /// Rebuilds a learner from two persisted tables.
    ///
    /// # Panics
    ///
    /// Panics if the tables' action counts differ or `gamma` is out of
    /// range.
    #[must_use]
    pub fn from_tables(a: QTable<S>, b: QTable<S>, gamma: f64) -> Self {
        assert_eq!(a.n_actions(), b.n_actions(), "table arity mismatch");
        assert!((0.0..1.0).contains(&gamma), "gamma out of range");
        DoubleQ { a, b, gamma }
    }

    /// Number of actions per state.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.a.n_actions()
    }

    /// The first table.
    #[must_use]
    pub fn table_a(&self) -> &QTable<S> {
        &self.a
    }

    /// The second table.
    #[must_use]
    pub fn table_b(&self) -> &QTable<S> {
        &self.b
    }

    /// Consumes the learner, returning both tables.
    #[must_use]
    pub fn into_tables(self) -> (QTable<S>, QTable<S>) {
        (self.a, self.b)
    }

    /// The combined action value `Q_A + Q_B` used for control.
    #[must_use]
    pub fn combined_q(&self, state: StateKey, action: usize) -> f64 {
        self.a.q(state, action) + self.b.q(state, action)
    }

    /// The greedy action under the combined estimate (ties to the
    /// lowest index).
    #[must_use]
    pub fn best_action(&self, state: StateKey) -> usize {
        let mut best = 0;
        let mut best_v = self.combined_q(state, 0);
        for action in 1..self.n_actions() {
            let v = self.combined_q(state, action);
            if v > best_v {
                best = action;
                best_v = v;
            }
        }
        best
    }

    /// Applies one double-Q update with learning rate `alpha`; the coin
    /// flip comes from `rng`. Returns the TD error that was applied.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha ≤ 1`.
    pub fn update<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        state: StateKey,
        action: usize,
        reward: f64,
        next_state: StateKey,
        alpha: f64,
    ) -> f64 {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        let (primary, other) = if rng.gen_bool(0.5) {
            (&mut self.a, &self.b)
        } else {
            (&mut self.b, &self.a)
        };
        let greedy = primary.best_action(next_state).0;
        let bootstrap = other.q(next_state, greedy);
        let q = primary.q(state, action);
        let td = reward + self.gamma * bootstrap - q;
        primary.set(state, action, q + alpha * td);
        td
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_to_fixed_reward() {
        let mut dq = DoubleQ::new(2, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..4_000 {
            dq.update(&mut rng, 0, 1, 2.0, 0, 0.2);
        }
        assert!((dq.table_a().q(0, 1) - 2.0).abs() < 1e-3);
        assert!((dq.table_b().q(0, 1) - 2.0).abs() < 1e-3);
        assert!((dq.combined_q(0, 1) - 4.0).abs() < 1e-2);
        assert_eq!(dq.best_action(0), 1);
    }

    #[test]
    fn both_tables_receive_updates() {
        let mut dq = DoubleQ::new(3, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        for s in 0..200u64 {
            dq.update(&mut rng, s, (s % 3) as usize, 1.0, s + 1, 0.3);
        }
        assert!(dq.table_a().total_visits() > 50);
        assert!(dq.table_b().total_visits() > 50);
    }

    #[test]
    fn less_overestimation_than_single_q_under_noise() {
        // Classic setup: all actions have zero-mean noisy rewards, so
        // the true value is 0 everywhere. Single Q's max operator drags
        // estimates positive; double Q stays closer to zero.
        use crate::QLearning;
        use rand::Rng as _;

        let mut rng = StdRng::seed_from_u64(3);
        let single = QLearning::new(0.1, 0.9);
        let mut sq = QTable::new(8);
        let mut dq = DoubleQ::new(8, 0.9);
        for _ in 0..30_000 {
            let s = rng.gen_range(0u64..4);
            let a = rng.gen_range(0usize..8);
            let r: f64 = rng.gen_range(-1.0..1.0);
            let s2 = rng.gen_range(0u64..4);
            single.update(&mut sq, s, a, r, s2);
            dq.update(&mut rng, s, a, r, s2, 0.1);
        }
        let single_bias: f64 = (0..4).map(|s| sq.max_q(s)).sum::<f64>() / 4.0;
        let double_bias: f64 = (0..4)
            .map(|s| {
                let a = dq.best_action(s);
                dq.combined_q(s, a) / 2.0
            })
            .sum::<f64>()
            / 4.0;
        assert!(
            double_bias < single_bias,
            "double-Q bias {double_bias:.3} should undercut single-Q {single_bias:.3}"
        );
    }

    #[test]
    fn dense_backend_matches_hash_backend() {
        let mut hq = DoubleQ::new(3, 0.5);
        let mut dq = DoubleQ::dense(3, 0.5);
        // Identical RNG streams => identical coin flips => identical
        // tables, whatever the backend.
        let mut rng_h = StdRng::seed_from_u64(9);
        let mut rng_d = StdRng::seed_from_u64(9);
        for s in 0..300u64 {
            let a = (s % 3) as usize;
            let r = f64::from(u32::try_from(s % 7).unwrap()) - 3.0;
            hq.update(&mut rng_h, s % 20, a, r, (s + 1) % 20, 0.3);
            dq.update(&mut rng_d, s % 20, a, r, (s + 1) % 20, 0.3);
        }
        assert_eq!(hq.table_a().encode(), dq.table_a().encode());
        assert_eq!(hq.table_b().encode(), dq.table_b().encode());
        for s in 0..20 {
            assert_eq!(hq.best_action(s), dq.best_action(s));
        }
    }

    #[test]
    fn from_tables_roundtrip() {
        let mut dq = DoubleQ::new(2, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            dq.update(&mut rng, 7, 1, 1.5, 8, 0.25);
        }
        let (a, b) = dq.clone().into_tables();
        let back = DoubleQ::from_tables(a, b, 0.5);
        assert_eq!(back, dq);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mismatched_tables_rejected() {
        let _ = DoubleQ::from_tables(QTable::new(2), QTable::new(3), 0.5);
    }

    #[test]
    #[should_panic(expected = "gamma out of range")]
    fn bad_gamma_rejected() {
        let _ = DoubleQ::new(2, 1.0);
    }
}
