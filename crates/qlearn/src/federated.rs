//! Offline training in the cloud and federated averaging (§IV-C).
//!
//! The paper observes that a manufacturer ships many devices running the
//! same applications, so per-application Q-tables can be learned
//! federated-style: devices upload their tables, the cloud merges them,
//! and the merged action values are pushed back. Training in the cloud
//! is also simply *faster* — Fig. 6 compares on-device training time
//! against a 16-core Xeon E7-8860v3 with a measured round-trip
//! communication overhead of up to 4 seconds.
//!
//! # Streaming merge
//!
//! At fleet scale the cloud folds tables from millions of devices, so
//! the merger is a **streaming accumulator** ([`MergeAccumulator`]):
//! tables are folded one at a time, each fold touching every input row
//! exactly once, with memory bounded by the *union* of visited states —
//! a device's table can be dropped (or streamed from the network) the
//! moment it has been folded. The seed implementation
//! ([`merge_eager`]) instead materialised and sorted the concatenated
//! key set of *every* table before probing each table per key; it is
//! kept as the reference the equivalence tests and the perf probes
//! compare against.
//!
//! On the dense backend the fold zips the value/visit arenas directly
//! when the row layouts line up (see [`QStore::fold_weighted`]) — no
//! sorting, no key decoding, no per-key hashing. Heterogeneous
//! encoders keep working through the open-ended hash backend.

// qlint::allow(ND03, reason = "touched-row counters; iterated only in the finish fold where each key contributes independently")
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::backend::{DenseStore, KeyHashBuilder, QStore, StateKey};
use crate::overlay::OverlayStore;
use crate::qtable::{DenseQTable, QTable};

/// Error returned by the fallible merge entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No table was provided/folded — there is nothing to merge.
    NoTables,
    /// A table's action count disagrees with the accumulator's.
    ActionMismatch {
        /// Action count the accumulator was created with.
        expected: usize,
        /// Action count of the offending table.
        got: usize,
    },
    /// An overlay fold saw a table whose shared base is a different
    /// `Arc` than the first overlay's — the closed-form base
    /// reconstruction only holds when every device reads the same base.
    BaseMismatch,
    /// [`MergeAccumulator::fold`] and
    /// [`MergeAccumulator::fold_overlay`] were mixed in one
    /// accumulator; the base correction cannot tell the two
    /// populations apart.
    MixedFold,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoTables => write!(f, "cannot merge zero tables"),
            MergeError::ActionMismatch { expected, got } => write!(
                f,
                "all tables must share the action space: expected {expected} actions, got {got}"
            ),
            MergeError::BaseMismatch => {
                write!(f, "overlay folds must share a single Arc base table")
            }
            MergeError::MixedFold => {
                write!(f, "cannot mix overlay folds and plain folds in one merge")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Streaming visit-weighted merger: fold device tables one at a time,
/// then [`finish`](MergeAccumulator::finish) into the fleet table.
///
/// Internally the store holds per-pair numerators `Σ(visits·q)` in the
/// value cells and denominators `Σ visits` in the visit cells; `finish`
/// normalises in place. Memory stays proportional to the union of
/// visited states — tables never need to coexist, unlike the eager
/// reference ([`merge_eager`]) which keeps every table alive and sorts
/// their concatenated key sets.
///
/// ```
/// use qlearn::federated::MergeAccumulator;
/// use qlearn::QTable;
///
/// let mut a = QTable::new(3);
/// a.set(7, 1, 2.0);
/// let mut b = QTable::new(3);
/// b.set(7, 1, 4.0);
///
/// let mut acc = MergeAccumulator::new(3, 0.0);
/// acc.fold(&a).unwrap();
/// drop(a); // folded tables can be released immediately
/// acc.fold(&b).unwrap();
/// let fleet = acc.finish().unwrap();
/// assert_eq!(fleet.q(7, 1), 3.0);
/// assert_eq!(fleet.visits(7, 1), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MergeAccumulator<S: QStore = crate::backend::HashStore> {
    store: S,
    default_q: f64,
    folded: usize,
    overlay: Option<OverlayFold>,
}

/// Book-keeping for the overlay fast path: the shared base every
/// folded overlay reads through to, and how many folded devices
/// touched (shadowed) each base row. Untouched base rows contribute
/// `base_row × (folded − touched)` in closed form at finish time
/// instead of being re-folded per device.
#[derive(Debug, Clone)]
struct OverlayFold {
    base: Arc<DenseQTable>,
    // qlint::allow(ND03, reason = "per-key shadow counters; finish reads them by probing, never by iteration order")
    touched: HashMap<StateKey, u64, KeyHashBuilder>,
}

impl<S: QStore> MergeAccumulator<S> {
    /// Creates an empty accumulator for `n_actions` actions whose
    /// merged table will read `default_q` on unvisited pairs.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero or `default_q` is not finite.
    #[must_use]
    pub fn new(n_actions: usize, default_q: f64) -> Self {
        assert!(default_q.is_finite(), "default q must be finite");
        MergeAccumulator {
            store: S::with_actions(n_actions),
            default_q,
            folded: 0,
            overlay: None,
        }
    }

    /// Number of tables folded so far.
    #[must_use]
    pub fn n_folded(&self) -> usize {
        self.folded
    }

    /// Folds one device table into the accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::ActionMismatch`] when the table's action
    /// count differs from the accumulator's, or
    /// [`MergeError::MixedFold`] after an overlay fold; the
    /// accumulator is left untouched in either case.
    pub fn fold(&mut self, table: &QTable<S>) -> Result<(), MergeError> {
        if self.overlay.is_some() {
            return Err(MergeError::MixedFold);
        }
        if table.n_actions() != self.store.n_actions() {
            return Err(MergeError::ActionMismatch {
                expected: self.store.n_actions(),
                got: table.n_actions(),
            });
        }
        self.store.fold_weighted(table.store());
        self.folded += 1;
        Ok(())
    }

    /// Folds the closed-form contribution of untouched base rows —
    /// every folded device whose overlay did not shadow a base row
    /// contributed that row verbatim, so `folded − touched` copies are
    /// added in one pass over the base instead of once per device.
    /// Rows are materialised unconditionally so the merged table's row
    /// set stays the union of the inputs' rows, exactly like the
    /// per-device fold.
    fn apply_overlay_corrections(&mut self) {
        let Some(fold) = self.overlay.take() else {
            return;
        };
        let folded = self.folded as u64;
        let store = &mut self.store;
        fold.base.store().for_each_row(&mut |k, bv, bn| {
            let untouched = folded - fold.touched.get(&k).copied().unwrap_or(0);
            let (v, n) = store.row_mut(k, 0.0);
            for a in 0..bv.len() {
                v[a] += untouched as f64 * (bv[a] * bn[a] as f64);
                n[a] += untouched * bn[a];
            }
        });
    }

    /// Normalises the accumulated sums into the merged fleet table:
    /// every visited pair becomes `Σ(visits·q) / Σ visits` with the
    /// summed visit count; unvisited pairs read the default.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::NoTables`] when nothing was folded.
    pub fn finish(mut self) -> Result<QTable<S>, MergeError> {
        if self.folded == 0 {
            return Err(MergeError::NoTables);
        }
        self.apply_overlay_corrections();
        let default_q = self.default_q;
        self.store.for_each_row_mut(&mut |_, values, visits| {
            for (v, &n) in values.iter_mut().zip(visits.iter()) {
                if n > 0 {
                    *v /= n as f64;
                } else {
                    *v = default_q;
                }
            }
        });
        Ok(QTable::from_store(default_q, self.store))
    }

    /// Like [`finish`](MergeAccumulator::finish), but divides the
    /// summed visit counts by the number of folded tables (rounding
    /// down, floored at 1 for visited pairs) so visit magnitudes stay
    /// *stationary* across repeated merge generations.
    ///
    /// [`finish`](MergeAccumulator::finish) sums visits — correct for a
    /// one-shot fleet merge, but a campaign folds every device's table
    /// into the global table **every round**, and each device's table
    /// starts from the previous merged table: summed counts would grow
    /// by roughly a factor of the device count per round and overflow
    /// `u64` within a handful of rounds at 10⁶ devices. Normalising by
    /// the fold count keeps the merged count an *average* per device
    /// (the value average is unchanged — it is weighted by the raw
    /// sums either way).
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::NoTables`] when nothing was folded.
    pub fn finish_normalized(mut self) -> Result<QTable<S>, MergeError> {
        if self.folded == 0 {
            return Err(MergeError::NoTables);
        }
        self.apply_overlay_corrections();
        let default_q = self.default_q;
        let folded = self.folded as u64;
        self.store.for_each_row_mut(&mut |_, values, visits| {
            for (v, n) in values.iter_mut().zip(visits.iter_mut()) {
                if *n > 0 {
                    *v /= *n as f64;
                    *n = (*n / folded).max(1);
                } else {
                    *v = default_q;
                }
            }
        });
        Ok(QTable::from_store(default_q, self.store))
    }
}

impl MergeAccumulator<DenseStore> {
    /// Folds one device **overlay** in O(rows the device touched).
    ///
    /// Every overlay of the round shares the merged global as its
    /// `Arc` base, so a device's table is `base` with a handful of
    /// shadowed rows. Only those shadowed rows are folded here; the
    /// untouched remainder — identical across all devices — is added
    /// in closed form (`base_row × untouched_device_count`) when the
    /// accumulator finishes. The merged *result* is the same
    /// visit-weighted average [`MergeAccumulator::fold`] produces over
    /// materialised copies (per-row addition order differs, so the
    /// last floating-point bits may too), at a per-device cost
    /// proportional to one day's working set instead of the full
    /// state space.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::ActionMismatch`] on a differing action
    /// count, [`MergeError::BaseMismatch`] when `table` does not share
    /// the first overlay's `Arc` base, and [`MergeError::MixedFold`]
    /// after a plain [`MergeAccumulator::fold`]; the accumulator is
    /// left untouched in every error case.
    pub fn fold_overlay(&mut self, table: &QTable<OverlayStore>) -> Result<(), MergeError> {
        if table.n_actions() != self.store.n_actions() {
            return Err(MergeError::ActionMismatch {
                expected: self.store.n_actions(),
                got: table.n_actions(),
            });
        }
        if let Some(fold) = &self.overlay {
            if !Arc::ptr_eq(&fold.base, table.base()) {
                return Err(MergeError::BaseMismatch);
            }
        } else {
            if self.folded > 0 {
                return Err(MergeError::MixedFold);
            }
            self.overlay = Some(OverlayFold {
                base: Arc::clone(table.base()),
                // qlint::allow(ND03, reason = "constructor for the field annotated above")
                touched: HashMap::default(),
            });
        }
        // qlint::allow(PN01, reason = "both branches above leave self.overlay populated")
        let fold = self.overlay.as_mut().expect("overlay fold ensured above");
        let store = &mut self.store;
        table.store().for_each_touched(&mut |k, values, visits| {
            let (v, n) = store.row_mut(k, 0.0);
            for a in 0..values.len() {
                v[a] += values[a] * visits[a] as f64;
                n[a] += visits[a];
            }
            *fold.touched.entry(k).or_insert(0) += 1;
        });
        self.folded += 1;
        Ok(())
    }
}

/// Merges device Q-tables into a fleet table by visit-weighted
/// averaging: for every `(state, action)` the merged value is
/// `Σ(visits·q) / Σ(visits)` over the tables that visited the pair,
/// and the merged visit count is the sum. Pairs no device visited read
/// the first table's default.
///
/// Streams through [`MergeAccumulator`] — bounded memory, dense arena
/// fast path — and returns a typed error instead of panicking. Use
/// [`merge`] when the inputs are known-good.
///
/// # Errors
///
/// Returns [`MergeError`] when `tables` is empty or the action counts
/// disagree.
pub fn try_merge<S: QStore>(tables: &[&QTable<S>]) -> Result<QTable<S>, MergeError> {
    let first = tables.first().ok_or(MergeError::NoTables)?;
    let mut acc = MergeAccumulator::new(first.n_actions(), first.default_q());
    for t in tables {
        acc.fold(t)?;
    }
    acc.finish()
}

/// Panicking convenience wrapper around [`try_merge`] for call sites
/// with known-good inputs (the seed API).
///
/// # Panics
///
/// Panics if `tables` is empty or the action counts disagree.
#[must_use]
pub fn merge<S: QStore>(tables: &[&QTable<S>]) -> QTable<S> {
    match try_merge(tables) {
        Ok(t) => t,
        // qlint::allow(PN01, reason = "documented panicking convenience wrapper; fallible callers use try_merge")
        Err(e) => panic!("{e}"),
    }
}

/// The seed repo's eager merge: materialises and sorts the concatenated
/// key set of every table, then probes each table once per key.
///
/// Kept as the reference implementation: the equivalence tests assert
/// [`try_merge`] reproduces it bit for bit (the per-pair fold order is
/// identical, so even the floating-point rounding matches), and the
/// perf harness measures the streaming speedup against it.
///
/// # Panics
///
/// Panics if `tables` is empty or the action counts disagree.
#[must_use]
pub fn merge_eager<S: QStore>(tables: &[&QTable<S>]) -> QTable<S> {
    assert!(!tables.is_empty(), "cannot merge zero tables");
    let n_actions = tables[0].n_actions();
    assert!(
        tables.iter().all(|t| t.n_actions() == n_actions),
        "all tables must share the action space"
    );
    let mut merged: QTable<S> = QTable::empty(n_actions, tables[0].default_q());
    let mut all_states: Vec<_> = tables.iter().flat_map(|t| t.state_keys()).collect();
    all_states.sort_unstable();
    all_states.dedup();
    for state in all_states {
        let mut values = vec![0.0f64; n_actions];
        let mut weights = vec![0u64; n_actions];
        for t in tables {
            if let Some((v, n)) = t.entry_raw(state) {
                for a in 0..n_actions {
                    values[a] += v[a] * n[a] as f64;
                    weights[a] += n[a];
                }
            }
        }
        for a in 0..n_actions {
            if weights[a] > 0 {
                values[a] /= weights[a] as f64;
            }
        }
        merged.insert_raw(state, &values, &weights);
    }
    merged
}

/// Timing model for cloud/offline training (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudModel {
    /// How much faster the cloud executes Q-updates than the device's
    /// LITTLE cluster.
    pub speedup: f64,
    /// Fixed to-and-fro communication overhead per training round,
    /// seconds.
    pub comm_overhead_s: f64,
}

impl CloudModel {
    /// The paper's setup: a 16-core Xeon E7-8860v3 with 64 GB DDR3 —
    /// roughly an order of magnitude faster than the Cortex-A55 cluster
    /// for the table updates — plus the measured ≤4 s round-trip.
    #[must_use]
    pub fn xeon_e7_8860v3() -> Self {
        CloudModel {
            speedup: 9.0,
            comm_overhead_s: 4.0,
        }
    }

    /// Wall-clock time the cloud needs for a training run that takes
    /// `online_time_s` on the device, including the communication
    /// round-trip.
    ///
    /// # Panics
    ///
    /// Panics if `speedup` is not positive.
    #[must_use]
    pub fn cloud_time_s(&self, online_time_s: f64) -> f64 {
        assert!(self.speedup > 0.0, "speedup must be positive");
        online_time_s.max(0.0) / self.speedup + self.comm_overhead_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DenseStore, HashStore};
    use crate::qtable::DenseQTable;

    fn table_with(state: u64, action: usize, value: f64, visits: u64) -> QTable {
        let mut t = QTable::new(3);
        for _ in 0..visits {
            t.set(state, action, value);
        }
        t
    }

    #[test]
    fn merge_single_table_is_identity_on_values() {
        let t = table_with(5, 1, 2.0, 3);
        let merged = merge(&[&t]);
        assert_eq!(merged.q(5, 1), 2.0);
        assert_eq!(merged.visits(5, 1), 3);
    }

    #[test]
    fn merge_weights_by_visits() {
        // Device A visited (0,0) once with value 0; device B ten times
        // with value 1 — the merge should sit near B.
        let a = table_with(0, 0, 0.0, 1);
        let b = table_with(0, 0, 1.0, 10);
        let merged = merge(&[&a, &b]);
        let q = merged.q(0, 0);
        assert!((q - 10.0 / 11.0).abs() < 1e-12, "q {q}");
        assert_eq!(merged.visits(0, 0), 11);
    }

    #[test]
    fn merge_unions_disjoint_states() {
        let a = table_with(1, 0, 1.0, 1);
        let b = table_with(2, 2, -1.0, 1);
        let merged = merge(&[&a, &b]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.q(1, 0), 1.0);
        assert_eq!(merged.q(2, 2), -1.0);
    }

    #[test]
    fn merge_stays_in_convex_hull() {
        let a = table_with(0, 0, -2.0, 4);
        let b = table_with(0, 0, 3.0, 2);
        let c = table_with(0, 0, 0.5, 1);
        let merged = merge(&[&a, &b, &c]);
        let q = merged.q(0, 0);
        assert!(
            (-2.0..=3.0).contains(&q),
            "merged value {q} escaped the hull"
        );
    }

    #[test]
    #[should_panic(expected = "share the action space")]
    fn merge_rejects_mismatched_actions() {
        let a = QTable::new(2);
        let b = QTable::new(3);
        let _ = merge(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "zero tables")]
    fn merge_rejects_empty_input() {
        let _ = merge::<HashStore>(&[]);
    }

    #[test]
    fn try_merge_returns_typed_errors() {
        assert_eq!(try_merge::<HashStore>(&[]), Err(MergeError::NoTables));
        let a = QTable::new(2);
        let b = QTable::new(3);
        assert_eq!(
            try_merge(&[&a, &b]),
            Err(MergeError::ActionMismatch {
                expected: 2,
                got: 3
            })
        );
        assert!(try_merge(&[&a]).is_ok());
    }

    #[test]
    fn accumulator_rejects_mismatch_and_stays_usable() {
        let mut acc: MergeAccumulator = MergeAccumulator::new(3, 0.0);
        let good = table_with(1, 0, 1.0, 2);
        let bad = QTable::new(2);
        acc.fold(&good).expect("3-action table folds");
        assert!(matches!(
            acc.fold(&bad),
            Err(MergeError::ActionMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert_eq!(acc.n_folded(), 1, "failed fold must not count");
        let merged = acc.finish().expect("one table folded");
        assert_eq!(merged.q(1, 0), 1.0);
    }

    #[test]
    fn normalized_finish_keeps_values_and_averages_visits() {
        let a = table_with(0, 0, 1.0, 6);
        let b = table_with(0, 0, 4.0, 2);
        let summed = {
            let mut acc: MergeAccumulator = MergeAccumulator::new(3, 0.0);
            acc.fold(&a).unwrap();
            acc.fold(&b).unwrap();
            acc.finish().unwrap()
        };
        let normalized = {
            let mut acc: MergeAccumulator = MergeAccumulator::new(3, 0.0);
            acc.fold(&a).unwrap();
            acc.fold(&b).unwrap();
            acc.finish_normalized().unwrap()
        };
        // Values are bit-identical; only the visit magnitude changes.
        assert_eq!(normalized.q(0, 0).to_bits(), summed.q(0, 0).to_bits());
        assert_eq!(summed.visits(0, 0), 8);
        assert_eq!(normalized.visits(0, 0), 4, "8 visits over 2 tables");
        // A pair visited fewer times than the fold count floors at 1
        // rather than vanishing back to "unvisited".
        let c = table_with(5, 1, 2.0, 1);
        let d = table_with(9, 2, 3.0, 1);
        let mut acc: MergeAccumulator = MergeAccumulator::new(3, 0.0);
        acc.fold(&c).unwrap();
        acc.fold(&d).unwrap();
        let out = acc.finish_normalized().unwrap();
        assert_eq!(out.visits(5, 1), 1);
        assert_eq!(out.visits(9, 2), 1);
        assert_eq!(out.q(5, 1), 2.0);
    }

    #[test]
    fn empty_accumulator_refuses_to_finish() {
        let acc: MergeAccumulator = MergeAccumulator::new(3, 0.0);
        assert_eq!(acc.finish().err(), Some(MergeError::NoTables));
    }

    #[test]
    fn streaming_matches_eager_reference_exactly() {
        let tables = [
            table_with(0, 0, 1.5, 3),
            table_with(0, 0, -2.0, 5),
            table_with(9, 2, 0.25, 1),
            table_with(0, 1, 4.0, 2),
        ];
        let refs: Vec<&QTable> = tables.iter().collect();
        let eager = merge_eager(&refs);
        let streaming = merge(&refs);
        assert_eq!(streaming, eager);
        assert_eq!(streaming.encode(), eager.encode(), "bit-identical");
    }

    #[test]
    fn dense_merge_matches_hash_merge() {
        let hash_tables = [
            table_with(3, 0, 2.0, 2),
            table_with(3, 1, -1.0, 4),
            table_with(700, 2, 9.0, 1),
        ];
        let dense_tables: Vec<DenseQTable> = hash_tables.iter().map(QTable::to_backend).collect();
        let h = merge(&hash_tables.iter().collect::<Vec<_>>());
        let d = merge(&dense_tables.iter().collect::<Vec<_>>());
        assert_eq!(h.encode(), d.encode(), "backends must merge identically");
    }

    #[test]
    fn dense_fast_path_handles_divergent_layouts_and_spaces() {
        // Table A: direct-indexed space of 10 states; table B visits a
        // key far beyond it in a different row order. The accumulator
        // must union them without panicking on index capacity.
        let mut a = DenseQTable::dense_for_space(3, 0.0, 10);
        a.set(4, 1, 2.0);
        a.set(2, 0, 1.0);
        let mut b = DenseQTable::dense(3);
        b.set(2, 0, 3.0);
        b.set(5_000, 2, -1.0);
        let mut acc: MergeAccumulator<DenseStore> = MergeAccumulator::new(3, 0.0);
        acc.fold(&a).unwrap();
        acc.fold(&b).unwrap();
        let merged = acc.finish().unwrap();
        assert_eq!(merged.q(2, 0), 2.0, "visit-weighted mean of 1 and 3");
        assert_eq!(merged.q(4, 1), 2.0);
        assert_eq!(merged.q(5_000, 2), -1.0);
        assert_eq!(merged.len(), 3);

        // Same inputs through the hash backend give the same bytes.
        let ha: QTable = a.to_backend();
        let hb: QTable = b.to_backend();
        let hashed = merge(&[&ha, &hb]);
        assert_eq!(merged.encode(), hashed.encode());
    }

    #[test]
    fn dense_identical_layout_zips_arenas() {
        // Two tables built by the same population walk share row order,
        // so folds after the first take the arena-zip path; the result
        // must still match the eager reference bit for bit.
        let build = |scale: f64| {
            let mut t = DenseQTable::dense_for_space(4, 0.0, 64);
            for s in 0..64u64 {
                for a in 0..4 {
                    t.set(s, a, scale * (s as f64 - a as f64));
                }
            }
            t
        };
        let a = build(1.0);
        let b = build(-0.5);
        let c = build(0.25);
        let refs = vec![&a, &b, &c];
        assert_eq!(merge(&refs), merge_eager(&refs));
    }

    #[test]
    fn merge_preserves_default_q_of_first_table() {
        let a = QTable::with_default_q(2, 7.5);
        let mut b = QTable::with_default_q(2, 7.5);
        b.set(3, 0, 1.0);
        let merged = merge(&[&a, &b]);
        assert_eq!(merged.default_q(), 7.5);
        assert_eq!(merged.q(3, 1), 7.5, "unvisited sibling reads default");
        assert_eq!(merged.q(3, 0), 1.0);
    }

    fn shared_base() -> Arc<DenseQTable> {
        // Dyadic values keep every product/sum exactly representable,
        // so the overlay fast path and the materialised-copy fold are
        // comparable bit for bit despite their differing addition
        // order.
        let mut t = DenseQTable::dense_for_space(3, 0.25, 32);
        for s in 0..32u64 {
            for a in 0..3 {
                for _ in 0..=(s as usize % 3) {
                    t.set(s, a, s as f64 * 0.5 - a as f64 * 0.25);
                }
            }
        }
        Arc::new(t)
    }

    fn device_overlays(base: &Arc<DenseQTable>) -> Vec<QTable<OverlayStore>> {
        (0..4u64)
            .map(|d| {
                let mut t = QTable::overlay(Arc::clone(base));
                // Shadow a couple of base rows and add one novel row;
                // devices overlap on row 5.
                t.set(5, (d % 3) as usize, d as f64 * 0.5 - 1.0);
                t.set(10 + d, 1, 2.0 - d as f64 * 0.25);
                t.set(100 + d, 2, 0.75); // beyond the base's 32-state space
                t
            })
            .collect()
    }

    #[test]
    fn overlay_fold_matches_dense_fold_on_materialised_copies() {
        let base = shared_base();
        let overlays = device_overlays(&base);

        let mut fast: MergeAccumulator<DenseStore> = MergeAccumulator::new(3, base.default_q());
        for t in &overlays {
            fast.fold_overlay(t).expect("shared-base overlay folds");
        }
        assert_eq!(fast.n_folded(), overlays.len());

        let mut reference: MergeAccumulator<DenseStore> =
            MergeAccumulator::new(3, base.default_q());
        for t in &overlays {
            reference.fold(&t.to_backend::<DenseStore>()).expect("fold");
        }

        let fast_n = fast.clone().finish_normalized().expect("tables folded");
        let ref_n = reference
            .clone()
            .finish_normalized()
            .expect("tables folded");
        assert_eq!(fast_n.encode(), ref_n.encode(), "normalized merge bits");

        let fast_t = fast.finish().expect("tables folded");
        let ref_t = reference.finish().expect("tables folded");
        assert_eq!(fast_t.encode(), ref_t.encode(), "summed merge bits");
        // The merged row set is the union: all base rows plus novels.
        assert_eq!(fast_t.len(), base.len() + 4);
    }

    #[test]
    fn overlay_fold_of_untouched_devices_reproduces_the_base() {
        let base = shared_base();
        let mut acc: MergeAccumulator<DenseStore> = MergeAccumulator::new(3, base.default_q());
        for _ in 0..3 {
            acc.fold_overlay(&QTable::overlay(Arc::clone(&base)))
                .expect("empty overlay folds");
        }
        let merged = acc.finish_normalized().expect("tables folded");
        // Averaging N identical copies is the identity on values, and
        // normalisation brings the visit magnitudes back to one copy.
        assert_eq!(merged.encode(), base.encode());
    }

    #[test]
    fn overlay_fold_rejects_foreign_bases_and_mixing() {
        let base = shared_base();
        let other = shared_base(); // equal contents, different Arc
        let mut acc: MergeAccumulator<DenseStore> = MergeAccumulator::new(3, base.default_q());
        acc.fold_overlay(&QTable::overlay(Arc::clone(&base)))
            .expect("first fold");
        assert_eq!(
            acc.fold_overlay(&QTable::overlay(other)),
            Err(MergeError::BaseMismatch)
        );
        assert_eq!(
            acc.fold(&DenseQTable::dense(3)),
            Err(MergeError::MixedFold),
            "plain fold after overlay fold"
        );
        assert_eq!(acc.n_folded(), 1, "failed folds must not count");
        assert!(acc.finish().is_ok());

        let mut plain: MergeAccumulator<DenseStore> = MergeAccumulator::new(3, 0.0);
        plain.fold(&DenseQTable::dense(3)).expect("plain fold");
        assert_eq!(
            plain.fold_overlay(&QTable::overlay(base)),
            Err(MergeError::MixedFold),
            "overlay fold after plain fold"
        );
        let wrong_width = QTable::overlay(Arc::new(DenseQTable::dense(2)));
        let mut acc2: MergeAccumulator<DenseStore> = MergeAccumulator::new(3, 0.0);
        assert_eq!(
            acc2.fold_overlay(&wrong_width),
            Err(MergeError::ActionMismatch {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn cloud_time_scales_and_adds_overhead() {
        let cloud = CloudModel::xeon_e7_8860v3();
        let t = cloud.cloud_time_s(207.0); // paper's 3 min 27 s
        assert!(t < 207.0 / 2.0, "cloud should be much faster: {t}");
        assert!(t >= cloud.comm_overhead_s);
        assert_eq!(cloud.cloud_time_s(0.0), cloud.comm_overhead_s);
    }

    #[test]
    fn cloud_time_monotonic_in_online_time() {
        let cloud = CloudModel::xeon_e7_8860v3();
        assert!(cloud.cloud_time_s(100.0) < cloud.cloud_time_s(300.0));
    }
}
