//! Offline training in the cloud and federated averaging (§IV-C).
//!
//! The paper observes that a manufacturer ships many devices running the
//! same applications, so per-application Q-tables can be learned
//! federated-style: devices upload their tables, the cloud merges them,
//! and the merged action values are pushed back. Training in the cloud
//! is also simply *faster* — Fig. 6 compares on-device training time
//! against a 16-core Xeon E7-8860v3 with a measured round-trip
//! communication overhead of up to 4 seconds.

use crate::backend::QStore;
use crate::qtable::QTable;

/// Merges device Q-tables into a fleet table by visit-weighted
/// averaging: for every `(state, action)` the merged value is
/// `Σ(visits·q) / Σ(visits)` over the tables that visited the pair,
/// and the merged visit count is the sum. Pairs no device visited stay
/// at 0 with 0 visits.
///
/// Works on any storage backend (the output uses the inputs' backend);
/// the open-ended hash backend remains the natural fit for cloud-side
/// merging of tables from heterogeneous encoders.
///
/// # Panics
///
/// Panics if `tables` is empty or the action counts disagree.
#[must_use]
pub fn merge<S: QStore>(tables: &[&QTable<S>]) -> QTable<S> {
    assert!(!tables.is_empty(), "cannot merge zero tables");
    let n_actions = tables[0].n_actions();
    assert!(
        tables.iter().all(|t| t.n_actions() == n_actions),
        "all tables must share the action space"
    );
    let mut merged: QTable<S> = QTable::empty(n_actions, tables[0].default_q());
    let mut all_states: Vec<_> = tables.iter().flat_map(|t| t.state_keys()).collect();
    all_states.sort_unstable();
    all_states.dedup();
    for state in all_states {
        let mut values = vec![0.0f64; n_actions];
        let mut weights = vec![0u64; n_actions];
        for t in tables {
            if let Some((v, n)) = t.entry_raw(state) {
                for a in 0..n_actions {
                    values[a] += v[a] * n[a] as f64;
                    weights[a] += n[a];
                }
            }
        }
        for a in 0..n_actions {
            if weights[a] > 0 {
                values[a] /= weights[a] as f64;
            }
        }
        merged.insert_raw(state, &values, &weights);
    }
    merged
}

/// Timing model for cloud/offline training (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudModel {
    /// How much faster the cloud executes Q-updates than the device's
    /// LITTLE cluster.
    pub speedup: f64,
    /// Fixed to-and-fro communication overhead per training round,
    /// seconds.
    pub comm_overhead_s: f64,
}

impl CloudModel {
    /// The paper's setup: a 16-core Xeon E7-8860v3 with 64 GB DDR3 —
    /// roughly an order of magnitude faster than the Cortex-A55 cluster
    /// for the table updates — plus the measured ≤4 s round-trip.
    #[must_use]
    pub fn xeon_e7_8860v3() -> Self {
        CloudModel {
            speedup: 9.0,
            comm_overhead_s: 4.0,
        }
    }

    /// Wall-clock time the cloud needs for a training run that takes
    /// `online_time_s` on the device, including the communication
    /// round-trip.
    ///
    /// # Panics
    ///
    /// Panics if `speedup` is not positive.
    #[must_use]
    pub fn cloud_time_s(&self, online_time_s: f64) -> f64 {
        assert!(self.speedup > 0.0, "speedup must be positive");
        online_time_s.max(0.0) / self.speedup + self.comm_overhead_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(state: u64, action: usize, value: f64, visits: u64) -> QTable {
        let mut t = QTable::new(3);
        for _ in 0..visits {
            t.set(state, action, value);
        }
        t
    }

    #[test]
    fn merge_single_table_is_identity_on_values() {
        let t = table_with(5, 1, 2.0, 3);
        let merged = merge(&[&t]);
        assert_eq!(merged.q(5, 1), 2.0);
        assert_eq!(merged.visits(5, 1), 3);
    }

    #[test]
    fn merge_weights_by_visits() {
        // Device A visited (0,0) once with value 0; device B ten times
        // with value 1 — the merge should sit near B.
        let a = table_with(0, 0, 0.0, 1);
        let b = table_with(0, 0, 1.0, 10);
        let merged = merge(&[&a, &b]);
        let q = merged.q(0, 0);
        assert!((q - 10.0 / 11.0).abs() < 1e-12, "q {q}");
        assert_eq!(merged.visits(0, 0), 11);
    }

    #[test]
    fn merge_unions_disjoint_states() {
        let a = table_with(1, 0, 1.0, 1);
        let b = table_with(2, 2, -1.0, 1);
        let merged = merge(&[&a, &b]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.q(1, 0), 1.0);
        assert_eq!(merged.q(2, 2), -1.0);
    }

    #[test]
    fn merge_stays_in_convex_hull() {
        let a = table_with(0, 0, -2.0, 4);
        let b = table_with(0, 0, 3.0, 2);
        let c = table_with(0, 0, 0.5, 1);
        let merged = merge(&[&a, &b, &c]);
        let q = merged.q(0, 0);
        assert!(
            (-2.0..=3.0).contains(&q),
            "merged value {q} escaped the hull"
        );
    }

    #[test]
    #[should_panic(expected = "share the action space")]
    fn merge_rejects_mismatched_actions() {
        let a = QTable::new(2);
        let b = QTable::new(3);
        let _ = merge(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "zero tables")]
    fn merge_rejects_empty_input() {
        let _ = merge::<crate::backend::HashStore>(&[]);
    }

    #[test]
    fn cloud_time_scales_and_adds_overhead() {
        let cloud = CloudModel::xeon_e7_8860v3();
        let t = cloud.cloud_time_s(207.0); // paper's 3 min 27 s
        assert!(t < 207.0 / 2.0, "cloud should be much faster: {t}");
        assert!(t >= cloud.comm_overhead_s);
        assert_eq!(cloud.cloud_time_s(0.0), cloud.comm_overhead_s);
    }

    #[test]
    fn cloud_time_monotonic_in_online_time() {
        let cloud = CloudModel::xeon_e7_8860v3();
        assert!(cloud.cloud_time_s(100.0) < cloud.cloud_time_s(300.0));
    }
}
