//! The Q-learning update rule, exactly the paper's Eq. 3:
//!
//! ```text
//! Q(s_i, a_i) ← Q(s_i, a_i) + α·(r_i − Q(s_i, a_i) + γ·max_a Q(s_{i+1}, a))
//! ```

use crate::backend::QStore;
use crate::qtable::{QTable, StateKey};

/// Q-learning hyper-parameters and update rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QLearning {
    alpha: f64,
    gamma: f64,
}

impl QLearning {
    /// Creates a learner with learning rate `alpha` and discount
    /// `gamma`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha ≤ 1` and `0 ≤ gamma < 1`.
    #[must_use]
    pub fn new(alpha: f64, gamma: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        assert!((0.0..1.0).contains(&gamma), "gamma out of range");
        QLearning { alpha, gamma }
    }

    /// Learning rate α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Discount factor γ.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Applies one Eq. 3 update and returns the new `Q(state, action)`.
    pub fn update<S: QStore>(
        &self,
        table: &mut QTable<S>,
        state: StateKey,
        action: usize,
        reward: f64,
        next_state: StateKey,
    ) -> f64 {
        self.update_with_alpha(table, state, action, reward, next_state, self.alpha)
    }

    /// Eq. 3 with an explicit per-update learning rate, for
    /// visit-adaptive (Robbins-Monro) schedules where α shrinks as a
    /// state-action pair accumulates visits.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha ≤ 1`.
    pub fn update_with_alpha<S: QStore>(
        &self,
        table: &mut QTable<S>,
        state: StateKey,
        action: usize,
        reward: f64,
        next_state: StateKey,
        alpha: f64,
    ) -> f64 {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        let q = table.q(state, action);
        let bootstrap = table.max_q(next_state);
        let new_q = q + alpha * (reward - q + self.gamma * bootstrap);
        table.set(state, action, new_q);
        new_q
    }
}

impl Default for QLearning {
    /// α = 0.1, γ = 0.9 — the customary tabular Q-learning defaults.
    fn default() -> Self {
        QLearning::new(0.1, 0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_moves_towards_reward() {
        let learner = QLearning::new(0.5, 0.0);
        let mut t = QTable::new(2);
        let q1 = learner.update(&mut t, 0, 0, 1.0, 1);
        assert!((q1 - 0.5).abs() < 1e-12);
        let q2 = learner.update(&mut t, 0, 0, 1.0, 1);
        assert!((q2 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn repeated_updates_converge_to_fixed_reward() {
        let learner = QLearning::new(0.2, 0.0);
        let mut t = QTable::new(2);
        for _ in 0..500 {
            learner.update(&mut t, 0, 1, 2.5, 0);
        }
        assert!((t.q(0, 1) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn bootstrap_propagates_future_value() {
        let learner = QLearning::new(1.0, 0.5);
        let mut t = QTable::new(2);
        // Make state 1 worth 4.0 via its best action.
        t.set(1, 0, 4.0);
        // One α=1 update on (0,0) with zero reward: Q = 0 + (0 - 0 + 0.5·4) = 2.
        let q = learner.update(&mut t, 0, 0, 0.0, 1);
        assert!((q - 2.0).abs() < 1e-12);
    }

    #[test]
    fn chain_value_iteration_converges_to_discounted_sum() {
        // Two-state chain: s0 -a0-> s1 (r=0), s1 -a0-> s1 (r=1).
        // Optimal Q(s1, a0) = 1/(1-γ); Q(s0, a0) = γ/(1-γ).
        let gamma = 0.8;
        let learner = QLearning::new(0.3, gamma);
        let mut t = QTable::new(1);
        for _ in 0..2_000 {
            learner.update(&mut t, 1, 0, 1.0, 1);
            learner.update(&mut t, 0, 0, 0.0, 1);
        }
        let q1 = t.q(1, 0);
        let q0 = t.q(0, 0);
        assert!((q1 - 1.0 / (1.0 - gamma)).abs() < 1e-3, "q1 {q1}");
        assert!((q0 - gamma / (1.0 - gamma)).abs() < 1e-3, "q0 {q0}");
    }

    #[test]
    #[should_panic(expected = "alpha out of range")]
    fn zero_alpha_rejected() {
        let _ = QLearning::new(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "gamma out of range")]
    fn gamma_one_rejected() {
        let _ = QLearning::new(0.5, 1.0);
    }
}
