//! Tabular Q-learning toolkit underpinning the Next agent.
//!
//! The paper models Next as Watkins-style Q-learning (§IV-B, Eq. 3):
//! a table of action values over a discretised state space, an ε-greedy
//! behaviour policy, and the update rule
//!
//! ```text
//! Q(s,a) ← Q(s,a) + α·(r − Q(s,a) + γ·max_a' Q(s',a'))
//! ```
//!
//! This crate provides the reusable machinery:
//!
//! * [`qtable`] — the Q-table with visit counting and a self-contained
//!   text codec for on-device persistence (the paper stores
//!   per-application tables and reloads them on later runs),
//! * [`backend`] — the [`QStore`] storage abstraction with three
//!   backends: the hash map for open-ended key spaces, the
//!   dense-indexed arena ([`DenseQTable`]) whose contiguous rows make
//!   the per-control-period argmax+update loop cache-friendly, and
//!   the copy-on-write [`overlay`] over an `Arc`-shared base,
//! * [`overlay`] — [`OverlayStore`], the campaign's per-device
//!   backend: O(1) warm start from a shared merged global, O(touched)
//!   resident memory and delta extraction,
//! * [`policy`] — ε-greedy action selection with decay schedules,
//! * [`learner`] — the Q-learning update rule,
//! * [`discretize`] — uniform quantisers, including the FPS quantiser
//!   whose bin count the paper sweeps in Fig. 6 (30 bins works best),
//! * [`federated`] — streaming visit-weighted federated averaging of
//!   device tables ([`MergeAccumulator`]: bounded memory, dense arena
//!   fast path) plus the cloud-training time model of §IV-C,
//! * [`codec`] — the compact `NXQT` binary table/delta codec used by
//!   campaign checkpoints and the delta-bytes uplink cost model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod discretize;
pub mod double_q;
pub mod federated;
pub mod learner;
pub mod overlay;
pub mod policy;
pub mod qtable;

pub use backend::{DenseStore, HashStore, QStore};
pub use codec::{apply_delta, decode_table, delta_between, encode_table, CodecError};
pub use discretize::Quantizer;
pub use double_q::DoubleQ;
pub use federated::{CloudModel, MergeAccumulator, MergeError};
pub use learner::QLearning;
pub use overlay::OverlayStore;
pub use policy::EpsilonGreedy;
pub use qtable::{DecodeQTableError, DenseQTable, QTable, StateKey};
