//! Copy-on-write Q-table overlays: the campaign's per-device backend.
//!
//! A federated round warm-starts every device from the same merged
//! global table. Cloning that table per device costs O(states) time
//! and memory — at paper scale, hundreds of thousands of rows copied
//! so a single simulated day can touch a few hundred of them. An
//! [`OverlayStore`] makes the warm start O(1) instead: it holds an
//! [`Arc`]-shared **immutable base** (the round's merged global) plus
//! a sparse private map of rows copied on first write.
//!
//! * **Warm start** is an `Arc` clone — no row is copied until the
//!   device actually writes one.
//! * **Resident memory** is O(rows touched): the base is shared by
//!   every device of the shard and counted once, not per device.
//! * **Delta extraction** ([`QTable::into_delta`] /
//!   [`QTable::delta_bytes`]) encodes the touched rows straight out of
//!   the overlay — no full-space diff against the base. Untouched rows
//!   *are* the base's rows bitwise, so the result is byte-identical to
//!   [`crate::codec::delta_between`] run on materialised copies.
//! * **Merging** gets a fast path:
//!   [`crate::federated::MergeAccumulator::fold_overlay`] folds only
//!   the touched rows of each device and reconstructs the shared
//!   base's contribution in closed form.
//!
//! The overlay is a full [`QStore`]: every table operation — reads,
//! learning updates, codecs, merging — behaves exactly like the hash
//! and dense backends over the same logical contents (equivalence is
//! property-tested in `tests/backend_equiv.rs`). The copied-row
//! invariant holds throughout: a row absent from the private map reads
//! through to the base, so the store's effective contents are
//! `base ∪ overlay` with the overlay shadowing.

// qlint::allow(ND03, reason = "per-device COW row map; artifacts read it via sorted state_keys() or the commutative merge fold")
use std::collections::HashMap;
use std::sync::Arc;

use crate::backend::{KeyHashBuilder, QStore, RowVisitor, RowVisitorMut, StateKey};
use crate::codec;
use crate::qtable::{DenseQTable, QTable};

/// One privately-owned row: a base row copied on first write, or a
/// brand-new row the base never had.
#[derive(Debug, Clone, PartialEq)]
struct OverlayRow {
    values: Vec<f64>,
    visits: Vec<u64>,
}

/// Copy-on-write storage backend: an `Arc`-shared immutable base plus
/// a sparse map of copied-on-first-write rows.
///
/// Reads prefer the private map and fall through to the base;
/// [`QStore::row_mut`] copies the base row into the map on first
/// touch. [`QStore::for_each_row_mut`] must hand out every row mutably
/// and therefore materialises the **whole base** into the map first —
/// that path (used by the merge accumulator's finish, never by a
/// device) costs O(base), which is the documented price of mutating an
/// overlay wholesale.
#[derive(Debug, Clone)]
pub struct OverlayStore {
    /// The shared immutable base. Never written through.
    base: Arc<DenseQTable>,
    /// Copied-on-first-write rows, shadowing the base.
    // qlint::allow(ND03, reason = "delta extraction sorts changed keys before encoding; for_each_touched feeds per-key independent merge folds only")
    rows: HashMap<StateKey, OverlayRow, KeyHashBuilder>,
    /// Private rows whose key the base does **not** contain (so `len`
    /// is O(1) instead of re-probing the base per query).
    novel: usize,
}

impl OverlayStore {
    /// An empty overlay over `base`.
    #[must_use]
    pub fn over(base: Arc<DenseQTable>) -> Self {
        OverlayStore {
            base,
            // qlint::allow(ND03, reason = "constructor for the field annotated above")
            rows: HashMap::default(),
            novel: 0,
        }
    }

    /// The shared base table.
    #[must_use]
    pub fn base(&self) -> &Arc<DenseQTable> {
        &self.base
    }

    /// Number of privately-owned (touched) rows.
    #[must_use]
    pub fn touched_rows(&self) -> usize {
        self.rows.len()
    }

    /// Calls `f` once per **touched** row only (unspecified order) —
    /// the merge fast path's kernel. Untouched base rows are not
    /// visited; the caller reconstructs their contribution from the
    /// shared base.
    pub fn for_each_touched(&self, f: &mut RowVisitor<'_>) {
        for (&k, row) in &self.rows {
            f(k, &row.values, &row.visits);
        }
    }
}

impl QStore for OverlayStore {
    fn with_actions(n_actions: usize) -> Self {
        assert!(n_actions > 0, "action set must be non-empty");
        OverlayStore::over(Arc::new(QTable::empty(n_actions, 0.0)))
    }

    fn backend_name() -> &'static str {
        "overlay"
    }

    fn n_actions(&self) -> usize {
        self.base.n_actions()
    }

    fn len(&self) -> usize {
        self.base.len() + self.novel
    }

    fn row(&self, state: StateKey) -> Option<(&[f64], &[u64])> {
        match self.rows.get(&state) {
            Some(row) => Some((row.values.as_slice(), row.visits.as_slice())),
            None => self.base.entry_raw(state),
        }
    }

    fn row_mut(&mut self, state: StateKey, fill: f64) -> (&mut [f64], &mut [u64]) {
        if !self.rows.contains_key(&state) {
            // First touch: copy the base row, or start a fresh one.
            let row = if let Some((values, visits)) = self.base.entry_raw(state) {
                OverlayRow {
                    values: values.to_vec(),
                    visits: visits.to_vec(),
                }
            } else {
                self.novel += 1;
                OverlayRow {
                    values: vec![fill; self.n_actions()],
                    visits: vec![0; self.n_actions()],
                }
            };
            self.rows.insert(state, row);
        }
        // qlint::allow(PN01, reason = "the branch above inserts the row when absent; the probe cannot miss")
        let row = self.rows.get_mut(&state).expect("row ensured above");
        (&mut row.values, &mut row.visits)
    }

    fn contains(&self, state: StateKey) -> bool {
        self.rows.contains_key(&state) || self.base.contains(state)
    }

    fn state_keys(&self) -> Vec<StateKey> {
        let mut keys = self.base.state_keys();
        keys.extend(self.rows.keys().filter(|k| !self.base.contains(**k)));
        keys.sort_unstable();
        keys
    }

    fn for_each_row(&self, f: &mut RowVisitor<'_>) {
        for (&k, row) in &self.rows {
            f(k, &row.values, &row.visits);
        }
        let rows = &self.rows;
        self.base.store().for_each_row(&mut |k, values, visits| {
            if !rows.contains_key(&k) {
                f(k, values, visits);
            }
        });
    }

    fn for_each_row_mut(&mut self, f: &mut RowVisitorMut<'_>) {
        // Every row is handed out mutably, so the whole base must be
        // copied into the private map first — the O(base) cost of
        // mutating an overlay wholesale (see the type-level docs).
        let rows = &mut self.rows;
        self.base.store().for_each_row(&mut |k, values, visits| {
            rows.entry(k).or_insert_with(|| OverlayRow {
                values: values.to_vec(),
                visits: visits.to_vec(),
            });
        });
        for (&k, row) in &mut self.rows {
            f(k, &mut row.values, &mut row.visits);
        }
    }

    fn resident_bytes(&self) -> usize {
        // Only privately-owned rows count: the base is shared and
        // attributed to its owner, the overlay holds one Arc pointer.
        self.rows.len() * (self.n_actions() * 16 + 8) + std::mem::size_of::<usize>()
    }
}

/// Equality is observational, like the dense backend's: same action
/// count, same touched states, same effective rows — two overlays are
/// equal whether a row lives in the base or the private map, and an
/// overlay equals the dense/hash table with the same logical contents
/// after conversion.
impl PartialEq for OverlayStore {
    fn eq(&self, other: &Self) -> bool {
        if self.n_actions() != other.n_actions() || self.len() != other.len() {
            return false;
        }
        let mut equal = true;
        self.for_each_row(&mut |k, values, visits| {
            if equal {
                equal = other
                    .row(k)
                    .is_some_and(|(ov, on)| values == ov && visits == on);
            }
        });
        equal
    }
}

impl QTable<OverlayStore> {
    /// O(1) warm start: a table whose initial contents are exactly
    /// `base`, sharing it by `Arc` — nothing is copied until a row is
    /// written. The table's default Q-value is the base's.
    #[must_use]
    pub fn overlay(base: Arc<DenseQTable>) -> Self {
        QTable::from_store(base.default_q(), OverlayStore::over(base))
    }

    /// The shared base this overlay reads through to.
    #[must_use]
    pub fn base(&self) -> &Arc<DenseQTable> {
        self.store().base()
    }

    /// Number of privately-owned (touched) rows — the device's actual
    /// working set, and what [`QTable::resident_bytes`] is proportional
    /// to.
    #[must_use]
    pub fn touched_rows(&self) -> usize {
        self.store().touched_rows()
    }

    /// Encodes the `NXQT` delta (kind 2) that transforms the base into
    /// this table, in O(touched rows): only privately-owned rows are
    /// even candidates — an untouched row *is* the base's row bitwise —
    /// and candidates that were copied but never actually changed are
    /// filtered by the same bitwise row comparison
    /// [`crate::codec::delta_between`] uses. The bytes are identical to
    /// `delta_between(&base, &self.to_backend::<DenseStore>())`.
    #[must_use]
    pub fn delta_bytes(&self) -> Vec<u8> {
        let store = self.store();
        let mut changed: Vec<StateKey> = store
            .rows
            .iter()
            .filter(|(k, row)| {
                codec::row_differs(store.base.entry_raw(**k), &row.values, &row.visits)
            })
            .map(|(&k, _)| k)
            .collect();
        changed.sort_unstable();
        let mut out = Vec::with_capacity(32 + changed.len() * (3 + self.n_actions() * 10));
        codec::encode_header(
            &mut out,
            codec::KIND_DELTA,
            self.n_actions(),
            self.default_q(),
        );
        codec::put_varint(&mut out, changed.len() as u64);
        let mut prev = None;
        for k in changed {
            let row = &store.rows[&k];
            codec::encode_row(&mut out, prev, k, &row.values, &row.visits);
            prev = Some(k);
        }
        out
    }

    /// Consuming alias of [`QTable::delta_bytes`]: the round's uplink
    /// payload, extracted as the overlay is retired.
    #[must_use]
    pub fn into_delta(self) -> Vec<u8> {
        self.delta_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DenseStore;
    use crate::codec::{apply_delta, delta_between};

    fn trained_base() -> Arc<DenseQTable> {
        let mut t = DenseQTable::dense_for_space(4, 25.0, 1_000);
        for s in [0u64, 7, 42, 999] {
            for a in 0..4usize {
                if !(s as usize + a).is_multiple_of(3) {
                    t.set(s, a, (s as f64).mul_add(0.5, a as f64) - 3.0);
                }
            }
        }
        Arc::new(t)
    }

    #[test]
    fn warm_start_shares_the_base_without_copying() {
        let base = trained_base();
        let overlay = QTable::overlay(Arc::clone(&base));
        assert!(Arc::ptr_eq(overlay.base(), &base));
        assert_eq!(overlay.touched_rows(), 0);
        assert_eq!(overlay.len(), base.len());
        assert_eq!(overlay.default_q(), base.default_q());
        // Reads go straight through to the base.
        assert_eq!(overlay.q(7, 1), base.q(7, 1));
        assert_eq!(overlay.best_action(42), base.best_action(42));
        assert_eq!(overlay.values(999), base.values(999));
        assert_eq!(overlay.state_keys(), base.state_keys());
        assert_eq!(overlay.total_visits(), base.total_visits());
    }

    #[test]
    fn writes_copy_exactly_the_touched_rows() {
        let base = trained_base();
        let before = base.q(7, 0);
        let mut overlay = QTable::overlay(Arc::clone(&base));
        overlay.set(7, 1, -9.0); // shadows a base row
        overlay.set(123, 2, 1.5); // novel row
        assert_eq!(overlay.touched_rows(), 2);
        assert_eq!(overlay.len(), base.len() + 1);
        // The shadowed row kept its untouched cells.
        assert_eq!(overlay.q(7, 1), -9.0);
        assert_eq!(overlay.q(7, 0), before);
        assert_eq!(overlay.visits(7, 1), base.visits(7, 1) + 1);
        // The base never moved.
        assert_ne!(base.q(7, 1), -9.0);
        assert!(!base.contains(123));
        // Untouched rows still read through.
        assert_eq!(overlay.values(42), base.values(42));
    }

    #[test]
    fn overlay_encodes_like_its_materialised_copy() {
        let base = trained_base();
        let mut overlay = QTable::overlay(Arc::clone(&base));
        let mut dense = (*base).clone();
        for (s, a, v) in [(7u64, 1usize, -9.0f64), (123, 2, 1.5), (0, 0, 0.25)] {
            overlay.set(s, a, v);
            dense.set(s, a, v);
        }
        assert_eq!(overlay.encode(), dense.encode());
        assert_eq!(crate::encode_table(&overlay), crate::encode_table(&dense));
        assert_eq!(overlay.to_backend::<DenseStore>(), dense);
    }

    #[test]
    fn delta_bytes_match_the_full_space_diff_exactly() {
        let base = trained_base();
        let mut overlay = QTable::overlay(Arc::clone(&base));
        overlay.set(7, 1, -9.0);
        overlay.set(123, 2, 1.5);
        // Touch a row without changing it: copied, then overwritten
        // back to its base bits (set counts a visit, so force the
        // visit row back too).
        {
            let before = base.entry_raw(42).expect("base row").1.to_vec();
            overlay.set(42, 3, base.q(42, 3));
            let store_row = overlay.q(42, 3);
            assert_eq!(store_row, base.q(42, 3));
            // Undo the visit count bump through insert_raw semantics:
            // re-materialise the base row bit-for-bit.
            let bv = base.entry_raw(42).expect("base row").0.to_vec();
            overlay.insert_raw(42, &bv, &before);
        }
        assert_eq!(overlay.touched_rows(), 3);

        let dense = overlay.to_backend::<DenseStore>();
        let reference = delta_between(&*base, &dense).expect("materialised diff");
        let fast = overlay.delta_bytes();
        assert_eq!(fast, reference, "O(touched) delta must be byte-identical");
        // The unchanged touched row was filtered out: only 2 rows ride.
        let reconstructed = apply_delta(&*base, &fast).expect("delta applies");
        assert_eq!(reconstructed, dense);
        assert_eq!(overlay.into_delta(), fast);
    }

    #[test]
    fn empty_overlay_yields_an_empty_delta() {
        let base = trained_base();
        let overlay = QTable::overlay(Arc::clone(&base));
        let delta = overlay.delta_bytes();
        let reference = delta_between(&*base, &*base).expect("self diff");
        assert_eq!(delta, reference);
        assert_eq!(apply_delta(&*base, &delta).expect("applies"), *base);
    }

    #[test]
    fn for_each_row_mut_materialises_the_base() {
        let base = trained_base();
        let mut store = OverlayStore::over(Arc::clone(&base));
        store.row_mut(123, 25.0).0[2] = 1.5; // one novel row
        let mut seen = 0usize;
        store.for_each_row_mut(&mut |_, values, _| {
            seen += 1;
            for v in values.iter_mut() {
                *v += 1.0;
            }
        });
        // Wholesale mutation copied every base row into the map.
        assert_eq!(seen, base.len() + 1);
        assert_eq!(store.touched_rows(), base.len() + 1);
        // The shared base itself never moved.
        assert_eq!(store.row(7).expect("row").0[1], base.q(7, 1) + 1.0);
        let base_row = base.entry_raw(7).expect("base row");
        assert_eq!(base_row.0[1], base.q(7, 1));
        // fold_weighted rides on row_mut, so the default trait impl
        // works unchanged over an overlay.
        let mut acc = OverlayStore::with_actions(4);
        acc.fold_weighted(&store);
        assert_eq!(acc.len(), store.len());
    }

    #[test]
    fn observational_equality_ignores_where_rows_live() {
        let base = trained_base();
        // Same logical contents, different split between base and map.
        let mut a = QTable::overlay(Arc::clone(&base));
        a.set(7, 1, -9.0);
        let mut materialised = (*base).clone();
        materialised.set(7, 1, -9.0);
        let b = materialised.to_backend::<OverlayStore>();
        assert_eq!(a, b);
        let mut c = QTable::overlay(Arc::clone(&base));
        c.set(7, 1, -8.5);
        assert_ne!(a, c);
    }

    #[test]
    fn resident_bytes_counts_touched_rows_only() {
        let base = trained_base();
        let mut overlay = QTable::overlay(Arc::clone(&base));
        let empty = overlay.resident_bytes();
        overlay.set(7, 1, -9.0);
        overlay.set(123, 2, 1.5);
        let touched = overlay.resident_bytes();
        assert!(touched > empty);
        assert!(
            touched < (*base).resident_bytes() / 4,
            "2 touched rows must cost far less than the {}-row base",
            base.len()
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_actions_rejected() {
        let _ = OverlayStore::with_actions(0);
    }
}
