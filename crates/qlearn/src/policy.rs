//! ε-greedy behaviour policy with decay schedules.
//!
//! During training the Next agent explores the 9-action space with
//! probability ε and exploits the greedy action otherwise; once a
//! per-application table is trained, inference runs greedily (ε = 0).

use rand::Rng;

use crate::backend::QStore;
use crate::qtable::{QTable, StateKey};

/// ε-greedy policy with multiplicative decay per step.
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonGreedy {
    epsilon: f64,
    decay: f64,
    min_epsilon: f64,
}

impl EpsilonGreedy {
    /// Creates a policy starting at `epsilon`, multiplied by `decay`
    /// after every [`EpsilonGreedy::step`] down to `min_epsilon`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ min_epsilon ≤ epsilon ≤ 1` and
    /// `0 < decay ≤ 1`.
    #[must_use]
    pub fn new(epsilon: f64, decay: f64, min_epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon out of range");
        assert!(
            (0.0..=1.0).contains(&min_epsilon),
            "min epsilon out of range"
        );
        assert!(min_epsilon <= epsilon, "min epsilon above initial epsilon");
        assert!(decay > 0.0 && decay <= 1.0, "decay out of range");
        EpsilonGreedy {
            epsilon,
            decay,
            min_epsilon,
        }
    }

    /// A purely greedy policy (ε = 0), used at inference time.
    #[must_use]
    pub fn greedy() -> Self {
        EpsilonGreedy::new(0.0, 1.0, 0.0)
    }

    /// A common training schedule: ε = 0.4 decaying by 0.999 per step to
    /// a 5 % exploration floor.
    #[must_use]
    pub fn training_default() -> Self {
        EpsilonGreedy::new(0.4, 0.999, 0.05)
    }

    /// Current exploration probability.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Chooses an action for `state`: uniform-random with probability ε,
    /// greedy otherwise. Greedy ties break uniformly at random — a
    /// deterministic tie-break would bias an untrained table towards
    /// one fixed action.
    pub fn choose<R: Rng + ?Sized, S: QStore>(
        &self,
        rng: &mut R,
        table: &QTable<S>,
        state: StateKey,
    ) -> usize {
        if self.epsilon > 0.0 && rng.gen_range(0.0..1.0) < self.epsilon {
            return rng.gen_range(0..table.n_actions());
        }
        let best = table.best_actions(state);
        if best.len() == 1 {
            best[0]
        } else {
            best[rng.gen_range(0..best.len())]
        }
    }

    /// Applies one decay step.
    pub fn step(&mut self) {
        self.epsilon = (self.epsilon * self.decay).max(self.min_epsilon);
    }

    /// Resets ε to a new starting value (e.g. retraining).
    pub fn reset_epsilon(&mut self, epsilon: f64) {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon out of range");
        self.epsilon = epsilon.max(self.min_epsilon);
    }
}

impl Default for EpsilonGreedy {
    fn default() -> Self {
        EpsilonGreedy::training_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table_preferring(action: usize) -> QTable {
        let mut t = QTable::new(9);
        t.set(0, action, 10.0);
        t
    }

    #[test]
    fn greedy_policy_always_exploits() {
        let table = table_preferring(4);
        let policy = EpsilonGreedy::greedy();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(policy.choose(&mut rng, &table, 0), 4);
        }
    }

    #[test]
    fn full_exploration_covers_all_actions() {
        let table = table_preferring(4);
        let policy = EpsilonGreedy::new(1.0, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(policy.choose(&mut rng, &table, 0));
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn decay_reaches_floor() {
        let mut policy = EpsilonGreedy::new(0.5, 0.5, 0.1);
        for _ in 0..100 {
            policy.step();
        }
        assert!((policy.epsilon() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn exploration_rate_matches_epsilon() {
        let table = table_preferring(0);
        let policy = EpsilonGreedy::new(0.3, 1.0, 0.3);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let mut non_greedy = 0;
        for _ in 0..n {
            if policy.choose(&mut rng, &table, 0) != 0 {
                non_greedy += 1;
            }
        }
        // Random draws pick the greedy action 1/9 of the time too, so
        // the observable non-greedy rate is ε·(8/9).
        let expected = 0.3 * 8.0 / 9.0;
        let observed = f64::from(non_greedy) / f64::from(n);
        assert!(
            (observed - expected).abs() < 0.01,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon out of range")]
    fn invalid_epsilon_panics() {
        let _ = EpsilonGreedy::new(1.5, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "decay out of range")]
    fn invalid_decay_panics() {
        let _ = EpsilonGreedy::new(0.5, 0.0, 0.0);
    }
}
