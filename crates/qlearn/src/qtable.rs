//! The Q-table: action values + visit counts over a storage backend.
//!
//! States are pre-encoded by the caller into a [`StateKey`] (the Next
//! agent packs its discretised observation tuple into the key), so the
//! table itself is domain-agnostic. Storage is pluggable through
//! [`QStore`]: [`HashStore`] for open-ended key spaces (federated
//! merging), [`DenseStore`] for the cache-friendly learn/act hot path —
//! see [`crate::backend`]. The text codec is shared, so a table encoded
//! on one backend decodes into the other bit-for-bit.

use std::fmt;
use std::fmt::Write as _;

use crate::backend::{DenseStore, HashStore, QStore};

pub use crate::backend::StateKey;

/// Error returned when decoding a persisted table fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeQTableError {
    line: usize,
    reason: String,
}

impl DecodeQTableError {
    /// 1-based input line the error was detected on.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for DecodeQTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid q-table at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for DecodeQTableError {}

/// Action-value table: `Q(s, a)` for a fixed-size action set, stored in
/// backend `S` (hash-map by default; see [`DenseQTable`] for the dense
/// hot-path backend).
///
/// Unvisited state-action pairs read the table's *default value*
/// (0 unless configured). Setting an **optimistic** default — above any
/// realistically achievable return — makes a greedy learner try every
/// action of every visited state at least once, the classic cure for
/// premature exploitation under positive rewards.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QTable<S: QStore = HashStore> {
    default_q: f64,
    store: S,
}

/// A Q-table on the dense-indexed arena backend — the learn/act hot
/// path: values and visits of all actions of a state live contiguously,
/// and argmax is a single probe plus one slice scan.
pub type DenseQTable = QTable<DenseStore>;

impl QTable<HashStore> {
    /// Creates an empty hash-backed table for `n_actions` actions with a
    /// default value of 0.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero.
    #[must_use]
    pub fn new(n_actions: usize) -> Self {
        QTable::with_default_q(n_actions, 0.0)
    }

    /// Creates an empty hash-backed table whose unvisited pairs read
    /// `default_q` (use an optimistic value to drive exploration).
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero or `default_q` is not finite.
    #[must_use]
    pub fn with_default_q(n_actions: usize, default_q: f64) -> Self {
        QTable::empty(n_actions, default_q)
    }
}

impl QTable<DenseStore> {
    /// Creates an empty dense-backed table for `n_actions` actions with
    /// a default value of 0.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero.
    #[must_use]
    pub fn dense(n_actions: usize) -> Self {
        QTable::empty(n_actions, 0.0)
    }

    /// Creates an empty dense-backed table whose unvisited pairs read
    /// `default_q`.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero or `default_q` is not finite.
    #[must_use]
    pub fn dense_with_default_q(n_actions: usize, default_q: f64) -> Self {
        QTable::empty(n_actions, default_q)
    }

    /// Dense table with arena capacity pre-reserved for `rows` states
    /// (e.g. the expected visited-state count of a `StateSpace`).
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero or `default_q` is not finite.
    #[must_use]
    pub fn dense_with_capacity(n_actions: usize, default_q: f64, rows: usize) -> Self {
        assert!(default_q.is_finite(), "default q must be finite");
        QTable {
            default_q,
            store: DenseStore::with_row_capacity(n_actions, rows),
        }
    }

    /// Dense table for a **bounded** key space of `n_states` states
    /// (every key must stay below `n_states`, as a `StateSpace`
    /// encoding guarantees). Small spaces get the direct slot-table
    /// index — one array load per probe instead of a hash.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero or `default_q` is not finite.
    #[must_use]
    pub fn dense_for_space(n_actions: usize, default_q: f64, n_states: u64) -> Self {
        assert!(default_q.is_finite(), "default q must be finite");
        QTable {
            default_q,
            store: DenseStore::with_space(n_actions, n_states),
        }
    }
}

impl<S: QStore> QTable<S> {
    /// Creates an empty table on backend `S`.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero or `default_q` is not finite.
    #[must_use]
    pub fn empty(n_actions: usize, default_q: f64) -> Self {
        assert!(default_q.is_finite(), "default q must be finite");
        QTable {
            default_q,
            store: S::with_actions(n_actions),
        }
    }

    /// Creates an empty table laid out for a **bounded** key space of
    /// `n_states` states (every key must stay below `n_states`, as a
    /// `StateSpace` encoding guarantees). Space-aware backends use the
    /// hint — the dense backend gets its direct slot-table index — and
    /// the others ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero or `default_q` is not finite.
    #[must_use]
    pub fn empty_for_space(n_actions: usize, default_q: f64, n_states: u64) -> Self {
        assert!(default_q.is_finite(), "default q must be finite");
        QTable {
            default_q,
            store: S::with_space(n_actions, n_states),
        }
    }

    /// Returns a table guaranteed to accept every key of a space of
    /// `n_states` states: `self` unchanged when its index already
    /// covers the space (hashed indexes always do), otherwise the rows
    /// re-homed into a store sized for the space. Use when warm-starting
    /// from a table whose declared space may have been smaller (e.g. a
    /// table trained at coarser FPS bins).
    #[must_use]
    pub fn resized_for_space(self, n_states: u64) -> Self {
        if self.store.covers_space(n_states) {
            return self;
        }
        let mut out: QTable<S> =
            QTable::empty_for_space(self.n_actions(), self.default_q, n_states);
        let default_q = self.default_q;
        self.store.for_each_row(&mut |state, values, visits| {
            let (v, n) = out.store.row_mut(state, default_q);
            v.copy_from_slice(values);
            n.copy_from_slice(visits);
        });
        out
    }

    /// Resident heap bytes attributable to this table's own rows (see
    /// [`QStore::resident_bytes`]): deterministic, capacity-blind, and
    /// excluding any storage the backend shares (an overlay's `Arc`
    /// base is counted once by whoever owns the base, not per clone).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
    }

    /// Number of actions per state.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.store.n_actions()
    }

    /// The value unvisited pairs read.
    #[must_use]
    pub fn default_q(&self) -> f64 {
        self.default_q
    }

    /// The storage backend's name (`"hash"`, `"dense"` or
    /// `"overlay"`).
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        S::backend_name()
    }

    /// Number of states with at least one recorded value.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the table has no states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// `Q(state, action)`; unvisited pairs read the table default.
    ///
    /// Unvisited cells of a touched row physically hold the default
    /// (see [`QStore::row_mut`]), so this is a single probe plus one
    /// load — the visit row is never consulted.
    ///
    /// # Panics
    ///
    /// Panics if `action >= n_actions`.
    #[must_use]
    pub fn q(&self, state: StateKey, action: usize) -> f64 {
        assert!(action < self.n_actions(), "action {action} out of range");
        match self.store.row(state) {
            Some((values, _)) => values[action],
            None => self.default_q,
        }
    }

    /// All action values of `state` (defaults where unvisited).
    #[must_use]
    pub fn values(&self, state: StateKey) -> Vec<f64> {
        match self.store.row(state) {
            None => vec![self.default_q; self.n_actions()],
            Some((values, _)) => values.to_vec(),
        }
    }

    /// Overwrites `Q(state, action)` and counts a visit.
    ///
    /// # Panics
    ///
    /// Panics if `action >= n_actions` or `value` is not finite.
    pub fn set(&mut self, state: StateKey, action: usize, value: f64) {
        assert!(action < self.n_actions(), "action {action} out of range");
        assert!(value.is_finite(), "q-values must be finite");
        let (values, visits) = self.store.row_mut(state, self.default_q);
        values[action] = value;
        visits[action] += 1;
    }

    /// Visits recorded for `(state, action)`.
    #[must_use]
    pub fn visits(&self, state: StateKey, action: usize) -> u64 {
        self.store
            .row(state)
            .map_or(0, |(_, visits)| visits[action])
    }

    /// Total visits across the whole table.
    #[must_use]
    pub fn total_visits(&self) -> u64 {
        let mut total = 0u64;
        self.store
            .for_each_row(&mut |_, _, visits| total += visits.iter().sum::<u64>());
        total
    }

    /// The greedy action and its value (defaults apply to unvisited
    /// pairs); ties break towards the lowest action index. Use
    /// [`QTable::best_actions`] for the full argmax set.
    ///
    /// One row fetch, one branch-free contiguous scan of the value
    /// slice — the argmax never probes the backend per action and never
    /// loads the visit row.
    #[must_use]
    pub fn best_action(&self, state: StateKey) -> (usize, f64) {
        match self.store.row(state) {
            None => (0, self.default_q),
            Some((values, _)) => {
                let mut best = 0;
                let mut best_v = values[0];
                for (a, &v) in values.iter().enumerate().skip(1) {
                    if v > best_v {
                        best = a;
                        best_v = v;
                    }
                }
                (best, best_v)
            }
        }
    }

    /// All actions whose value ties the maximum (within `1e-12`).
    #[must_use]
    pub fn best_actions(&self, state: StateKey) -> Vec<usize> {
        let (_, best_v) = self.best_action(state);
        match self.store.row(state) {
            None => (0..self.n_actions()).collect(),
            Some((values, _)) => values
                .iter()
                .enumerate()
                .filter(|&(_, &v)| (v - best_v).abs() <= 1e-12)
                .map(|(a, _)| a)
                .collect(),
        }
    }

    /// `max_a Q(state, a)` (the default for fully unvisited states).
    #[must_use]
    pub fn max_q(&self, state: StateKey) -> f64 {
        self.best_action(state).1
    }

    /// Whether the state has been visited at least once.
    #[must_use]
    pub fn contains(&self, state: StateKey) -> bool {
        self.store.contains(state)
    }

    /// Iterator over `(state, action_values)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (StateKey, &[f64])> + '_ {
        self.store.state_keys().into_iter().map(move |k| {
            // qlint::allow(PN01, reason = "k comes from state_keys() of the same store, so the row exists")
            let (values, _) = self.store.row(k).expect("listed key has a row");
            (k, values)
        })
    }

    /// Rebuilds the table on a different storage backend, preserving all
    /// rows (and therefore the encoded form).
    #[must_use]
    pub fn to_backend<T: QStore>(&self) -> QTable<T> {
        let mut out: QTable<T> = QTable::empty(self.n_actions(), self.default_q);
        let default_q = self.default_q;
        self.store.for_each_row(&mut |state, values, visits| {
            let (v, n) = out.store.row_mut(state, default_q);
            v.copy_from_slice(values);
            n.copy_from_slice(visits);
        });
        out
    }

    /// Serialises the table to a line-oriented text format:
    ///
    /// ```text
    /// qtable v2 <n_actions> <default_q>
    /// <state> v0 v1 ... | n0 n1 ...
    /// ```
    ///
    /// The format carries no backend information: both backends encode
    /// identically (keys sorted) and decode into either.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = format!("qtable v2 {} {:e}\n", self.n_actions(), self.default_q);
        for k in self.store.state_keys() {
            // qlint::allow(PN01, reason = "k comes from state_keys() of the same store, so the row exists")
            let (values, visits) = self.store.row(k).expect("listed key has a row");
            let vals: Vec<String> = values.iter().map(|v| format!("{v:e}")).collect();
            let vis: Vec<String> = visits.iter().map(u64::to_string).collect();
            let _ = writeln!(out, "{k} {} | {}", vals.join(" "), vis.join(" "));
        }
        out
    }

    /// Parses the format produced by [`QTable::encode`] into this
    /// backend.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeQTableError`] on any malformed input, including a
    /// state key that appears on more than one line (a silent last-wins
    /// merge would mask corrupted or hand-edited files).
    pub fn decode(text: &str) -> Result<Self, DecodeQTableError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| DecodeQTableError {
            line: 1,
            reason: "empty input".to_owned(),
        })?;
        let mut parts = header.split_whitespace();
        let magic = parts.next();
        let version = parts.next();
        if magic != Some("qtable") || !matches!(version, Some("v1" | "v2")) {
            return Err(DecodeQTableError {
                line: 1,
                reason: "bad header".to_owned(),
            });
        }
        let n_actions: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| DecodeQTableError {
                line: 1,
                reason: "bad action count".to_owned(),
            })?;
        let default_q: f64 = if version == Some("v2") {
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .filter(|q: &f64| q.is_finite())
                .ok_or_else(|| DecodeQTableError {
                    line: 1,
                    reason: "bad default q".to_owned(),
                })?
        } else {
            0.0
        };
        let mut table: QTable<S> = QTable::empty(n_actions, default_q);
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let (left, right) = line.split_once('|').ok_or_else(|| DecodeQTableError {
                line: lineno,
                reason: "missing visit separator".to_owned(),
            })?;
            let mut left_it = left.split_whitespace();
            let state: StateKey =
                left_it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| DecodeQTableError {
                        line: lineno,
                        reason: "bad state key".to_owned(),
                    })?;
            let values: Vec<f64> = left_it
                .map(str::parse)
                .collect::<Result<Vec<f64>, _>>()
                .map_err(|e| DecodeQTableError {
                    line: lineno,
                    reason: e.to_string(),
                })?;
            let visits: Vec<u64> = right
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<Vec<u64>, _>>()
                .map_err(|e| DecodeQTableError {
                    line: lineno,
                    reason: e.to_string(),
                })?;
            if values.len() != n_actions || visits.len() != n_actions {
                return Err(DecodeQTableError {
                    line: lineno,
                    reason: format!(
                        "expected {n_actions} values and visits, got {} and {}",
                        values.len(),
                        visits.len()
                    ),
                });
            }
            if values.iter().any(|v| !v.is_finite()) {
                return Err(DecodeQTableError {
                    line: lineno,
                    reason: "non-finite q-value".to_owned(),
                });
            }
            if table.store.contains(state) {
                return Err(DecodeQTableError {
                    line: lineno,
                    reason: format!("duplicate state {state}"),
                });
            }
            let (v, n) = table.store.row_mut(state, default_q);
            v.copy_from_slice(&values);
            n.copy_from_slice(&visits);
            // Canonicalise: an unvisited cell always *stores* the
            // default it reads as, whatever the input file carried —
            // that stored value is unobservable through q()/argmax.
            for (cell, &count) in v.iter_mut().zip(n.iter()) {
                if count == 0 {
                    *cell = default_q;
                }
            }
        }
        Ok(table)
    }

    /// Wraps a raw store into a table. The caller guarantees the store
    /// upholds the table invariant (unvisited cells physically hold
    /// `default_q`) — used by the federated merge accumulator after it
    /// normalises its weighted sums.
    ///
    /// # Panics
    ///
    /// Panics if `default_q` is not finite.
    pub(crate) fn from_store(default_q: f64, store: S) -> Self {
        assert!(default_q.is_finite(), "default q must be finite");
        QTable { default_q, store }
    }

    /// Read access to the raw store (crate-internal machinery).
    pub(crate) fn store(&self) -> &S {
        &self.store
    }

    /// Raw accessor used by the federated merger.
    pub(crate) fn entry_raw(&self, state: StateKey) -> Option<(&[f64], &[u64])> {
        self.store.row(state)
    }

    /// Raw writer used by the federated merger (replaces values and
    /// visits wholesale; unvisited cells are canonicalised to the
    /// table default they read as).
    pub(crate) fn insert_raw(&mut self, state: StateKey, values: &[f64], visits: &[u64]) {
        debug_assert_eq!(values.len(), self.n_actions());
        debug_assert_eq!(visits.len(), self.n_actions());
        let default_q = self.default_q;
        let (v, n) = self.store.row_mut(state, default_q);
        v.copy_from_slice(values);
        n.copy_from_slice(visits);
        for (cell, &count) in v.iter_mut().zip(n.iter()) {
            if count == 0 {
                *cell = default_q;
            }
        }
    }

    /// All state keys, sorted.
    #[must_use]
    pub fn state_keys(&self) -> Vec<StateKey> {
        self.store.state_keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unvisited_states_read_zero() {
        let t = QTable::new(9);
        assert_eq!(t.q(42, 3), 0.0);
        assert_eq!(t.best_action(42), (0, 0.0));
        assert_eq!(t.max_q(42), 0.0);
        assert!(!t.contains(42));
        assert!(t.is_empty());
    }

    #[test]
    fn set_and_best_action() {
        let mut t = QTable::new(3);
        t.set(7, 0, 0.1);
        t.set(7, 1, 0.9);
        t.set(7, 2, 0.5);
        assert_eq!(t.best_action(7), (1, 0.9));
        assert_eq!(t.len(), 1);
        assert_eq!(t.visits(7, 1), 1);
        assert_eq!(t.total_visits(), 3);
    }

    #[test]
    fn dense_matches_hash_on_basics() {
        let mut h = QTable::new(3);
        let mut d = DenseQTable::dense(3);
        for (s, a, v) in [
            (7u64, 0usize, 0.1f64),
            (7, 1, 0.9),
            (3, 2, -0.5),
            (7, 1, 0.7),
        ] {
            h.set(s, a, v);
            d.set(s, a, v);
        }
        assert_eq!(h.best_action(7), d.best_action(7));
        assert_eq!(h.best_actions(3), d.best_actions(3));
        assert_eq!(h.values(7), d.values(7));
        assert_eq!(h.total_visits(), d.total_visits());
        assert_eq!(h.state_keys(), d.state_keys());
        assert_eq!(h.encode(), d.encode());
        assert_eq!(h.backend_name(), "hash");
        assert_eq!(d.backend_name(), "dense");
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let mut t = QTable::new(3);
        t.set(1, 2, 0.5);
        t.set(1, 0, 0.5);
        assert_eq!(t.best_action(1).0, 0);
        let mut d = DenseQTable::dense(3);
        d.set(1, 2, 0.5);
        d.set(1, 0, 0.5);
        assert_eq!(d.best_action(1).0, 0);
    }

    #[test]
    fn codec_roundtrip() {
        let mut t = QTable::new(4);
        t.set(0, 0, -1.25);
        t.set(9_999_999_999, 3, 1e-7);
        t.set(5, 2, 42.0);
        t.set(5, 2, 43.5); // overwrite, second visit
        let text = t.encode();
        let back = QTable::decode(&text).expect("roundtrip");
        assert_eq!(back, t);
        assert_eq!(back.visits(5, 2), 2);
    }

    #[test]
    fn codec_crosses_backends() {
        let mut d = DenseQTable::dense_with_default_q(4, 1.5);
        d.set(11, 3, -2.0);
        d.set(2, 0, 0.25);
        let text = d.encode();
        let h: QTable = QTable::decode(&text).expect("hash decodes dense encoding");
        assert_eq!(h.encode(), text, "hash re-encoding must be byte-identical");
        let d2: DenseQTable = DenseQTable::decode(&h.encode()).expect("dense decodes hash");
        assert_eq!(d2, d);
    }

    #[test]
    fn to_backend_preserves_rows() {
        let mut h = QTable::with_default_q(3, 9.0);
        h.set(1, 0, 2.0);
        h.set(500, 2, -1.0);
        let d: DenseQTable = h.to_backend();
        assert_eq!(d.encode(), h.encode());
        assert_eq!(d.default_q(), 9.0);
        let h2: QTable = d.to_backend();
        assert_eq!(h2, h);
    }

    #[test]
    fn resized_for_space_grows_a_direct_index() {
        let mut small = DenseQTable::dense_for_space(3, 1.5, 100);
        small.set(42, 1, 2.0);
        let grown = small.clone().resized_for_space(1_000);
        // The grown table accepts keys the small one would reject…
        let mut grown = grown;
        grown.set(999, 0, -1.0);
        // …and kept every row and the default.
        assert_eq!(grown.q(42, 1), 2.0);
        assert_eq!(grown.q(42, 0), 1.5, "unvisited cells keep the default");
        assert_eq!(grown.visits(42, 1), 1);
        // A covering index is returned unchanged (no re-homing).
        let same = small.clone().resized_for_space(50);
        assert_eq!(same, small);
    }

    #[test]
    fn decode_rejects_garbage() {
        let dec = QTable::<HashStore>::decode;
        assert!(dec("").is_err());
        assert!(dec("nope v1 3").is_err());
        assert!(dec("qtable v1 0").is_err());
        assert!(
            dec("qtable v1 2\n5 1.0 | 1 1").is_err(),
            "wrong value arity"
        );
        assert!(
            dec("qtable v1 2\n5 1.0 2.0 1 1").is_err(),
            "missing separator"
        );
        assert!(dec("qtable v1 2\nx 1.0 2.0 | 1 1").is_err(), "bad key");
        assert!(dec("qtable v1 2\n5 NaN 2.0 | 1 1").is_err(), "NaN value");
    }

    #[test]
    fn decode_rejects_duplicate_state_lines() {
        let text = "qtable v1 2\n5 1.0 2.0 | 1 1\n7 0.0 0.0 | 0 0\n5 9.0 9.0 | 2 2\n";
        let err = QTable::<HashStore>::decode(text).expect_err("duplicate state must be rejected");
        assert_eq!(err.line(), 4, "error must name the offending line");
        assert!(err.to_string().contains("duplicate state 5"), "got: {err}");
        // Dense backend rejects identically.
        let derr = DenseQTable::decode(text).expect_err("dense rejects too");
        assert_eq!(derr, err);
    }

    #[test]
    fn decode_accepts_blank_lines_and_v1_headers() {
        let t: QTable =
            QTable::decode("qtable v1 2\n\n5 1.0 2.0 | 1 1\n\n").expect("blank lines ok");
        assert_eq!(t.q(5, 1), 2.0);
        assert_eq!(t.default_q(), 0.0, "v1 tables default to 0");
    }

    #[test]
    fn optimistic_default_applies_to_unvisited_pairs_only() {
        let mut t = QTable::with_default_q(3, 25.0);
        assert_eq!(t.q(7, 1), 25.0);
        assert_eq!(t.max_q(7), 25.0);
        t.set(7, 1, 2.0);
        assert_eq!(t.q(7, 1), 2.0, "visited pair reads its learned value");
        assert_eq!(t.q(7, 0), 25.0, "sibling actions stay optimistic");
        assert_eq!(
            t.best_actions(7),
            vec![0, 2],
            "untried actions tie at the optimum"
        );
        let back = QTable::decode(&t.encode()).expect("v2 roundtrip");
        assert_eq!(back, t);
        assert_eq!(back.default_q(), 25.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut t = QTable::new(2);
        t.set(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn set_nan_panics() {
        let mut t = QTable::new(2);
        t.set(0, 0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_actions_panics() {
        let _ = QTable::new(0);
    }

    #[test]
    fn encode_is_sorted_and_stable() {
        let mut a = QTable::new(2);
        a.set(10, 0, 1.0);
        a.set(3, 1, 2.0);
        let mut b = QTable::new(2);
        b.set(3, 1, 2.0);
        b.set(10, 0, 1.0);
        assert_eq!(
            a.encode(),
            b.encode(),
            "encoding must not depend on insertion order"
        );
    }
}
