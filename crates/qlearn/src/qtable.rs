//! Hash-backed Q-table with visit counts and a text codec.
//!
//! States are pre-encoded by the caller into a [`StateKey`] (the Next
//! agent packs its discretised observation tuple into the key), so the
//! table itself is domain-agnostic.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// An encoded discrete state.
pub type StateKey = u64;

/// Error returned when decoding a persisted table fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeQTableError {
    line: usize,
    reason: String,
}

impl fmt::Display for DecodeQTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid q-table at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for DecodeQTableError {}

/// Action-value table: `Q(s, a)` for a fixed-size action set.
///
/// Unvisited state-action pairs read the table's *default value*
/// (0 unless configured). Setting an **optimistic** default — above any
/// realistically achievable return — makes a greedy learner try every
/// action of every visited state at least once, the classic cure for
/// premature exploitation under positive rewards.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QTable {
    n_actions: usize,
    default_q: f64,
    entries: HashMap<StateKey, Entry>,
}

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    values: Vec<f64>,
    visits: Vec<u64>,
}

impl Entry {
    fn new(n_actions: usize) -> Self {
        Entry { values: vec![0.0; n_actions], visits: vec![0; n_actions] }
    }
}

impl QTable {
    /// Creates an empty table for `n_actions` actions with a default
    /// value of 0.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero.
    #[must_use]
    pub fn new(n_actions: usize) -> Self {
        QTable::with_default_q(n_actions, 0.0)
    }

    /// Creates an empty table whose unvisited pairs read `default_q`
    /// (use an optimistic value to drive exploration).
    ///
    /// # Panics
    ///
    /// Panics if `n_actions` is zero or `default_q` is not finite.
    #[must_use]
    pub fn with_default_q(n_actions: usize, default_q: f64) -> Self {
        assert!(n_actions > 0, "action set must be non-empty");
        assert!(default_q.is_finite(), "default q must be finite");
        QTable { n_actions, default_q, entries: HashMap::new() }
    }

    /// Number of actions per state.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The value unvisited pairs read.
    #[must_use]
    pub fn default_q(&self) -> f64 {
        self.default_q
    }

    /// Number of states with at least one recorded value.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `Q(state, action)`; unvisited pairs read the table default.
    ///
    /// # Panics
    ///
    /// Panics if `action >= n_actions`.
    #[must_use]
    pub fn q(&self, state: StateKey, action: usize) -> f64 {
        assert!(action < self.n_actions, "action {action} out of range");
        match self.entries.get(&state) {
            Some(e) if e.visits[action] > 0 => e.values[action],
            _ => self.default_q,
        }
    }

    /// All action values of `state` (defaults where unvisited).
    #[must_use]
    pub fn values(&self, state: StateKey) -> Vec<f64> {
        (0..self.n_actions).map(|a| self.q(state, a)).collect()
    }

    /// Overwrites `Q(state, action)` and counts a visit.
    ///
    /// # Panics
    ///
    /// Panics if `action >= n_actions` or `value` is not finite.
    pub fn set(&mut self, state: StateKey, action: usize, value: f64) {
        assert!(action < self.n_actions, "action {action} out of range");
        assert!(value.is_finite(), "q-values must be finite");
        let n = self.n_actions;
        let e = self.entries.entry(state).or_insert_with(|| Entry::new(n));
        e.values[action] = value;
        e.visits[action] += 1;
    }

    /// Visits recorded for `(state, action)`.
    #[must_use]
    pub fn visits(&self, state: StateKey, action: usize) -> u64 {
        self.entries.get(&state).map_or(0, |e| e.visits[action])
    }

    /// Total visits across the whole table.
    #[must_use]
    pub fn total_visits(&self) -> u64 {
        self.entries.values().map(|e| e.visits.iter().sum::<u64>()).sum()
    }

    /// The greedy action and its value (defaults apply to unvisited
    /// pairs); ties break towards the lowest action index. Use
    /// [`QTable::best_actions`] for the full argmax set.
    #[must_use]
    pub fn best_action(&self, state: StateKey) -> (usize, f64) {
        let mut best = 0;
        let mut best_v = self.q(state, 0);
        for a in 1..self.n_actions {
            let v = self.q(state, a);
            if v > best_v {
                best = a;
                best_v = v;
            }
        }
        (best, best_v)
    }

    /// All actions whose value ties the maximum (within `1e-12`).
    #[must_use]
    pub fn best_actions(&self, state: StateKey) -> Vec<usize> {
        let (_, best_v) = self.best_action(state);
        (0..self.n_actions).filter(|&a| (self.q(state, a) - best_v).abs() <= 1e-12).collect()
    }

    /// `max_a Q(state, a)` (the default for fully unvisited states).
    #[must_use]
    pub fn max_q(&self, state: StateKey) -> f64 {
        self.best_action(state).1
    }

    /// Whether the state has been visited at least once.
    #[must_use]
    pub fn contains(&self, state: StateKey) -> bool {
        self.entries.contains_key(&state)
    }

    /// Iterator over `(state, action_values)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (StateKey, &[f64])> + '_ {
        self.entries.iter().map(|(&k, e)| (k, e.values.as_slice()))
    }

    /// Serialises the table to a line-oriented text format:
    ///
    /// ```text
    /// qtable v2 <n_actions> <default_q>
    /// <state> v0 v1 ... | n0 n1 ...
    /// ```
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = format!("qtable v2 {} {:e}\n", self.n_actions, self.default_q);
        let mut keys: Vec<_> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let e = &self.entries[&k];
            let vals: Vec<String> = e.values.iter().map(|v| format!("{v:e}")).collect();
            let vis: Vec<String> = e.visits.iter().map(u64::to_string).collect();
            let _ = writeln!(out, "{k} {} | {}", vals.join(" "), vis.join(" "));
        }
        out
    }

    /// Parses the format produced by [`QTable::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeQTableError`] on any malformed input.
    pub fn decode(text: &str) -> Result<Self, DecodeQTableError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| DecodeQTableError {
            line: 1,
            reason: "empty input".to_owned(),
        })?;
        let mut parts = header.split_whitespace();
        let magic = parts.next();
        let version = parts.next();
        if magic != Some("qtable") || !matches!(version, Some("v1" | "v2")) {
            return Err(DecodeQTableError { line: 1, reason: "bad header".to_owned() });
        }
        let n_actions: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| DecodeQTableError { line: 1, reason: "bad action count".to_owned() })?;
        let default_q: f64 = if version == Some("v2") {
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .filter(|q: &f64| q.is_finite())
                .ok_or_else(|| DecodeQTableError { line: 1, reason: "bad default q".to_owned() })?
        } else {
            0.0
        };
        let mut table = QTable::with_default_q(n_actions, default_q);
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let (left, right) = line.split_once('|').ok_or_else(|| DecodeQTableError {
                line: lineno,
                reason: "missing visit separator".to_owned(),
            })?;
            let mut left_it = left.split_whitespace();
            let state: StateKey =
                left_it.next().and_then(|s| s.parse().ok()).ok_or_else(|| DecodeQTableError {
                    line: lineno,
                    reason: "bad state key".to_owned(),
                })?;
            let values: Vec<f64> = left_it
                .map(str::parse)
                .collect::<Result<Vec<f64>, _>>()
                .map_err(|e| DecodeQTableError { line: lineno, reason: e.to_string() })?;
            let visits: Vec<u64> = right
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<Vec<u64>, _>>()
                .map_err(|e| DecodeQTableError { line: lineno, reason: e.to_string() })?;
            if values.len() != n_actions || visits.len() != n_actions {
                return Err(DecodeQTableError {
                    line: lineno,
                    reason: format!(
                        "expected {n_actions} values and visits, got {} and {}",
                        values.len(),
                        visits.len()
                    ),
                });
            }
            if values.iter().any(|v| !v.is_finite()) {
                return Err(DecodeQTableError {
                    line: lineno,
                    reason: "non-finite q-value".to_owned(),
                });
            }
            table.entries.insert(state, Entry { values, visits });
        }
        Ok(table)
    }

    /// Raw accessor used by the federated merger.
    pub(crate) fn entry_raw(&self, state: StateKey) -> Option<(&[f64], &[u64])> {
        self.entries.get(&state).map(|e| (e.values.as_slice(), e.visits.as_slice()))
    }

    /// Raw writer used by the federated merger (replaces values and
    /// visits wholesale).
    pub(crate) fn insert_raw(&mut self, state: StateKey, values: Vec<f64>, visits: Vec<u64>) {
        debug_assert_eq!(values.len(), self.n_actions);
        debug_assert_eq!(visits.len(), self.n_actions);
        self.entries.insert(state, Entry { values, visits });
    }

    /// All state keys, sorted.
    #[must_use]
    pub fn state_keys(&self) -> Vec<StateKey> {
        let mut keys: Vec<_> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unvisited_states_read_zero() {
        let t = QTable::new(9);
        assert_eq!(t.q(42, 3), 0.0);
        assert_eq!(t.best_action(42), (0, 0.0));
        assert_eq!(t.max_q(42), 0.0);
        assert!(!t.contains(42));
        assert!(t.is_empty());
    }

    #[test]
    fn set_and_best_action() {
        let mut t = QTable::new(3);
        t.set(7, 0, 0.1);
        t.set(7, 1, 0.9);
        t.set(7, 2, 0.5);
        assert_eq!(t.best_action(7), (1, 0.9));
        assert_eq!(t.len(), 1);
        assert_eq!(t.visits(7, 1), 1);
        assert_eq!(t.total_visits(), 3);
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let mut t = QTable::new(3);
        t.set(1, 2, 0.5);
        t.set(1, 0, 0.5);
        assert_eq!(t.best_action(1).0, 0);
    }

    #[test]
    fn codec_roundtrip() {
        let mut t = QTable::new(4);
        t.set(0, 0, -1.25);
        t.set(9_999_999_999, 3, 1e-7);
        t.set(5, 2, 42.0);
        t.set(5, 2, 43.5); // overwrite, second visit
        let text = t.encode();
        let back = QTable::decode(&text).expect("roundtrip");
        assert_eq!(back, t);
        assert_eq!(back.visits(5, 2), 2);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(QTable::decode("").is_err());
        assert!(QTable::decode("nope v1 3").is_err());
        assert!(QTable::decode("qtable v1 0").is_err());
        assert!(QTable::decode("qtable v1 2\n5 1.0 | 1 1").is_err(), "wrong value arity");
        assert!(QTable::decode("qtable v1 2\n5 1.0 2.0 1 1").is_err(), "missing separator");
        assert!(QTable::decode("qtable v1 2\nx 1.0 2.0 | 1 1").is_err(), "bad key");
        assert!(QTable::decode("qtable v1 2\n5 NaN 2.0 | 1 1").is_err(), "NaN value");
    }

    #[test]
    fn decode_accepts_blank_lines_and_v1_headers() {
        let t = QTable::decode("qtable v1 2\n\n5 1.0 2.0 | 1 1\n\n").expect("blank lines ok");
        assert_eq!(t.q(5, 1), 2.0);
        assert_eq!(t.default_q(), 0.0, "v1 tables default to 0");
    }

    #[test]
    fn optimistic_default_applies_to_unvisited_pairs_only() {
        let mut t = QTable::with_default_q(3, 25.0);
        assert_eq!(t.q(7, 1), 25.0);
        assert_eq!(t.max_q(7), 25.0);
        t.set(7, 1, 2.0);
        assert_eq!(t.q(7, 1), 2.0, "visited pair reads its learned value");
        assert_eq!(t.q(7, 0), 25.0, "sibling actions stay optimistic");
        assert_eq!(t.best_actions(7), vec![0, 2], "untried actions tie at the optimum");
        let back = QTable::decode(&t.encode()).expect("v2 roundtrip");
        assert_eq!(back, t);
        assert_eq!(back.default_q(), 25.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut t = QTable::new(2);
        t.set(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn set_nan_panics() {
        let mut t = QTable::new(2);
        t.set(0, 0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_actions_panics() {
        let _ = QTable::new(0);
    }

    #[test]
    fn encode_is_sorted_and_stable() {
        let mut a = QTable::new(2);
        a.set(10, 0, 1.0);
        a.set(3, 1, 2.0);
        let mut b = QTable::new(2);
        b.set(3, 1, 2.0);
        b.set(10, 0, 1.0);
        assert_eq!(a.encode(), b.encode(), "encoding must not depend on insertion order");
    }
}
