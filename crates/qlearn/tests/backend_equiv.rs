//! Property tests: the hash, dense, and copy-on-write overlay Q-table
//! backends are observationally identical under arbitrary update
//! sequences, and the text codec round-trips across backends.

use std::sync::Arc;

use proptest::prelude::*;

use qlearn::qtable::{DenseQTable, QTable};
use qlearn::{apply_delta, delta_between, DenseStore, HashStore, QLearning};

/// An arbitrary update sequence over a 9-action table: `(state, action,
/// value)` triples, with states drawn from a smallish range so
/// collisions (re-updates of the same pair) are common.
fn arb_updates() -> impl Strategy<Value = Vec<(u64, usize, f64)>> {
    proptest::collection::vec((0u64..400, 0usize..9, -50.0..50.0f64), 0..120)
}

/// Applies the same update sequence to both backends.
fn build_pair(default_q: f64, updates: &[(u64, usize, f64)]) -> (QTable<HashStore>, DenseQTable) {
    let mut hash = QTable::with_default_q(9, default_q);
    let mut dense = DenseQTable::dense_with_default_q(9, default_q);
    for &(s, a, v) in updates {
        hash.set(s, a, v);
        dense.set(s, a, v);
    }
    (hash, dense)
}

proptest! {
    /// `q`, `set`, `best_action`, `best_actions`, `values`, `visits`,
    /// `contains` and `len` agree between the backends after any update
    /// sequence.
    #[test]
    fn backends_observationally_identical(
        updates in arb_updates(),
        default_q in -10.0..10.0f64,
        probe_state in 0u64..500,
    ) {
        let (hash, dense) = build_pair(default_q, &updates);
        prop_assert_eq!(hash.len(), dense.len());
        prop_assert_eq!(hash.is_empty(), dense.is_empty());
        prop_assert_eq!(hash.total_visits(), dense.total_visits());
        prop_assert_eq!(hash.state_keys(), dense.state_keys());
        prop_assert_eq!(hash.contains(probe_state), dense.contains(probe_state));
        prop_assert_eq!(hash.best_action(probe_state), dense.best_action(probe_state));
        prop_assert_eq!(hash.best_actions(probe_state), dense.best_actions(probe_state));
        prop_assert_eq!(hash.values(probe_state), dense.values(probe_state));
        for a in 0..9 {
            prop_assert_eq!(hash.q(probe_state, a), dense.q(probe_state, a));
            prop_assert_eq!(hash.visits(probe_state, a), dense.visits(probe_state, a));
        }
    }

    /// Both backends encode to the same bytes, whatever the insertion
    /// order was.
    #[test]
    fn backends_encode_identically(updates in arb_updates(), default_q in -10.0..10.0f64) {
        let (hash, dense) = build_pair(default_q, &updates);
        prop_assert_eq!(hash.encode(), dense.encode());
    }

    /// Codec cross-compatibility: encode on one backend, decode into
    /// the other, re-encode — all byte-identical.
    #[test]
    fn codec_crosses_backends(updates in arb_updates(), default_q in -10.0..10.0f64) {
        let (hash, dense) = build_pair(default_q, &updates);
        let text = hash.encode();
        let dense_decoded: DenseQTable = DenseQTable::decode(&text).expect("dense reads hash");
        prop_assert_eq!(dense_decoded.encode(), text.clone());
        prop_assert_eq!(&dense_decoded, &dense);
        let hash_decoded: QTable<HashStore> =
            QTable::decode(&dense.encode()).expect("hash reads dense");
        prop_assert_eq!(hash_decoded.encode(), text);
        prop_assert_eq!(&hash_decoded, &hash);
    }

    /// `to_backend` conversion preserves the encoded form both ways.
    #[test]
    fn conversion_roundtrips(updates in arb_updates(), default_q in -10.0..10.0f64) {
        let (hash, dense) = build_pair(default_q, &updates);
        let converted_dense: DenseQTable = hash.to_backend::<DenseStore>();
        prop_assert_eq!(&converted_dense, &dense);
        let converted_hash: QTable<HashStore> = dense.to_backend::<HashStore>();
        prop_assert_eq!(&converted_hash, &hash);
    }

    /// The Q-learning update rule produces identical trajectories on
    /// both backends (same transitions, same resulting tables).
    #[test]
    fn learner_trajectories_identical(
        transitions in proptest::collection::vec(
            (0u64..50, 0usize..9, -3.0..3.0f64, 0u64..50),
            1..200,
        ),
        alpha in 0.01..1.0f64,
        gamma in 0.0..0.95f64,
    ) {
        let learner = QLearning::new(alpha, gamma);
        let mut hash = QTable::new(9);
        let mut dense = DenseQTable::dense(9);
        for &(s, a, r, s2) in &transitions {
            let qh = learner.update(&mut hash, s, a, r, s2);
            let qd = learner.update(&mut dense, s, a, r, s2);
            prop_assert_eq!(qh, qd, "update diverged at ({}, {})", s, a);
        }
        prop_assert_eq!(hash.encode(), dense.encode());
    }

    /// An overlay over an **empty** base is just a sparse table: it
    /// must match the hash backend bit for bit after any update
    /// sequence.
    #[test]
    fn overlay_over_empty_base_matches_hash(
        updates in arb_updates(),
        default_q in -10.0..10.0f64,
    ) {
        let (hash, _) = build_pair(default_q, &updates);
        let base = Arc::new(DenseQTable::dense_with_default_q(9, default_q));
        let mut overlay = QTable::overlay(base);
        for &(s, a, v) in &updates {
            overlay.set(s, a, v);
        }
        prop_assert_eq!(overlay.len(), hash.len());
        prop_assert_eq!(overlay.encode(), hash.encode());
    }

    /// An overlay over a **trained** base is observationally identical
    /// to a dense clone of that base driven through the same update
    /// sequence — reads fall through to base rows, writes shadow them.
    #[test]
    fn overlay_over_trained_base_matches_dense(
        seed_updates in arb_updates(),
        updates in arb_updates(),
        default_q in -10.0..10.0f64,
        probe_state in 0u64..500,
    ) {
        let mut base = DenseQTable::dense_with_default_q(9, default_q);
        for &(s, a, v) in &seed_updates {
            base.set(s, a, v);
        }
        let mut dense = base.clone();
        let base = Arc::new(base);
        let mut overlay = QTable::overlay(Arc::clone(&base));
        for &(s, a, v) in &updates {
            overlay.set(s, a, v);
            dense.set(s, a, v);
        }
        prop_assert_eq!(overlay.len(), dense.len());
        prop_assert_eq!(overlay.total_visits(), dense.total_visits());
        prop_assert_eq!(overlay.state_keys(), dense.state_keys());
        prop_assert_eq!(overlay.contains(probe_state), dense.contains(probe_state));
        prop_assert_eq!(overlay.values(probe_state), dense.values(probe_state));
        prop_assert_eq!(overlay.best_action(probe_state), dense.best_action(probe_state));
        prop_assert_eq!(overlay.encode(), dense.encode());
        prop_assert_eq!(&overlay.to_backend::<DenseStore>(), &dense);
    }

    /// The overlay's O(touched) delta is byte-identical to the
    /// full-space `delta_between` diff, and applying it to the base
    /// reconstructs the trained table exactly.
    #[test]
    fn overlay_delta_matches_full_space_diff(
        seed_updates in arb_updates(),
        updates in arb_updates(),
        default_q in -10.0..10.0f64,
    ) {
        let mut base = DenseQTable::dense_with_default_q(9, default_q);
        for &(s, a, v) in &seed_updates {
            base.set(s, a, v);
        }
        let mut dense = base.clone();
        let base = Arc::new(base);
        let mut overlay = QTable::overlay(Arc::clone(&base));
        for &(s, a, v) in &updates {
            overlay.set(s, a, v);
            dense.set(s, a, v);
        }
        let reference = delta_between(&*base, &dense).expect("trained table keeps base rows");
        prop_assert_eq!(overlay.delta_bytes(), reference.clone());
        let rebuilt = apply_delta(&*base, &overlay.into_delta()).expect("own delta applies");
        prop_assert_eq!(rebuilt.encode(), dense.encode());
    }

    /// The direct slot-table index (bounded key space) behaves exactly
    /// like the hashed index.
    #[test]
    fn direct_index_matches_hashed_index(
        updates in proptest::collection::vec((0u64..400, 0usize..9, -50.0..50.0f64), 0..120),
        default_q in -10.0..10.0f64,
    ) {
        let mut mapped = DenseQTable::dense_with_default_q(9, default_q);
        let mut direct = DenseQTable::dense_for_space(9, default_q, 400);
        for &(s, a, v) in &updates {
            mapped.set(s, a, v);
            direct.set(s, a, v);
        }
        prop_assert_eq!(&mapped, &direct);
        prop_assert_eq!(mapped.encode(), direct.encode());
        for s in 0..400 {
            prop_assert_eq!(mapped.best_action(s), direct.best_action(s));
        }
    }
}
