//! Property-based tests of the Q-learning toolkit.

use proptest::prelude::*;

use qlearn::discretize::Quantizer;
use qlearn::federated::{merge, merge_eager, MergeAccumulator};
use qlearn::policy::EpsilonGreedy;
use qlearn::qtable::{DenseQTable, QTable};
use qlearn::QLearning;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an arbitrary small Q-table with 9 actions.
fn arb_table() -> impl Strategy<Value = QTable> {
    proptest::collection::vec((0u64..500, 0usize..9, -50.0..50.0f64, 1usize..4), 0..40).prop_map(
        |entries| {
            let mut t = QTable::new(9);
            for (s, a, v, visits) in entries {
                for _ in 0..visits {
                    t.set(s, a, v);
                }
            }
            t
        },
    )
}

proptest! {
    /// The text codec round-trips arbitrary tables exactly.
    #[test]
    fn codec_roundtrips(table in arb_table()) {
        let decoded = QTable::decode(&table.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, table);
    }

    /// Q-values stay bounded by `r_max / (1 − γ)` under arbitrary
    /// update sequences with bounded rewards.
    #[test]
    fn q_values_bounded_by_return_bound(
        updates in proptest::collection::vec((0u64..20, 0usize..9, -3.0..3.0f64, 0u64..20), 1..400),
        alpha in 0.01..1.0f64,
        gamma in 0.0..0.95f64,
    ) {
        let learner = QLearning::new(alpha, gamma);
        let mut table = QTable::new(9);
        let bound = 3.0 / (1.0 - gamma) + 1e-9;
        for (s, a, r, s2) in updates {
            let q = learner.update(&mut table, s, a, r, s2);
            prop_assert!(q.abs() <= bound, "q {q} exceeded bound {bound}");
        }
    }

    /// The greedy action always attains the maximum value.
    #[test]
    fn best_action_attains_max(table in arb_table(), state in 0u64..500) {
        let (a, v) = table.best_action(state);
        let values = table.values(state);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((v - max).abs() < 1e-12);
        prop_assert!((values[a] - max).abs() < 1e-12);
    }

    /// ε-greedy with ε = 0 always returns an argmax action.
    #[test]
    fn greedy_policy_returns_argmax(table in arb_table(), state in 0u64..500, seed in 0u64..1000) {
        let policy = EpsilonGreedy::greedy();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = policy.choose(&mut rng, &table, state);
        let values = table.values(state);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((values[a] - max).abs() <= 1e-12);
    }

    /// Federated merging stays inside the convex hull of the input
    /// values for every visited state-action pair.
    #[test]
    fn merge_stays_in_convex_hull(a in arb_table(), b in arb_table(), c in arb_table()) {
        let merged = merge(&[&a, &b, &c]);
        for state in merged.state_keys() {
            for action in 0..9 {
                if merged.visits(state, action) == 0 {
                    continue;
                }
                let inputs: Vec<f64> = [&a, &b, &c]
                    .iter()
                    .filter(|t| t.visits(state, action) > 0)
                    .map(|t| t.q(state, action))
                    .collect();
                let lo = inputs.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let v = merged.q(state, action);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
            }
        }
    }

    /// Merged visit counts are the exact sums.
    #[test]
    fn merge_sums_visits(a in arb_table(), b in arb_table()) {
        let merged = merge(&[&a, &b]);
        for state in merged.state_keys() {
            for action in 0..9 {
                prop_assert_eq!(
                    merged.visits(state, action),
                    a.visits(state, action) + b.visits(state, action)
                );
            }
        }
    }

    /// The streaming merge reproduces the seed's eager all-keys merge
    /// bit for bit on arbitrary tables.
    #[test]
    fn streaming_merge_matches_eager(a in arb_table(), b in arb_table(), c in arb_table()) {
        let refs = [&a, &b, &c];
        let streaming = merge(&refs);
        let eager = merge_eager(&refs);
        prop_assert_eq!(streaming.encode(), eager.encode());
    }

    /// The dense fast-path merge equals the hash-path merge on random
    /// tables: same inputs re-homed onto the dense backend produce a
    /// byte-identical merged table.
    #[test]
    fn dense_fast_path_merge_equals_hash_path(a in arb_table(), b in arb_table(), c in arb_table()) {
        let hash_merged = merge(&[&a, &b, &c]);
        let (da, db, dc): (DenseQTable, DenseQTable, DenseQTable) =
            (a.to_backend(), b.to_backend(), c.to_backend());
        let dense_merged = merge(&[&da, &db, &dc]);
        prop_assert_eq!(dense_merged.encode(), hash_merged.encode());
    }

    /// Folding tables one at a time through the accumulator (dropping
    /// each immediately) gives the same result as the batch entry point.
    #[test]
    fn accumulator_fold_order_is_batch_merge(a in arb_table(), b in arb_table()) {
        let batch = merge(&[&a, &b]);
        let mut acc = MergeAccumulator::new(9, a.default_q());
        acc.fold(&a).unwrap();
        drop(a);
        acc.fold(&b).unwrap();
        drop(b);
        let streamed = acc.finish().unwrap();
        prop_assert_eq!(streamed.encode(), batch.encode());
    }

    /// Quantiser indices stay in range and `center` round-trips.
    #[test]
    fn quantizer_index_in_range(
        lo in -1e3..1e3f64,
        span in 1e-3..1e3f64,
        bins in 1usize..64,
        x in -2e3..2e3f64,
    ) {
        let q = Quantizer::new(lo, lo + span, bins);
        let idx = q.index(x);
        prop_assert!(idx < bins);
        prop_assert_eq!(q.index(q.center(idx)), idx);
    }

    /// Quantiser is monotone.
    #[test]
    fn quantizer_monotone(x in -100.0..100.0f64, dx in 0.0..100.0f64, bins in 1usize..64) {
        let q = Quantizer::new(-100.0, 100.0, bins);
        prop_assert!(q.index(x + dx) >= q.index(x));
    }
}
