//! Batched engine entry point: N devices' sessions in lockstep.
//!
//! [`Engine::run_lanes_into`] is the multi-device counterpart of
//! [`Engine::run_into`]: every 25 ms base tick advances all lanes'
//! sessions, steps the whole [`SocBatch`] through the
//! structure-of-arrays physics kernel, and then runs each lane's
//! governor hooks (`observe` at tick rate, `control` at the governor's
//! own cadence) against that lane's state and DVFS controller.
//!
//! Per lane, the sequence of session, physics, and governor operations
//! is **exactly** the one `run_into` performs for a single device —
//! batching only interleaves independent lanes — so traces, learned
//! Q-tables, and summaries are bit-identical to running the lanes one
//! at a time. The fleet trainer and the day runner drive this path for
//! their fan-outs and fall back to lane-sequential scalar runs only
//! where lanes genuinely diverge (different budgets or episode
//! chunking).
//!
//! # Example
//!
//! Two governors race the same 5-second Facebook session on one
//! two-lane batch:
//!
//! ```
//! use governors::by_name;
//! use mpsoc::soc::SocConfig;
//! use mpsoc::SocBatch;
//! use simkit::{BatchLane, Engine, RunOutcome, Trace};
//! use workload::{SessionPlan, SessionSim};
//!
//! let engine = Engine::new();
//! let mut batch = SocBatch::replicate(&SocConfig::exynos9810(), 2).unwrap();
//! let mut governors = vec![by_name("schedutil").unwrap(), by_name("powersave").unwrap()];
//! let mut sessions: Vec<SessionSim> = (0..2)
//!     .map(|_| SessionSim::new(SessionPlan::single("facebook", 5.0), 42))
//!     .collect();
//! let mut lanes: Vec<BatchLane<'_>> = governors
//!     .iter_mut()
//!     .zip(sessions.iter_mut())
//!     .map(|(g, s)| BatchLane { governor: g.as_mut(), session: s })
//!     .collect();
//! let mut outcomes = vec![
//!     RunOutcome { trace: Trace::new(), presented_frames: 0, repeated_vsyncs: 0 };
//!     2
//! ];
//! engine.run_lanes_into(&mut batch, &mut lanes, 5.0, &mut outcomes);
//! let (sched, save) = (outcomes[0].trace.summary(), outcomes[1].trace.summary());
//! assert!(save.avg_power_w <= sched.avg_power_w, "powersave cannot burn more");
//! ```

use governors::Governor;
use mpsoc::perf::FrameDemand;
use mpsoc::SocBatch;
use workload::SessionSim;

use crate::engine::{Engine, RunOutcome};
use crate::metrics::Sample;
use crate::trace::{NullSink, TickView, TraceSink};

/// One device lane of a batched run: its governor and its session.
pub struct BatchLane<'a> {
    /// The governor closing this lane's control loop.
    pub governor: &'a mut dyn Governor,
    /// The session producing this lane's frame demand.
    pub session: &'a mut SessionSim,
}

impl std::fmt::Debug for BatchLane<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchLane")
            .field("governor", &self.governor.name())
            .field("session", &self.session)
            .finish()
    }
}

impl Engine {
    /// Runs every lane's session on the batch for `duration_s`
    /// simulated seconds, writing lane `l`'s results into
    /// `outcomes[l]` (fully overwritten; trace allocations are
    /// reused, as in [`Engine::run_into`]).
    ///
    /// # Panics
    ///
    /// Panics unless `lanes` and `outcomes` both match the batch
    /// width.
    pub fn run_lanes_into(
        &self,
        batch: &mut SocBatch,
        lanes: &mut [BatchLane<'_>],
        duration_s: f64,
        outcomes: &mut [RunOutcome],
    ) {
        // `NullSink` is a ZST, so this Vec never allocates and the
        // traced loop monomorphises back to the untraced one.
        let mut sinks = vec![NullSink; lanes.len()];
        self.run_lanes_traced(batch, lanes, duration_s, outcomes, &mut sinks);
    }

    /// Like [`Engine::run_lanes_into`], with one [`TraceSink`] per lane
    /// observing that lane's ticks (the per-device counterpart of
    /// [`Engine::run_into_traced`]).
    ///
    /// # Panics
    ///
    /// Panics unless `lanes`, `outcomes` and `sinks` all match the
    /// batch width.
    pub fn run_lanes_traced<S: TraceSink>(
        &self,
        batch: &mut SocBatch,
        lanes: &mut [BatchLane<'_>],
        duration_s: f64,
        outcomes: &mut [RunOutcome],
        sinks: &mut [S],
    ) {
        assert_eq!(lanes.len(), batch.width(), "one lane per batch column");
        assert_eq!(outcomes.len(), lanes.len(), "one outcome per lane");
        assert_eq!(sinks.len(), lanes.len(), "one sink per lane");
        let ticks = self.ticks_for(duration_s);
        let dt = self.tick_s();
        let mut control_every = Vec::with_capacity(lanes.len());
        for (lane, outcome) in lanes.iter_mut().zip(outcomes.iter_mut()) {
            outcome.trace.clear();
            outcome.presented_frames = 0;
            outcome.repeated_vsyncs = 0;
            #[allow(clippy::cast_possible_truncation)]
            outcome.trace.reserve(ticks as usize);
            lane.governor.bind(batch.platform());
            control_every.push(self.control_every_ticks(lane.governor.period_s()));
        }
        let mut until_control = control_every.clone();
        let mut demands = vec![FrameDemand::default(); lanes.len()];
        for _ in 0..ticks {
            for (lane, demand) in lanes.iter_mut().zip(demands.iter_mut()) {
                *demand = lane.session.advance(dt);
            }
            batch.tick(dt, &demands);
            for (l, lane) in lanes.iter_mut().enumerate() {
                let out = *batch.tick_output(l);
                let outcome = &mut outcomes[l];
                outcome.presented_frames += u64::from(out.vsync.presented);
                outcome.repeated_vsyncs += u64::from(out.vsync.repeated);
                let state = batch.state(l);
                lane.governor.observe(&state);
                until_control[l] -= 1;
                let mut controlled = false;
                if until_control[l] == 0 {
                    lane.governor.control(&state, batch.dvfs_mut(l));
                    until_control[l] = control_every[l];
                    controlled = true;
                }
                if sinks[l].enabled() {
                    sinks[l].record(&TickView {
                        state: &state,
                        dt_s: dt,
                        decision: if controlled {
                            lane.governor.last_decision()
                        } else {
                            None
                        },
                    });
                }
                outcome.trace.push(Sample {
                    time_s: state.time_s,
                    fps: out.fps,
                    power_w: out.power_w,
                    temp_hot_c: state.temp_hot_c,
                    temp_device_c: state.temp_device_c,
                    freq_khz: state.freq_khz,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::by_name;
    use mpsoc::soc::{Soc, SocConfig};
    use mpsoc::SocBatch;
    use workload::SessionPlan;

    fn outcome_buf(n: usize) -> Vec<RunOutcome> {
        (0..n)
            .map(|_| RunOutcome {
                trace: crate::metrics::Trace::new(),
                presented_frames: 0,
                repeated_vsyncs: 0,
            })
            .collect()
    }

    /// Lockstep lanes under different governors must reproduce the
    /// scalar engine bit for bit, lane by lane.
    #[test]
    fn batched_run_matches_scalar_runs_per_lane() {
        let engine = Engine::new();
        let names = ["schedutil", "ondemand", "powersave", "performance"];
        let config = SocConfig::exynos9810();
        let plan = SessionPlan::paper_fig1();

        let scalar: Vec<RunOutcome> = names
            .iter()
            .map(|name| {
                let mut soc = Soc::new(config.clone());
                let mut gov = by_name(name).unwrap();
                let mut session = SessionSim::new(plan.clone(), 42);
                engine.run(&mut soc, gov.as_mut(), &mut session, 30.0)
            })
            .collect();

        let mut batch = SocBatch::replicate(&config, names.len()).unwrap();
        let mut governors: Vec<_> = names.iter().map(|n| by_name(n).unwrap()).collect();
        let mut sessions: Vec<_> = (0..names.len())
            .map(|_| SessionSim::new(plan.clone(), 42))
            .collect();
        let mut lanes: Vec<BatchLane<'_>> = governors
            .iter_mut()
            .zip(sessions.iter_mut())
            .map(|(g, s)| BatchLane {
                governor: g.as_mut(),
                session: s,
            })
            .collect();
        let mut outcomes = outcome_buf(names.len());
        engine.run_lanes_into(&mut batch, &mut lanes, 30.0, &mut outcomes);
        for (l, name) in names.iter().enumerate() {
            assert_eq!(outcomes[l], scalar[l], "lane {l} ({name}) diverged");
        }
    }

    /// Different per-lane seeds (distinct users on identical hardware).
    #[test]
    fn per_lane_seeds_stay_independent() {
        let engine = Engine::new();
        let config = SocConfig::exynos9820();
        let seeds = [1u64, 2, 3];
        let scalar: Vec<RunOutcome> = seeds
            .iter()
            .map(|&seed| {
                let mut soc = Soc::new(config.clone());
                let mut gov = by_name("schedutil").unwrap();
                let mut session = SessionSim::new(SessionPlan::single("facebook", 20.0), seed);
                engine.run(&mut soc, gov.as_mut(), &mut session, 20.0)
            })
            .collect();
        let mut batch = SocBatch::replicate(&config, seeds.len()).unwrap();
        let mut governors: Vec<_> = seeds
            .iter()
            .map(|_| by_name("schedutil").unwrap())
            .collect();
        let mut sessions: Vec<_> = seeds
            .iter()
            .map(|&seed| SessionSim::new(SessionPlan::single("facebook", 20.0), seed))
            .collect();
        let mut lanes: Vec<BatchLane<'_>> = governors
            .iter_mut()
            .zip(sessions.iter_mut())
            .map(|(g, s)| BatchLane {
                governor: g.as_mut(),
                session: s,
            })
            .collect();
        let mut outcomes = outcome_buf(seeds.len());
        engine.run_lanes_into(&mut batch, &mut lanes, 20.0, &mut outcomes);
        for l in 0..seeds.len() {
            assert_eq!(outcomes[l], scalar[l], "lane {l} diverged");
        }
        assert_ne!(outcomes[0], outcomes[1], "seeds must differ");
    }

    #[test]
    #[should_panic(expected = "one lane per batch column")]
    fn lane_count_mismatch_panics() {
        let engine = Engine::new();
        let mut batch = SocBatch::replicate(&SocConfig::exynos9810(), 2).unwrap();
        let mut outcomes = outcome_buf(0);
        engine.run_lanes_into(&mut batch, &mut [], 1.0, &mut outcomes);
    }
}
