//! Million-device campaign runner: sharded, checkpointed federated
//! battery-days (§IV-C run at production scale and day granularity).
//!
//! Where [`crate::fleet`] federates *training sessions*, a campaign
//! federates **whole days**: every federated round, every device lives
//! one full [`workload::DayPlan`] — persona-driven pickups, screen-off
//! cooling, per-app Q-tables — with online learning enabled
//! ([`DaySpec::train_online`]), uploads the **binary delta** of what it
//! learned (`qlearn::codec`), and receives the merged per-platform
//! tables back:
//!
//! ```text
//!         ┌──────────────── one campaign round ────────────────┐
//!         │ shard 0: devices 0..S     (parallel_map, W workers)│
//!         │ shard 1: devices S..2S    … one full day each …    │
//!         │   …        memory ∝ shard size, never fleet size   │
//!         │ cloud: fold shards in device order,                │
//!         │        finish_normalized() per (platform, app)     │
//!         │ uplink = Σ encoded delta bytes (NXQT kind-2)       │
//!         │ downlink = Σ merged table bytes (NXQT kind-1)      │
//!         └──────────── checkpoint (NXCP) ▶ next round ────────┘
//! ```
//!
//! **Memory.** Devices never clone the merged tables. Each round's
//! merged per-platform tables live behind `Arc`s, and every device day
//! runs on [`qlearn::OverlayStore`] views of them: warm start is an
//! `Arc` clone (O(1)), the day's resident footprint is the rows it
//! actually touched, and the uplink delta is read straight off the
//! overlay ([`QTable::delta_bytes`]) instead of a full-space diff. The
//! cloud folds only touched rows per device and applies a closed-form
//! correction for the untouched remainder
//! ([`MergeAccumulator::fold_overlay`]), so round cost scales with
//! what the fleet learned, not with the state space.
//!
//! **Cohorts.** Devices are drawn from seeded cohorts — persona ×
//! platform × hardware bin ([`SOC_BINS`]) — and the campaign keeps
//! streaming per-cohort statistics (count, min/max/mean and a 64-bin
//! histogram per metric) so the artifact reports PPDW/FPS/power/drain
//! quantiles per cohort without retaining any per-device series.
//!
//! **Checkpoints.** After every round the full campaign state — the
//! regeneration recipe, per-round ledger, cohort accumulators and the
//! merged per-platform tables (NXQT-encoded) — is written atomically
//! to `<dir>/campaign.nxcp`. A killed campaign resumes from it and
//! produces **byte-identical** artifacts: every quantity is a pure
//! function of the [`CampaignConfig`], independent of worker count,
//! shard boundaries or where the kill happened.
//!
//! Round timing is *modeled* from the actual encoded payload sizes via
//! [`LinkModel::uplink_time_s`]/[`LinkModel::downlink_time_s`]; no wall
//! clock ever enters the artifact.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use next_core::QTableStore;
use qlearn::{decode_table, encode_table, DenseQTable, DenseStore, OverlayStore};
use qlearn::{MergeAccumulator, QTable};
use workload::scenario::{splitmix64, DayPlanConfig};
use workload::{DayPlan, Persona};

use crate::day::{run_day, DaySpec};
use crate::fleet::{device_profiles, soc_config_for, DeviceProfile, LinkModel, SOC_BINS};
use crate::metrics::Battery;
use crate::platform::PlatformPreset;
use crate::sweep::{parallel_map, StandardEvaluator};

/// Salt mixing the round number into a device's per-round seed (the
/// same constant the day-scale scenario engine uses), so every round
/// sees fresh but reproducible user behaviour.
const ROUND_SALT: u64 = 0xff51_afd7_ed55_8ccd;

/// Number of per-device-day metrics a cohort tracks.
pub const METRIC_COUNT: usize = 4;

/// Names of the tracked metrics, in storage order.
pub const METRIC_NAMES: [&str; METRIC_COUNT] =
    ["ppdw", "avg_fps", "avg_power_w", "battery_drain_pct"];

/// Histogram range per metric. PPDW is capped well above the paper
/// space's practical ceiling (~120 at the ΔT/power floors), FPS above
/// any panel rate, power above [`next_core::ppdw::PpdwBounds`]'s 16 W,
/// drain at the saturating 100 %. Out-of-range samples clamp into the
/// end bins; exact min/max/mean are tracked separately.
const METRIC_RANGES: [(f64, f64); METRIC_COUNT] =
    [(0.0, 200.0), (0.0, 120.0), (0.0, 16.0), (0.0, 100.0)];

/// Bins per metric histogram.
pub const HIST_BINS: usize = 64;

/// Checkpoint file name inside the checkpoint directory.
pub const CHECKPOINT_FILE: &str = "campaign.nxcp";

const CKPT_MAGIC: [u8; 4] = *b"NXCP";
/// Version history: 1 = PR 8 layout; 2 = adds per-round `table_bytes`
/// to the ledger records (overlay working-set accounting).
const CKPT_VERSION: u16 = 2;

/// Configuration of a campaign — the complete regeneration recipe.
/// Every quantity in a [`CampaignReport`] is a pure function of this
/// struct; the checkpoint embeds it verbatim and a resume validates it
/// field by field.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Number of devices in the campaign.
    pub devices: usize,
    /// Number of federated rounds (= days per device).
    pub rounds: usize,
    /// Master seed: device roster, personas and per-round day plans
    /// all derive from it.
    pub seed: u64,
    /// Devices simulated per shard. Peak memory is proportional to the
    /// shard size (trained tables in flight), never the fleet size.
    pub shard_size: usize,
    /// Platform presets, assigned round-robin by device id (same
    /// convention as [`crate::fleet::FleetConfig::platforms`]).
    pub platforms: Vec<String>,
    /// Shape of every simulated day.
    pub plan: DayPlanConfig,
    /// Screen-off gap tick, seconds.
    pub gap_tick_s: f64,
    /// Base training budget for the warm-seed tables, simulated
    /// seconds (games get twice the base, as in §V).
    pub train_budget_s: f64,
    /// Battery pack drain is reported against.
    pub battery: Battery,
    /// Link model pricing the encoded payloads.
    pub link: LinkModel,
}

impl CampaignConfig {
    /// Full-scale defaults: the paper's 52-pickup 16 h day, §V training
    /// budget, Note 9 pack, 1024-device shards.
    #[must_use]
    pub fn new(devices: usize, rounds: usize, seed: u64) -> Self {
        CampaignConfig {
            devices,
            rounds,
            seed,
            shard_size: 1024,
            platforms: vec!["exynos9810".to_owned()],
            plan: DayPlanConfig::paper(),
            gap_tick_s: 1.0,
            train_budget_s: StandardEvaluator::BASE_TRAIN_BUDGET_S,
            battery: Battery::note9(),
            link: LinkModel::paper(),
        }
    }

    /// CI-smoke defaults: a 4-pickup compressed day and short warm-seed
    /// training so a multi-round multi-device campaign finishes in
    /// seconds.
    #[must_use]
    pub fn quick(devices: usize, rounds: usize, seed: u64) -> Self {
        CampaignConfig {
            shard_size: 16,
            plan: DayPlanConfig {
                pickups: 4,
                day_length_s: 400.0,
                session_scale: 0.1,
                min_session_s: 15.0,
            },
            train_budget_s: 30.0,
            ..CampaignConfig::new(devices, rounds, seed)
        }
    }

    /// Replaces the platform mix.
    #[must_use]
    pub fn with_platforms(mut self, platforms: &[&str]) -> Self {
        self.platforms = platforms.iter().map(|&p| p.to_owned()).collect();
        self
    }

    /// Checks the campaign is runnable.
    ///
    /// # Errors
    ///
    /// Returns the human-readable violation: zero devices/rounds/shard,
    /// an unknown platform, an infeasible day plan, or a non-positive
    /// gap tick or training budget.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 {
            return Err("campaign needs at least one device".to_owned());
        }
        if self.rounds == 0 {
            return Err("campaign needs at least one round".to_owned());
        }
        if self.shard_size == 0 {
            return Err("shard size must be at least one".to_owned());
        }
        if self.platforms.is_empty() {
            return Err("campaign needs at least one platform".to_owned());
        }
        for p in &self.platforms {
            if PlatformPreset::by_name(p).is_none() {
                return Err(format!("unknown platform preset '{p}'"));
            }
        }
        self.plan.validate()?;
        if !(self.gap_tick_s > 0.0 && self.gap_tick_s.is_finite()) {
            return Err("gap tick must be positive and finite".to_owned());
        }
        if !(self.train_budget_s > 0.0 && self.train_budget_s.is_finite()) {
            return Err("training budget must be positive and finite".to_owned());
        }
        Ok(())
    }

    /// Number of cohorts: persona × platform × hardware bin.
    #[must_use]
    pub fn cohort_count(&self) -> usize {
        Persona::names().len() * self.platforms.len() * SOC_BINS.len()
    }
}

/// Streaming min/max/sum plus a fixed-range histogram — one metric of
/// one cohort. Quantiles come from the histogram (linear interpolation
/// within a bin, clamped to the exact observed [min, max]).
#[derive(Debug, Clone, PartialEq)]
struct MetricStat {
    min: f64,
    max: f64,
    sum: f64,
    bins: Vec<u64>,
}

impl MetricStat {
    fn new() -> Self {
        MetricStat {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            bins: vec![0; HIST_BINS],
        }
    }

    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    fn record(&mut self, v: f64, lo: f64, hi: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        let t = ((v - lo) / (hi - lo) * HIST_BINS as f64).floor();
        let idx = if t.is_nan() || t < 0.0 { 0 } else { t as usize };
        self.bins[idx.min(HIST_BINS - 1)] += 1;
    }

    /// Quantile `q` ∈ [0, 1] of the recorded samples via the histogram.
    #[allow(clippy::cast_precision_loss)]
    fn quantile(&self, q: f64, count: u64, lo: f64, hi: f64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let target = q * count as f64;
        let width = (hi - lo) / HIST_BINS as f64;
        let mut cum = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (cum + n) as f64 >= target {
                let within = ((target - cum as f64) / n as f64).clamp(0.0, 1.0);
                let v = lo + (i as f64 + within) * width;
                return v.clamp(self.min, self.max);
            }
            cum += n;
        }
        self.max
    }

    #[allow(clippy::cast_precision_loss)]
    fn mean(&self, count: u64) -> f64 {
        if count == 0 {
            0.0
        } else {
            self.sum / count as f64
        }
    }
}

/// Accumulated statistics of one cohort (persona × platform × bin).
#[derive(Debug, Clone, PartialEq)]
struct CohortAcc {
    /// Device-days recorded (each device contributes one sample per
    /// round to each metric).
    count: u64,
    stats: Vec<MetricStat>,
}

impl CohortAcc {
    fn new() -> Self {
        CohortAcc {
            count: 0,
            stats: (0..METRIC_COUNT).map(|_| MetricStat::new()).collect(),
        }
    }
}

/// Cohort index of (persona, platform, bin): persona-major, then
/// platform, then hardware bin.
fn cohort_index(persona: usize, platform: usize, bin: usize, n_platforms: usize) -> usize {
    (persona * n_platforms + platform) * SOC_BINS.len() + bin
}

/// Persona index of a device — [`Persona::sample`]'s draw on the
/// device's user seed.
#[allow(clippy::cast_possible_truncation)]
fn persona_index(user_seed: u64) -> usize {
    (splitmix64(user_seed) % Persona::names().len() as u64) as usize
}

/// One closed round of the campaign ledger. All byte counts are the
/// *actual encoded payload sizes* (NXQT deltas up, NXQT tables down).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRound {
    /// Round number (0-based).
    pub round: usize,
    /// Total uplink payload across the fleet, bytes (encoded per-app
    /// table deltas).
    pub uplink_bytes: u64,
    /// Total downlink payload across the fleet, bytes (merged tables
    /// pushed back to every device of each platform).
    pub downlink_bytes: u64,
    /// Modeled communication time of the round, seconds: the slowest
    /// device's uplink plus the slowest device's downlink at the
    /// [`LinkModel`] throughputs.
    pub comm_s: f64,
    /// Total visited states across the merged per-platform tables
    /// after this round.
    pub states: u64,
    /// Total visit count across the merged per-platform tables after
    /// this round (normalized merge: per-cell mean over contributors).
    pub visits: u64,
    /// Resident table bytes of the round: the merged per-platform
    /// tables after the fold plus every device's end-of-day overlay
    /// footprint ([`QTable::resident_bytes`]). This is the campaign's
    /// working-set proxy — with copy-on-write overlays it scales with
    /// rows *touched*, not devices × state space.
    pub table_bytes: u64,
    /// What the same round would have held resident under the
    /// pre-overlay scheme: a full dense clone of each merged table per
    /// device-day that warm-started from it. The ratio against
    /// [`CampaignRound::table_bytes`] is the overlay's memory win.
    pub dense_clone_bytes: u64,
}

/// Summary quantiles of one metric of one cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Metric name (one of [`METRIC_NAMES`]).
    pub name: &'static str,
    /// Exact minimum over the cohort's device-days.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Exact mean.
    pub mean: f64,
    /// Median (histogram-interpolated).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Final statistics of one cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortSummary {
    /// Persona name.
    pub persona: String,
    /// Platform preset name.
    pub platform: String,
    /// Hardware bin name (see [`SOC_BINS`]).
    pub bin: String,
    /// Device-days recorded into this cohort over the whole campaign.
    pub count: u64,
    /// Per-metric summaries, in [`METRIC_NAMES`] order (all-zero when
    /// the cohort is empty).
    pub metrics: Vec<MetricSummary>,
}

/// One merged per-platform per-app table at campaign end.
#[derive(Debug, Clone, PartialEq)]
pub struct TableArtifact {
    /// Platform preset name.
    pub platform: String,
    /// Application the table controls.
    pub app: String,
    /// Visited states.
    pub states: u64,
    /// Total visit count.
    pub visits: u64,
    /// The NXQT-encoded table — the exact bytes a device would
    /// download, and the bytes the resume-equality contract is stated
    /// over.
    pub encoded: Vec<u8>,
}

/// Outcome of a completed campaign — a pure function of the
/// [`CampaignConfig`], byte-identical for any worker count, shard size
/// boundary effects excluded by construction (folds happen in device
/// order).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The recipe that produced this report.
    pub config: CampaignConfig,
    /// Per-round ledger, in round order.
    pub rounds: Vec<CampaignRound>,
    /// Cohort statistics, persona-major × platform × bin.
    pub cohorts: Vec<CohortSummary>,
    /// Final merged tables, ordered by (platform index, app).
    pub tables: Vec<TableArtifact>,
}

impl CampaignReport {
    /// Total uplink bytes over all rounds.
    #[must_use]
    pub fn total_uplink_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.uplink_bytes).sum()
    }

    /// Total downlink bytes over all rounds.
    #[must_use]
    pub fn total_downlink_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.downlink_bytes).sum()
    }

    /// Device-days simulated (devices × rounds).
    #[must_use]
    pub fn device_days(&self) -> u64 {
        (self.config.devices * self.config.rounds) as u64
    }
}

/// Checkpoint/kill options of [`run_campaign_with`].
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Directory the checkpoint is written to after every round
    /// (atomic temp-file + rename). `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from `checkpoint_dir`'s checkpoint instead of starting
    /// fresh. The checkpoint's embedded recipe must match `config`
    /// exactly.
    pub resume: bool,
    /// Stop (gracefully) once this many rounds are complete — the
    /// kill-and-resume test hook. The checkpoint for the last finished
    /// round is on disk when this returns.
    pub stop_after: Option<usize>,
}

/// Outcome of [`run_campaign_with`].
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignOutcome {
    /// The campaign ran to its configured round count.
    Complete(CampaignReport),
    /// The campaign stopped early at a round boundary
    /// ([`CampaignOptions::stop_after`]); resume to continue.
    Paused {
        /// Rounds complete (and checkpointed, when a directory was
        /// given) at the stop.
        rounds_done: usize,
    },
}

/// In-flight campaign state — everything a checkpoint persists.
#[derive(Debug)]
struct CampaignState {
    rounds: Vec<CampaignRound>,
    cohorts: Vec<CohortAcc>,
    /// Merged table per (platform index, app), shared with every
    /// in-flight device day as the immutable overlay base.
    globals: BTreeMap<(usize, String), Arc<DenseQTable>>,
}

/// What one device brings back from one simulated day.
struct DeviceDay {
    platform: usize,
    cohort: usize,
    metrics: [f64; METRIC_COUNT],
    uplink_bytes: u64,
    /// End-of-day resident footprint of the device's overlays, bytes
    /// (touched rows only — the shared base is not counted).
    table_bytes: u64,
    /// Bytes a dense warm start would have cloned for this day (the
    /// full base table per app).
    dense_clone_bytes: u64,
    /// Copy-on-write views of the round's merged tables, one per app
    /// the day touched, carrying exactly the rows the day wrote.
    tables: Vec<(String, QTable<OverlayStore>)>,
}

/// Union of every shipped persona's app list, sorted — the app set the
/// warm seed must cover so any sampled device finds its tables.
fn persona_app_union() -> Vec<String> {
    let mut apps = BTreeSet::new();
    for name in Persona::names() {
        // qlint::allow(PN01, reason = "iterating Persona::names(), so every lookup hits")
        let persona = Persona::by_name(name).expect("shipped persona resolves");
        for app in persona.apps() {
            apps.insert(app.clone());
        }
    }
    apps.into_iter().collect()
}

/// Trains the warm-seed tables: one table per (platform, app) over the
/// persona app union. Deterministic for any worker count (fixed
/// training seed, per-app budgets), so a resume — which recomputes
/// nothing — and a fresh run agree on round 0's starting point.
fn seed_tables(
    config: &CampaignConfig,
    presets: &[PlatformPreset],
    workers: usize,
) -> BTreeMap<(usize, String), Arc<DenseQTable>> {
    let apps = persona_app_union();
    let mut globals = BTreeMap::new();
    for (p, preset) in presets.iter().enumerate() {
        let outs = StandardEvaluator::train_for_apps(&apps, config.train_budget_s, workers, preset);
        for (app, out) in apps.iter().zip(outs) {
            globals.insert((p, app.clone()), Arc::new(out.agent.into_table()));
        }
    }
    globals
}

/// Simulates one device's day of `round`: regenerate the plan from the
/// device's per-round seed, pre-seed the store with **overlay views**
/// of the platform's merged tables (an `Arc` clone each — no rows are
/// copied until the day writes them), run the day with online
/// learning, and return the overlays plus the encoded-delta uplink
/// cost read straight off their touched rows.
fn run_device_day(
    config: &CampaignConfig,
    presets: &[PlatformPreset],
    globals: &BTreeMap<(usize, String), Arc<DenseQTable>>,
    dev: &DeviceProfile,
    round: usize,
) -> DeviceDay {
    let round_seed = splitmix64(dev.user_seed ^ (round as u64).wrapping_mul(ROUND_SALT));
    let persona_idx = persona_index(dev.user_seed);
    // qlint::allow(PN01, reason = "index comes from persona_index, bounded by Persona::names()")
    let persona = Persona::by_name(Persona::names()[persona_idx]).expect("shipped persona");
    let plan = DayPlan::generate(&persona, &config.plan, round_seed);
    let apps = plan.distinct_apps();

    let base = &presets[dev.platform];
    let mut preset = base.clone();
    preset.soc = soc_config_for(&base.soc, &SOC_BINS[dev.bin]);
    preset.next = base.next.clone().with_seed(round_seed);

    let mut store: QTableStore<OverlayStore> = QTableStore::in_memory();
    for app in &apps {
        let base = globals
            .get(&(dev.platform, app.clone()))
            // qlint::allow(PN01, reason = "the warm seed is built over persona_app_union, a superset of any day plan")
            .expect("warm seed covers every persona app");
        store
            .save(app, &QTable::overlay(Arc::clone(base)))
            // qlint::allow(PN01, reason = "a store without a directory performs no I/O")
            .expect("in-memory store cannot fail");
    }

    let mut spec = DaySpec::new(plan, "next")
        .with_preset(preset)
        .with_train_budget_s(config.train_budget_s)
        .with_train_online(true);
    spec.gap_tick_s = config.gap_tick_s;
    spec.battery = config.battery;
    let report = run_day(&spec, &mut store);

    let (mut weighted, mut duration) = (0.0, 0.0);
    for s in &report.sessions {
        weighted += s.ppdw * s.duration_s;
        duration += s.duration_s;
    }
    let ppdw = if duration > 0.0 {
        weighted / duration
    } else {
        0.0
    };

    let mut uplink_bytes = 0u64;
    let mut table_bytes = 0u64;
    let mut dense_clone_bytes = 0u64;
    let mut tables = Vec::with_capacity(apps.len());
    for app in &apps {
        // qlint::allow(PN01, reason = "every app was saved into the store before the day ran")
        let trained = store.take(app).expect("day store keeps every app");
        uplink_bytes += trained.delta_bytes().len() as u64;
        table_bytes += trained.resident_bytes() as u64;
        dense_clone_bytes += trained.base().resident_bytes() as u64;
        tables.push((app.clone(), trained));
    }

    DeviceDay {
        platform: dev.platform,
        cohort: cohort_index(persona_idx, dev.platform, dev.bin, presets.len()),
        metrics: [
            ppdw,
            report.avg_fps,
            report.avg_power_w,
            report.battery_drain_pct,
        ],
        uplink_bytes,
        table_bytes,
        dense_clone_bytes,
        tables,
    }
}

/// Runs one federated round in place: shards over `parallel_map`,
/// device-order folds, normalized merges, payload-priced comms.
fn run_round(
    config: &CampaignConfig,
    presets: &[PlatformPreset],
    profiles: &[DeviceProfile],
    state: &mut CampaignState,
    round: usize,
    workers: usize,
) {
    let mut accs: BTreeMap<(usize, String), MergeAccumulator<DenseStore>> = BTreeMap::new();
    let mut uplink_total = 0u64;
    let mut uplink_max = 0u64;
    let mut overlay_bytes = 0u64;
    let mut dense_clone_bytes = 0u64;

    for shard in profiles.chunks(config.shard_size) {
        let outs = parallel_map(shard, workers, |dev| {
            run_device_day(config, presets, &state.globals, dev, round)
        });
        // Fold in device order: `parallel_map` returns results in item
        // order, and shards iterate the roster front to back, so the
        // merge stream is identical for any worker count or shard size.
        for out in outs {
            let cohort = &mut state.cohorts[out.cohort];
            cohort.count += 1;
            for (m, &v) in out.metrics.iter().enumerate() {
                cohort.stats[m].record(v, METRIC_RANGES[m].0, METRIC_RANGES[m].1);
            }
            uplink_total += out.uplink_bytes;
            uplink_max = uplink_max.max(out.uplink_bytes);
            overlay_bytes += out.table_bytes;
            dense_clone_bytes += out.dense_clone_bytes;
            for (app, table) in out.tables {
                let acc = accs
                    .entry((out.platform, app))
                    .or_insert_with(|| MergeAccumulator::new(table.n_actions(), table.default_q()));
                // Overlay fast path: fold only the rows this device
                // touched; the untouched remainder is applied in one
                // closed-form correction at finish time.
                acc.fold_overlay(&table)
                    // qlint::allow(PN01, reason = "all overlays of one (platform, app) pair were cloned from the same round global")
                    .expect("platform tables share one space and one base");
            }
        }
    }

    for (key, acc) in accs {
        let merged = acc
            .finish_normalized()
            // qlint::allow(PN01, reason = "accumulators are created by or_insert_with immediately before a fold")
            .expect("an accumulator exists only after a fold");
        state.globals.insert(key, Arc::new(merged));
    }

    let mut platform_bytes = vec![0u64; presets.len()];
    for ((p, _), table) in &state.globals {
        platform_bytes[*p] += encode_table(&**table).len() as u64;
    }
    let mut downlink_total = 0u64;
    let mut downlink_max = 0u64;
    for dev in profiles {
        let b = platform_bytes[dev.platform];
        downlink_total += b;
        downlink_max = downlink_max.max(b);
    }

    let states: u64 = state.globals.values().map(|t| t.len() as u64).sum();
    let visits: u64 = state.globals.values().map(|t| t.total_visits()).sum();
    let merged_bytes: u64 = state
        .globals
        .values()
        .map(|t| t.resident_bytes() as u64)
        .sum();

    state.rounds.push(CampaignRound {
        round,
        uplink_bytes: uplink_total,
        downlink_bytes: downlink_total,
        comm_s: config.link.uplink_time_s(uplink_max) + config.link.downlink_time_s(downlink_max),
        states,
        visits,
        table_bytes: merged_bytes + overlay_bytes,
        dense_clone_bytes: merged_bytes + dense_clone_bytes,
    });
}

fn build_report(
    config: &CampaignConfig,
    presets: &[PlatformPreset],
    state: CampaignState,
) -> CampaignReport {
    let mut cohorts = Vec::with_capacity(state.cohorts.len());
    for (pi, persona) in Persona::names().iter().enumerate() {
        for (fi, platform) in config.platforms.iter().enumerate() {
            for (bi, bin) in SOC_BINS.iter().enumerate() {
                let acc = &state.cohorts[cohort_index(pi, fi, bi, presets.len())];
                let metrics = (0..METRIC_COUNT)
                    .map(|m| {
                        let stat = &acc.stats[m];
                        let (lo, hi) = METRIC_RANGES[m];
                        if acc.count == 0 {
                            MetricSummary {
                                name: METRIC_NAMES[m],
                                min: 0.0,
                                max: 0.0,
                                mean: 0.0,
                                p50: 0.0,
                                p90: 0.0,
                                p99: 0.0,
                            }
                        } else {
                            MetricSummary {
                                name: METRIC_NAMES[m],
                                min: stat.min,
                                max: stat.max,
                                mean: stat.mean(acc.count),
                                p50: stat.quantile(0.50, acc.count, lo, hi),
                                p90: stat.quantile(0.90, acc.count, lo, hi),
                                p99: stat.quantile(0.99, acc.count, lo, hi),
                            }
                        }
                    })
                    .collect();
                cohorts.push(CohortSummary {
                    persona: (*persona).to_owned(),
                    platform: platform.clone(),
                    bin: bin.name.to_owned(),
                    count: acc.count,
                    metrics,
                });
            }
        }
    }

    let tables = state
        .globals
        .iter()
        .map(|((p, app), table)| TableArtifact {
            platform: config.platforms[*p].clone(),
            app: app.clone(),
            states: table.len() as u64,
            visits: table.total_visits(),
            encoded: encode_table(&**table),
        })
        .collect();

    CampaignReport {
        config: config.clone(),
        rounds: state.rounds,
        cohorts,
        tables,
    }
}

// ---------------------------------------------------------------------------
// NXCP checkpoint codec
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    #[allow(clippy::cast_possible_truncation)]
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct CkptReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err("checkpoint truncated".to_owned());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, String> {
        // qlint::allow(PN01, reason = "take(2) returned exactly 2 bytes")
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        // qlint::allow(PN01, reason = "take(4) returned exactly 4 bytes")
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        // qlint::allow(PN01, reason = "take(8) returned exactly 8 bytes")
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "checkpoint string not UTF-8".to_owned())
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err("checkpoint has trailing bytes".to_owned())
        }
    }
}

/// Serializes the full campaign state. The header embeds the complete
/// regeneration recipe so a resume can refuse a mismatched config
/// field by field; f64s are stored as raw bits, so the round trip is
/// exact.
fn encode_checkpoint(config: &CampaignConfig, state: &CampaignState) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CKPT_MAGIC);
    put_u16(&mut out, CKPT_VERSION);

    put_u64(&mut out, config.devices as u64);
    put_u64(&mut out, config.rounds as u64);
    put_u64(&mut out, config.seed);
    put_u64(&mut out, config.shard_size as u64);
    #[allow(clippy::cast_possible_truncation)]
    put_u32(&mut out, config.platforms.len() as u32);
    for p in &config.platforms {
        put_str(&mut out, p);
    }
    put_u32(&mut out, config.plan.pickups);
    put_f64(&mut out, config.plan.day_length_s);
    put_f64(&mut out, config.plan.session_scale);
    put_f64(&mut out, config.plan.min_session_s);
    put_f64(&mut out, config.gap_tick_s);
    put_f64(&mut out, config.train_budget_s);
    put_f64(&mut out, config.battery.capacity_mah);
    put_f64(&mut out, config.battery.nominal_v);
    put_f64(&mut out, config.link.uplink_s);
    put_f64(&mut out, config.link.downlink_s);

    put_u64(&mut out, state.rounds.len() as u64);
    for r in &state.rounds {
        put_u64(&mut out, r.round as u64);
        put_u64(&mut out, r.uplink_bytes);
        put_u64(&mut out, r.downlink_bytes);
        put_f64(&mut out, r.comm_s);
        put_u64(&mut out, r.states);
        put_u64(&mut out, r.visits);
        put_u64(&mut out, r.table_bytes);
        put_u64(&mut out, r.dense_clone_bytes);
    }

    put_u64(&mut out, state.cohorts.len() as u64);
    for c in &state.cohorts {
        put_u64(&mut out, c.count);
        for stat in &c.stats {
            put_f64(&mut out, stat.min);
            put_f64(&mut out, stat.max);
            put_f64(&mut out, stat.sum);
            for &b in &stat.bins {
                put_u64(&mut out, b);
            }
        }
    }

    put_u64(&mut out, state.globals.len() as u64);
    for ((p, app), table) in &state.globals {
        #[allow(clippy::cast_possible_truncation)]
        put_u16(&mut out, *p as u16);
        put_str(&mut out, app);
        let encoded = encode_table(&**table);
        put_u64(&mut out, encoded.len() as u64);
        out.extend_from_slice(&encoded);
    }

    out
}

/// Compares one recipe field, naming it in the error.
///
/// Takes operands by value: every recipe field is either `Copy` or a
/// freshly-decoded `String` consumed by the comparison's error path.
#[allow(clippy::needless_pass_by_value)]
fn check_field<T: PartialEq + std::fmt::Debug>(
    name: &str,
    stored: T,
    expected: T,
) -> Result<(), String> {
    if stored == expected {
        Ok(())
    } else {
        Err(format!(
            "checkpoint was written by a different campaign: {name} is {stored:?}, \
             config says {expected:?}"
        ))
    }
}

/// Parses and validates a checkpoint against `config`, restoring the
/// campaign state it froze.
#[allow(clippy::too_many_lines)]
fn decode_checkpoint(bytes: &[u8], config: &CampaignConfig) -> Result<CampaignState, String> {
    let mut r = CkptReader { buf: bytes, pos: 0 };
    if r.take(4)? != CKPT_MAGIC {
        return Err("not an NXCP checkpoint (bad magic)".to_owned());
    }
    let version = r.u16()?;
    if version != CKPT_VERSION {
        return Err(format!(
            "unsupported checkpoint version {version} (this build reads {CKPT_VERSION})"
        ));
    }

    check_field("devices", r.u64()?, config.devices as u64)?;
    check_field("rounds", r.u64()?, config.rounds as u64)?;
    check_field("seed", r.u64()?, config.seed)?;
    check_field("shard_size", r.u64()?, config.shard_size as u64)?;
    let n_platforms = r.u32()? as usize;
    check_field(
        "platform count",
        n_platforms as u64,
        config.platforms.len() as u64,
    )?;
    for expected in &config.platforms {
        check_field("platform", r.str()?, expected.clone())?;
    }
    check_field("plan.pickups", r.u32()?, config.plan.pickups)?;
    check_field(
        "plan.day_length_s",
        r.f64()?.to_bits(),
        config.plan.day_length_s.to_bits(),
    )?;
    check_field(
        "plan.session_scale",
        r.f64()?.to_bits(),
        config.plan.session_scale.to_bits(),
    )?;
    check_field(
        "plan.min_session_s",
        r.f64()?.to_bits(),
        config.plan.min_session_s.to_bits(),
    )?;
    check_field(
        "gap_tick_s",
        r.f64()?.to_bits(),
        config.gap_tick_s.to_bits(),
    )?;
    check_field(
        "train_budget_s",
        r.f64()?.to_bits(),
        config.train_budget_s.to_bits(),
    )?;
    check_field(
        "battery.capacity_mah",
        r.f64()?.to_bits(),
        config.battery.capacity_mah.to_bits(),
    )?;
    check_field(
        "battery.nominal_v",
        r.f64()?.to_bits(),
        config.battery.nominal_v.to_bits(),
    )?;
    check_field(
        "link.uplink_s",
        r.f64()?.to_bits(),
        config.link.uplink_s.to_bits(),
    )?;
    check_field(
        "link.downlink_s",
        r.f64()?.to_bits(),
        config.link.downlink_s.to_bits(),
    )?;

    let rounds_done = r.u64()? as usize;
    if rounds_done > config.rounds {
        return Err(format!(
            "checkpoint claims {rounds_done} rounds done of a {}-round campaign",
            config.rounds
        ));
    }
    let mut rounds = Vec::with_capacity(rounds_done);
    for i in 0..rounds_done {
        let round = r.u64()? as usize;
        if round != i {
            return Err(format!("checkpoint round ledger out of order at {i}"));
        }
        rounds.push(CampaignRound {
            round,
            uplink_bytes: r.u64()?,
            downlink_bytes: r.u64()?,
            comm_s: r.f64()?,
            states: r.u64()?,
            visits: r.u64()?,
            table_bytes: r.u64()?,
            dense_clone_bytes: r.u64()?,
        });
    }

    let n_cohorts = r.u64()? as usize;
    if n_cohorts != config.cohort_count() {
        return Err(format!(
            "checkpoint has {n_cohorts} cohorts, config implies {}",
            config.cohort_count()
        ));
    }
    let mut cohorts = Vec::with_capacity(n_cohorts);
    for _ in 0..n_cohorts {
        let count = r.u64()?;
        let mut stats = Vec::with_capacity(METRIC_COUNT);
        for _ in 0..METRIC_COUNT {
            let (min, max, sum) = (r.f64()?, r.f64()?, r.f64()?);
            let mut bins = vec![0u64; HIST_BINS];
            for b in &mut bins {
                *b = r.u64()?;
            }
            stats.push(MetricStat {
                min,
                max,
                sum,
                bins,
            });
        }
        cohorts.push(CohortAcc { count, stats });
    }

    let n_tables = r.u64()? as usize;
    let mut globals = BTreeMap::new();
    for _ in 0..n_tables {
        let p = r.u16()? as usize;
        if p >= config.platforms.len() {
            return Err(format!("checkpoint table references platform index {p}"));
        }
        let app = r.str()?;
        let len = r.u64()? as usize;
        let table_bytes = r.take(len)?;
        let table = decode_table::<DenseStore>(table_bytes).map_err(|e| {
            format!(
                "checkpoint table ({}, {app}) corrupt: {e}",
                config.platforms[p]
            )
        })?;
        if globals.insert((p, app.clone()), Arc::new(table)).is_some() {
            return Err(format!("checkpoint repeats table ({p}, {app})"));
        }
    }
    r.done()?;

    Ok(CampaignState {
        rounds,
        cohorts,
        globals,
    })
}

/// Atomically replaces `<dir>/campaign.nxcp`: write to a temp file in
/// the same directory, then rename over the target, so a kill
/// mid-write never leaves a torn checkpoint behind.
fn write_checkpoint(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, dir.join(CHECKPOINT_FILE))
}

/// Runs a campaign end to end with the default options (no
/// checkpointing).
///
/// # Panics
///
/// Panics on an invalid [`CampaignConfig`].
#[must_use]
pub fn run_campaign(config: &CampaignConfig, workers: usize) -> CampaignReport {
    match run_campaign_with(config, workers, &CampaignOptions::default()) {
        Ok(CampaignOutcome::Complete(report)) => report,
        Ok(CampaignOutcome::Paused { .. }) => {
            unreachable!("no stop_after was set, the campaign cannot pause")
        }
        // qlint::allow(PN01, reason = "documented panicking convenience wrapper; fallible callers use run_campaign_with")
        Err(e) => panic!("{e}"),
    }
}

/// The trained warm-seed tables of a campaign — the expensive,
/// round-independent half of a fresh start, split out so callers (the
/// benchmark harness in particular) can time seeding and steady-state
/// round execution separately. Opaque: produced by [`warm_seed`],
/// consumed by [`run_campaign_from_seed`].
#[derive(Debug, Clone)]
pub struct CampaignWarmSeed {
    globals: BTreeMap<(usize, String), Arc<DenseQTable>>,
}

/// Resolves the validated platform list into presets.
fn resolve_presets(config: &CampaignConfig) -> Vec<PlatformPreset> {
    config
        .platforms
        .iter()
        // qlint::allow(PN01, reason = "config.validate() has already resolved every platform name")
        .map(|p| PlatformPreset::by_name(p).expect("validated platform"))
        .collect()
}

fn fresh_state(
    config: &CampaignConfig,
    globals: BTreeMap<(usize, String), Arc<DenseQTable>>,
) -> CampaignState {
    CampaignState {
        rounds: Vec::new(),
        cohorts: (0..config.cohort_count())
            .map(|_| CohortAcc::new())
            .collect(),
        globals,
    }
}

/// Trains the warm-seed tables of `config` without running any rounds.
/// Deterministic for any worker count, so
/// [`run_campaign_from_seed`] on the result reproduces
/// [`run_campaign`] exactly.
///
/// # Errors
///
/// Returns the human-readable violation of an unrunnable config.
pub fn warm_seed(config: &CampaignConfig, workers: usize) -> Result<CampaignWarmSeed, String> {
    config.validate()?;
    let presets = resolve_presets(config);
    Ok(CampaignWarmSeed {
        globals: seed_tables(config, &presets, workers),
    })
}

/// Runs every round of `config` from a pre-trained warm seed and
/// returns the completed report — byte-identical to [`run_campaign`]
/// on the same config, minus the seed-training cost.
///
/// # Panics
///
/// Panics on an invalid [`CampaignConfig`].
#[must_use]
pub fn run_campaign_from_seed(
    config: &CampaignConfig,
    seed: CampaignWarmSeed,
    workers: usize,
) -> CampaignReport {
    if let Err(e) = config.validate() {
        // qlint::allow(PN01, reason = "documented panicking entry point; fallible callers use run_campaign_with")
        panic!("{e}");
    }
    let presets = resolve_presets(config);
    let profiles = device_profiles(config.devices, config.seed, config.platforms.len());
    let mut state = fresh_state(config, seed.globals);
    for round in 0..config.rounds {
        run_round(config, &presets, &profiles, &mut state, round, workers);
    }
    build_report(config, &presets, state)
}

/// Runs (or resumes) a campaign with checkpointing and kill simulation.
///
/// Fresh runs train the warm-seed tables, then execute rounds; resumed
/// runs restore the ledger, cohort accumulators and merged tables from
/// the checkpoint and continue at the next round. Either path yields
/// byte-identical artifacts for the same config, for any worker count
/// and any kill point at a round boundary.
///
/// # Errors
///
/// Returns a human-readable error on an invalid config, a missing or
/// corrupt checkpoint, a recipe mismatch, or a checkpoint I/O failure.
pub fn run_campaign_with(
    config: &CampaignConfig,
    workers: usize,
    options: &CampaignOptions,
) -> Result<CampaignOutcome, String> {
    config.validate()?;
    let presets = resolve_presets(config);
    let profiles = device_profiles(config.devices, config.seed, config.platforms.len());

    let mut state = if options.resume {
        let dir = options
            .checkpoint_dir
            .as_ref()
            .ok_or_else(|| "resume needs a checkpoint directory".to_owned())?;
        let path = dir.join(CHECKPOINT_FILE);
        let bytes = fs::read(&path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        decode_checkpoint(&bytes, config)?
    } else {
        fresh_state(config, seed_tables(config, &presets, workers))
    };

    let start = state.rounds.len();
    for round in start..config.rounds {
        run_round(config, &presets, &profiles, &mut state, round, workers);
        if let Some(dir) = &options.checkpoint_dir {
            let bytes = encode_checkpoint(config, &state);
            write_checkpoint(dir, &bytes)
                .map_err(|e| format!("cannot write checkpoint in {}: {e}", dir.display()))?;
        }
        let done = state.rounds.len();
        if options.stop_after.is_some_and(|n| done >= n) && done < config.rounds {
            return Ok(CampaignOutcome::Paused { rounds_done: done });
        }
    }

    Ok(CampaignOutcome::Complete(build_report(
        config, &presets, state,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nx-campaign-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn tiny(devices: usize, rounds: usize, seed: u64) -> CampaignConfig {
        let mut config = CampaignConfig::quick(devices, rounds, seed);
        // Shards smaller than the roster so shard boundaries are
        // exercised even at test scale.
        config.shard_size = 3;
        config
    }

    #[test]
    fn config_validation_names_the_violation() {
        assert!(CampaignConfig::quick(0, 1, 1)
            .validate()
            .unwrap_err()
            .contains("device"));
        assert!(CampaignConfig::quick(1, 0, 1)
            .validate()
            .unwrap_err()
            .contains("round"));
        let mut bad = CampaignConfig::quick(1, 1, 1);
        bad.platforms = vec!["pixel-9000".to_owned()];
        assert!(bad.validate().unwrap_err().contains("pixel-9000"));
        let mut bad = CampaignConfig::quick(1, 1, 1);
        bad.shard_size = 0;
        assert!(bad.validate().unwrap_err().contains("shard"));
    }

    #[test]
    fn metric_stat_quantiles_interpolate_and_clamp() {
        let mut stat = MetricStat::new();
        for i in 0..100 {
            stat.record(f64::from(i), 0.0, 100.0);
        }
        let p50 = stat.quantile(0.50, 100, 0.0, 100.0);
        assert!((p50 - 50.0).abs() < 2.0, "p50 = {p50}");
        let p99 = stat.quantile(0.99, 100, 0.0, 100.0);
        assert!((p99 - 99.0).abs() < 2.0, "p99 = {p99}");
        // Out-of-range samples clamp into the end bins and quantiles
        // clamp to the exact observed extrema.
        let mut wild = MetricStat::new();
        wild.record(-5.0, 0.0, 10.0);
        wild.record(1e9, 0.0, 10.0);
        assert_eq!(wild.min, -5.0);
        assert_eq!(wild.max, 1e9);
        let p50 = wild.quantile(0.5, 2, 0.0, 10.0);
        assert!((-5.0..=1e9).contains(&p50));
    }

    #[test]
    fn campaign_is_worker_count_invariant() {
        let config = tiny(5, 2, 42);
        let one = run_campaign(&config, 1);
        let many = run_campaign(&config, 4);
        assert_eq!(one, many);
        assert_eq!(one.rounds.len(), 2);
        assert_eq!(one.device_days(), 10);
        // Learning actually happened: uplink deltas are non-trivial
        // and the merged tables grew visits.
        assert!(one.total_uplink_bytes() > 0);
        assert!(one.rounds[1].visits > 0);
        let total: u64 = one.cohorts.iter().map(|c| c.count).sum();
        assert_eq!(total, one.device_days());
        // The working-set ledger is populated and bounded: every round
        // holds far less resident than the dense per-device clones the
        // pre-overlay scheme required.
        for r in &one.rounds {
            assert!(r.table_bytes > 0);
            assert!(
                r.table_bytes < r.dense_clone_bytes,
                "round {}: overlays ({} B) must beat dense clones ({} B)",
                r.round,
                r.table_bytes,
                r.dense_clone_bytes
            );
        }
    }

    #[test]
    fn warm_seed_then_rounds_reproduces_the_one_shot_run() {
        let config = tiny(4, 2, 21);
        let baseline = run_campaign(&config, 2);
        let seed = warm_seed(&config, 2).expect("valid config");
        let split = run_campaign_from_seed(&config, seed, 3);
        assert_eq!(split, baseline);
        assert!(warm_seed(&CampaignConfig::quick(0, 1, 1), 1).is_err());
    }

    #[test]
    fn kill_and_resume_is_bitwise_identical_across_workers_and_platforms() {
        for (platforms, seed) in [
            (vec!["exynos9810"], 7u64),
            (vec!["exynos9820"], 8u64),
            (vec!["exynos9810", "exynos9820"], 9u64),
        ] {
            let config = tiny(4, 2, seed).with_platforms(&platforms);
            let baseline = run_campaign(&config, 2);

            let dir = temp_dir(&format!("resume-{seed}"));
            let paused = run_campaign_with(
                &config,
                1,
                &CampaignOptions {
                    checkpoint_dir: Some(dir.clone()),
                    resume: false,
                    stop_after: Some(1),
                },
            )
            .expect("first leg runs");
            assert_eq!(paused, CampaignOutcome::Paused { rounds_done: 1 });

            let resumed = run_campaign_with(
                &config,
                3,
                &CampaignOptions {
                    checkpoint_dir: Some(dir.clone()),
                    resume: true,
                    stop_after: None,
                },
            )
            .expect("resume runs");
            let CampaignOutcome::Complete(resumed) = resumed else {
                panic!("resume must complete");
            };

            assert_eq!(resumed, baseline, "platforms {platforms:?}");
            // The contract the acceptance criteria state: the final
            // encoded table bytes are identical too (covered by the
            // report equality, asserted explicitly for clarity).
            for (a, b) in resumed.tables.iter().zip(&baseline.tables) {
                assert_eq!(a.encoded, b.encoded, "table {}/{}", a.platform, a.app);
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn resume_rejects_a_mismatched_recipe() {
        let config = tiny(3, 2, 11);
        let dir = temp_dir("mismatch");
        let paused = run_campaign_with(
            &config,
            2,
            &CampaignOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: false,
                stop_after: Some(1),
            },
        )
        .expect("first leg runs");
        assert!(matches!(paused, CampaignOutcome::Paused { rounds_done: 1 }));

        let mut other = config.clone();
        other.seed = 12;
        let err = run_campaign_with(
            &other,
            2,
            &CampaignOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                stop_after: None,
            },
        )
        .unwrap_err();
        assert!(err.contains("seed"), "error should name the field: {err}");

        let mut other = config.clone();
        other.train_budget_s = 31.0;
        let err = run_campaign_with(
            &other,
            2,
            &CampaignOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                stop_after: None,
            },
        )
        .unwrap_err();
        assert!(err.contains("train_budget_s"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_a_checkpoint_is_a_clean_error() {
        let config = tiny(2, 1, 5);
        let dir = temp_dir("missing");
        let err = run_campaign_with(
            &config,
            1,
            &CampaignOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                stop_after: None,
            },
        )
        .unwrap_err();
        assert!(err.contains("cannot read checkpoint"), "{err}");
        let err = run_campaign_with(
            &config,
            1,
            &CampaignOptions {
                checkpoint_dir: None,
                resume: true,
                stop_after: None,
            },
        )
        .unwrap_err();
        assert!(err.contains("checkpoint directory"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_corrupt_checkpoints_are_rejected() {
        let config = tiny(2, 1, 6);
        let state = CampaignState {
            rounds: Vec::new(),
            cohorts: (0..config.cohort_count())
                .map(|_| CohortAcc::new())
                .collect(),
            globals: BTreeMap::new(),
        };
        let bytes = encode_checkpoint(&config, &state);
        let roundtrip = decode_checkpoint(&bytes, &config).expect("round trip");
        assert_eq!(roundtrip.rounds.len(), 0);
        assert_eq!(roundtrip.cohorts.len(), config.cohort_count());

        for cut in [0, 3, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_checkpoint(&bytes[..cut], &config).is_err(),
                "cut {cut}"
            );
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode_checkpoint(&bad, &config)
            .unwrap_err()
            .contains("magic"));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_checkpoint(&trailing, &config)
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn cohort_assignment_matches_persona_sampling() {
        let profiles = device_profiles(32, 99, 2);
        for dev in &profiles {
            let idx = persona_index(dev.user_seed);
            let sampled = Persona::sample(dev.user_seed);
            assert_eq!(Persona::names()[idx], sampled.name());
            let cohort = cohort_index(idx, dev.platform, dev.bin, 2);
            assert!(cohort < Persona::names().len() * 2 * SOC_BINS.len());
        }
    }
}
